//! The unified interface types of the platform-specific layer.
//!
//! §3.2: "along with the basic clock and reset signals, Harmonia provides
//! five basic types: clock, reset, streaming, mem map, and reg", plus the
//! special `irq` type that exposes raw latency-critical signals. Every
//! wrapped module and every RBB speaks these types upward, which is what
//! makes the shell, roles and host software platform-independent.

use harmonia_hw::iface::{InterfaceSpec, Protocol, SignalDir};
use std::fmt;

/// The kind of a unified port.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UnifiedPortKind {
    /// A clock-array entry; modules select entries by index.
    Clock,
    /// A reset-array entry (sync/soft resets included).
    Reset,
    /// Streaming data with start/end-of-stream delimiters.
    Stream {
        /// Data width in bits.
        width_bits: u32,
    },
    /// Memory-mapped data with address + size semantics.
    MemMap {
        /// Data width in bits.
        width_bits: u32,
        /// Address width in bits.
        addr_bits: u32,
    },
    /// 32-bit register control access.
    Reg,
    /// Raw latency-critical signal exposed unwrapped.
    Irq,
}

impl UnifiedPortKind {
    /// Whether this kind carries bulk data (stream or mem-map).
    pub fn is_data(self) -> bool {
        matches!(
            self,
            UnifiedPortKind::Stream { .. } | UnifiedPortKind::MemMap { .. }
        )
    }

    /// The signals that make up one port of this kind, in Harmonia's
    /// uniform format.
    pub fn signals(self) -> Vec<(&'static str, u32)> {
        match self {
            UnifiedPortKind::Clock => vec![("clk", 1)],
            UnifiedPortKind::Reset => vec![("rst_n", 1)],
            UnifiedPortKind::Stream { width_bits } => vec![
                ("data", width_bits),
                ("keep", width_bits / 8),
                ("valid", 1),
                ("ready", 1),
                ("sos", 1),
                ("eos", 1),
            ],
            UnifiedPortKind::MemMap {
                width_bits,
                addr_bits,
            } => vec![
                ("addr", addr_bits),
                ("size", 16),
                ("wdata", width_bits),
                ("rdata", width_bits),
                ("we", 1),
                ("re", 1),
                ("valid", 1),
                ("ready", 1),
            ],
            UnifiedPortKind::Reg => vec![
                ("addr", 32),
                ("wdata", 32),
                ("rdata", 32),
                ("we", 1),
                ("re", 1),
                ("ack", 1),
            ],
            UnifiedPortKind::Irq => vec![("irq", 1)],
        }
    }
}

impl fmt::Display for UnifiedPortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifiedPortKind::Clock => write!(f, "clock"),
            UnifiedPortKind::Reset => write!(f, "reset"),
            UnifiedPortKind::Stream { width_bits } => write!(f, "stream[{width_bits}b]"),
            UnifiedPortKind::MemMap { width_bits, .. } => write!(f, "mem-map[{width_bits}b]"),
            UnifiedPortKind::Reg => write!(f, "reg[32b]"),
            UnifiedPortKind::Irq => write!(f, "irq"),
        }
    }
}

/// A named unified port on a wrapped module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnifiedPort {
    /// Port name.
    pub name: String,
    /// Port kind.
    pub kind: UnifiedPortKind,
}

impl UnifiedPort {
    /// Creates a unified port.
    pub fn new(name: impl Into<String>, kind: UnifiedPortKind) -> Self {
        UnifiedPort {
            name: name.into(),
            kind,
        }
    }

    /// Renders this port as an [`InterfaceSpec`] for comparison with
    /// vendor-native interfaces.
    pub fn to_spec(&self) -> InterfaceSpec {
        let mut spec = InterfaceSpec::new(self.name.clone(), Protocol::Proprietary);
        for (sig, width) in self.kind.signals() {
            spec = spec.signal(format!("{}_{sig}", self.name), width, SignalDir::Out);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_signals_carry_delimiters() {
        let sigs = UnifiedPortKind::Stream { width_bits: 512 }.signals();
        let names: Vec<_> = sigs.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"sos") && names.contains(&"eos"));
        assert_eq!(sigs.iter().find(|(n, _)| *n == "data").unwrap().1, 512);
    }

    #[test]
    fn memmap_specifies_addr_and_size() {
        let sigs = UnifiedPortKind::MemMap {
            width_bits: 512,
            addr_bits: 34,
        }
        .signals();
        let names: Vec<_> = sigs.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"addr") && names.contains(&"size"));
    }

    #[test]
    fn reg_is_32_bit() {
        let sigs = UnifiedPortKind::Reg.signals();
        assert_eq!(sigs.iter().find(|(n, _)| *n == "wdata").unwrap().1, 32);
    }

    #[test]
    fn irq_is_raw_single_wire() {
        assert_eq!(UnifiedPortKind::Irq.signals(), vec![("irq", 1)]);
        assert!(!UnifiedPortKind::Irq.is_data());
        assert!(UnifiedPortKind::Stream { width_bits: 64 }.is_data());
    }

    #[test]
    fn same_kind_same_signals_regardless_of_vendor_origin() {
        // The whole point of the unified format: two ports of the same kind
        // have identical specs, so upper layers never see vendor variance.
        let a = UnifiedPort::new("rx", UnifiedPortKind::Stream { width_bits: 512 });
        let b = UnifiedPort::new("rx", UnifiedPortKind::Stream { width_bits: 512 });
        assert_eq!(a.to_spec().diff(&b.to_spec()).total(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            UnifiedPortKind::Stream { width_bits: 128 }.to_string(),
            "stream[128b]"
        );
        assert_eq!(UnifiedPortKind::Reg.to_string(), "reg[32b]");
    }
}
