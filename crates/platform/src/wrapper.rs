//! Lightweight interface wrappers (§3.2).
//!
//! A wrapper encapsulates a vendor IP's native interface (AXI4/Avalon) into
//! the unified types, buffering output data and sideband signals in FIFOs
//! and running "fully pipelined sequential translation logic to convert
//! data with varying widths into the unified format. It operates without
//! generating bubbles in the processing and consumes a few fixed clock
//! cycles." Figure 10 verifies exactly those two properties — unchanged
//! throughput, a few cycles of added latency — and Figure 16 bounds the
//! resource overhead below 0.37% of the device.

use crate::unified::{UnifiedPort, UnifiedPortKind};
use harmonia_hw::ip::{IpKind, VendorIp};
use harmonia_hw::resource::ResourceUsage;
use harmonia_sim::stream::StreamBeat;
use harmonia_sim::{Picos, SyncFifo};
use std::collections::VecDeque;

/// A fully pipelined stream width converter.
///
/// Accepts beats of one width and re-emits the same bytes as beats of
/// another width, preserving packet boundaries. Bytes never appear or
/// vanish; a packet's final beat may be partial.
///
/// ```
/// use harmonia_platform::WidthConverter;
/// use harmonia_sim::stream::packet_to_beats;
///
/// let mut conv = WidthConverter::new(512, 128);
/// let mut out = Vec::new();
/// for beat in packet_to_beats(100, 512) {
///     conv.push(beat);
///     out.extend(conv.drain());
/// }
/// let bytes: u32 = out.iter().map(|b| u32::from(b.valid_bytes)).sum();
/// assert_eq!(bytes, 100);
/// assert!(out.last().unwrap().eop);
/// ```
#[derive(Debug, Clone)]
pub struct WidthConverter {
    in_bytes: u32,
    out_bytes: u32,
    /// Bytes accumulated toward the next output beat.
    acc_bytes: u32,
    next_is_sop: bool,
    ready: VecDeque<StreamBeat>,
    total_in: u64,
    total_out: u64,
}

impl WidthConverter {
    /// Creates a converter between two interface widths (bits).
    ///
    /// # Panics
    ///
    /// Panics if either width is not a positive multiple of 8.
    pub fn new(in_bits: u32, out_bits: u32) -> Self {
        assert!(
            in_bits >= 8 && in_bits.is_multiple_of(8),
            "bad input width {in_bits}"
        );
        assert!(
            out_bits >= 8 && out_bits.is_multiple_of(8),
            "bad output width {out_bits}"
        );
        WidthConverter {
            in_bytes: in_bits / 8,
            out_bytes: out_bits / 8,
            acc_bytes: 0,
            next_is_sop: true,
            ready: VecDeque::new(),
            total_in: 0,
            total_out: 0,
        }
    }

    /// Feeds one input beat.
    ///
    /// # Panics
    ///
    /// Panics if the beat claims more valid bytes than the input width.
    pub fn push(&mut self, beat: StreamBeat) {
        assert!(
            u32::from(beat.valid_bytes) <= self.in_bytes,
            "beat of {} B on a {} B interface",
            beat.valid_bytes,
            self.in_bytes
        );
        self.total_in += u64::from(beat.valid_bytes);
        self.acc_bytes += u32::from(beat.valid_bytes);
        // Emit complete output beats greedily; the final (possibly partial)
        // beat flushes on end-of-packet.
        while self.acc_bytes > self.out_bytes || (self.acc_bytes == self.out_bytes && !beat.eop) {
            self.emit(self.out_bytes, false);
        }
        if beat.eop && self.acc_bytes > 0 {
            self.emit(self.acc_bytes, true);
        }
    }

    fn emit(&mut self, bytes: u32, eop: bool) {
        let mut out = StreamBeat::body(bytes as u16);
        if self.next_is_sop {
            out = out.with_sop();
            self.next_is_sop = false;
        }
        if eop {
            out = out.with_eop();
            self.next_is_sop = true;
        }
        self.acc_bytes -= bytes;
        self.total_out += u64::from(bytes);
        self.ready.push_back(out);
    }

    /// Takes all output beats produced so far.
    pub fn drain(&mut self) -> Vec<StreamBeat> {
        self.ready.drain(..).collect()
    }

    /// Pops one output beat.
    pub fn pop(&mut self) -> Option<StreamBeat> {
        self.ready.pop_front()
    }

    /// Total input bytes accepted.
    pub fn total_in_bytes(&self) -> u64 {
        self.total_in
    }

    /// Total output bytes emitted.
    pub fn total_out_bytes(&self) -> u64 {
        self.total_out
    }

    /// The fixed pipeline depth of the translation logic in cycles: one
    /// stage to register the input, one to shift/merge, one to drive the
    /// output, plus one more when the widths actually differ.
    pub fn latency_cycles(&self) -> u64 {
        if self.in_bytes == self.out_bytes {
            3
        } else {
            4
        }
    }
}

/// A lightweight interface wrapper around one vendor IP.
#[derive(Debug)]
pub struct InterfaceWrapper {
    instance: String,
    kind: IpKind,
    native_width_bits: u32,
    unified_width_bits: u32,
    core_period_ps: Picos,
    ports: Vec<UnifiedPort>,
    /// FIFO buffering the IP's output data plus sideband signals (§3.2).
    sideband_fifo: SyncFifo<u64>,
}

impl InterfaceWrapper {
    /// Default depth of the output/sideband FIFO.
    pub const FIFO_DEPTH: usize = 32;

    /// Wraps a vendor IP, exposing unified ports at `unified_width_bits`.
    pub fn wrap(ip: &dyn VendorIp, unified_width_bits: u32) -> Self {
        let mut ports = vec![
            UnifiedPort::new("clk", UnifiedPortKind::Clock),
            UnifiedPort::new("rst", UnifiedPortKind::Reset),
            UnifiedPort::new("ctrl", UnifiedPortKind::Reg),
        ];
        match ip.kind() {
            IpKind::Mac => {
                ports.push(UnifiedPort::new(
                    "rx",
                    UnifiedPortKind::Stream {
                        width_bits: unified_width_bits,
                    },
                ));
                ports.push(UnifiedPort::new(
                    "tx",
                    UnifiedPortKind::Stream {
                        width_bits: unified_width_bits,
                    },
                ));
            }
            IpKind::Dma | IpKind::Pcie | IpKind::Tlp => {
                ports.push(UnifiedPort::new(
                    "h2c",
                    UnifiedPortKind::Stream {
                        width_bits: unified_width_bits,
                    },
                ));
                ports.push(UnifiedPort::new(
                    "c2h",
                    UnifiedPortKind::Stream {
                        width_bits: unified_width_bits,
                    },
                ));
                ports.push(UnifiedPort::new(
                    "mm",
                    UnifiedPortKind::MemMap {
                        width_bits: unified_width_bits,
                        addr_bits: 64,
                    },
                ));
                ports.push(UnifiedPort::new("msi", UnifiedPortKind::Irq));
            }
            IpKind::Ddr | IpKind::Hbm => {
                ports.push(UnifiedPort::new(
                    "mem",
                    UnifiedPortKind::MemMap {
                        width_bits: unified_width_bits,
                        addr_bits: 34,
                    },
                ));
                ports.push(UnifiedPort::new("ecc_irq", UnifiedPortKind::Irq));
            }
        }
        InterfaceWrapper {
            instance: ip.instance_name(),
            kind: ip.kind(),
            native_width_bits: ip.data_width_bits(),
            unified_width_bits,
            core_period_ps: ip.core_clock().period_ps(),
            ports,
            sideband_fifo: SyncFifo::new(Self::FIFO_DEPTH),
        }
    }

    /// The wrapped IP's instance name.
    pub fn instance(&self) -> &str {
        &self.instance
    }

    /// The wrapped IP's kind.
    pub fn kind(&self) -> IpKind {
        self.kind
    }

    /// The unified ports the wrapper exposes upward.
    pub fn ports(&self) -> &[UnifiedPort] {
        &self.ports
    }

    /// Mutable access to the output/sideband FIFO.
    pub fn sideband_fifo_mut(&mut self) -> &mut SyncFifo<u64> {
        &mut self.sideband_fifo
    }

    /// The translation pipeline depth in cycles.
    pub fn latency_cycles(&self) -> u64 {
        WidthConverter::new(self.native_width_bits, self.unified_width_bits).latency_cycles()
    }

    /// The fixed latency the wrapper adds to the datapath, in picoseconds —
    /// "a few fixed clock cycles" at the IP's core clock.
    pub fn added_latency_ps(&self) -> Picos {
        self.latency_cycles() * self.core_period_ps
    }

    /// Throughput after wrapping, given the native throughput: identical,
    /// because the translation logic is fully pipelined (one beat per cycle
    /// in, one beat per cycle out — verified by the tests below).
    pub fn wrapped_throughput(&self, native: f64) -> f64 {
        native
    }

    /// Resource overhead of the wrapper: registers for the pipeline stages,
    /// LUTs for the shift/merge network, a BRAM or two for the output FIFO.
    /// Scales with the wider of the two interfaces.
    pub fn resources(&self) -> ResourceUsage {
        let w = u64::from(self.native_width_bits.max(self.unified_width_bits));
        let data_ports = self
            .ports
            .iter()
            .filter(|p| p.kind.is_data())
            .count()
            .max(1) as u64;
        ResourceUsage::new(
            (120 + w / 2) * data_ports,
            (260 + w) * data_ports,
            data_ports,
            0,
            0,
        )
    }

    /// Creates the width converter for this wrapper's datapath.
    pub fn converter(&self) -> WidthConverter {
        WidthConverter::new(self.native_width_bits, self.unified_width_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ip::{DdrIp, HbmIp, MacIp, PcieDmaIp};
    use harmonia_hw::Vendor;
    use harmonia_sim::stream::packet_to_beats;
    use harmonia_sim::Pipeline;

    #[test]
    fn width_converter_preserves_bytes() {
        for (inw, outw) in [(512, 128), (128, 512), (512, 512), (2048, 512)] {
            let mut conv = WidthConverter::new(inw, outw);
            for pkt in [64u32, 65, 100, 1500, 9000] {
                for beat in packet_to_beats(pkt, inw) {
                    conv.push(beat);
                }
            }
            assert_eq!(conv.total_in_bytes(), conv.total_out_bytes());
            let out = conv.drain();
            let bytes: u64 = out.iter().map(|b| u64::from(b.valid_bytes)).sum();
            assert_eq!(bytes, 64 + 65 + 100 + 1500 + 9000);
        }
    }

    #[test]
    fn width_converter_marks_packet_boundaries() {
        let mut conv = WidthConverter::new(512, 128);
        for beat in packet_to_beats(200, 512) {
            conv.push(beat);
        }
        let out = conv.drain();
        // 200 B at 16 B/beat = 13 beats, last partial (8 B).
        assert_eq!(out.len(), 13);
        assert!(out[0].sop);
        assert!(out[12].eop);
        assert_eq!(out[12].valid_bytes, 8);
        assert!(out[1..12].iter().all(|b| !b.sop && !b.eop));
    }

    #[test]
    fn downsize_upsize_round_trip() {
        let mut down = WidthConverter::new(512, 128);
        let mut up = WidthConverter::new(128, 512);
        for beat in packet_to_beats(1000, 512) {
            down.push(beat);
        }
        for beat in down.drain() {
            up.push(beat);
        }
        let out = up.drain();
        let bytes: u64 = out.iter().map(|b| u64::from(b.valid_bytes)).sum();
        assert_eq!(bytes, 1000);
        assert!(out.last().unwrap().eop);
    }

    #[test]
    fn no_bubbles_at_full_rate() {
        // One 512-bit beat per cycle in must sustain four 128-bit beats per
        // cycle-quarter out: over N cycles, output beats == 4 × input beats.
        let mut conv = WidthConverter::new(512, 128);
        let mut out_beats = 0u64;
        for _ in 0..1000 {
            conv.push(StreamBeat::body(64)); // full mid-packet beats
            out_beats += conv.drain().len() as u64;
        }
        assert_eq!(out_beats, 4 * 1000);
    }

    #[test]
    fn converter_latency_is_a_few_fixed_cycles() {
        assert_eq!(WidthConverter::new(512, 512).latency_cycles(), 3);
        assert_eq!(WidthConverter::new(512, 128).latency_cycles(), 4);
    }

    #[test]
    fn wrapper_pipeline_full_rate_through_fixed_latency() {
        // Compose the converter with the fixed-latency pipeline the wrapper
        // models and confirm the combination is still bubble-free.
        let mac = MacIp::new(Vendor::Xilinx, 100);
        let wrapper = InterfaceWrapper::wrap(&mac, 512);
        let mut pipe: Pipeline<StreamBeat> = Pipeline::new(wrapper.latency_cycles());
        let mut delivered = 0u64;
        for c in 0..10_000u64 {
            pipe.push(c, StreamBeat::body(64)).unwrap();
            while pipe.pop(c).is_some() {
                delivered += 1;
            }
        }
        let lat = wrapper.latency_cycles();
        for c in 10_000..10_000 + lat {
            while pipe.pop(c).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 10_000);
    }

    #[test]
    fn wrapped_throughput_unchanged() {
        let mac = MacIp::new(Vendor::Intel, 100);
        let wrapper = InterfaceWrapper::wrap(&mac, 512);
        let native = mac.throughput_gbps(256);
        assert_eq!(wrapper.wrapped_throughput(native), native);
    }

    #[test]
    fn added_latency_is_nanoseconds() {
        let mac = MacIp::new(Vendor::Xilinx, 100);
        let wrapper = InterfaceWrapper::wrap(&mac, 512);
        let ns = wrapper.added_latency_ps() as f64 / 1e3;
        assert!(ns < 20.0, "wrapper latency {ns:.1} ns is not 'a few cycles'");
        assert!(ns > 1.0);
    }

    #[test]
    fn wrapper_overhead_below_fig16_bound() {
        let dev = catalog::device_a();
        let cap = dev.capacity();
        let ips: Vec<Box<dyn VendorIp>> = vec![
            Box::new(MacIp::new(Vendor::Xilinx, 100)),
            Box::new(PcieDmaIp::new(Vendor::Xilinx, 4, 8)),
            Box::new(DdrIp::new(Vendor::Xilinx, 4)),
            Box::new(HbmIp::new(Vendor::Xilinx)),
        ];
        for ip in &ips {
            let w = InterfaceWrapper::wrap(ip.as_ref(), 512);
            let pct = w.resources().max_percent_of(cap);
            assert!(
                pct < 0.37,
                "{} wrapper uses {pct:.3}% — over the paper's 0.37% bound",
                ip.instance_name()
            );
        }
    }

    #[test]
    fn ports_by_ip_kind() {
        let mac_w = InterfaceWrapper::wrap(&MacIp::new(Vendor::Xilinx, 100), 512);
        assert!(mac_w.ports().iter().any(|p| p.name == "rx"));
        let dma_w = InterfaceWrapper::wrap(&PcieDmaIp::new(Vendor::Intel, 4, 16), 512);
        assert!(dma_w
            .ports()
            .iter()
            .any(|p| p.kind == UnifiedPortKind::Irq));
        let ddr_w = InterfaceWrapper::wrap(&DdrIp::new(Vendor::Intel, 4), 512);
        assert!(ddr_w
            .ports()
            .iter()
            .any(|p| matches!(p.kind, UnifiedPortKind::MemMap { .. })));
    }

    #[test]
    fn unified_ports_identical_across_vendors() {
        // The portability claim, checked structurally: wrapping the Xilinx
        // and Intel MACs yields byte-identical unified port lists.
        let x = InterfaceWrapper::wrap(&MacIp::new(Vendor::Xilinx, 100), 512);
        let i = InterfaceWrapper::wrap(&MacIp::new(Vendor::Intel, 100), 512);
        assert_eq!(x.ports(), i.ports());
    }

    #[test]
    #[should_panic(expected = "bad input width")]
    fn non_byte_width_rejected() {
        let _ = WidthConverter::new(100, 128);
    }

    #[test]
    #[should_panic(expected = "on a")]
    fn oversized_beat_rejected() {
        let mut conv = WidthConverter::new(128, 512);
        conv.push(StreamBeat::body(64));
    }
}
