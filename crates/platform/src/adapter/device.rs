//! Device adapters: hardware-resource configuration management.
//!
//! §3.2 separates resource configurations into a **static group** — "all
//! the inherent resource properties of FPGA chips and peripherals (e.g.,
//! channel numbers, virtual functions, etc.), which only need to be
//! configured once and reused anywhere" — and a **dynamic group» of
//! "mapping constraints between the logic and the device, such as I/O pins
//! and clock mappings configured on-demand".

use harmonia_hw::device::{FpgaDevice, Peripheral};
use harmonia_sim::Freq;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The static resource group: inherent, configure-once properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticResourceConfig {
    /// Network channel count (QSFP/DSFP cages).
    pub network_channels: u32,
    /// DDR channel count.
    pub ddr_channels: u32,
    /// HBM pseudo-channel count (0 without HBM).
    pub hbm_channels: u32,
    /// PCIe virtual functions.
    pub virtual_functions: u16,
    /// PCIe generation and lanes, if a host link exists.
    pub pcie: Option<(u8, u8)>,
    /// Board reference clocks, indexable by the dynamic group.
    pub clock_inventory: Vec<Freq>,
    /// User I/O pins available.
    pub io_pins: u32,
}

impl StaticResourceConfig {
    /// Derives the static group from a device description — the automated
    /// part the production flow scripts out of board files.
    pub fn generate(device: &FpgaDevice) -> Self {
        let mut network_channels = 0;
        let mut ddr_channels = 0;
        let mut hbm_channels = 0;
        for p in device.peripherals() {
            match p {
                Peripheral::Qsfp { .. } | Peripheral::Dsfp { .. } => network_channels += 1,
                Peripheral::Ddr { .. } => ddr_channels += 1,
                Peripheral::Hbm { .. } => hbm_channels += 32,
                Peripheral::Pcie { .. } => {}
            }
        }
        StaticResourceConfig {
            network_channels,
            ddr_channels,
            hbm_channels,
            virtual_functions: device.virtual_functions(),
            pcie: device.pcie(),
            clock_inventory: device.clock_sources().to_vec(),
            io_pins: device.io_pins(),
        }
    }
}

/// Errors produced when validating the dynamic group against the device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// A logical pin was mapped to a physical pin the device lacks.
    PinOutOfRange {
        /// Logical signal name.
        logical: String,
        /// Requested physical pin.
        pin: u32,
        /// Number of pins the device has.
        available: u32,
    },
    /// Two logical signals were mapped to the same physical pin.
    PinConflict {
        /// First signal.
        a: String,
        /// Second signal.
        b: String,
        /// The contested pin.
        pin: u32,
    },
    /// A clock mapping referenced a non-existent clock-inventory index.
    ClockOutOfRange {
        /// Consumer name.
        consumer: String,
        /// Requested inventory index.
        index: usize,
        /// Inventory size.
        available: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::PinOutOfRange {
                logical,
                pin,
                available,
            } => write!(
                f,
                "signal '{logical}' mapped to pin {pin}, device has {available} pins"
            ),
            MappingError::PinConflict { a, b, pin } => {
                write!(f, "signals '{a}' and '{b}' both mapped to pin {pin}")
            }
            MappingError::ClockOutOfRange {
                consumer,
                index,
                available,
            } => write!(
                f,
                "consumer '{consumer}' references clock {index}, inventory has {available}"
            ),
        }
    }
}

impl Error for MappingError {}

/// The dynamic resource group: on-demand logic↔device mapping constraints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicMapping {
    pins: BTreeMap<String, u32>,
    clocks: BTreeMap<String, usize>,
}

impl DynamicMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a logical signal to a physical pin.
    pub fn map_pin(&mut self, logical: impl Into<String>, pin: u32) -> &mut Self {
        self.pins.insert(logical.into(), pin);
        self
    }

    /// Maps a clock consumer to a clock-inventory index.
    pub fn map_clock(&mut self, consumer: impl Into<String>, index: usize) -> &mut Self {
        self.clocks.insert(consumer.into(), index);
        self
    }

    /// Number of pin mappings.
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// Number of clock mappings.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }
}

/// A device adapter: the static group generated from the device plus the
/// user-supplied dynamic group, with rigid validation.
#[derive(Clone, Debug)]
pub struct DeviceAdapter {
    device_name: String,
    static_cfg: StaticResourceConfig,
    dynamic: DynamicMapping,
}

impl DeviceAdapter {
    /// Generates an adapter for a device with an empty dynamic group.
    pub fn generate(device: &FpgaDevice) -> Self {
        DeviceAdapter {
            device_name: device.name().to_string(),
            static_cfg: StaticResourceConfig::generate(device),
            dynamic: DynamicMapping::new(),
        }
    }

    /// The adapted device's name.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// The static resource group.
    pub fn static_config(&self) -> &StaticResourceConfig {
        &self.static_cfg
    }

    /// The dynamic mapping group.
    pub fn dynamic(&self) -> &DynamicMapping {
        &self.dynamic
    }

    /// Mutable access to the dynamic group for on-demand configuration.
    pub fn dynamic_mut(&mut self) -> &mut DynamicMapping {
        &mut self.dynamic
    }

    /// Resolves a consumer's clock, if mapped.
    pub fn clock_for(&self, consumer: &str) -> Option<Freq> {
        let idx = *self.dynamic.clocks.get(consumer)?;
        self.static_cfg.clock_inventory.get(idx).copied()
    }

    /// Validates the dynamic group against the static group: pins in
    /// range and conflict-free, clock indices valid.
    ///
    /// # Errors
    ///
    /// Returns every violation found (not just the first), so deployment
    /// tooling can report them all at once.
    pub fn validate(&self) -> Result<(), Vec<MappingError>> {
        let mut errors = Vec::new();
        let mut seen: BTreeMap<u32, &str> = BTreeMap::new();
        for (logical, &pin) in &self.dynamic.pins {
            if pin >= self.static_cfg.io_pins {
                errors.push(MappingError::PinOutOfRange {
                    logical: logical.clone(),
                    pin,
                    available: self.static_cfg.io_pins,
                });
            }
            if let Some(prev) = seen.insert(pin, logical) {
                errors.push(MappingError::PinConflict {
                    a: prev.to_string(),
                    b: logical.clone(),
                    pin,
                });
            }
        }
        for (consumer, &index) in &self.dynamic.clocks {
            if index >= self.static_cfg.clock_inventory.len() {
                errors.push(MappingError::ClockOutOfRange {
                    consumer: consumer.clone(),
                    index,
                    available: self.static_cfg.clock_inventory.len(),
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;

    #[test]
    fn static_group_generated_from_table2_devices() {
        let a = DeviceAdapter::generate(&catalog::device_a());
        let s = a.static_config();
        assert_eq!(s.network_channels, 2);
        assert_eq!(s.ddr_channels, 1);
        assert_eq!(s.hbm_channels, 32);
        assert_eq!(s.pcie, Some((4, 8)));

        let c = DeviceAdapter::generate(&catalog::device_c());
        assert_eq!(c.static_config().ddr_channels, 0);
        assert_eq!(c.static_config().hbm_channels, 0);
    }

    #[test]
    fn valid_dynamic_mapping_passes() {
        let mut ad = DeviceAdapter::generate(&catalog::device_a());
        ad.dynamic_mut()
            .map_pin("qsfp0_refclk_p", 10)
            .map_pin("qsfp0_refclk_n", 11)
            .map_clock("mac0", 1);
        assert!(ad.validate().is_ok());
        assert_eq!(ad.clock_for("mac0"), Some(Freq::khz(322_265)));
        assert_eq!(ad.clock_for("unmapped"), None);
    }

    #[test]
    fn pin_out_of_range_detected() {
        let mut ad = DeviceAdapter::generate(&catalog::device_a());
        ad.dynamic_mut().map_pin("x", 99_999);
        let errs = ad.validate().unwrap_err();
        assert!(matches!(errs[0], MappingError::PinOutOfRange { .. }));
    }

    #[test]
    fn pin_conflicts_detected() {
        let mut ad = DeviceAdapter::generate(&catalog::device_b());
        ad.dynamic_mut().map_pin("a", 5).map_pin("b", 5);
        let errs = ad.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, MappingError::PinConflict { pin: 5, .. })));
    }

    #[test]
    fn clock_index_validated() {
        let mut ad = DeviceAdapter::generate(&catalog::device_d());
        ad.dynamic_mut().map_clock("dma", 17);
        let errs = ad.validate().unwrap_err();
        assert!(matches!(errs[0], MappingError::ClockOutOfRange { .. }));
    }

    #[test]
    fn all_errors_reported_together() {
        let mut ad = DeviceAdapter::generate(&catalog::device_a());
        ad.dynamic_mut()
            .map_pin("a", 99_999)
            .map_pin("b", 3)
            .map_pin("c", 3)
            .map_clock("m", 42);
        let errs = ad.validate().unwrap_err();
        assert_eq!(errs.len(), 3);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = MappingError::PinConflict {
            a: "x".into(),
            b: "y".into(),
            pin: 7,
        };
        assert!(e.to_string().contains("pin 7"));
    }
}
