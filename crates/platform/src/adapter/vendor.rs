//! Vendor adapters: deployment-dependency management.
//!
//! §3.2: "Harmonia incorporates the built-in handler to structure the
//! vendor dependencies of each module as a series of key-value pairs and
//! performs rigid inspections to ensure compatibility during deployment.
//! The key defines vendor-specific attributes such as CAD tools, IP
//! catalogs, etc. The values are specified with independent version numbers
//! to simplify dependency checks."

use harmonia_hw::Vendor;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A semantic-ish version `major.minor.patch`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version {
    /// Major component; must match exactly in dependency checks.
    pub major: u32,
    /// Minor component; the environment must provide at least this.
    pub minor: u32,
    /// Patch component; informational.
    pub patch: u32,
}

impl Version {
    /// Creates a version.
    pub fn new(major: u32, minor: u32, patch: u32) -> Self {
        Version {
            major,
            minor,
            patch,
        }
    }

    /// Whether an environment providing `self` satisfies a module that
    /// requires `required`: same major, minor at least as new.
    pub fn satisfies(&self, required: &Version) -> bool {
        self.major == required.major && (self.minor, self.patch) >= (required.minor, required.patch)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// Error parsing a version string.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParseVersionError;

impl fmt::Display for ParseVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("version must look like MAJOR.MINOR[.PATCH]")
    }
}

impl Error for ParseVersionError {}

impl FromStr for Version {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let major = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(ParseVersionError)?;
        let minor = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(ParseVersionError)?;
        let patch = match parts.next() {
            None => 0,
            Some(p) => p.parse().map_err(|_| ParseVersionError)?,
        };
        if parts.next().is_some() {
            return Err(ParseVersionError);
        }
        Ok(Version::new(major, minor, patch))
    }
}

/// A deployment environment: the tool/IP versions actually installed.
pub type DependencyEnv = BTreeMap<String, Version>;

/// The dependency declaration of one module: key → required version.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleDeps {
    module: String,
    requires: BTreeMap<String, Version>,
}

impl ModuleDeps {
    /// Creates an empty declaration for the named module.
    pub fn new(module: impl Into<String>) -> Self {
        ModuleDeps {
            module: module.into(),
            requires: BTreeMap::new(),
        }
    }

    /// Adds a requirement.
    pub fn require(mut self, key: impl Into<String>, version: Version) -> Self {
        self.requires.insert(key.into(), version);
        self
    }

    /// The module name.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// Iterates requirements.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Version)> + '_ {
        self.requires.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A compatibility violation found during rigid inspection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompatError {
    /// A required key is absent from the environment.
    Missing {
        /// Requiring module.
        module: String,
        /// Absent dependency key.
        key: String,
        /// Version the module wanted.
        required: Version,
    },
    /// The environment's version does not satisfy the requirement.
    VersionMismatch {
        /// Requiring module.
        module: String,
        /// Dependency key.
        key: String,
        /// Version the module wanted.
        required: Version,
        /// Version the environment provides.
        provided: Version,
    },
}

impl fmt::Display for CompatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatError::Missing {
                module,
                key,
                required,
            } => write!(f, "{module}: dependency '{key}' {required} not installed"),
            CompatError::VersionMismatch {
                module,
                key,
                required,
                provided,
            } => write!(
                f,
                "{module}: '{key}' requires {required}, environment has {provided}"
            ),
        }
    }
}

impl Error for CompatError {}

/// A vendor adapter: the key-value dependency store for one vendor's
/// deployment flow, plus the rigid inspection.
#[derive(Clone, Debug)]
pub struct VendorAdapter {
    vendor: Vendor,
    provides: DependencyEnv,
}

impl VendorAdapter {
    /// Generates the default adapter for a vendor: CAD tool, IP catalog and
    /// packaging-format entries with the versions the production flow pins.
    pub fn generate(vendor: Vendor) -> Self {
        let mut provides = DependencyEnv::new();
        match vendor {
            Vendor::Xilinx | Vendor::InHouse => {
                provides.insert("vivado".into(), Version::new(2023, 2, 0));
                provides.insert("ip-catalog".into(), Version::new(4, 1, 0));
                provides.insert("ip-xact".into(), Version::new(1, 685, 0));
                provides.insert("board-files".into(), Version::new(1, 3, 0));
            }
            Vendor::Intel => {
                provides.insert("quartus".into(), Version::new(23, 4, 0));
                provides.insert("ip-catalog".into(), Version::new(23, 4, 0));
                provides.insert("qsys".into(), Version::new(23, 4, 0));
                provides.insert("board-files".into(), Version::new(2, 0, 0));
            }
        }
        VendorAdapter { vendor, provides }
    }

    /// The adapter's vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// Adds or overrides a provided dependency (e.g. a tool upgrade).
    pub fn provide(&mut self, key: impl Into<String>, version: Version) -> &mut Self {
        self.provides.insert(key.into(), version);
        self
    }

    /// The provided environment.
    pub fn environment(&self) -> &DependencyEnv {
        &self.provides
    }

    /// Rigidly inspects a set of module dependency declarations against
    /// this adapter's environment (§3.2's "rigid inspections to ensure
    /// compatibility during deployment").
    ///
    /// # Errors
    ///
    /// Returns every violation across all modules.
    pub fn inspect(&self, modules: &[ModuleDeps]) -> Result<(), Vec<CompatError>> {
        let mut errors = Vec::new();
        for m in modules {
            for (key, required) in m.iter() {
                match self.provides.get(key) {
                    None => errors.push(CompatError::Missing {
                        module: m.module().to_string(),
                        key: key.to_string(),
                        required: *required,
                    }),
                    Some(provided) if !provided.satisfies(required) => {
                        errors.push(CompatError::VersionMismatch {
                            module: m.module().to_string(),
                            key: key.to_string(),
                            required: *required,
                            provided: *provided,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_parse_and_display() {
        let v: Version = "2023.2.1".parse().unwrap();
        assert_eq!(v, Version::new(2023, 2, 1));
        assert_eq!(v.to_string(), "2023.2.1");
        assert_eq!("23.4".parse::<Version>().unwrap(), Version::new(23, 4, 0));
        assert!("nope".parse::<Version>().is_err());
        assert!("1.2.3.4".parse::<Version>().is_err());
    }

    #[test]
    fn satisfaction_rules() {
        let env = Version::new(2023, 2, 0);
        assert!(env.satisfies(&Version::new(2023, 1, 0)));
        assert!(env.satisfies(&Version::new(2023, 2, 0)));
        assert!(!env.satisfies(&Version::new(2023, 3, 0)));
        assert!(!env.satisfies(&Version::new(2022, 0, 0))); // major must match
    }

    #[test]
    fn compatible_module_passes_inspection() {
        let adapter = VendorAdapter::generate(Vendor::Xilinx);
        let deps = ModuleDeps::new("qdma")
            .require("vivado", Version::new(2023, 1, 0))
            .require("ip-catalog", Version::new(4, 0, 0));
        assert!(adapter.inspect(&[deps]).is_ok());
    }

    #[test]
    fn missing_dependency_detected() {
        let adapter = VendorAdapter::generate(Vendor::Intel);
        // A Xilinx-packaged module deployed into a Quartus environment —
        // the §3.2 example of a compatibility issue caught by inspection.
        let deps = ModuleDeps::new("xilinx-dma").require("vivado", Version::new(2023, 2, 0));
        let errs = adapter.inspect(&[deps]).unwrap_err();
        assert!(matches!(errs[0], CompatError::Missing { .. }));
        assert!(errs[0].to_string().contains("vivado"));
    }

    #[test]
    fn version_mismatch_detected() {
        let adapter = VendorAdapter::generate(Vendor::Xilinx);
        let deps = ModuleDeps::new("new-ip").require("vivado", Version::new(2024, 1, 0));
        let errs = adapter.inspect(&[deps]).unwrap_err();
        assert!(matches!(errs[0], CompatError::VersionMismatch { .. }));
    }

    #[test]
    fn tool_upgrade_fixes_mismatch() {
        let mut adapter = VendorAdapter::generate(Vendor::Xilinx);
        let deps = [ModuleDeps::new("new-ip").require("vivado", Version::new(2024, 1, 0))];
        assert!(adapter.inspect(&deps).is_err());
        adapter.provide("vivado", Version::new(2024, 1, 0));
        assert!(adapter.inspect(&deps).is_ok());
    }

    #[test]
    fn all_violations_reported() {
        let adapter = VendorAdapter::generate(Vendor::Intel);
        let deps = [
            ModuleDeps::new("a").require("vivado", Version::new(2023, 2, 0)),
            ModuleDeps::new("b").require("quartus", Version::new(24, 1, 0)),
        ];
        let errs = adapter.inspect(&deps).unwrap_err();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn vendor_environments_differ() {
        let x = VendorAdapter::generate(Vendor::Xilinx);
        let i = VendorAdapter::generate(Vendor::Intel);
        assert!(x.environment().contains_key("vivado"));
        assert!(!i.environment().contains_key("vivado"));
        assert!(i.environment().contains_key("quartus"));
    }
}
