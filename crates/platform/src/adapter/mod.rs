//! Automated platform adapters (§3.2).
//!
//! Platform differences split by dependency: resource differences related
//! to FPGA *devices* are handled by [`device::DeviceAdapter`], deployment
//! differences related to *vendors* by [`vendor::VendorAdapter`]. Both are
//! "generated using vendor-provided tcl and ruby scripts" in production —
//! modelled here as `generate` constructors that derive the adapter
//! contents from the device/vendor descriptions automatically.

pub mod device;
pub mod vendor;
