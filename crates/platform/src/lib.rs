//! Harmonia's platform-specific layer (§3.2).
//!
//! This layer "acts as a unifying bridge, ensuring seamless migration of
//! upper layers across heterogeneous FPGA platforms". It has two halves:
//!
//! * **Automated platform adapters** ([`adapter`]) — a [`DeviceAdapter`]
//!   managing hardware-resource configurations (a *static* group of
//!   inherent chip/peripheral properties configured once, and a *dynamic*
//!   group of logic↔device mapping constraints like I/O pins and clock
//!   assignments), and a [`VendorAdapter`] structuring vendor deployment
//!   dependencies (CAD tools, IP catalogs, packaging formats) as key-value
//!   pairs with rigid version inspection;
//! * **Lightweight interface wrappers** ([`wrapper`]) — converting
//!   vendor-native interfaces (AXI4, Avalon) into the six unified types
//!   (`clock`, `reset`, `stream`, `mem map`, `reg`, `irq`) with fully
//!   pipelined width conversion that adds a few fixed cycles of latency and
//!   no throughput bubbles.

pub mod adapter;
pub mod unified;
pub mod wrapper;

pub use adapter::device::{DeviceAdapter, DynamicMapping, MappingError, StaticResourceConfig};
pub use adapter::vendor::{CompatError, DependencyEnv, ModuleDeps, VendorAdapter, Version};
pub use unified::{UnifiedPort, UnifiedPortKind};
pub use wrapper::{InterfaceWrapper, WidthConverter};
