//! Property-based tests for the platform-specific layer.

use harmonia_platform::adapter::vendor::Version;
use harmonia_platform::WidthConverter;
use harmonia_sim::stream::packet_to_beats;
use harmonia_testkit::prelude::*;

fn arb_width() -> impl Strategy<Value = u32> {
    prop_oneof![Just(64u32), Just(128), Just(256), Just(512), Just(1024), Just(2048)]
}

forall! {
    /// The width converter conserves bytes and packet boundaries for any
    /// packet mix and any width pair.
    #[test]
    fn converter_conserves_bytes_and_boundaries(
        inw in arb_width(),
        outw in arb_width(),
        pkts in collection::vec(1u32..4000, 1..20),
    ) {
        let mut conv = WidthConverter::new(inw, outw);
        let mut out = Vec::new();
        for &p in &pkts {
            for beat in packet_to_beats(p, inw) {
                conv.push(beat);
            }
            out.extend(conv.drain());
        }
        // Byte conservation.
        let total: u64 = out.iter().map(|b| u64::from(b.valid_bytes)).sum();
        prop_assert_eq!(total, pkts.iter().map(|&p| u64::from(p)).sum::<u64>());
        // Boundary conservation: exactly one sop and one eop per packet,
        // alternating correctly.
        prop_assert_eq!(out.iter().filter(|b| b.sop).count(), pkts.len());
        prop_assert_eq!(out.iter().filter(|b| b.eop).count(), pkts.len());
        let mut in_packet = false;
        for b in &out {
            if b.sop {
                prop_assert!(!in_packet, "sop inside a packet");
                in_packet = true;
            }
            prop_assert!(in_packet, "beat outside any packet");
            if b.eop {
                in_packet = false;
            }
        }
        prop_assert!(!in_packet, "unterminated packet");
        // Width respected: every beat carries at most the output width and
        // only the final beat of a packet may be partial.
        for w in out.windows(2) {
            if !w[0].eop {
                prop_assert_eq!(u32::from(w[0].valid_bytes), outw / 8);
            }
        }
    }

    /// Per-packet beat counts match the analytic expectation.
    #[test]
    fn converter_beat_count(outw in arb_width(), pkt in 1u32..9000) {
        let mut conv = WidthConverter::new(2048, outw);
        for beat in packet_to_beats(pkt, 2048) {
            conv.push(beat);
        }
        let out = conv.drain();
        prop_assert_eq!(out.len() as u32, pkt.div_ceil(outw / 8));
    }

    /// Version parsing round-trips through Display.
    #[test]
    fn version_round_trip(major in 0u32..3000, minor in 0u32..1000, patch in 0u32..1000) {
        let v = Version::new(major, minor, patch);
        let parsed: Version = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    /// Version satisfaction is reflexive and antisymmetric w.r.t. ordering
    /// within a major line.
    #[test]
    fn version_satisfaction_partial_order(
        major in 0u32..50,
        a in (0u32..100, 0u32..100),
        b in (0u32..100, 0u32..100),
    ) {
        let va = Version::new(major, a.0, a.1);
        let vb = Version::new(major, b.0, b.1);
        prop_assert!(va.satisfies(&va));
        if va.satisfies(&vb) && vb.satisfies(&va) {
            prop_assert_eq!(va, vb);
        }
        // Exactly one direction (or equality) must hold within a major.
        prop_assert!(va.satisfies(&vb) || vb.satisfies(&va));
        // Never across majors.
        let other = Version::new(major + 1, a.0, a.1);
        prop_assert!(!other.satisfies(&va) || major + 1 == major);
    }
}
