//! Property-based tests for the metrics layer: the LCS modification
//! metric, workload accounting, and the fleet evolution model.

use harmonia_metrics::fleet::FleetModel;
use harmonia_metrics::workload::{shell_role_split, ModuleWorkload, Origin};
use harmonia_metrics::diff::reduction_factor;
use harmonia_metrics::lcs_diff;
use harmonia_testkit::prelude::*;

fn arb_script() -> impl Strategy<Value = Vec<u8>> {
    // A small alphabet makes common subsequences likely, exercising the
    // DP's match path as well as the mismatch path.
    collection::vec(0u8..6, 0..24)
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Handcraft),
        Just(Origin::ScriptGenerated),
        Just(Origin::Reused),
    ]
}

fn arb_workload() -> impl Strategy<Value = ModuleWorkload> {
    collection::vec((0u64..20_000, arb_origin()), 0..12).prop_map(|comps| {
        let mut m = ModuleWorkload::new("arb");
        for (i, (loc, origin)) in comps.into_iter().enumerate() {
            m.add(format!("c{i}"), loc, origin);
        }
        m
    })
}

forall! {
    /// `lcs_diff` is a metric on scripts: zero exactly on identical
    /// inputs, symmetric, and within the trivial bounds.
    #[test]
    fn lcs_diff_is_a_metric(a in arb_script(), b in arb_script()) {
        prop_assert_eq!(lcs_diff(&a, &a), 0);
        let d = lcs_diff(&a, &b);
        prop_assert_eq!(d, lcs_diff(&b, &a));
        let (la, lb) = (a.len(), b.len());
        prop_assert!(d <= la + lb, "diff {d} exceeds total length");
        prop_assert!(d >= la.abs_diff(lb), "diff {d} below length gap");
        // Insertions + deletions always flip parity together with the
        // length difference.
        prop_assert_eq!(d % 2, la.abs_diff(lb) % 2);
    }

    /// The triangle inequality holds: migrating A→C never beats A→B→C.
    #[test]
    fn lcs_diff_triangle_inequality(
        a in arb_script(),
        b in arb_script(),
        c in arb_script(),
    ) {
        prop_assert!(lcs_diff(&a, &c) <= lcs_diff(&a, &b) + lcs_diff(&b, &c));
    }

    /// Appending a shared prefix to both scripts never changes the diff.
    #[test]
    fn lcs_diff_invariant_under_common_prefix(
        prefix in arb_script(),
        a in arb_script(),
        b in arb_script(),
    ) {
        let pa: Vec<u8> = prefix.iter().chain(&a).copied().collect();
        let pb: Vec<u8> = prefix.iter().chain(&b).copied().collect();
        prop_assert_eq!(lcs_diff(&pa, &pb), lcs_diff(&a, &b));
    }

    /// `reduction_factor` is defined exactly when `after > 0` and then
    /// satisfies `factor * after == before`.
    #[test]
    fn reduction_factor_definedness(before in 0usize..100_000, after in 0usize..1_000) {
        match reduction_factor(before, after) {
            None => prop_assert_eq!(after, 0),
            Some(f) => {
                prop_assert!(after > 0);
                prop_assert!((f * after as f64 - before as f64).abs() < 1e-6);
            }
        }
    }

    /// Workload accounting: the three origins partition the total, the
    /// paper's countable basis excludes generated code, and the reuse /
    /// redevelopment fractions are complementary.
    #[test]
    fn workload_accounting_partitions(w in arb_workload()) {
        let by_origin = w.handcraft_loc() + w.reused_loc() + w.generated_loc();
        let total: u64 = w.components().iter().map(|c| c.loc).sum();
        prop_assert_eq!(by_origin, total);
        prop_assert_eq!(w.countable_loc(), w.handcraft_loc() + w.reused_loc());
        let (reuse, redev) = (w.reuse_fraction(), w.redev_fraction());
        prop_assert!((0.0..=1.0).contains(&reuse));
        if w.countable_loc() == 0 {
            prop_assert_eq!(reuse, 0.0);
            prop_assert_eq!(redev, 0.0);
        } else {
            prop_assert!((reuse + redev - 1.0).abs() < 1e-9);
        }
    }

    /// Merging inventories adds every per-origin total.
    #[test]
    fn workload_merge_is_additive(a in arb_workload(), b in arb_workload()) {
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.countable_loc(), a.countable_loc() + b.countable_loc());
        prop_assert_eq!(merged.handcraft_loc(), a.handcraft_loc() + b.handcraft_loc());
        prop_assert_eq!(merged.reused_loc(), a.reused_loc() + b.reused_loc());
        prop_assert_eq!(merged.generated_loc(), a.generated_loc() + b.generated_loc());
    }

    /// The Figure 3a split is a probability pair ordered like the inputs.
    #[test]
    fn shell_role_split_is_normalized(shell in arb_workload(), role in arb_workload()) {
        let (s, r) = shell_role_split(&shell, &role);
        if shell.countable_loc() + role.countable_loc() == 0 {
            prop_assert_eq!((s, r), (0.0, 0.0));
        } else {
            prop_assert!((s + r - 1.0).abs() < 1e-9);
            prop_assert!(s >= 0.0 && r >= 0.0);
            prop_assert_eq!(
                s >= r,
                shell.countable_loc() >= role.countable_loc(),
                "split ordering disagrees with LoC ordering"
            );
        }
    }

    /// Fleet conservation: once the simulation window covers a full
    /// lifecycle, each year's total is exactly the sum of the still-alive
    /// yearly deployments; and new units never exceed the living total.
    #[test]
    fn fleet_totals_are_conserved(
        lifecycle in 1u32..6,
        intros in collection::vec((0u32..8, 1u32..5_000, 1u32..4), 1..8),
    ) {
        let start = 2020;
        let mut model = FleetModel::new(start, lifecycle);
        for &(offset, units, deploy_years) in &intros {
            model.introduce(start + offset, units, deploy_years);
        }
        let years = model.run(start + 12);
        for (i, y) in years.iter().enumerate() {
            prop_assert!(y.new_units <= y.total_units,
                "year {}: deployed {} but only {} alive", y.year, y.new_units, y.total_units);
            prop_assert!(y.live_models as usize <= intros.len());
            let window_start = i.saturating_sub(lifecycle as usize - 1);
            let window_sum: u64 = years[window_start..=i].iter().map(|w| w.new_units).sum();
            prop_assert_eq!(y.total_units, window_sum,
                "year {}: total diverges from alive-window sum", y.year);
        }
        // Every deployment window eventually closes: the final simulated
        // years (start + offsets + deploys + lifecycle all passed) are empty.
        let drained = model.run(start + 40);
        prop_assert_eq!(drained.last().unwrap().total_units, 0);
    }
}
