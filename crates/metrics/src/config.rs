//! Configuration-item inventories.
//!
//! Property-level tailoring (§3.3.2) splits a vendor instance's properties
//! into a shell-oriented part the provider handles and a role-oriented part
//! exposed to the application. Figure 12 compares the item counts before
//! and after: vendors "provide various configurations to cover all
//! scenarios, while applications only need to focus on a subset".

use std::fmt;

/// Who a configuration item concerns after property-level tailoring.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConfigClass {
    /// Handled inside the shell by the platform provider (clocking,
    /// calibration, physical constraints, …).
    ShellOriented,
    /// Exposed to the role (occupied channels, desired queues, …).
    RoleOriented,
}

/// A named inventory of configuration items with their tailoring class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigInventory {
    name: String,
    items: Vec<(String, ConfigClass)>,
}

impl ConfigInventory {
    /// Creates an empty inventory.
    pub fn new(name: impl Into<String>) -> Self {
        ConfigInventory {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// The inventory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one item.
    pub fn add(&mut self, item: impl Into<String>, class: ConfigClass) -> &mut Self {
        self.items.push((item.into(), class));
        self
    }

    /// Adds many items of one class.
    pub fn add_all<I, S>(&mut self, items: I, class: ConfigClass) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for i in items {
            self.add(i, class);
        }
        self
    }

    /// Total item count — what a role faces *without* tailoring.
    pub fn total(&self) -> usize {
        self.items.len()
    }

    /// Items the role still sees after property-level tailoring.
    pub fn role_oriented(&self) -> usize {
        self.items
            .iter()
            .filter(|(_, c)| *c == ConfigClass::RoleOriented)
            .count()
    }

    /// Items absorbed by the shell.
    pub fn shell_oriented(&self) -> usize {
        self.total() - self.role_oriented()
    }

    /// Configuration-reduction factor (Figure 12's 8.8–19.8×).
    ///
    /// Returns `None` when no role-oriented items exist (a fully absorbed
    /// module has no meaningful ratio).
    pub fn reduction_factor(&self) -> Option<f64> {
        let r = self.role_oriented();
        if r == 0 {
            None
        } else {
            Some(self.total() as f64 / r as f64)
        }
    }

    /// Iterates the items.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ConfigClass)> + '_ {
        self.items.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// Merges another inventory into this one.
    pub fn merge(&mut self, other: &ConfigInventory) {
        self.items.extend(other.items.iter().cloned());
    }
}

impl fmt::Display for ConfigInventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} items ({} role-oriented)",
            self.name,
            self.total(),
            self.role_oriented()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfigInventory {
        let mut inv = ConfigInventory::new("pcie");
        inv.add_all(
            ["lane_polarity", "eq_preset", "refclk_src"],
            ConfigClass::ShellOriented,
        );
        inv.add("num_queues", ConfigClass::RoleOriented);
        inv
    }

    #[test]
    fn counts() {
        let inv = sample();
        assert_eq!(inv.total(), 4);
        assert_eq!(inv.role_oriented(), 1);
        assert_eq!(inv.shell_oriented(), 3);
    }

    #[test]
    fn reduction_factor() {
        assert!((sample().reduction_factor().unwrap() - 4.0).abs() < 1e-9);
        let mut all_shell = ConfigInventory::new("x");
        all_shell.add("a", ConfigClass::ShellOriented);
        assert_eq!(all_shell.reduction_factor(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.total(), 8);
        assert_eq!(a.role_oriented(), 2);
    }

    #[test]
    fn iter_preserves_order() {
        let inv = sample();
        let first = inv.iter().next().unwrap();
        assert_eq!(first, ("lane_polarity", ConfigClass::ShellOriented));
    }

    #[test]
    fn display_mentions_counts() {
        assert!(sample().to_string().contains("4 items"));
    }
}
