//! Accounting models behind the Harmonia evaluation's non-performance
//! figures.
//!
//! * [`workload`] — development-workload accounting: every hardware module
//!   declares its code components (handcraft, script-generated, reused),
//!   and reuse ratios fall out structurally (Figures 3a, 14, 15);
//! * [`config`] — configuration-item inventories and the shell-/role-
//!   oriented split behind property-level tailoring (Figure 12);
//! * [`diff`] — generic LCS-based modification counting between operation
//!   sequences (Figure 13);
//! * [`fleet`] — the cloud fleet evolution model behind Figure 3c;
//! * [`report`] — plain-text table rendering shared by the `fig*`/`table*`
//!   bench binaries.
//!
//! # Example
//!
//! ```
//! use harmonia_metrics::{ModuleWorkload, Origin};
//!
//! let mut m = ModuleWorkload::new("network-rbb");
//! m.add("packet-filter", 1200, Origin::Reused);
//! m.add("instance-glue", 400, Origin::Handcraft);
//! assert!((m.reuse_fraction() - 0.75).abs() < 1e-9);
//! ```

pub mod config;
pub mod diff;
pub mod fleet;
pub mod report;
pub mod workload;

pub use config::{ConfigClass, ConfigInventory};
pub use diff::lcs_diff;
pub use fleet::{FleetModel, FleetSummary, FleetYear};
pub use report::Table;
pub use workload::{CodeComponent, ModuleWorkload, Origin};
