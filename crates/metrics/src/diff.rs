//! Generic modification counting between operation sequences.
//!
//! Figure 13 counts "software modifications" when migrating between
//! devices: each line of a control script that must be added or removed is
//! one modification. [`lcs_diff`] computes that count for any comparable
//! item type via a longest-common-subsequence alignment.

/// Number of insertions plus deletions needed to turn `a` into `b` under an
/// LCS alignment (a replaced line counts as one deletion + one insertion,
/// matching how a code review diff displays it).
///
/// ```
/// use harmonia_metrics::lcs_diff;
/// assert_eq!(lcs_diff(&[1, 2, 3], &[1, 9, 3]), 2);
/// assert_eq!(lcs_diff::<u8>(&[], &[]), 0);
/// ```
pub fn lcs_diff<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return n + m;
    }
    // Two-row LCS DP keeps memory linear in the shorter script.
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            cur[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let lcs = prev[m];
    (n - lcs) + (m - lcs)
}

/// Relative reduction factor between two modification counts; `None` when
/// the denominator is zero.
pub fn reduction_factor(before: usize, after: usize) -> Option<f64> {
    if after == 0 {
        None
    } else {
        Some(before as f64 / after as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_need_no_edits() {
        let s = vec!["a", "b", "c"];
        assert_eq!(lcs_diff(&s, &s), 0);
    }

    #[test]
    fn disjoint_sequences_cost_everything() {
        assert_eq!(lcs_diff(&[1, 2], &[3, 4, 5]), 5);
    }

    #[test]
    fn insertion_only() {
        assert_eq!(lcs_diff(&[1, 3], &[1, 2, 3]), 1);
    }

    #[test]
    fn deletion_only() {
        assert_eq!(lcs_diff(&[1, 2, 3], &[1, 3]), 1);
    }

    #[test]
    fn symmetric() {
        let a = [1, 5, 2, 6, 3];
        let b = [5, 1, 6, 2, 3];
        assert_eq!(lcs_diff(&a, &b), lcs_diff(&b, &a));
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(lcs_diff::<u8>(&[], &[1, 2]), 2);
        assert_eq!(lcs_diff::<u8>(&[1], &[]), 1);
    }

    #[test]
    fn reduction_factor_math() {
        assert_eq!(reduction_factor(100, 4), Some(25.0));
        assert_eq!(reduction_factor(100, 0), None);
    }
}
