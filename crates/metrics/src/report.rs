//! Plain-text table rendering for the bench binaries.
//!
//! Every `fig*`/`table*` binary prints the rows/series the paper reports;
//! this module keeps the formatting consistent and aligned.

use std::fmt;

/// A titled, column-aligned text table.
///
/// ```
/// use harmonia_metrics::Table;
/// let mut t = Table::new("Demo", &["name", "value"]);
/// t.row(["a", "1"]);
/// t.row(["long-name", "2"]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("long-name"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for table cells.
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a percentage cell.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Formats an `N.Nx` multiplier cell.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_to_widest_cell() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["xxxx", "1"]);
        t.row(["y", "22"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        // Header 'a' padded to 4 chars before 'b' column.
        assert!(lines[1].starts_with("a     b"));
        assert!(lines[3].starts_with("xxxx  1"));
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["only-one"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let out = t.to_string();
        assert!(!out.contains('3'));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(12.3456), "12.35%");
        assert_eq!(fmt_x(19.84), "19.8x");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("Empty", &["x"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("Empty"));
    }
}
