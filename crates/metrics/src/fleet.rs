//! Cloud FPGA fleet evolution model (Figure 3c).
//!
//! §2.2 motivates heterogeneity with three facts: servers live ≥4 years,
//! new FPGA devices arrive every 1–2 years, and deployment volume grows.
//! This model derives Figure 3c's two curves — new FPGA devices introduced
//! per year and the total (coexisting) fleet — from those assumptions
//! instead of hard-coding the chart.

use std::fmt;

/// A device model introduced into the fleet.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Introduction {
    year: u32,
    /// Units deployed in each year of this model's deployment window.
    yearly_units: u32,
    /// How many years this model keeps being deployed before a successor
    /// replaces it in new rollouts.
    deploy_years: u32,
}

/// Fleet evolution simulator.
#[derive(Clone, Debug)]
pub struct FleetModel {
    start_year: u32,
    /// Hardware lifecycle: units retire this many years after deployment.
    lifecycle_years: u32,
    introductions: Vec<Introduction>,
}

/// One simulated year of the fleet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FleetYear {
    /// Calendar year.
    pub year: u32,
    /// Distinct new device models introduced this year.
    pub new_models: u32,
    /// Units deployed this year.
    pub new_units: u64,
    /// Units alive at year end (deployed within the lifecycle window).
    pub total_units: u64,
    /// Distinct device models with live units.
    pub live_models: u32,
}

impl FleetModel {
    /// Creates an empty model starting at `start_year` with the given
    /// hardware lifecycle.
    ///
    /// # Panics
    ///
    /// Panics if `lifecycle_years` is zero.
    pub fn new(start_year: u32, lifecycle_years: u32) -> Self {
        assert!(lifecycle_years > 0, "lifecycle must be at least one year");
        FleetModel {
            start_year,
            lifecycle_years,
            introductions: Vec::new(),
        }
    }

    /// Registers a device model introduced in `year`, deployed at
    /// `yearly_units` per year for `deploy_years` years.
    pub fn introduce(&mut self, year: u32, yearly_units: u32, deploy_years: u32) -> &mut Self {
        self.introductions.push(Introduction {
            year,
            yearly_units,
            deploy_years,
        });
        self
    }

    /// The production-like default: growth from 2018 to 2024 with new
    /// models every 1–2 years per acceleration architecture, a 4-year
    /// lifecycle, and unit volumes growing into the tens of thousands —
    /// matching the paper's "tens of thousands of FPGA accelerators".
    pub fn douyin_like() -> Self {
        let mut m = FleetModel::new(2018, 4);
        // (intro year, units/yr, deploy years) per architecture generation.
        m.introduce(2018, 800, 2) // first SmartNIC generation
            .introduce(2019, 1_200, 2) // sec-gateway boards
            .introduce(2020, 2_000, 2) // 100G SmartNIC gen2
            .introduce(2020, 1_000, 2) // retrieval (HBM) boards
            .introduce(2021, 2_500, 2) // in-house VU9P boards
            .introduce(2021, 1_500, 2) // storage offload boards
            .introduce(2022, 3_500, 2) // Agilex in-house gen
            .introduce(2022, 2_000, 2) // Intel commercial cards
            .introduce(2023, 4_500, 2) // 200G boards
            .introduce(2023, 2_500, 2) // compute cards
            .introduce(2024, 6_000, 2) // 400G boards
            .introduce(2024, 3_000, 2); // next-gen retrieval
        m
    }

    /// One simulated year. Pure in `year`, so years can be computed in
    /// any order — or concurrently.
    pub fn year(&self, year: u32) -> FleetYear {
        let new_models = self
            .introductions
            .iter()
            .filter(|i| i.year == year)
            .count() as u32;
        let deployed_in = |y: u32| -> u64 {
            self.introductions
                .iter()
                .filter(|i| y >= i.year && y < i.year + i.deploy_years)
                .map(|i| u64::from(i.yearly_units))
                .sum()
        };
        let new_units = deployed_in(year);
        let oldest_alive = year.saturating_sub(self.lifecycle_years - 1);
        let total_units: u64 = (oldest_alive..=year).map(deployed_in).sum();
        let live_models = self
            .introductions
            .iter()
            .filter(|i| {
                // Any deployment year within the lifecycle window?
                let last_deploy = i.year + i.deploy_years - 1;
                last_deploy >= oldest_alive && i.year <= year
            })
            .count() as u32;
        FleetYear {
            year,
            new_models,
            new_units,
            total_units,
            live_models,
        }
    }

    /// Simulates through `end_year` inclusive.
    ///
    /// Years are independent, so the sweep fans out across the scoped
    /// worker pool; ordered reassembly keeps the output identical to the
    /// serial loop at any `HARMONIA_THREADS`.
    ///
    /// ```
    /// use harmonia_metrics::fleet::FleetModel;
    ///
    /// let mut model = FleetModel::new(2020, 4);
    /// model.introduce(2020, 1_000, 2).introduce(2022, 2_000, 2);
    /// let years = model.run(2023);
    /// assert_eq!(years.len(), 4); // 2020..=2023, in order
    /// assert_eq!(years[0].new_units, 1_000);
    /// // 2023: gen-1 aged out of deployment, gen-2 still rolling out;
    /// // everything deployed since 2020 is within the 4-year lifecycle.
    /// assert_eq!(years[3].new_units, 2_000);
    /// assert_eq!(years[3].total_units, 6_000);
    /// ```
    pub fn run(&self, end_year: u32) -> Vec<FleetYear> {
        harmonia_sim::exec::par_sweep(self.start_year..=end_year, |year| self.year(year))
    }

    /// Fleet-wide aggregation over the simulated window: a parallel
    /// map over years reduced with the order-independent
    /// [`FleetSummary::merge`].
    pub fn summarize(&self, end_year: u32) -> FleetSummary {
        harmonia_sim::exec::WorkerPool::from_env()
            .map_reduce(
                self.start_year..=end_year,
                |year| FleetSummary::of(&self.year(year)),
                FleetSummary::merge,
            )
            .unwrap_or_default()
    }

    /// Publishes the window aggregate into a metrics registry as
    /// `harmonia_fleet_*` gauges, plus one `harmonia_fleet_total_units`
    /// gauge per simulated year (labelled by `year`), and returns the
    /// summary it published.
    ///
    /// Aggregation runs through the same parallel `map_reduce` as
    /// [`FleetModel::summarize`], so the published numbers are identical
    /// at any `HARMONIA_THREADS`.
    pub fn publish_metrics(
        &self,
        end_year: u32,
        metrics: &harmonia_sim::MetricsRegistry,
    ) -> FleetSummary {
        let s = self.summarize(end_year);
        metrics.gauge_set("harmonia_fleet_peak_units", &[], s.peak_units);
        metrics.gauge_set("harmonia_fleet_peak_year", &[], u64::from(s.peak_year));
        metrics.gauge_set("harmonia_fleet_unit_years", &[], s.unit_years);
        metrics.gauge_set("harmonia_fleet_units_deployed", &[], s.units_deployed);
        metrics.gauge_set(
            "harmonia_fleet_max_live_models",
            &[],
            u64::from(s.max_live_models),
        );
        for y in self.run(end_year) {
            metrics.gauge_set(
                "harmonia_fleet_total_units",
                &[("year", &y.year.to_string())],
                y.total_units,
            );
        }
        s
    }
}

/// Fleet-wide aggregate of a simulated window (Figure 3c's headline
/// numbers: how big the fleet peaks and how heterogeneous it gets).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetSummary {
    /// Years aggregated.
    pub years: u32,
    /// Largest year-end fleet across the window.
    pub peak_units: u64,
    /// Year of `peak_units` (earliest on ties).
    pub peak_year: u32,
    /// Sum of year-end unit counts (unit-years of operation).
    pub unit_years: u64,
    /// Total units deployed across the window.
    pub units_deployed: u64,
    /// Most device models live at once.
    pub max_live_models: u32,
}

impl FleetSummary {
    /// The single-year summary [`FleetModel::summarize`] reduces over.
    pub fn of(y: &FleetYear) -> Self {
        FleetSummary {
            years: 1,
            peak_units: y.total_units,
            peak_year: y.year,
            unit_years: y.total_units,
            units_deployed: y.new_units,
            max_live_models: y.live_models,
        }
    }

    /// Merges two summaries. Commutative and associative (peak ties
    /// resolve to the earlier year), so a parallel reduce yields the
    /// same result in any merge order.
    pub fn merge(a: Self, b: Self) -> Self {
        let (peak_units, peak_year) = match (a.peak_units, b.peak_units) {
            (x, y) if x > y => (a.peak_units, a.peak_year),
            (x, y) if y > x => (b.peak_units, b.peak_year),
            _ => (a.peak_units, a.peak_year.min(b.peak_year)),
        };
        FleetSummary {
            years: a.years + b.years,
            peak_units,
            peak_year,
            unit_years: a.unit_years + b.unit_years,
            units_deployed: a.units_deployed + b.units_deployed,
            max_live_models: a.max_live_models.max(b.max_live_models),
        }
    }
}

impl fmt::Display for FleetYear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: +{} models, +{} units, {} total ({} live models)",
            self.year, self.new_models, self.new_units, self.total_units, self.live_models
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_then_lifecycle_retires() {
        let mut m = FleetModel::new(2020, 2);
        m.introduce(2020, 100, 1);
        let years = m.run(2023);
        assert_eq!(years[0].total_units, 100); // 2020
        assert_eq!(years[1].total_units, 100); // 2021 (still alive)
        assert_eq!(years[2].total_units, 0); // 2022 (retired)
    }

    #[test]
    fn multi_year_deployment_windows() {
        let mut m = FleetModel::new(2020, 4);
        m.introduce(2020, 10, 3);
        let years = m.run(2024);
        assert_eq!(years[0].new_units, 10);
        assert_eq!(years[2].new_units, 10);
        assert_eq!(years[3].new_units, 0);
        assert_eq!(years[2].total_units, 30);
    }

    #[test]
    fn douyin_like_fleet_grows_every_year() {
        let years = FleetModel::douyin_like().run(2024);
        let recent: Vec<_> = years.iter().filter(|y| y.year >= 2020).collect();
        for w in recent.windows(2) {
            assert!(
                w[1].total_units >= w[0].total_units,
                "fleet shrank {} → {}",
                w[0].year,
                w[1].year
            );
        }
        let last = recent.last().unwrap();
        assert!(
            last.total_units > 10_000,
            "expected tens of thousands, got {}",
            last.total_units
        );
        assert!(last.live_models >= 6, "heterogeneity too low");
    }

    #[test]
    fn new_model_cadence_is_one_to_two_years() {
        let years = FleetModel::douyin_like().run(2024);
        // At least one new model every year from 2020 on (Figure 3c).
        for y in years.iter().filter(|y| y.year >= 2020) {
            assert!(y.new_models >= 1, "no new models in {}", y.year);
        }
    }

    #[test]
    #[should_panic(expected = "lifecycle")]
    fn zero_lifecycle_rejected() {
        let _ = FleetModel::new(2020, 0);
    }

    #[test]
    fn display_nonempty() {
        let y = FleetModel::douyin_like().run(2020).pop().unwrap();
        assert!(y.to_string().contains("2020"));
    }

    #[test]
    fn summary_matches_serial_fold() {
        let m = FleetModel::douyin_like();
        let years = m.run(2024);
        let serial = years
            .iter()
            .map(FleetSummary::of)
            .fold(FleetSummary::default(), FleetSummary::merge);
        assert_eq!(m.summarize(2024), serial);
        assert_eq!(serial.years, years.len() as u32);
        assert!(serial.peak_units > 10_000);
        assert_eq!(serial.peak_year, 2024);
    }

    #[test]
    fn summary_merge_is_order_independent() {
        let m = FleetModel::douyin_like();
        let per_year: Vec<_> = m.run(2024).iter().map(FleetSummary::of).collect();
        let forward = per_year
            .iter()
            .copied()
            .fold(FleetSummary::default(), FleetSummary::merge);
        let backward = per_year
            .iter()
            .rev()
            .copied()
            .fold(FleetSummary::default(), FleetSummary::merge);
        // Pairwise tree reduce, as a parallel reduce would produce.
        let mut tree = per_year.clone();
        while tree.len() > 1 {
            tree = tree
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        FleetSummary::merge(c[0], c[1])
                    } else {
                        c[0]
                    }
                })
                .collect();
        }
        assert_eq!(forward, backward);
        assert_eq!(forward, tree[0]);
    }

    #[test]
    fn publish_metrics_mirrors_the_summary() {
        let m = FleetModel::douyin_like();
        let reg = harmonia_sim::MetricsRegistry::enabled();
        let s = m.publish_metrics(2024, &reg);
        assert_eq!(s, m.summarize(2024));
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("harmonia_fleet_peak_units"), s.peak_units);
        assert_eq!(snap.gauge("harmonia_fleet_peak_year"), 2024);
        // One labelled total-units gauge per simulated year.
        let prom = snap.export_prometheus();
        assert!(prom.contains("harmonia_fleet_total_units{year=\"2018\"}"));
        assert!(prom.contains("harmonia_fleet_total_units{year=\"2024\"}"));
    }

    #[test]
    fn publish_metrics_to_disabled_registry_is_a_no_op() {
        let reg = harmonia_sim::MetricsRegistry::disabled();
        let s = FleetModel::douyin_like().publish_metrics(2024, &reg);
        assert!(s.peak_units > 10_000);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn summary_peak_tie_takes_earlier_year() {
        let a = FleetSummary {
            years: 1,
            peak_units: 500,
            peak_year: 2021,
            unit_years: 500,
            units_deployed: 0,
            max_live_models: 2,
        };
        let b = FleetSummary {
            peak_year: 2019,
            ..a
        };
        assert_eq!(FleetSummary::merge(a, b).peak_year, 2019);
        assert_eq!(FleetSummary::merge(b, a).peak_year, 2019);
    }
}
