//! Development-workload accounting.
//!
//! The paper measures development workloads "by the ratio of hardware logic
//! codes" (§2.3, §5.3), distinguishing handcraft code from script-generated
//! portions and — under Harmonia — from code reused out of the RBB common
//! library. Modules in this workspace declare their component inventories
//! with [`ModuleWorkload`]; reuse rates (Figures 14/15) and shell-vs-role
//! splits (Figure 3a) are then *computed* from the inventories rather than
//! transcribed from the paper.

use std::fmt;
use std::iter::Sum;

/// Where a code component comes from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Written by hand for this module on this platform.
    Handcraft,
    /// Emitted by vendor tools / tcl / ruby scripts — excluded from
    /// workload ratios, as in the paper ("after excluding the
    /// script-generated portions").
    ScriptGenerated,
    /// Taken unchanged from the RBB common library or a previous platform.
    Reused,
}

/// One code component of a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeComponent {
    /// Component name (e.g. "flow-director", "instance-glue").
    pub name: String,
    /// Lines of hardware logic code.
    pub loc: u64,
    /// Provenance.
    pub origin: Origin,
}

/// The code inventory of one module (or one whole shell/role).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleWorkload {
    name: String,
    components: Vec<CodeComponent>,
}

impl ModuleWorkload {
    /// Creates an empty inventory.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleWorkload {
            name: name.into(),
            components: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a component.
    pub fn add(&mut self, name: impl Into<String>, loc: u64, origin: Origin) -> &mut Self {
        self.components.push(CodeComponent {
            name: name.into(),
            loc,
            origin,
        });
        self
    }

    /// The component list.
    pub fn components(&self) -> &[CodeComponent] {
        &self.components
    }

    /// Total LoC excluding script-generated portions (the paper's basis).
    pub fn countable_loc(&self) -> u64 {
        self.components
            .iter()
            .filter(|c| c.origin != Origin::ScriptGenerated)
            .map(|c| c.loc)
            .sum()
    }

    /// LoC written by hand.
    pub fn handcraft_loc(&self) -> u64 {
        self.loc_of(Origin::Handcraft)
    }

    /// LoC reused from the common library.
    pub fn reused_loc(&self) -> u64 {
        self.loc_of(Origin::Reused)
    }

    /// LoC emitted by scripts.
    pub fn generated_loc(&self) -> u64 {
        self.loc_of(Origin::ScriptGenerated)
    }

    fn loc_of(&self, origin: Origin) -> u64 {
        self.components
            .iter()
            .filter(|c| c.origin == origin)
            .map(|c| c.loc)
            .sum()
    }

    /// Fraction of countable code that is reused — the Figure 14/15 metric.
    /// Returns 0 for an empty inventory.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.countable_loc();
        if total == 0 {
            0.0
        } else {
            self.reused_loc() as f64 / total as f64
        }
    }

    /// Fraction that must be redeveloped (1 − reuse).
    pub fn redev_fraction(&self) -> f64 {
        if self.countable_loc() == 0 {
            0.0
        } else {
            1.0 - self.reuse_fraction()
        }
    }

    /// Merges another inventory into this one (e.g. summing a shell's
    /// modules).
    pub fn merge(&mut self, other: &ModuleWorkload) {
        self.components.extend(other.components.iter().cloned());
    }
}

impl Sum for ModuleWorkload {
    fn sum<I: Iterator<Item = ModuleWorkload>>(iter: I) -> ModuleWorkload {
        let mut acc = ModuleWorkload::new("sum");
        for m in iter {
            acc.merge(&m);
        }
        acc
    }
}

impl fmt::Display for ModuleWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LoC countable ({:.0}% reused)",
            self.name,
            self.countable_loc(),
            100.0 * self.reuse_fraction()
        )
    }
}

/// Splits a project into shell-vs-role workload fractions — Figure 3a.
/// Returns `(shell_fraction, role_fraction)` of the combined handcraft
/// workload.
pub fn shell_role_split(shell: &ModuleWorkload, role: &ModuleWorkload) -> (f64, f64) {
    let s = shell.countable_loc() as f64;
    let r = role.countable_loc() as f64;
    let total = s + r;
    if total == 0.0 {
        return (0.0, 0.0);
    }
    (s / total, r / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModuleWorkload {
        let mut m = ModuleWorkload::new("m");
        m.add("reused-logic", 3000, Origin::Reused);
        m.add("glue", 1000, Origin::Handcraft);
        m.add("constraints", 5000, Origin::ScriptGenerated);
        m
    }

    #[test]
    fn generated_code_excluded_from_ratio() {
        let m = sample();
        assert_eq!(m.countable_loc(), 4000);
        assert!((m.reuse_fraction() - 0.75).abs() < 1e-9);
        assert!((m.redev_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(m.generated_loc(), 5000);
    }

    #[test]
    fn empty_inventory_is_zero_not_nan() {
        let m = ModuleWorkload::new("empty");
        assert_eq!(m.reuse_fraction(), 0.0);
        assert_eq!(m.redev_fraction(), 0.0);
    }

    #[test]
    fn merge_and_sum() {
        let a = sample();
        let mut b = ModuleWorkload::new("b");
        b.add("x", 4000, Origin::Handcraft);
        let total: ModuleWorkload = [a.clone(), b].into_iter().sum();
        assert_eq!(total.countable_loc(), 8000);
        assert!((total.reuse_fraction() - 3000.0 / 8000.0).abs() < 1e-9);
    }

    #[test]
    fn shell_role_split_matches_fig3a_shape() {
        let mut shell = ModuleWorkload::new("shell");
        shell.add("all", 8700, Origin::Handcraft);
        let mut role = ModuleWorkload::new("role");
        role.add("app", 1300, Origin::Handcraft);
        let (s, r) = shell_role_split(&shell, &role);
        assert!((s - 0.87).abs() < 1e-9);
        assert!((r - 0.13).abs() < 1e-9);
    }

    #[test]
    fn split_of_empty_project_is_zero() {
        let e = ModuleWorkload::new("e");
        assert_eq!(shell_role_split(&e, &e), (0.0, 0.0));
    }

    #[test]
    fn display_mentions_reuse() {
        assert!(sample().to_string().contains("75% reused"));
    }
}
