//! # Harmonia — a unified framework for heterogeneous FPGA acceleration
//!
//! A full-system reproduction of *"Harmonia: A Unified Framework for
//! Heterogeneous FPGA Acceleration in the Cloud"* (ASPLOS 2025), built on a
//! cycle-level simulation substrate in place of physical FPGAs.
//!
//! Harmonia splits the shell–role architecture into two layers:
//!
//! * a **platform-specific layer** ([`platform`]) with automated device and
//!   vendor adapters plus lightweight interface wrappers over vendor IPs;
//! * a **platform-independent layer** ([`shell`]) with a unified shell of
//!   Reusable Building Blocks, hierarchical tailoring, and a command-based
//!   host interface ([`cmd`], [`host`]).
//!
//! The [`Harmonia`] entry point runs the §4 deployment lifecycle end to
//! end: adapter generation, dependency inspection, shell tailoring,
//! control-kernel attachment and module initialization.
//!
//! ## Quickstart
//!
//! ```
//! use harmonia::{Harmonia, RoleSpec, MemoryDemand};
//! use harmonia::hw::device::catalog;
//!
//! # fn main() -> Result<(), harmonia::DeployError> {
//! let device = catalog::device_a();
//! let role = RoleSpec::builder("my-accelerator")
//!     .network_gbps(100)
//!     .memory(MemoryDemand::Hbm)
//!     .queues(128)
//!     .build();
//!
//! let mut deployment = Harmonia::deploy(&device, &role)?;
//! assert!(deployment.initialized());
//! println!("shell uses {}", deployment.shell_resources());
//! # Ok(())
//! # }
//! ```
//!
//! ## Map of the repository
//!
//! Dependency order is strictly bottom-up; every workspace crate is
//! re-exported here under the alias in the first column.
//!
//! | Alias | Paper layer | Contents |
//! |---|---|---|
//! | [`sim`] | substrate | picosecond timeline, clock domains, FIFOs/CDC, pipelines, the scoped worker pool ([`sim::exec`]), the fault plane ([`sim::fault`]), trace collection ([`sim::trace`]), latency histograms ([`sim::histo`]) and the metrics plane ([`sim::metrics`]: registry, scraper, flight recorder, SLO evaluation) |
//! | [`hw`] | substrate | Table 2 device catalog, resource model, AXI/Avalon interface specs, register files, vendor IP models (MAC, PCIe DMA, DDR, HBM) |
//! | [`metrics`] | evaluation | workload/config/diff accounting, fleet model, report tables |
//! | [`platform`] | platform-specific (§3.2) | device + vendor adapters, lightweight interface wrappers over the six unified types |
//! | [`shell`] | platform-independent (§3.3) | Network/Memory/Host RBBs, parameterized CDC, unified shell, hierarchical tailoring, health ledger, partial reconfiguration plane ([`shell::pr`]), vFPGA time-multiplexing scheduler ([`shell::sched`]) |
//! | [`cmd`] | platform-independent (§3.3.3) | command packets (Fig. 9), command codes, the unified control kernel, batched SQ/CQ queue pairs with doorbell batching ([`cmd::queue`]) |
//! | [`host`] | platform-independent | register vs. command drivers, DMA engine with isolated control queue, retry/backoff resilience, command batching ([`host::batch`]), multi-tenant vFPGA scheduling ([`host::tenant`]), migration analysis ([`host::migration`]), control tool, BMC, irq moderation |
//! | [`workloads`] | evaluation | seeded packet/memory/matmul/vector-DB/TCP generators |
//! | [`frameworks`] | evaluation | Vitis / oneAPI / Coyote baseline models |
//! | [`apps`] | applications | the five production applications plus the storage offload |
//! | [`fleet`] | operations (§2.2) | cluster-scale control plane: device inventory, placement scheduler, diurnal traffic, failure domains, rolling upgrades |
//!
//! Beside the stack (not re-exported): `harmonia-testkit` — the hermetic
//! property-testing/bench substrate used by every crate's tests — and
//! `harmonia-bench` — one generator per paper figure/table, the `paper`,
//! `trace` and `metrics` binaries, and the byte-equivalence test suites.

pub mod framework;
pub mod project;
pub mod validation;

/// Simulation kernel (clocks, FIFOs, CDC primitives, statistics).
pub use harmonia_sim as sim;
/// Hardware substrate (devices, vendor IPs, registers, resources).
pub use harmonia_hw as hw;
/// Evaluation accounting (workloads, configs, diffs, fleet, tables).
pub use harmonia_metrics as metrics;
/// Platform-specific layer (adapters, interface wrappers).
pub use harmonia_platform as platform;
/// Platform-independent layer (RBBs, unified shell, tailoring).
pub use harmonia_shell as shell;
/// Command-based interface (packets, codes, unified control kernel).
pub use harmonia_cmd as cmd;
/// Host software stack (drivers, DMA engine, migration analysis).
pub use harmonia_host as host;
/// Workload generators.
pub use harmonia_workloads as workloads;
/// Baseline framework models (Vitis, oneAPI, Coyote).
pub use harmonia_frameworks as frameworks;
/// The five production applications.
pub use harmonia_apps as apps;
/// Cluster-scale control plane (inventory, placement, campaigns).
pub use harmonia_fleet as fleet;

pub use framework::{DeployError, Deployment, Harmonia};
pub use project::{build_project, ProjectBundle, ProjectError};
pub use validation::{validate, ValidationReport};
pub use harmonia_shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
