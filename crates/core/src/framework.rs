//! The deployment lifecycle (§4).
//!
//! Stage 2–4 of the paper's application lifecycle, automated: generate the
//! platform adapters for the target device, rigidly inspect vendor
//! dependencies, build and tailor the shell, wrap the vendor instances,
//! attach the unified control kernel, and initialize every module over the
//! command interface.

use harmonia_cmd::{KernelError, UnifiedControlKernel};
use harmonia_host::{CommandDriver, DmaEngine};
use harmonia_hw::device::FpgaDevice;
use harmonia_hw::ip::PcieDmaIp;
use harmonia_hw::resource::ResourceUsage;
use harmonia_platform::adapter::vendor::Version;
use harmonia_platform::{CompatError, DeviceAdapter, InterfaceWrapper, ModuleDeps, VendorAdapter};
use harmonia_shell::{RoleSpec, TailorError, TailoredShell, UnifiedShell};
use std::error::Error;
use std::fmt;

/// Failures of the deployment pipeline.
#[derive(Debug)]
pub enum DeployError {
    /// Vendor-dependency inspection failed.
    Compat(Vec<CompatError>),
    /// Shell tailoring failed (missing capability, capacity, …).
    Tailor(TailorError),
    /// Module initialization over the command interface failed.
    Init(KernelError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Compat(errs) => {
                write!(f, "dependency inspection failed: ")?;
                for e in errs {
                    write!(f, "[{e}] ")?;
                }
                Ok(())
            }
            DeployError::Tailor(e) => write!(f, "tailoring failed: {e}"),
            DeployError::Init(e) => write!(f, "initialization failed: {e}"),
        }
    }
}

impl Error for DeployError {}

impl From<TailorError> for DeployError {
    fn from(e: TailorError) -> Self {
        DeployError::Tailor(e)
    }
}

impl From<KernelError> for DeployError {
    fn from(e: KernelError) -> Self {
        DeployError::Init(e)
    }
}

/// The framework entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Harmonia;

impl Harmonia {
    /// Runs the full deployment lifecycle of a role onto a device.
    ///
    /// # Errors
    ///
    /// Any stage can fail: vendor-dependency conflicts, tailoring
    /// (capability/capacity) or module initialization.
    pub fn deploy(device: &FpgaDevice, role: &RoleSpec) -> Result<Deployment, DeployError> {
        // Stage 2a: platform adapters for the new device (§3.2).
        let mut device_adapter = DeviceAdapter::generate(device);
        let vendor_adapter = VendorAdapter::generate(device.die_vendor());

        // Stage 2b: unified shell from RBBs, tailored to the role (§3.3.2).
        let unified = UnifiedShell::for_device(device);
        let shell = TailoredShell::tailor(&unified, role)?;

        // Dynamic resource group: on-demand clock and pin mappings for the
        // retained modules (§3.2 — "I/O pins and clock mappings configured
        // on-demand"), then the adapter's rigid validation.
        {
            let dyn_map = device_adapter.dynamic_mut();
            let mut pin = 0u32;
            for (i, rbb) in shell.rbbs().iter().enumerate() {
                let name = format!("{}_{i}", rbb.kind().to_string().to_lowercase());
                // Differential reference clock pair per module.
                dyn_map.map_pin(format!("{name}_refclk_p"), pin);
                dyn_map.map_pin(format!("{name}_refclk_n"), pin + 1);
                pin += 2;
                // Core clock source: index 0 is the common 100 MHz ref.
                dyn_map.map_clock(name, 0);
            }
        }
        debug_assert!(
            device_adapter.validate().is_ok(),
            "generated dynamic mapping must validate"
        );

        // Project implementation: dependency inspection before compilation
        // (§4) — every retained instance declares its toolchain needs.
        let deps: Vec<ModuleDeps> = shell
            .rbbs()
            .iter()
            .map(|rbb| {
                let ip = rbb.instance();
                ModuleDeps::new(ip.instance_name())
                    .require(ip.vendor().cad_tool(), Version::new(min_tool_major(ip.vendor()), 0, 0))
                    .require("ip-catalog", Version::new(catalog_major(ip.vendor()), 0, 0))
            })
            .collect();
        vendor_adapter
            .inspect(&deps)
            .map_err(DeployError::Compat)?;

        // Stage 2c: wrap every instance into the unified interfaces and
        // account the overhead (§3.2, Figure 16).
        let wrapper_resources: ResourceUsage = shell
            .rbbs()
            .iter()
            .map(|rbb| InterfaceWrapper::wrap(rbb.instance(), role.user_width_bits()).resources())
            .sum();

        // Stage 2d: unified control kernel + command driver (§3.3.3).
        let mut kernel = UnifiedControlKernel::new(64);
        kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        let (gen, lanes) = device.pcie().unwrap_or((4, 8));
        let engine = DmaEngine::new(PcieDmaIp::new(device.die_vendor(), gen, lanes));
        let mut driver = CommandDriver::new(engine, kernel);

        // Stage 4: hardware initialization through the command interface.
        driver.init_shell(&shell)?;

        Ok(Deployment {
            device: device.clone(),
            device_adapter,
            vendor_adapter,
            shell,
            driver,
            wrapper_resources,
            initialized: true,
        })
    }
}

fn min_tool_major(vendor: harmonia_hw::Vendor) -> u32 {
    match vendor.cad_tool() {
        "vivado" => 2023,
        _ => 23,
    }
}

fn catalog_major(vendor: harmonia_hw::Vendor) -> u32 {
    match vendor {
        harmonia_hw::Vendor::Intel => 23,
        _ => 4,
    }
}

/// A live deployment: tailored shell, adapters and an initialized control
/// path.
#[derive(Debug)]
pub struct Deployment {
    device: FpgaDevice,
    device_adapter: DeviceAdapter,
    vendor_adapter: VendorAdapter,
    shell: TailoredShell,
    driver: CommandDriver,
    wrapper_resources: ResourceUsage,
    initialized: bool,
}

impl Deployment {
    /// The target device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// The generated device adapter.
    pub fn device_adapter(&self) -> &DeviceAdapter {
        &self.device_adapter
    }

    /// The generated vendor adapter.
    pub fn vendor_adapter(&self) -> &VendorAdapter {
        &self.vendor_adapter
    }

    /// The role-specific shell.
    pub fn shell(&self) -> &TailoredShell {
        &self.shell
    }

    /// The command driver bound to the deployment's control kernel.
    pub fn driver_mut(&mut self) -> &mut CommandDriver {
        &mut self.driver
    }

    /// Whether module initialization completed.
    pub fn initialized(&self) -> bool {
        self.initialized
    }

    /// The shell's resource usage (RBBs + management).
    pub fn shell_resources(&self) -> ResourceUsage {
        self.shell.resources()
    }

    /// Harmonia's own overhead: interface wrappers plus the control kernel
    /// (the Figure 16 quantities).
    pub fn harmonia_overhead(&self) -> ResourceUsage {
        self.wrapper_resources + UnifiedControlKernel::resources()
    }

    /// Harmonia's overhead as a percentage of the device (max over kinds).
    pub fn overhead_percent(&self) -> f64 {
        self.harmonia_overhead()
            .max_percent_of(self.device.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_shell::MemoryDemand;

    fn role() -> RoleSpec {
        RoleSpec::builder("test-role")
            .network_gbps(100)
            .queues(64)
            .build()
    }

    #[test]
    fn deploys_on_every_catalog_device() {
        for dev in catalog::all() {
            let d = Harmonia::deploy(&dev, &role())
                .unwrap_or_else(|e| panic!("{}: {e}", dev.name()));
            assert!(d.initialized());
            assert!(d
                .shell_resources()
                .retargeted_for(dev.capacity())
                .fits_in(dev.capacity()));
        }
    }

    #[test]
    fn overhead_below_paper_bound_everywhere() {
        for dev in catalog::all() {
            let d = Harmonia::deploy(&dev, &role()).unwrap();
            let pct = d.overhead_percent();
            assert!(pct < 1.2, "{}: overhead {pct:.2}%", dev.name());
        }
    }

    #[test]
    fn capability_mismatch_is_a_tailor_error() {
        let hbm_role = RoleSpec::builder("needs-hbm")
            .memory(MemoryDemand::Hbm)
            .build();
        let err = Harmonia::deploy(&catalog::device_c(), &hbm_role).unwrap_err();
        assert!(matches!(err, DeployError::Tailor(_)));
        assert!(err.to_string().contains("tailoring"));
    }

    #[test]
    fn driver_is_usable_after_deploy() {
        let mut d = Harmonia::deploy(&catalog::device_a(), &role()).unwrap();
        let shell_rbbs = d.shell().rbbs().len();
        // init_shell already ran once per module.
        assert_eq!(d.driver_mut().issued().len(), shell_rbbs);
        let health = d
            .driver_mut()
            .cmd_raw(0, 0, harmonia_cmd::CommandCode::HealthRead, Vec::new())
            .unwrap();
        assert_eq!(health.data.len(), 4);
    }

    #[test]
    fn adapters_reflect_device() {
        let d = Harmonia::deploy(&catalog::device_d(), &role()).unwrap();
        assert_eq!(d.device_adapter().device_name(), "Device D");
        assert!(d
            .vendor_adapter()
            .environment()
            .contains_key("quartus"));
    }
}
