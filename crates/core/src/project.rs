//! Project implementation (§4, Stage 2): the automated integration
//! toolchain.
//!
//! "Firstly, Harmonia loads the vendor adapter and checks the dependencies
//! between modules and environments. After ensuring that there are no
//! dependency conflicts, Harmonia completes platform configurations and
//! invokes corresponding CAD tools for compilation. Finally, the FPGA
//! executable bitstream and software are packaged together into a
//! consolidated project file."
//!
//! The CAD invocation is modelled by a compile-time estimator (placement
//! effort scales with utilization) and a content-derived bitstream id, so
//! identical inputs reproduce identical bundles.

use harmonia_hw::device::FpgaDevice;
use harmonia_hw::resource::ResourceUsage;
use harmonia_platform::{CompatError, DeviceAdapter, ModuleDeps, VendorAdapter, Version};
use harmonia_shell::{RoleSpec, TailorError, TailoredShell, UnifiedShell};
use std::error::Error;
use std::fmt;

/// A consolidated project file: bitstream + software manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProjectBundle {
    /// Project name (role name).
    pub name: String,
    /// Target device name.
    pub device: String,
    /// CAD tool that produced the bitstream.
    pub cad_tool: String,
    /// Content-derived bitstream identifier (deterministic).
    pub bitstream_id: u64,
    /// Estimated compile wall-clock in minutes.
    pub compile_minutes: u32,
    /// Software components packaged alongside the bitstream.
    pub software_manifest: Vec<String>,
}

impl fmt::Display for ProjectBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} [{:016x}] via {} ({} min compile, {} sw components)",
            self.name,
            self.device,
            self.bitstream_id,
            self.cad_tool,
            self.compile_minutes,
            self.software_manifest.len()
        )
    }
}

/// Project-implementation failures.
#[derive(Debug)]
pub enum ProjectError {
    /// Tailoring failed.
    Tailor(TailorError),
    /// Dependency inspection found conflicts.
    Compat(Vec<CompatError>),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Tailor(e) => write!(f, "tailoring: {e}"),
            ProjectError::Compat(es) => write!(f, "{} dependency conflicts", es.len()),
        }
    }
}

impl Error for ProjectError {}

impl From<TailorError> for ProjectError {
    fn from(e: TailorError) -> Self {
        ProjectError::Tailor(e)
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Estimates place-and-route wall-clock from device size and utilization:
/// effort grows superlinearly as the design fills the part.
fn compile_minutes(shell: &ResourceUsage, role: &ResourceUsage, capacity: &ResourceUsage) -> u32 {
    let used = (*shell + *role).retargeted_for(capacity);
    let util = used.max_percent_of(capacity) / 100.0;
    let base = (capacity.lut / 40_000) as f64; // bigger dies route longer
    let effort = 1.0 + 4.0 * util * util;
    (base * effort).ceil() as u32
}

/// Builds the consolidated project file for a role on a device.
///
/// # Errors
///
/// Tailoring or dependency-inspection failures abort the build before any
/// "compilation" happens, exactly like the production flow.
pub fn build_project(device: &FpgaDevice, role: &RoleSpec) -> Result<ProjectBundle, ProjectError> {
    // 1. Load adapters and inspect dependencies.
    let vendor_adapter = VendorAdapter::generate(device.die_vendor());
    let _device_adapter = DeviceAdapter::generate(device);
    let unified = UnifiedShell::for_device(device);
    let shell = TailoredShell::tailor(&unified, role)?;
    let deps: Vec<ModuleDeps> = shell
        .rbbs()
        .iter()
        .map(|rbb| {
            ModuleDeps::new(rbb.instance().instance_name()).require(
                rbb.instance().vendor().cad_tool(),
                Version::new(
                    if rbb.instance().vendor().cad_tool() == "vivado" {
                        2023
                    } else {
                        23
                    },
                    0,
                    0,
                ),
            )
        })
        .collect();
    vendor_adapter
        .inspect(&deps)
        .map_err(ProjectError::Compat)?;

    // 2. "Compile": derive the bitstream id from everything that shapes
    //    the netlist, and estimate the P&R effort.
    let mut id = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut id, device.part().as_bytes());
    fnv1a(&mut id, role.name().as_bytes());
    for rbb in shell.rbbs() {
        fnv1a(&mut id, rbb.instance().instance_name().as_bytes());
        for c in rbb.components() {
            fnv1a(&mut id, c.name.as_bytes());
            fnv1a(&mut id, &c.loc.to_le_bytes());
        }
    }
    let minutes = compile_minutes(
        &shell.resources(),
        role.role_resources(),
        device.capacity(),
    );

    // 3. Package bitstream + software.
    let mut software = vec![
        "harmonia-driver".to_string(),
        "cmd-interface-lib".to_string(),
        "ctrl-tool".to_string(),
    ];
    for rbb in shell.rbbs() {
        software.push(format!("{}-runtime", rbb.kind().to_string().to_lowercase()));
    }
    software.sort();
    software.dedup();

    Ok(ProjectBundle {
        name: role.name().to_string(),
        device: device.name().to_string(),
        cad_tool: device.die_vendor().cad_tool().to_string(),
        bitstream_id: id,
        compile_minutes: minutes,
        software_manifest: software,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_shell::MemoryDemand;

    fn role() -> RoleSpec {
        RoleSpec::builder("pkg-test")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build()
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build_project(&catalog::device_a(), &role()).unwrap();
        let b = build_project(&catalog::device_a(), &role()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cad_tool, "vivado");
    }

    #[test]
    fn different_devices_produce_different_bitstreams() {
        let a = build_project(&catalog::device_a(), &role()).unwrap();
        let d = build_project(&catalog::device_d(), &role()).unwrap();
        assert_ne!(a.bitstream_id, d.bitstream_id);
        assert_eq!(d.cad_tool, "quartus");
    }

    #[test]
    fn compile_time_scales_with_utilization() {
        let small = RoleSpec::builder("small")
            .network_gbps(25)
            .network_ports(1)
            .role_resources(ResourceUsage::new(10_000, 10_000, 10, 0, 0))
            .build();
        let big = RoleSpec::builder("big")
            .network_gbps(100)
            .memory(MemoryDemand::Hbm)
            .role_resources(ResourceUsage::new(400_000, 500_000, 400, 100, 2_000))
            .build();
        let ps = build_project(&catalog::device_a(), &small).unwrap();
        let pb = build_project(&catalog::device_a(), &big).unwrap();
        assert!(pb.compile_minutes > ps.compile_minutes);
        // Sanity: hours not days, minutes not seconds.
        assert!((5..600).contains(&ps.compile_minutes));
    }

    #[test]
    fn software_manifest_follows_shell_composition() {
        let p = build_project(&catalog::device_a(), &role()).unwrap();
        assert!(p.software_manifest.iter().any(|s| s == "network-runtime"));
        assert!(p.software_manifest.iter().any(|s| s == "memory-runtime"));
        assert!(p.software_manifest.iter().any(|s| s == "host-runtime"));
        assert!(p.software_manifest.iter().any(|s| s == "harmonia-driver"));
    }

    #[test]
    fn capability_failure_aborts_before_compile() {
        let bad = RoleSpec::builder("x").memory(MemoryDemand::Hbm).build();
        let err = build_project(&catalog::device_c(), &bad).unwrap_err();
        assert!(matches!(err, ProjectError::Tailor(_)));
    }

    #[test]
    fn bundle_display() {
        let p = build_project(&catalog::device_b(), &role()).unwrap();
        let s = p.to_string();
        assert!(s.contains("Device B") && s.contains("vivado"));
    }
}
