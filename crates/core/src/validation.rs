//! Stage 3 of the lifecycle (§4): integration testing.
//!
//! "Testers perform rigorous integration testing to cover every component
//! in the system, ensuring that each part is thoroughly validated before
//! online deployment." This module runs that gate against a live
//! [`Deployment`]: board-level pattern tests, control
//! path exercises over every module, datapath smoke checks and the
//! Harmonia overhead budget.

use crate::framework::Deployment;
use harmonia_apps::BoardTest;
use harmonia_cmd::CommandCode;
use harmonia_shell::rbb::RbbKind;
use std::fmt;

/// One validation check's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Check {
    /// Check name.
    pub name: String,
    /// Whether it passed.
    pub passed: bool,
    /// Human-readable detail.
    pub detail: String,
}

/// The integration-test report for a deployment.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    checks: Vec<Check>,
}

impl ValidationReport {
    /// Whether every check passed (empty reports do not pass).
    pub fn release_ready(&self) -> bool {
        !self.checks.is_empty() && self.checks.iter().all(|c| c.passed)
    }

    /// The individual checks.
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    fn push(&mut self, name: &str, passed: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            name: name.to_string(),
            passed,
            detail: detail.into(),
        });
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            writeln!(
                f,
                "[{}] {:<28} {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            )?;
        }
        Ok(())
    }
}

/// Runs the Stage 3 integration-test gate on a deployment.
pub fn validate(deployment: &mut Deployment) -> ValidationReport {
    let mut report = ValidationReport::default();

    // 1. Board-level peripheral tests.
    let board = BoardTest::new(0xB0A2D).run(deployment.device());
    report.push(
        "board-peripherals",
        board.all_passed(),
        format!("{} stages", board.stages().len()),
    );

    // 2. Control path: health + per-module status/stats round trips.
    let health_ok = deployment
        .driver_mut()
        .cmd_raw(0, 0, CommandCode::HealthRead, Vec::new())
        .map(|r| r.data.len() == 4)
        .unwrap_or(false);
    report.push("board-health", health_ok, "4-word health block");

    let module_specs: Vec<(u8, u8)> = {
        let mut counters = std::collections::BTreeMap::new();
        deployment
            .shell()
            .rbbs()
            .iter()
            .map(|rbb| {
                let id = rbb.kind().id();
                let n = counters.entry(id).or_insert(0u8);
                let pair = (id, *n);
                *n += 1;
                pair
            })
            .collect()
    };
    let mut stats_words = 0usize;
    let mut control_ok = true;
    for (rbb_id, inst) in &module_specs {
        match deployment
            .driver_mut()
            .cmd_raw(*rbb_id, *inst, CommandCode::StatsRead, Vec::new())
        {
            Ok(resp) => stats_words += resp.data.len(),
            Err(_) => control_ok = false,
        }
        if deployment
            .driver_mut()
            .cmd_raw(*rbb_id, *inst, CommandCode::ModuleStatusRead, Vec::new())
            .is_err()
        {
            control_ok = false;
        }
    }
    report.push(
        "module-control",
        control_ok,
        format!("{} modules, {stats_words} monitor words", module_specs.len()),
    );

    // 3. Reset/re-init cycle on every module (dynamic-configuration check).
    let mut reinit_ok = true;
    for (rbb_id, inst) in &module_specs {
        for code in [CommandCode::ModuleReset, CommandCode::ModuleInit] {
            if deployment
                .driver_mut()
                .cmd_raw(*rbb_id, *inst, code, Vec::new())
                .is_err()
            {
                reinit_ok = false;
            }
        }
    }
    report.push("reset-reinit-cycle", reinit_ok, "all modules");

    // 4. Table path on the network modules, if present.
    let has_network = module_specs.iter().any(|(id, _)| *id == RbbKind::Network.id());
    if has_network {
        let wr = deployment.driver_mut().cmd_raw(
            RbbKind::Network.id(),
            0,
            CommandCode::TableWrite,
            vec![0, 0x1234, 0x5678],
        );
        let rd = deployment.driver_mut().cmd_raw(
            RbbKind::Network.id(),
            0,
            CommandCode::TableRead,
            vec![0],
        );
        let ok = wr.is_ok() && rd.map(|r| r.data == vec![0x1234, 0x5678]).unwrap_or(false);
        report.push("table-round-trip", ok, "entry 0 write/read");
    }

    // 5. Overhead budget (Figure 16 gate).
    let pct = deployment.overhead_percent();
    report.push(
        "harmonia-overhead",
        pct < 1.5,
        format!("{pct:.2}% of device"),
    );

    // 6. Shell fits with role headroom.
    let fits = deployment
        .shell_resources()
        .retargeted_for(deployment.device().capacity())
        .fits_in(deployment.device().capacity());
    report.push("resource-budget", fits, "shell within device capacity");

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Harmonia;
    use harmonia_hw::device::catalog;
    use harmonia_shell::{MemoryDemand, RoleSpec};

    #[test]
    fn healthy_deployment_is_release_ready() {
        let role = RoleSpec::builder("stage3")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        let mut d = Harmonia::deploy(&catalog::device_a(), &role).unwrap();
        let report = validate(&mut d);
        assert!(report.release_ready(), "\n{report}");
        assert!(report.checks().len() >= 6);
    }

    #[test]
    fn validation_runs_on_every_catalog_device() {
        let role = RoleSpec::builder("stage3").network_gbps(100).build();
        for dev in catalog::all() {
            let mut d = Harmonia::deploy(&dev, &role).unwrap();
            let report = validate(&mut d);
            assert!(report.release_ready(), "{}:\n{report}", dev.name());
        }
    }

    #[test]
    fn empty_report_is_not_ready() {
        assert!(!ValidationReport::default().release_ready());
    }

    #[test]
    fn report_display_lists_checks() {
        let role = RoleSpec::builder("s").network_gbps(100).build();
        let mut d = Harmonia::deploy(&catalog::device_d(), &role).unwrap();
        let text = validate(&mut d).to_string();
        assert!(text.contains("board-peripherals"));
        assert!(text.contains("PASS"));
    }
}
