//! RBB health tracking for graceful degradation.
//!
//! A production shell must keep serving its remaining roles when one
//! module stops responding — a MAC whose link dropped mid-init, a memory
//! controller that never finishes calibration. The host driver detects
//! the failure (deadline exceeded, retries exhausted) and marks the RBB
//! *degraded* here; the shell continues operating the healthy modules and
//! the transition stays visible through the normal stats path.

use harmonia_sim::{MetricsRegistry, Picos, TraceCollector, TraceEventKind};
use std::collections::BTreeMap;
use std::fmt;

/// Health of one RBB instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RbbHealth {
    /// Operating normally.
    Healthy,
    /// Taken out of service after a command deadline/retry budget was
    /// exhausted; the rest of the shell keeps serving.
    Degraded {
        /// Simulation time at which the driver gave up on the module.
        since_ps: Picos,
    },
}

impl RbbHealth {
    /// Whether this state is out of service.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RbbHealth::Degraded { .. })
    }
}

impl fmt::Display for RbbHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbbHealth::Healthy => f.write_str("healthy"),
            RbbHealth::Degraded { since_ps } => write!(f, "degraded since {since_ps} ps"),
        }
    }
}

/// Per-module health ledger, keyed by `(rbb_id, instance_id)` — the same
/// addressing the unified control kernel uses, so driver-side failures
/// map one-to-one onto shell modules.
#[derive(Clone, Debug, Default)]
pub struct HealthLedger {
    entries: BTreeMap<(u8, u8), RbbHealth>,
    trace: TraceCollector,
    metrics: MetricsRegistry,
}

impl HealthLedger {
    /// Creates an empty ledger (every module implicitly healthy).
    pub fn new() -> Self {
        HealthLedger::default()
    }

    /// Attaches an observability collector: new degradations emit a
    /// [`TraceEventKind::ModuleDegraded`] instant (the driver attaches
    /// its own collector during resilient bring-up).
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.trace = trace;
    }

    /// Attaches a metrics registry: the degraded-module count is
    /// published as the `harmonia_shell_degraded_modules` gauge, and each
    /// degradation sets a per-module
    /// `harmonia_shell_module_degraded{rbb,inst}` gauge to 1.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Marks a module degraded. Returns `false` if it already was (the
    /// first failure timestamp is kept).
    pub fn mark_degraded(&mut self, rbb_id: u8, instance_id: u8, now: Picos) -> bool {
        match self.entries.entry((rbb_id, instance_id)) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(RbbHealth::Degraded { since_ps: now });
                self.trace.instant(
                    now,
                    TraceEventKind::ModuleDegraded {
                        rbb_id,
                        instance_id,
                    },
                );
                self.metrics.gauge_set(
                    "harmonia_shell_module_degraded",
                    &[
                        ("rbb", &rbb_id.to_string()),
                        ("inst", &instance_id.to_string()),
                    ],
                    1,
                );
                let degraded = self
                    .entries
                    .values()
                    .filter(|h| h.is_degraded())
                    .count() as u64;
                self.metrics
                    .gauge_set("harmonia_shell_degraded_modules", &[], degraded);
                true
            }
        }
    }

    /// Returns a module to service (e.g. after a successful re-init).
    pub fn restore(&mut self, rbb_id: u8, instance_id: u8) {
        self.entries.remove(&(rbb_id, instance_id));
    }

    /// Health of one module; modules never marked are healthy.
    pub fn health_of(&self, rbb_id: u8, instance_id: u8) -> RbbHealth {
        self.entries
            .get(&(rbb_id, instance_id))
            .copied()
            .unwrap_or(RbbHealth::Healthy)
    }

    /// Whether a module is out of service.
    pub fn is_degraded(&self, rbb_id: u8, instance_id: u8) -> bool {
        self.health_of(rbb_id, instance_id).is_degraded()
    }

    /// All degraded modules with their failure times, in address order.
    pub fn degraded(&self) -> impl Iterator<Item = ((u8, u8), Picos)> + '_ {
        self.entries.iter().filter_map(|(&k, &h)| match h {
            RbbHealth::Degraded { since_ps } => Some((k, since_ps)),
            RbbHealth::Healthy => None,
        })
    }

    /// Number of degraded modules.
    pub fn degraded_count(&self) -> usize {
        self.degraded().count()
    }
}

impl fmt::Display for HealthLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.degraded_count() == 0 {
            return f.write_str("all modules healthy");
        }
        write!(f, "{} degraded:", self.degraded_count())?;
        for ((rbb, inst), since) in self.degraded() {
            write!(f, " rbb{rbb}#{inst}@{since}ps")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmarked_modules_are_healthy() {
        let l = HealthLedger::new();
        assert_eq!(l.health_of(1, 0), RbbHealth::Healthy);
        assert!(!l.is_degraded(1, 0));
        assert_eq!(l.degraded_count(), 0);
        assert_eq!(l.to_string(), "all modules healthy");
    }

    #[test]
    fn first_failure_timestamp_sticks() {
        let mut l = HealthLedger::new();
        assert!(l.mark_degraded(2, 0, 500));
        assert!(!l.mark_degraded(2, 0, 900));
        assert_eq!(l.health_of(2, 0), RbbHealth::Degraded { since_ps: 500 });
        assert!(l.to_string().contains("rbb2#0@500ps"));
    }

    #[test]
    fn degradation_emits_one_trace_event() {
        let tc = TraceCollector::enabled();
        let mut l = HealthLedger::new();
        l.set_trace_collector(tc.clone());
        assert!(l.mark_degraded(1, 0, 750));
        assert!(!l.mark_degraded(1, 0, 900), "re-marking is silent");
        let trace = tc.take();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].at, 750);
        assert_eq!(
            trace.events()[0].kind,
            TraceEventKind::ModuleDegraded {
                rbb_id: 1,
                instance_id: 0
            }
        );
    }

    #[test]
    fn restore_returns_to_service() {
        let mut l = HealthLedger::new();
        l.mark_degraded(1, 1, 10);
        l.mark_degraded(3, 0, 20);
        assert_eq!(l.degraded_count(), 2);
        l.restore(1, 1);
        assert!(!l.is_degraded(1, 1));
        assert_eq!(l.degraded().collect::<Vec<_>>(), vec![((3, 0), 20)]);
    }
}
