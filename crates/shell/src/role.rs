//! Role requirement descriptions.
//!
//! A role (the user-owned application logic) declares what it needs from
//! the shell — which RBBs, which instance performance points, how many
//! queues — and hierarchical tailoring (§3.3.2) turns that into a
//! role-specific shell. Roles written against the unified abstraction port
//! to any device whose hardware capabilities cover these demands.

use harmonia_hw::resource::ResourceUsage;
use harmonia_sim::Freq;
use std::fmt;

/// External-memory demand of a role.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemoryDemand {
    /// DDR with at least this many channels.
    Ddr {
        /// Channels required.
        channels: u32,
    },
    /// An HBM stack (high-bandwidth workloads, e.g. embedding retrieval).
    Hbm,
}

/// A role's shell requirements plus its own logic footprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoleSpec {
    name: String,
    network_gbps: Option<u32>,
    network_ports: u32,
    memory: Option<MemoryDemand>,
    host_link: bool,
    desired_queues: u16,
    multicast: bool,
    user_clock: Freq,
    user_width_bits: u32,
    role_resources: ResourceUsage,
}

impl RoleSpec {
    /// Starts building a role spec.
    pub fn builder(name: impl Into<String>) -> RoleSpecBuilder {
        RoleSpecBuilder {
            spec: RoleSpec {
                name: name.into(),
                network_gbps: None,
                network_ports: 2,
                memory: None,
                host_link: true,
                desired_queues: 64,
                multicast: false,
                user_clock: Freq::mhz(250),
                user_width_bits: 512,
                role_resources: ResourceUsage::new(60_000, 90_000, 120, 8, 64),
            },
        }
    }

    /// Role name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Required network speed, if the role uses the Network RBB.
    pub fn network_gbps(&self) -> Option<u32> {
        self.network_gbps
    }

    /// Number of network ports required (BITW roles need two).
    pub fn network_ports(&self) -> u32 {
        self.network_ports
    }

    /// Memory demand, if any.
    pub fn memory(&self) -> Option<MemoryDemand> {
        self.memory
    }

    /// Whether the role needs the Host RBB (almost all do).
    pub fn host_link(&self) -> bool {
        self.host_link
    }

    /// DMA queues the role wants exposed.
    pub fn desired_queues(&self) -> u16 {
        self.desired_queues
    }

    /// Whether the packet filter must accept multicast.
    pub fn multicast(&self) -> bool {
        self.multicast
    }

    /// The role's clock (R in the CDC equation).
    pub fn user_clock(&self) -> Freq {
        self.user_clock
    }

    /// The role's data width (U in the CDC equation).
    pub fn user_width_bits(&self) -> u32 {
        self.user_width_bits
    }

    /// The role logic's own resource footprint.
    pub fn role_resources(&self) -> &ResourceUsage {
        &self.role_resources
    }
}

impl fmt::Display for RoleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role '{}'", self.name)?;
        if let Some(g) = self.network_gbps {
            write!(f, " net:{g}G×{}", self.network_ports)?;
        }
        match self.memory {
            Some(MemoryDemand::Ddr { channels }) => write!(f, " mem:DDR×{channels}")?,
            Some(MemoryDemand::Hbm) => write!(f, " mem:HBM")?,
            None => {}
        }
        if self.host_link {
            write!(f, " host:{}q", self.desired_queues)?;
        }
        Ok(())
    }
}

/// Builder for [`RoleSpec`].
#[derive(Clone, Debug)]
pub struct RoleSpecBuilder {
    spec: RoleSpec,
}

impl RoleSpecBuilder {
    /// Requires the Network RBB at the given speed.
    pub fn network_gbps(mut self, gbps: u32) -> Self {
        self.spec.network_gbps = Some(gbps);
        self
    }

    /// Sets the number of network ports (default 2 for bump-in-the-wire).
    pub fn network_ports(mut self, ports: u32) -> Self {
        self.spec.network_ports = ports;
        self
    }

    /// Requires the Memory RBB.
    pub fn memory(mut self, demand: MemoryDemand) -> Self {
        self.spec.memory = Some(demand);
        self
    }

    /// Opts out of the Host RBB (pure wire-speed roles).
    pub fn no_host_link(mut self) -> Self {
        self.spec.host_link = false;
        self
    }

    /// Sets the desired DMA queue count.
    pub fn queues(mut self, queues: u16) -> Self {
        self.spec.desired_queues = queues;
        self
    }

    /// Requires multicast acceptance in the packet filter.
    pub fn multicast(mut self) -> Self {
        self.spec.multicast = true;
        self
    }

    /// Sets the role's clock and data width (the R × U side of the CDC).
    pub fn user_domain(mut self, clock: Freq, width_bits: u32) -> Self {
        self.spec.user_clock = clock;
        self.spec.user_width_bits = width_bits;
        self
    }

    /// Sets the role logic's resource footprint.
    pub fn role_resources(mut self, res: ResourceUsage) -> Self {
        self.spec.role_resources = res;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    ///
    /// Panics if the role demands nothing at all — a role with no shell
    /// services cannot exist in the shell-role architecture.
    pub fn build(self) -> RoleSpec {
        let s = &self.spec;
        assert!(
            s.network_gbps.is_some() || s.memory.is_some() || s.host_link,
            "role '{}' demands no shell service",
            s.name
        );
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let r = RoleSpec::builder("x").network_gbps(100).build();
        assert_eq!(r.network_gbps(), Some(100));
        assert_eq!(r.network_ports(), 2);
        assert!(r.host_link());
        assert_eq!(r.desired_queues(), 64);
        assert!(!r.multicast());
    }

    #[test]
    fn full_configuration() {
        let r = RoleSpec::builder("retrieval")
            .memory(MemoryDemand::Hbm)
            .queues(256)
            .user_domain(Freq::mhz(322), 512)
            .multicast()
            .build();
        assert_eq!(r.memory(), Some(MemoryDemand::Hbm));
        assert_eq!(r.desired_queues(), 256);
        assert!(r.multicast());
        assert_eq!(r.user_clock(), Freq::mhz(322));
    }

    #[test]
    #[should_panic(expected = "demands no shell service")]
    fn empty_role_rejected() {
        let _ = RoleSpec::builder("void").no_host_link().build();
    }

    #[test]
    fn display_summarizes_demands() {
        let r = RoleSpec::builder("lb")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 2 })
            .build();
        let s = r.to_string();
        assert!(s.contains("net:100G"));
        assert!(s.contains("DDR×2"));
    }
}
