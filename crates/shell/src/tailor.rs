//! Hierarchical shell tailoring (§3.3.2, Figure 7).
//!
//! Two levels:
//!
//! 1. **Module-level** — remove non-essential RBBs from the unified shell
//!    based on the role's resource and functional requirements, and for the
//!    remaining RBBs select instances that fulfill the role's performance
//!    demands (e.g. a 25G vs 100G MAC, DDR vs HBM);
//! 2. **Property-level** — split the retained instances' properties into a
//!    shell-oriented part the provider owns and a role-oriented part, and
//!    expose only the latter to the role.
//!
//! The result is the role-specific shell of Figures 11 (resource savings)
//! and 12 (configuration reduction).

use crate::health::HealthLedger;
use crate::rbb::{HostRbb, MemoryRbb, MigrationKind, NetworkRbb, Rbb, RbbKind};
use crate::role::{MemoryDemand, RoleSpec};
use crate::unified::{management_components, UnifiedShell};
use harmonia_hw::device::Peripheral;
use harmonia_hw::resource::{ResourceKind, ResourceUsage};
use harmonia_metrics::config::ConfigInventory;
use harmonia_metrics::workload::{ModuleWorkload, Origin};
use std::error::Error;
use std::fmt;

/// Reasons a role cannot be tailored onto a device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailorError {
    /// The device's network cages cannot reach the demanded speed.
    NetworkSpeedUnavailable {
        /// Speed the role wants, Gbps.
        wanted_gbps: u32,
        /// Fastest cage available, Gbps (0 = none).
        best_gbps: u32,
    },
    /// Fewer suitable network ports than the role demands.
    NotEnoughPorts {
        /// Ports wanted.
        wanted: u32,
        /// Suitable ports available.
        available: u32,
    },
    /// The demanded memory kind/channel count is absent.
    MemoryUnavailable {
        /// The unmet demand.
        demand: MemoryDemand,
    },
    /// The role needs a host link but the device has no PCIe endpoint.
    HostLinkUnavailable,
    /// Shell + role logic exceed the device's capacity.
    DoesNotFit {
        /// Combined requirement.
        required: ResourceUsage,
        /// Device capacity.
        capacity: ResourceUsage,
    },
}

impl fmt::Display for TailorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailorError::NetworkSpeedUnavailable {
                wanted_gbps,
                best_gbps,
            } => write!(
                f,
                "role wants {wanted_gbps}G networking, device tops out at {best_gbps}G"
            ),
            TailorError::NotEnoughPorts { wanted, available } => {
                write!(f, "role wants {wanted} network ports, device has {available}")
            }
            TailorError::MemoryUnavailable { demand } => {
                write!(f, "device lacks demanded memory {demand:?}")
            }
            TailorError::HostLinkUnavailable => f.write_str("device has no PCIe endpoint"),
            TailorError::DoesNotFit { .. } => f.write_str("shell + role exceed device capacity"),
        }
    }
}

impl Error for TailorError {}

/// A role-specific shell produced by hierarchical tailoring.
#[derive(Debug)]
pub struct TailoredShell {
    role_name: String,
    device_name: String,
    rbbs: Vec<Box<dyn Rbb>>,
    mgmt_resources: ResourceUsage,
    health: HealthLedger,
}

impl TailoredShell {
    /// Standard MAC instance speeds selectable at module level.
    const MAC_SPEEDS: [u32; 4] = [25, 100, 200, 400];

    /// Tailors the unified shell to a role.
    ///
    /// # Errors
    ///
    /// Returns a [`TailorError`] when the device lacks a demanded
    /// capability — the paper's portability caveat: roles migrate freely
    /// only "to FPGA platforms that have appropriate hardware capabilities".
    pub fn tailor(unified: &UnifiedShell, role: &RoleSpec) -> Result<TailoredShell, TailorError> {
        let device = unified.device();
        let die = device.die_vendor();
        let mut rbbs: Vec<Box<dyn Rbb>> = Vec::new();

        // Module level: Network RBBs at the selected instance speed.
        if let Some(wanted) = role.network_gbps() {
            let instance_speed = Self::MAC_SPEEDS
                .iter()
                .copied()
                .find(|&s| s >= wanted)
                .unwrap_or(400);
            let suitable = device
                .peripherals()
                .iter()
                .filter(|p| match p {
                    Peripheral::Qsfp { gbps } | Peripheral::Dsfp { gbps } => *gbps >= wanted,
                    _ => false,
                })
                .count() as u32;
            if suitable == 0 {
                return Err(TailorError::NetworkSpeedUnavailable {
                    wanted_gbps: wanted,
                    best_gbps: device
                        .peripherals()
                        .iter()
                        .filter_map(|p| match p {
                            Peripheral::Qsfp { gbps } | Peripheral::Dsfp { gbps } => Some(*gbps),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(0),
                });
            }
            if suitable < role.network_ports() {
                return Err(TailorError::NotEnoughPorts {
                    wanted: role.network_ports(),
                    available: suitable,
                });
            }
            for _ in 0..role.network_ports() {
                let mut net = NetworkRbb::with_speed(die, instance_speed, role.desired_queues());
                net.set_accept_multicast(role.multicast());
                rbbs.push(Box::new(net));
            }
        }

        if role.network_gbps().is_none()
            && device.peripherals().iter().any(Peripheral::is_network)
        {
            // Production shells retain a minimal 25G management port even
            // when the role itself does no packet processing (remote
            // update/telemetry path), which bounds how much module-level
            // tailoring can ever strip.
            rbbs.push(Box::new(NetworkRbb::with_speed(die, 25, 4)));
        }

        // Module level: Memory RBB instance selection (BDMA-vs-SGDMA-style
        // choice collapses to DDR-vs-HBM here).
        if let Some(demand) = role.memory() {
            match demand {
                MemoryDemand::Ddr { channels } => {
                    let available = device
                        .peripherals()
                        .iter()
                        .filter(|p| matches!(p, Peripheral::Ddr { .. }))
                        .count() as u32;
                    if available < channels {
                        return Err(TailorError::MemoryUnavailable { demand });
                    }
                    rbbs.push(Box::new(MemoryRbb::ddr(
                        die,
                        crate::unified::ddr_generation(device),
                        channels,
                    )));
                }
                MemoryDemand::Hbm => {
                    if !device.has_hbm() {
                        return Err(TailorError::MemoryUnavailable { demand });
                    }
                    rbbs.push(Box::new(MemoryRbb::hbm(die)));
                }
            }
        }

        // Module level: Host RBB.
        if role.host_link() {
            let (gen, lanes) = device.pcie().ok_or(TailorError::HostLinkUnavailable)?;
            rbbs.push(Box::new(HostRbb::with_advertised_queues(
                harmonia_hw::ip::PcieDmaIp::new(die, gen, lanes),
                role.desired_queues(),
            )));
        }

        let mgmt_resources: ResourceUsage =
            management_components().iter().map(|c| c.resources).sum();
        let shell = TailoredShell {
            role_name: role.name().to_string(),
            device_name: device.name().to_string(),
            rbbs,
            mgmt_resources,
            health: HealthLedger::new(),
        };

        let required =
            (shell.resources() + *role.role_resources()).retargeted_for(device.capacity());
        if !required.fits_in(device.capacity()) {
            return Err(TailorError::DoesNotFit {
                required,
                capacity: *device.capacity(),
            });
        }
        Ok(shell)
    }

    /// The role this shell serves.
    pub fn role_name(&self) -> &str {
        &self.role_name
    }

    /// The device it is tailored for.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// The retained RBBs.
    pub fn rbbs(&self) -> &[Box<dyn Rbb>] {
        &self.rbbs
    }

    /// RBBs of one kind.
    pub fn rbbs_of(&self, kind: RbbKind) -> impl Iterator<Item = &dyn Rbb> + '_ {
        self.rbbs
            .iter()
            .filter(move |r| r.kind() == kind)
            .map(|r| r.as_ref())
    }

    /// The shell's module-health ledger (graceful degradation: a module
    /// the driver gave up on is out of service, the rest keep serving).
    pub fn health(&self) -> &HealthLedger {
        &self.health
    }

    /// Mutable health ledger, for the host driver's failure handling.
    pub fn health_mut(&mut self) -> &mut HealthLedger {
        &mut self.health
    }

    /// RBBs still in service (total minus degraded modules).
    pub fn serving_rbbs(&self) -> usize {
        self.rbbs.len().saturating_sub(self.health.degraded_count())
    }

    /// Total shell resources after tailoring.
    pub fn resources(&self) -> ResourceUsage {
        let rbb: ResourceUsage = self.rbbs.iter().map(|r| r.resources()).sum();
        rbb + self.mgmt_resources
    }

    /// Resource savings versus the unified shell, as a fraction per kind
    /// (Figure 11). Kinds the unified shell does not use report 0.
    pub fn savings_vs(&self, unified: &UnifiedShell, kind: ResourceKind) -> f64 {
        let u = unified.resources().get(kind);
        if u == 0 {
            return 0.0;
        }
        let t = self.resources().get(kind);
        1.0 - (t as f64 / u as f64)
    }

    /// Overall (LUT-weighted) saving fraction.
    pub fn overall_savings_vs(&self, unified: &UnifiedShell) -> f64 {
        self.savings_vs(unified, ResourceKind::Lut)
    }

    /// The property-level split: merged config inventory of retained RBBs.
    /// The role sees only the role-oriented items.
    pub fn config_inventory(&self) -> ConfigInventory {
        let mut inv = ConfigInventory::new(format!("{}-shell", self.role_name));
        for r in &self.rbbs {
            inv.merge(&r.config_inventory());
        }
        inv
    }

    /// Configuration-reduction factor for the role (Figure 12).
    pub fn config_reduction_factor(&self) -> Option<f64> {
        self.config_inventory().reduction_factor()
    }

    /// Development-workload inventory under a migration (Figure 15's
    /// per-application view).
    pub fn workload(&self, migration: MigrationKind) -> ModuleWorkload {
        let mut w: ModuleWorkload = self.rbbs.iter().map(|r| r.workload(migration)).sum();
        for c in management_components() {
            let origin = if c.portability.reused_under(migration) {
                Origin::Reused
            } else {
                Origin::Handcraft
            };
            w.add(c.name, c.loc, origin);
        }
        w
    }
}

impl fmt::Display for TailoredShell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shell[{} on {}]: {} RBBs",
            self.role_name,
            self.device_name,
            self.rbbs.len()
        )?;
        if self.health.degraded_count() > 0 {
            write!(f, " ({} degraded)", self.health.degraded_count())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_sim::Freq;

    fn unified_a() -> UnifiedShell {
        UnifiedShell::for_device(&catalog::device_a())
    }

    fn netrole() -> RoleSpec {
        RoleSpec::builder("netrole").network_gbps(100).build()
    }

    #[test]
    fn tailoring_drops_unneeded_rbbs() {
        let u = unified_a();
        let t = TailoredShell::tailor(&u, &netrole()).unwrap();
        assert_eq!(t.rbbs_of(RbbKind::Network).count(), 2);
        assert_eq!(t.rbbs_of(RbbKind::Memory).count(), 0);
        assert_eq!(t.rbbs_of(RbbKind::Host).count(), 1);
    }

    #[test]
    fn savings_in_fig11_band() {
        let u = unified_a();
        // The four evaluation roles span the 3–25.1 % saving range.
        let roles = [
            RoleSpec::builder("sec-gateway")
                .network_gbps(100)
                .memory(MemoryDemand::Ddr { channels: 1 })
                .build(),
            RoleSpec::builder("layer4-lb")
                .network_gbps(100)
                .memory(MemoryDemand::Ddr { channels: 1 })
                .build(),
            RoleSpec::builder("retrieval")
                .network_ports(1)
                .network_gbps(100)
                .memory(MemoryDemand::Hbm)
                .build(),
            RoleSpec::builder("host-network")
                .network_gbps(100)
                .memory(MemoryDemand::Ddr { channels: 1 })
                .multicast()
                .build(),
        ];
        for role in &roles {
            let t = TailoredShell::tailor(&u, role).unwrap();
            let s = 100.0 * t.overall_savings_vs(&u);
            assert!(
                (2.0..=31.0).contains(&s),
                "{}: saving {s:.1}% outside the Figure 11 range",
                role.name()
            );
        }
    }

    #[test]
    fn instance_selection_picks_matching_speed() {
        let u = unified_a();
        let slow = RoleSpec::builder("slow").network_gbps(25).build();
        let t = TailoredShell::tailor(&u, &slow).unwrap();
        let net = t.rbbs_of(RbbKind::Network).next().unwrap();
        assert_eq!(net.instance().data_width_bits(), 128); // 25G instance
        // The tailored 25G shell is cheaper than a 100G selection.
        let fast = TailoredShell::tailor(&u, &netrole()).unwrap();
        assert!(t.resources().lut < fast.resources().lut);
    }

    #[test]
    fn missing_memory_capability_rejected() {
        let uc = UnifiedShell::for_device(&catalog::device_c());
        let role = RoleSpec::builder("needs-hbm")
            .memory(MemoryDemand::Hbm)
            .build();
        assert_eq!(
            TailoredShell::tailor(&uc, &role).unwrap_err(),
            TailorError::MemoryUnavailable {
                demand: MemoryDemand::Hbm
            }
        );
    }

    #[test]
    fn network_speed_shortfall_rejected() {
        let ud = UnifiedShell::for_device(&catalog::device_d());
        let role = RoleSpec::builder("fast").network_gbps(400).build();
        assert_eq!(
            TailoredShell::tailor(&ud, &role).unwrap_err(),
            TailorError::NetworkSpeedUnavailable {
                wanted_gbps: 400,
                best_gbps: 100
            }
        );
    }

    #[test]
    fn port_shortage_rejected() {
        let u = unified_a();
        let role = RoleSpec::builder("many-ports")
            .network_gbps(100)
            .network_ports(4)
            .build();
        assert!(matches!(
            TailoredShell::tailor(&u, &role).unwrap_err(),
            TailorError::NotEnoughPorts { available: 2, .. }
        ));
    }

    #[test]
    fn oversized_role_rejected() {
        let u = unified_a();
        let role = RoleSpec::builder("huge")
            .network_gbps(100)
            .role_resources(ResourceUsage::new(10_000_000, 1, 0, 0, 0))
            .build();
        assert!(matches!(
            TailoredShell::tailor(&u, &role).unwrap_err(),
            TailorError::DoesNotFit { .. }
        ));
    }

    #[test]
    fn config_reduction_in_fig12_band() {
        let u = unified_a();
        let role = RoleSpec::builder("lb")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build();
        let t = TailoredShell::tailor(&u, &role).unwrap();
        let f = t.config_reduction_factor().unwrap();
        assert!((8.8..=19.8).contains(&f), "factor {f:.1}");
    }

    #[test]
    fn same_role_ports_across_devices() {
        // Portability: one spec tailors onto every device that has the
        // capabilities, with zero role-side changes.
        let role = RoleSpec::builder("portable").network_gbps(100).build();
        for dev in catalog::all() {
            let u = UnifiedShell::for_device(&dev);
            let t = TailoredShell::tailor(&u, &role);
            assert!(t.is_ok(), "{}: {:?}", dev.name(), t.err());
        }
    }

    #[test]
    fn role_clock_domains_join_via_cdc() {
        // A role at 250 MHz × 512 b against a 100G MAC RBB: check the CDC
        // losslessness precondition the tailored shell establishes.
        let role = RoleSpec::builder("r")
            .network_gbps(100)
            .user_domain(Freq::mhz(400), 512)
            .build();
        let u = unified_a();
        let t = TailoredShell::tailor(&u, &role).unwrap();
        let net = t.rbbs_of(RbbKind::Network).next().unwrap();
        let cdc = crate::cdc::ParamCdc::new(
            net.instance().core_clock(),
            net.instance().data_width_bits(),
            role.user_clock(),
            role.user_width_bits(),
            32,
        );
        assert!(cdc.is_lossless());
    }

    #[test]
    fn display_mentions_role_and_device() {
        let u = unified_a();
        let t = TailoredShell::tailor(&u, &netrole()).unwrap();
        let s = t.to_string();
        assert!(s.contains("netrole") && s.contains("Device A"));
    }

    #[test]
    fn degraded_module_leaves_the_rest_serving() {
        let u = unified_a();
        let mut t = TailoredShell::tailor(&u, &netrole()).unwrap();
        let total = t.rbbs().len();
        assert_eq!(t.serving_rbbs(), total);
        assert!(t
            .health_mut()
            .mark_degraded(RbbKind::Network.id(), 1, 7_000));
        assert_eq!(t.serving_rbbs(), total - 1);
        assert!(t.health().is_degraded(RbbKind::Network.id(), 1));
        assert!(!t.health().is_degraded(RbbKind::Network.id(), 0));
        assert!(t.to_string().contains("(1 degraded)"));
        t.health_mut().restore(RbbKind::Network.id(), 1);
        assert_eq!(t.serving_rbbs(), total);
        assert!(!t.to_string().contains("degraded"));
    }
}
