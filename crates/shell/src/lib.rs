//! Harmonia's platform-independent layer (§3.3): the unified shell.
//!
//! * [`rbb`] — the Reusable Building Block abstraction and the three
//!   production RBBs: [`rbb::NetworkRbb`] (packet filter, flow director,
//!   traffic monitors), [`rbb::MemoryRbb`] (address interleaving, hot
//!   cache) and [`rbb::HostRbb`] (1K-queue multi-tenant isolation with
//!   active-queue scheduling);
//! * [`cdc`] — the parameterized clock-domain crossing that joins an RBB at
//!   `S` MHz × `M` bits to user logic at `R` MHz × `U` bits losslessly when
//!   `S × M = R × U`;
//! * [`unified`] — the one-size-fits-all [`unified::UnifiedShell`] holding
//!   every RBB a device supports plus shell management logic;
//! * [`tailor`] — hierarchical shell tailoring: module-level RBB/instance
//!   selection and property-level configuration splitting, producing the
//!   role-specific shells of Figures 11 and 12;
//! * [`role`] — role requirement descriptions used to drive tailoring;
//! * [`pr`] — multi-tenancy via partial reconfiguration: PR slots over the
//!   role region with per-tenant queue isolation (§6, Discussion);
//! * [`sched`] — deterministic time-multiplexing of a PR slot across
//!   more tenants than slots: round-robin or weighted-fair slices with
//!   honest context-save/restore charges.
//!
//! # Example
//!
//! ```
//! use harmonia_shell::{RoleSpec, UnifiedShell, TailoredShell};
//! use harmonia_hw::device::catalog;
//!
//! let device = catalog::device_a();
//! let unified = UnifiedShell::for_device(&device);
//! let role = RoleSpec::builder("demo").network_gbps(100).build();
//! let tailored = TailoredShell::tailor(&unified, &role).unwrap();
//! assert!(tailored.resources().lut < unified.resources().lut);
//! ```

pub mod cdc;
pub mod datapath;
pub mod health;
pub mod pr;
pub mod rbb;
pub mod role;
pub mod sched;
pub mod tailor;
pub mod unified;

pub use cdc::ParamCdc;
pub use datapath::{DatapathReport, DatapathSim};
pub use health::{HealthLedger, RbbHealth};
pub use pr::{MultiTenantRegion, TenancyError, TenantRole};
pub use rbb::{MigrationKind, Rbb, RbbKind};
pub use role::{MemoryDemand, RoleSpec};
pub use sched::{SliceGrant, TenantPolicy, TenantScheduler};
pub use tailor::{TailorError, TailoredShell};
pub use unified::UnifiedShell;
