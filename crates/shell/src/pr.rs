//! Multi-tenancy through partial reconfiguration (§6, Discussion).
//!
//! "Harmonia utilizes the Ex-function in RBBs to achieve resource isolation
//! in the shell, while employing typical partial reconfiguration techniques
//! to enable multi-tenancy deployment in the role. Moreover, Harmonia
//! provides multiple independent queues to isolate host software belonging
//! to different users."
//!
//! This module models the role region as a set of PR slots: tenants deploy
//! into slots (checked against slot capacity), each tenant gets an
//! exclusive host-queue range, and slot reconfiguration pays the realistic
//! bitstream-load time (region size over ICAP bandwidth) while the rest of
//! the shell keeps running.

use crate::tailor::TailoredShell;
use harmonia_hw::resource::ResourceUsage;
use harmonia_sim::metrics::MetricsRegistry;
use harmonia_sim::Picos;
use std::error::Error;
use std::fmt;
use std::ops::Range;

/// Bytes of partial bitstream per LUT of reconfigurable region (frame
/// overhead included) — used to model reconfiguration time.
const BITSTREAM_BYTES_PER_LUT: u64 = 12;
/// Internal configuration port bandwidth, bytes/second (ICAP-class).
const ICAP_BYTES_PER_SEC: u64 = 400_000_000;

/// A tenant's role deployed into a PR slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantRole {
    /// Tenant name.
    pub name: String,
    /// The tenant logic's resource footprint.
    pub resources: ResourceUsage,
    /// Host queues the tenant wants.
    pub queues: u16,
}

impl TenantRole {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, resources: ResourceUsage, queues: u16) -> Self {
        TenantRole {
            name: name.into(),
            resources,
            queues,
        }
    }
}

/// One partially reconfigurable slot of the role region.
#[derive(Clone, Debug)]
pub struct PrSlot {
    capacity: ResourceUsage,
    tenant: Option<TenantRole>,
    reconfigurations: u64,
}

impl PrSlot {
    /// The slot's resource capacity.
    pub fn capacity(&self) -> &ResourceUsage {
        &self.capacity
    }

    /// The currently deployed tenant, if any.
    pub fn tenant(&self) -> Option<&TenantRole> {
        self.tenant.as_ref()
    }

    /// How many times this slot has been reconfigured.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Time to load a partial bitstream for this slot.
    pub fn reconfig_time_ps(&self) -> Picos {
        let bytes = self.capacity.lut * BITSTREAM_BYTES_PER_LUT;
        bytes * 1_000_000_000_000 / ICAP_BYTES_PER_SEC
    }
}

/// Multi-tenancy errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenancyError {
    /// Slot index out of range.
    NoSuchSlot {
        /// Offending index.
        slot: usize,
    },
    /// The slot already hosts a tenant; undeploy first.
    SlotOccupied {
        /// Occupied slot.
        slot: usize,
        /// Resident tenant.
        resident: String,
    },
    /// The tenant's logic exceeds the slot's capacity.
    DoesNotFit {
        /// Target slot.
        slot: usize,
        /// Requested resources.
        requested: ResourceUsage,
        /// Slot capacity.
        capacity: ResourceUsage,
    },
    /// Not enough free host queues for the tenant's isolation range.
    QueuesExhausted {
        /// Queues requested.
        requested: u16,
        /// Queues remaining.
        available: u16,
    },
    /// The slot is empty (undeploy of a free slot).
    SlotEmpty {
        /// Offending index.
        slot: usize,
    },
    /// An explicit queue range collides with a range already assigned to
    /// another slot — caught at deploy time, before the tenant lands.
    RangeOverlap {
        /// Target slot.
        slot: usize,
        /// The requested range.
        requested: Range<u16>,
        /// The slot whose range it collides with.
        other: usize,
    },
    /// An explicit queue range reaches past the region's queue space.
    RangeOutOfBounds {
        /// The requested range.
        requested: Range<u16>,
        /// Total queues the region owns.
        total: u16,
    },
    /// An explicit queue range's width disagrees with the tenant's
    /// declared queue demand.
    RangeMismatch {
        /// The requested range.
        requested: Range<u16>,
        /// Queues the tenant declared.
        declared: u16,
    },
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::NoSuchSlot { slot } => write!(f, "no PR slot {slot}"),
            TenancyError::SlotOccupied { slot, resident } => {
                write!(f, "slot {slot} already hosts '{resident}'")
            }
            TenancyError::DoesNotFit { slot, .. } => {
                write!(f, "tenant does not fit in slot {slot}")
            }
            TenancyError::QueuesExhausted {
                requested,
                available,
            } => write!(f, "wanted {requested} queues, {available} available"),
            TenancyError::SlotEmpty { slot } => write!(f, "slot {slot} is empty"),
            TenancyError::RangeOverlap {
                slot,
                requested,
                other,
            } => write!(
                f,
                "queue range {}..{} for slot {slot} overlaps slot {other}",
                requested.start, requested.end
            ),
            TenancyError::RangeOutOfBounds { requested, total } => write!(
                f,
                "queue range {}..{} exceeds the {total}-queue region",
                requested.start, requested.end
            ),
            TenancyError::RangeMismatch {
                requested,
                declared,
            } => write!(
                f,
                "queue range {}..{} is not the declared {declared} queues wide",
                requested.start, requested.end
            ),
        }
    }
}

impl Error for TenancyError {}

/// The multi-tenant role region over a tailored shell.
#[derive(Clone, Debug)]
pub struct MultiTenantRegion {
    slots: Vec<PrSlot>,
    /// Total host queues available for tenant isolation.
    total_queues: u16,
    /// Next free queue index (queues are handed out as disjoint ranges).
    next_queue: u16,
    /// Queue range per slot (parallel to `slots`).
    queue_ranges: Vec<Option<Range<u16>>>,
    /// Accumulated reconfiguration time.
    total_reconfig_ps: Picos,
    /// Observability sink; disabled (and free) by default.
    metrics: MetricsRegistry,
}

impl MultiTenantRegion {
    /// Partitions the device headroom left by a tailored shell into
    /// `slot_count` equal PR slots, with `total_queues` host queues
    /// available for tenant isolation.
    ///
    /// # Panics
    ///
    /// Panics if `slot_count` is zero.
    pub fn partition(
        shell: &TailoredShell,
        device_capacity: &ResourceUsage,
        slot_count: usize,
        total_queues: u16,
    ) -> Self {
        assert!(slot_count > 0, "need at least one PR slot");
        let headroom = device_capacity.saturating_sub(&shell.resources());
        // Leave 20% of headroom for routing/PR overhead.
        let usable = ResourceUsage::new(
            headroom.lut * 8 / 10,
            headroom.reg * 8 / 10,
            headroom.bram * 8 / 10,
            headroom.uram * 8 / 10,
            headroom.dsp * 8 / 10,
        );
        let n = slot_count as u64;
        let per_slot = ResourceUsage::new(
            usable.lut / n,
            usable.reg / n,
            usable.bram / n,
            usable.uram / n,
            usable.dsp / n,
        );
        MultiTenantRegion {
            slots: (0..slot_count)
                .map(|_| PrSlot {
                    capacity: per_slot,
                    tenant: None,
                    reconfigurations: 0,
                })
                .collect(),
            total_queues,
            next_queue: 0,
            queue_ranges: vec![None; slot_count],
            total_reconfig_ps: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    /// Attaches a metrics registry; reconfiguration charges become
    /// `harmonia_pr_reconfig_ps_total` / `harmonia_pr_reconfigs_total`
    /// counters in Prometheus exports.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// The PR slots.
    pub fn slots(&self) -> &[PrSlot] {
        &self.slots
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.tenant.is_some()).count()
    }

    /// Host queues not yet assigned to any tenant.
    pub fn free_queues(&self) -> u16 {
        self.total_queues - self.next_queue
    }

    /// The queue range assigned to a slot's tenant.
    pub fn queue_range(&self, slot: usize) -> Option<Range<u16>> {
        self.queue_ranges.get(slot).cloned().flatten()
    }

    /// Total time spent reconfiguring.
    pub fn total_reconfig_ps(&self) -> Picos {
        self.total_reconfig_ps
    }

    /// Checks a candidate range for a slot: in bounds and disjoint from
    /// every range already assigned to *another* slot.
    fn validate_range(&self, slot: usize, range: &Range<u16>) -> Result<(), TenancyError> {
        if range.end > self.total_queues || range.start > range.end {
            return Err(TenancyError::RangeOutOfBounds {
                requested: range.clone(),
                total: self.total_queues,
            });
        }
        for (other, r) in self.queue_ranges.iter().enumerate() {
            let Some(r) = r else { continue };
            if other == slot {
                continue;
            }
            if range.start < r.end && r.start < range.end {
                return Err(TenancyError::RangeOverlap {
                    slot,
                    requested: range.clone(),
                    other,
                });
            }
        }
        Ok(())
    }

    /// Slot fit/occupancy pre-flight shared by the deploy paths.
    fn validate_slot(&self, slot: usize, tenant: &TenantRole) -> Result<(), TenancyError> {
        let s = self
            .slots
            .get(slot)
            .ok_or(TenancyError::NoSuchSlot { slot })?;
        if let Some(resident) = &s.tenant {
            return Err(TenancyError::SlotOccupied {
                slot,
                resident: resident.name.clone(),
            });
        }
        if !tenant.resources.fits_in(&s.capacity) {
            return Err(TenancyError::DoesNotFit {
                slot,
                requested: tenant.resources,
                capacity: s.capacity,
            });
        }
        Ok(())
    }

    /// Lands a validated tenant in a slot and charges the PR load time.
    fn install(&mut self, slot: usize, tenant: TenantRole, range: Range<u16>) -> Picos {
        self.queue_ranges[slot] = Some(range);
        let s = &mut self.slots[slot];
        s.tenant = Some(tenant);
        s.reconfigurations += 1;
        let t = s.reconfig_time_ps();
        self.total_reconfig_ps += t;
        self.metrics
            .counter_add("harmonia_pr_reconfig_ps_total", &[], t);
        self.metrics.counter_inc("harmonia_pr_reconfigs_total", &[]);
        t
    }

    /// Deploys a tenant into a slot: capacity check, disjoint queue-range
    /// assignment (validated *before* the tenant lands), and the PR load
    /// time charged.
    ///
    /// # Errors
    ///
    /// See [`TenancyError`].
    pub fn deploy(&mut self, slot: usize, tenant: TenantRole) -> Result<Picos, TenancyError> {
        self.validate_slot(slot, &tenant)?;
        if tenant.queues > self.free_queues() {
            return Err(TenancyError::QueuesExhausted {
                requested: tenant.queues,
                available: self.free_queues(),
            });
        }
        let range = self.next_queue..self.next_queue + tenant.queues;
        // Defense in depth: the monotone allocator cannot hand out an
        // overlapping range on its own, but scheduler-reserved ranges
        // (restored via `deploy_with_range`) share the same space — fail
        // the deploy rather than break isolation after the fact.
        self.validate_range(slot, &range)?;
        self.next_queue = range.end;
        Ok(self.install(slot, tenant, range))
    }

    /// Reserves a disjoint queue range without touching any slot — the
    /// tenant scheduler pins one persistent range per registered tenant
    /// and restores it on every time-slice swap, so a tenant's doorbells
    /// survive preemption (same tenant, same queues: no cross-tenant
    /// leak, unlike recycling a *retired* range).
    ///
    /// # Errors
    ///
    /// [`TenancyError::QueuesExhausted`] when fewer than `n` queues remain.
    pub fn reserve_queues(&mut self, n: u16) -> Result<Range<u16>, TenancyError> {
        if n > self.free_queues() {
            return Err(TenancyError::QueuesExhausted {
                requested: n,
                available: self.free_queues(),
            });
        }
        let range = self.next_queue..self.next_queue + n;
        self.next_queue = range.end;
        Ok(range)
    }

    /// Deploys a tenant into a slot with an explicit, previously reserved
    /// queue range (see [`MultiTenantRegion::reserve_queues`]). The range
    /// is validated eagerly — bounds, width against the tenant's declared
    /// demand, and disjointness against every other slot — so an
    /// isolation violation is a deploy-time [`TenancyError`], never a
    /// broken [`MultiTenantRegion::queues_disjoint`] after the fact.
    ///
    /// # Errors
    ///
    /// See [`TenancyError`].
    pub fn deploy_with_range(
        &mut self,
        slot: usize,
        tenant: TenantRole,
        range: Range<u16>,
    ) -> Result<Picos, TenancyError> {
        self.validate_slot(slot, &tenant)?;
        self.validate_range(slot, &range)?;
        if range.end - range.start != tenant.queues {
            return Err(TenancyError::RangeMismatch {
                requested: range,
                declared: tenant.queues,
            });
        }
        Ok(self.install(slot, tenant, range))
    }

    /// Charges a context save against a slot: before an occupied slot is
    /// preempted, the tenant's live state is read back over the same
    /// configuration port the bitstream loads through, so it costs one
    /// more [`PrSlot::reconfig_time_ps`]. Shows up in
    /// `harmonia_pr_reconfig_ps_total` like any other charge.
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchSlot`] or [`TenancyError::SlotEmpty`].
    pub fn charge_context_save(&mut self, slot: usize) -> Result<Picos, TenancyError> {
        let s = self
            .slots
            .get(slot)
            .ok_or(TenancyError::NoSuchSlot { slot })?;
        if s.tenant.is_none() {
            return Err(TenancyError::SlotEmpty { slot });
        }
        let t = s.reconfig_time_ps();
        self.total_reconfig_ps += t;
        self.metrics
            .counter_add("harmonia_pr_reconfig_ps_total", &[], t);
        Ok(t)
    }

    /// Removes a tenant from a slot. Its queue range is retired (queues
    /// are not recycled — production drains and fences them; a fresh range
    /// avoids cross-tenant data leaks).
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchSlot`] or [`TenancyError::SlotEmpty`].
    pub fn undeploy(&mut self, slot: usize) -> Result<TenantRole, TenancyError> {
        let s = self
            .slots
            .get_mut(slot)
            .ok_or(TenancyError::NoSuchSlot { slot })?;
        let tenant = s.tenant.take().ok_or(TenancyError::SlotEmpty { slot })?;
        self.queue_ranges[slot] = None;
        Ok(tenant)
    }

    /// Swaps a slot's tenant in one operation (undeploy + deploy), the hot
    /// path of time-shared multi-tenancy. Returns `(evicted, load_time)`.
    ///
    /// The swap is atomic: every failure mode is checked *before* the
    /// resident is evicted (retired queues are never recycled, so the
    /// incoming tenant's queue demand is against `free_queues()` as-is),
    /// and on error the region is unchanged.
    ///
    /// # Errors
    ///
    /// See [`TenancyError`].
    pub fn swap(
        &mut self,
        slot: usize,
        tenant: TenantRole,
    ) -> Result<(TenantRole, Picos), TenancyError> {
        // Validate the incoming tenant against the slot before evicting.
        let s = self
            .slots
            .get(slot)
            .ok_or(TenancyError::NoSuchSlot { slot })?;
        if s.tenant.is_none() {
            return Err(TenancyError::SlotEmpty { slot });
        }
        if !tenant.resources.fits_in(&s.capacity) {
            return Err(TenancyError::DoesNotFit {
                slot,
                requested: tenant.resources,
                capacity: s.capacity,
            });
        }
        if tenant.queues > self.free_queues() {
            return Err(TenancyError::QueuesExhausted {
                requested: tenant.queues,
                available: self.free_queues(),
            });
        }
        let evicted = self.undeploy(slot)?;
        let t = self.deploy(slot, tenant)?;
        Ok((evicted, t))
    }

    /// Verifies the isolation invariant: all assigned queue ranges are
    /// pairwise disjoint.
    pub fn queues_disjoint(&self) -> bool {
        let mut ranges: Vec<&Range<u16>> = self.queue_ranges.iter().flatten().collect();
        ranges.sort_by_key(|r| r.start);
        ranges.windows(2).all(|w| w[0].end <= w[1].start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::RoleSpec;
    use crate::unified::UnifiedShell;
    use harmonia_hw::device::catalog;

    fn region(slots: usize) -> MultiTenantRegion {
        let device = catalog::device_a();
        let unified = UnifiedShell::for_device(&device);
        let role = RoleSpec::builder("mt").network_gbps(100).build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        MultiTenantRegion::partition(&shell, device.capacity(), slots, 1024)
    }

    fn small_tenant(name: &str, queues: u16) -> TenantRole {
        TenantRole::new(name, ResourceUsage::new(50_000, 80_000, 100, 20, 100), queues)
    }

    #[test]
    fn partition_splits_headroom() {
        let r = region(4);
        assert_eq!(r.slots().len(), 4);
        let cap = r.slots()[0].capacity();
        assert!(cap.lut > 100_000, "slot capacity {} too small", cap.lut);
        assert_eq!(r.occupied(), 0);
    }

    #[test]
    fn deploy_and_queue_isolation() {
        let mut r = region(4);
        r.deploy(0, small_tenant("alice", 64)).unwrap();
        r.deploy(1, small_tenant("bob", 128)).unwrap();
        assert_eq!(r.occupied(), 2);
        assert_eq!(r.queue_range(0), Some(0..64));
        assert_eq!(r.queue_range(1), Some(64..192));
        assert!(r.queues_disjoint());
        assert_eq!(r.free_queues(), 1024 - 192);
    }

    #[test]
    fn oversized_tenant_rejected() {
        let mut r = region(8); // small slots
        let huge = TenantRole::new("huge", ResourceUsage::new(5_000_000, 1, 0, 0, 0), 4);
        assert!(matches!(
            r.deploy(0, huge),
            Err(TenancyError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn occupied_slot_rejected_until_undeploy() {
        let mut r = region(2);
        r.deploy(0, small_tenant("a", 8)).unwrap();
        assert!(matches!(
            r.deploy(0, small_tenant("b", 8)),
            Err(TenancyError::SlotOccupied { .. })
        ));
        let evicted = r.undeploy(0).unwrap();
        assert_eq!(evicted.name, "a");
        r.deploy(0, small_tenant("b", 8)).unwrap();
    }

    #[test]
    fn queue_exhaustion_detected() {
        let mut r = region(2);
        r.deploy(0, small_tenant("greedy", 1000)).unwrap();
        assert!(matches!(
            r.deploy(1, small_tenant("late", 100)),
            Err(TenancyError::QueuesExhausted { available: 24, .. })
        ));
    }

    #[test]
    fn swap_charges_reconfig_time() {
        let mut r = region(2);
        r.deploy(0, small_tenant("v1", 16)).unwrap();
        let before = r.total_reconfig_ps();
        let (evicted, t) = r.swap(0, small_tenant("v2", 16)).unwrap();
        assert_eq!(evicted.name, "v1");
        // PR time is millisecond-scale for a ~100k-LUT region.
        let ms = t as f64 / 1e9;
        assert!((0.5..20.0).contains(&ms), "reconfig {ms:.2} ms");
        assert_eq!(r.total_reconfig_ps(), before + t);
        assert_eq!(r.slots()[0].reconfigurations(), 2);
        assert_eq!(r.slots()[0].tenant().unwrap().name, "v2");
    }

    #[test]
    fn swap_validates_before_evicting() {
        let mut r = region(2);
        r.deploy(0, small_tenant("keep", 16)).unwrap();
        let huge = TenantRole::new("huge", ResourceUsage::new(5_000_000, 1, 0, 0, 0), 4);
        assert!(r.swap(0, huge).is_err());
        // The resident survived the failed swap.
        assert_eq!(r.slots()[0].tenant().unwrap().name, "keep");
    }

    #[test]
    fn undeploy_empty_slot_errors() {
        let mut r = region(1);
        assert_eq!(r.undeploy(0), Err(TenancyError::SlotEmpty { slot: 0 }));
        assert!(matches!(
            r.undeploy(9),
            Err(TenancyError::NoSuchSlot { slot: 9 })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one PR slot")]
    fn zero_slots_rejected() {
        let _ = region(0);
    }

    #[test]
    fn reserved_range_survives_preemption_cycles() {
        let mut r = region(1);
        let range = r.reserve_queues(16).unwrap();
        assert_eq!(range, 0..16);
        for _ in 0..100 {
            r.deploy_with_range(0, small_tenant("t", 16), range.clone())
                .unwrap();
            assert_eq!(r.queue_range(0), Some(range.clone()));
            assert!(r.queues_disjoint());
            r.undeploy(0).unwrap();
        }
        // Pinned ranges never eat into the free pool a second time.
        assert_eq!(r.free_queues(), 1024 - 16);
    }

    #[test]
    fn deploy_with_range_rejects_overlap_eagerly() {
        let mut r = region(2);
        let a = r.reserve_queues(32).unwrap();
        r.deploy_with_range(0, small_tenant("a", 32), a.clone())
            .unwrap();
        let err = r
            .deploy_with_range(1, small_tenant("b", 8), 16..24)
            .unwrap_err();
        assert!(matches!(err, TenancyError::RangeOverlap { other: 0, .. }));
        assert!(r.queues_disjoint(), "failed deploy must not land");
        assert_eq!(r.occupied(), 1);
    }

    #[test]
    fn deploy_with_range_rejects_bounds_and_width() {
        let mut r = region(1);
        assert!(matches!(
            r.deploy_with_range(0, small_tenant("t", 8), 1020..1028),
            Err(TenancyError::RangeOutOfBounds { total: 1024, .. })
        ));
        assert!(matches!(
            r.deploy_with_range(0, small_tenant("t", 8), 0..4),
            Err(TenancyError::RangeMismatch { declared: 8, .. })
        ));
        assert_eq!(r.occupied(), 0);
    }

    #[test]
    fn context_save_charges_one_reconfig_time() {
        let mut r = region(2);
        r.deploy(0, small_tenant("t", 8)).unwrap();
        let before = r.total_reconfig_ps();
        let t = r.charge_context_save(0).unwrap();
        assert_eq!(t, r.slots()[0].reconfig_time_ps());
        assert_eq!(r.total_reconfig_ps(), before + t);
        // Empty slot has no state to save.
        assert_eq!(
            r.charge_context_save(1),
            Err(TenancyError::SlotEmpty { slot: 1 })
        );
    }

    #[test]
    fn reconfig_metrics_flow_to_registry() {
        use harmonia_sim::metrics::MetricsRegistry;
        let mut r = region(1);
        let m = MetricsRegistry::enabled();
        r.set_metrics_registry(m.clone());
        let t = r.deploy(0, small_tenant("t", 8)).unwrap();
        let s = r.charge_context_save(0).unwrap();
        let text = m.snapshot().export_prometheus();
        assert!(
            text.contains(&format!("harmonia_pr_reconfig_ps_total {}", t + s)),
            "{text}"
        );
        assert!(text.contains("harmonia_pr_reconfigs_total 1"), "{text}");
    }
}
