//! Beat-level datapath simulation: MAC → wrapper → CDC → role.
//!
//! The analytic models in `hw::ip` state the wrapper/CDC claims; this
//! module *verifies them by cycle simulation*. Packets arrive at line rate
//! on the MAC clock, cross the width converter and the gray-code async
//! FIFO into the role's clock domain, traverse the role pipeline, and are
//! counted on exit. Throughput must equal the analytic line-rate goodput
//! (no bubbles) and per-packet latency must equal serialization plus the
//! fixed pipeline depths.
//!
//! Both simulation engines drive the same per-edge body (`DatapathRun`):
//! the cycle engine walks every edge of both clocks; the event engine
//! (`HARMONIA_ENGINE=event`) pauses the MAC clock across provably inert
//! regions — before the first packet finishes serializing, between packet
//! arrivals once the crossing FIFO has settled, and permanently after the
//! last packet is ingested — and the differential tests pin that the two
//! reports are identical.

use crate::cdc::ParamCdc;
use harmonia_hw::ip::MacIp;
use harmonia_hw::ip::VendorIp;
use harmonia_platform::{InterfaceWrapper, WidthConverter};
use harmonia_sim::event::{Engine, EventClock, Wake};
use harmonia_sim::stream::{packet_to_beats, StreamBeat};
use harmonia_sim::{
    AsyncFifo, ClockDomain, ClockEdge, Freq, LatencyStats, MultiClock, Picos, Pipeline, Throughput,
};
use std::collections::VecDeque;

/// Result of a datapath simulation run.
#[derive(Debug)]
pub struct DatapathReport {
    /// Delivered throughput.
    pub throughput: Throughput,
    /// Per-packet wire-entry → role-exit latency.
    pub latency: LatencyStats,
    /// Packets fully delivered.
    pub packets_delivered: u64,
    /// Whether the ingress ever back-pressured onto the wire (a bubble).
    pub ingress_stalled: bool,
    /// Clock edges the engine actually visited. The cycle engine visits
    /// every edge of both domains; the event engine skips provably inert
    /// ones, so a smaller number here with an identical report is the
    /// skip-ahead working as designed.
    pub edges_visited: u64,
}

/// A simulated bump-in-the-wire ingress path.
#[derive(Debug)]
pub struct DatapathSim {
    mac: MacIp,
    user_clock: Freq,
    user_width_bits: u32,
    role_pipeline_cycles: u64,
    with_harmonia: bool,
}

impl DatapathSim {
    /// Creates a simulation of `mac` feeding a role at `user_clock` ×
    /// `user_width_bits` through Harmonia's wrapper + CDC.
    pub fn new(mac: MacIp, user_clock: Freq, user_width_bits: u32) -> Self {
        DatapathSim {
            mac,
            user_clock,
            user_width_bits,
            role_pipeline_cycles: 16,
            with_harmonia: true,
        }
    }

    /// Sets the role pipeline depth.
    pub fn with_role_pipeline(mut self, cycles: u64) -> Self {
        self.role_pipeline_cycles = cycles;
        self
    }

    /// Removes the Harmonia wrapper's translation stages (native-interface
    /// baseline). The clock-domain crossing itself remains — the role runs
    /// in its own domain either way — so the measured delta isolates the
    /// wrapper's fixed pipeline cycles.
    pub fn without_harmonia(mut self) -> Self {
        self.with_harmonia = false;
        self
    }

    /// Runs `count` back-to-back packets of `packet_bytes` at line rate.
    ///
    /// Dispatches on [`Engine::from_env`] (`HARMONIA_ENGINE`); see
    /// [`run_with`](DatapathSim::run_with).
    ///
    /// # Panics
    ///
    /// Panics if the CDC configuration would be lossy (`S×M > R×U`) — a
    /// mis-sized role domain is a design error the tailoring flow rejects.
    pub fn run(&self, packet_bytes: u32, count: u64) -> DatapathReport {
        self.run_with(packet_bytes, count, Engine::from_env())
    }

    /// [`run`](DatapathSim::run) with an explicit engine choice.
    ///
    /// The event engine pauses the MAC clock across regions where every
    /// skipped edge is provably inert (determinism rules in
    /// `harmonia_sim::event`): the ingress queue is empty *and* the
    /// crossing FIFO [`is_settled`](AsyncFifo::is_settled), so the skipped
    /// edges would only re-latch unchanged gray pointers. The user clock
    /// is never paused — it drains the role pipeline and its edge/cycle
    /// numbering must stay exact.
    pub fn run_with(&self, packet_bytes: u32, count: u64, engine: Engine) -> DatapathReport {
        let mac_clock = self.mac.core_clock();
        let mac_width = self.mac.data_width_bits();
        if self.with_harmonia {
            let cdc = ParamCdc::new(
                mac_clock,
                mac_width,
                self.user_clock,
                self.user_width_bits,
                64,
            );
            assert!(
                cdc.is_lossless(),
                "role domain {} x {}b cannot absorb the MAC",
                self.user_clock,
                self.user_width_bits
            );
        }

        let wrapper_extra = if self.with_harmonia {
            InterfaceWrapper::wrap(&self.mac, self.user_width_bits).latency_cycles()
        } else {
            0
        };
        let mut run = DatapathRun::new(
            packet_bytes,
            count,
            mac_width,
            self.user_width_bits,
            self.role_pipeline_cycles,
            wrapper_extra,
            self.mac.speed_gbps(),
        );

        // Run until everything is delivered (bounded by 4× the ideal time).
        let deadline = 4 * run.wire_ps_per_pkt * count + 10_000_000;
        match engine {
            Engine::Cycle => {
                let mut mc = MultiClock::new();
                let mac_clk = mc.add(ClockDomain::new(mac_clock));
                let _user_clk = mc.add(ClockDomain::new(self.user_clock));
                for edge in mc.edges_until(deadline) {
                    if run.done() {
                        break;
                    }
                    if edge.clock == mac_clk {
                        run.on_mac_edge(edge);
                    } else {
                        run.on_user_edge(edge);
                    }
                }
            }
            Engine::Event => {
                let mut ec = EventClock::new();
                let mac_period = ClockDomain::new(mac_clock).period_ps();
                let mac_clk = ec.add(ClockDomain::new(mac_clock));
                let user_clk = ec.add(ClockDomain::new(self.user_clock));
                while let Some(wake) = ec.next_wake_before(deadline) {
                    if run.done() {
                        break;
                    }
                    let edge = match wake {
                        Wake::Edge(e) => e,
                        Wake::Pin(_) => continue,
                    };
                    if edge.clock == mac_clk {
                        run.on_mac_edge(edge);
                        // Skip-ahead: with nothing queued on the wire side
                        // and the crossing FIFO fully settled, every MAC
                        // edge until the next packet arrival only
                        // re-latches unchanged pointers — provably inert.
                        // If the user side is fully drained as well (no
                        // tags awaiting conversion, both pipelines empty),
                        // its edges are equally inert and both domains can
                        // sleep until the next arrival.
                        if run.ingress.is_empty() && run.fifo.is_settled() {
                            let user_idle = run.conv_tags.is_empty()
                                && run.role_pipe.next_exit_cycle().is_none()
                                && run.delivery_pipe.next_exit_cycle().is_none();
                            if run.next_ready_pkt >= count {
                                // No more packets will ever arrive.
                                ec.pause(mac_clk);
                                if user_idle {
                                    ec.pause(user_clk);
                                }
                            } else {
                                let next_arrival =
                                    (run.next_ready_pkt + 1) * run.wire_ps_per_pkt;
                                // Only sleep when the gap actually elides
                                // an edge: a sub-period pause costs more
                                // (two divisions in `resume_at`) than the
                                // zero edges it would skip.
                                if next_arrival > edge.at_ps + mac_period {
                                    ec.pause(mac_clk);
                                    ec.resume_at(mac_clk, next_arrival);
                                    if user_idle {
                                        ec.pause(user_clk);
                                        ec.resume_at(user_clk, next_arrival);
                                    }
                                }
                            }
                        }
                    } else {
                        run.on_user_edge(edge);
                    }
                }
            }
        }
        run.into_report()
    }
}

/// Per-edge simulation state shared verbatim by both engines.
struct DatapathRun {
    packet_bytes: u32,
    count: u64,
    mac_width: u32,
    wire_ps_per_pkt: Picos,
    /// Ingress queue of (beat, packet index) the MAC has received off the
    /// wire (fully serialized packets only: store-and-forward MAC).
    ingress: VecDeque<(StreamBeat, u64)>,
    next_ready_pkt: u64,
    fifo: AsyncFifo<(StreamBeat, u64)>,
    converter: WidthConverter,
    /// Tags for packets whose eop has entered the converter, in order.
    conv_tags: VecDeque<u64>,
    role_pipe: Pipeline<u64>,
    delivery_pipe: Pipeline<u64>,
    arrivals: Vec<Picos>,
    latency: LatencyStats,
    throughput: Throughput,
    delivered: u64,
    ingress_stalled: bool,
    last_exit_ps: Picos,
    edges_visited: u64,
}

impl DatapathRun {
    #[allow(clippy::too_many_arguments)]
    fn new(
        packet_bytes: u32,
        count: u64,
        mac_width: u32,
        user_width_bits: u32,
        role_pipeline_cycles: u64,
        wrapper_extra: u64,
        speed_gbps: u32,
    ) -> Self {
        // Wire model: packet n's first bit arrives at n × (wire time of one
        // packet + overhead); serialization finishes a packet later.
        let wire_ps_per_pkt =
            (u64::from(packet_bytes) + 20) * 8 * 1000 / u64::from(speed_gbps);
        DatapathRun {
            packet_bytes,
            count,
            mac_width,
            wire_ps_per_pkt,
            ingress: VecDeque::new(),
            next_ready_pkt: 0,
            fifo: AsyncFifo::new(64),
            converter: WidthConverter::new(mac_width, user_width_bits),
            conv_tags: VecDeque::new(),
            role_pipe: Pipeline::new(role_pipeline_cycles),
            delivery_pipe: Pipeline::new(wrapper_extra),
            arrivals: Vec::with_capacity(count as usize),
            latency: LatencyStats::new(),
            throughput: Throughput::new(),
            delivered: 0,
            ingress_stalled: false,
            last_exit_ps: 0,
            edges_visited: 0,
        }
    }

    fn done(&self) -> bool {
        self.delivered == self.count
    }

    fn on_mac_edge(&mut self, edge: ClockEdge) {
        self.edges_visited += 1;
        // Wire: packet n fully received at (n+1) × wire time.
        while self.next_ready_pkt < self.count
            && edge.at_ps >= (self.next_ready_pkt + 1) * self.wire_ps_per_pkt
        {
            self.arrivals.push(self.next_ready_pkt * self.wire_ps_per_pkt);
            for beat in packet_to_beats(self.packet_bytes, self.mac_width) {
                self.ingress.push_back((beat, self.next_ready_pkt));
            }
            self.next_ready_pkt += 1;
        }
        self.fifo.on_write_edge();
        if let Some(&(beat, tag)) = self.ingress.front() {
            if self.fifo.can_push() {
                self.fifo.try_push((beat, tag)).expect("can_push checked");
                self.ingress.pop_front();
            } else if self.ingress.len() > 256 {
                // Sustained backlog = the path cannot keep line rate.
                self.ingress_stalled = true;
            }
        }
    }

    fn on_user_edge(&mut self, edge: ClockEdge) {
        self.edges_visited += 1;
        // User domain: pop one MAC-width beat, convert, advance the role
        // pipeline one cycle.
        self.fifo.on_read_edge();
        if let Some((beat, tag)) = self.fifo.try_pop() {
            if beat.eop {
                self.conv_tags.push_back(tag);
            }
            self.converter.push(beat);
        }
        // Drain converted beats; packet completion enters the role
        // pipeline at its eop beat.
        for out in self.converter.drain() {
            if out.eop {
                let tag = self.conv_tags.pop_front().expect("tag per packet");
                let _ = self.role_pipe.push(edge.cycle, tag);
            }
        }
        if let Some(tag) = self.role_pipe.pop(edge.cycle) {
            let _ = self.delivery_pipe.push(edge.cycle, tag);
        }
        if let Some(tag) = self.delivery_pipe.pop(edge.cycle) {
            let exit_ps = edge.at_ps;
            self.latency.record(exit_ps - self.arrivals[tag as usize]);
            self.throughput.record(u64::from(self.packet_bytes), 1);
            self.delivered += 1;
            self.last_exit_ps = exit_ps;
        }
    }

    fn into_report(mut self) -> DatapathReport {
        self.throughput.close(self.last_exit_ps.max(1));
        DatapathReport {
            throughput: self.throughput,
            latency: self.latency,
            packets_delivered: self.delivered,
            ingress_stalled: self.ingress_stalled,
            edges_visited: self.edges_visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::Vendor;

    fn sim() -> DatapathSim {
        DatapathSim::new(MacIp::new(Vendor::Xilinx, 100), Freq::khz(322_265), 512)
    }

    #[test]
    fn line_rate_sustained_without_bubbles() {
        for size in [64u32, 256, 1024] {
            let report = sim().run(size, 2_000);
            assert_eq!(report.packets_delivered, 2_000, "size {size}");
            assert!(!report.ingress_stalled, "size {size}: path stalled");
            let analytic = MacIp::new(Vendor::Xilinx, 100).throughput_gbps(size);
            let measured = report.throughput.gbps();
            let err = (measured - analytic).abs() / analytic;
            assert!(
                err < 0.03,
                "size {size}: simulated {measured:.2} vs analytic {analytic:.2} Gbps"
            );
        }
    }

    #[test]
    fn harmonia_latency_delta_is_fixed_cycles() {
        let with = sim().run(256, 500);
        let without = sim().without_harmonia().run(256, 500);
        assert_eq!(without.packets_delivered, 500);
        let delta = with.latency.mean_ps() - without.latency.mean_ps();
        // 4 wrapper cycles at ~322 MHz ≈ 12.4 ns.
        assert!(
            (8_000.0..20_000.0).contains(&delta),
            "wrapper delta {delta:.0} ps"
        );
    }

    #[test]
    fn latency_composition_is_sane() {
        let report = sim().with_role_pipeline(32).run(512, 300);
        let mean = report.latency.mean_ps();
        // Lower bound: one wire serialization (~42.6 µs? no — 512 B at
        // 100G ≈ 42.6 ns) plus 32 role cycles (~99 ns).
        assert!(mean > 100_000.0, "mean {mean:.0} ps too low");
        assert!(mean < 1_000_000.0, "mean {mean:.0} ps too high");
    }

    #[test]
    fn wider_role_domain_also_lossless() {
        // Role at 250 MHz × 1024 b absorbs the 322 MHz × 512 b MAC.
        let s = DatapathSim::new(MacIp::new(Vendor::Intel, 100), Freq::mhz(250), 1024);
        let report = s.run(128, 1_000);
        assert_eq!(report.packets_delivered, 1_000);
        assert!(!report.ingress_stalled);
    }

    #[test]
    fn engines_agree_on_the_full_report() {
        for size in [64u32, 256, 1024] {
            let cycle = sim().run_with(size, 400, Engine::Cycle);
            let event = sim().run_with(size, 400, Engine::Event);
            assert_eq!(cycle.packets_delivered, event.packets_delivered, "size {size}");
            assert_eq!(cycle.ingress_stalled, event.ingress_stalled, "size {size}");
            // Stats types carry no PartialEq; compare every rendered field.
            assert_eq!(
                cycle.throughput.gbps().to_bits(),
                event.throughput.gbps().to_bits(),
                "size {size}: throughput diverged"
            );
            assert_eq!(
                cycle.latency.mean_ps().to_bits(),
                event.latency.mean_ps().to_bits(),
                "size {size}: mean latency diverged"
            );
            assert_eq!(
                cycle.latency.max(),
                event.latency.max(),
                "size {size}: max latency diverged"
            );
            assert!(
                event.edges_visited <= cycle.edges_visited,
                "size {size}: event engine visited more edges"
            );
            if size == 1024 {
                // Large packets leave real inter-arrival gaps: the event
                // engine must actually skip, not just match.
                assert!(
                    event.edges_visited < cycle.edges_visited * 95 / 100,
                    "size {size}: no skip-ahead happened ({} vs {})",
                    event.edges_visited,
                    cycle.edges_visited
                );
            }
        }
    }

    #[test]
    fn engines_agree_without_harmonia_wrapper() {
        let cycle = sim().without_harmonia().run_with(256, 300, Engine::Cycle);
        let event = sim().without_harmonia().run_with(256, 300, Engine::Event);
        assert_eq!(cycle.packets_delivered, event.packets_delivered);
        assert_eq!(
            cycle.latency.mean_ps().to_bits(),
            event.latency.mean_ps().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "cannot absorb")]
    fn undersized_role_domain_rejected() {
        let s = DatapathSim::new(MacIp::new(Vendor::Xilinx, 100), Freq::mhz(100), 128);
        let _ = s.run(64, 10);
    }
}
