//! Beat-level datapath simulation: MAC → wrapper → CDC → role.
//!
//! The analytic models in `hw::ip` state the wrapper/CDC claims; this
//! module *verifies them by cycle simulation*. Packets arrive at line rate
//! on the MAC clock, cross the width converter and the gray-code async
//! FIFO into the role's clock domain, traverse the role pipeline, and are
//! counted on exit. Throughput must equal the analytic line-rate goodput
//! (no bubbles) and per-packet latency must equal serialization plus the
//! fixed pipeline depths.

use crate::cdc::ParamCdc;
use harmonia_hw::ip::MacIp;
use harmonia_hw::ip::VendorIp;
use harmonia_platform::{InterfaceWrapper, WidthConverter};
use harmonia_sim::stream::{packet_to_beats, StreamBeat};
use harmonia_sim::{AsyncFifo, ClockDomain, Freq, LatencyStats, MultiClock, Picos, Pipeline, Throughput};
use std::collections::VecDeque;

/// Result of a datapath simulation run.
#[derive(Debug)]
pub struct DatapathReport {
    /// Delivered throughput.
    pub throughput: Throughput,
    /// Per-packet wire-entry → role-exit latency.
    pub latency: LatencyStats,
    /// Packets fully delivered.
    pub packets_delivered: u64,
    /// Whether the ingress ever back-pressured onto the wire (a bubble).
    pub ingress_stalled: bool,
}

/// A simulated bump-in-the-wire ingress path.
#[derive(Debug)]
pub struct DatapathSim {
    mac: MacIp,
    user_clock: Freq,
    user_width_bits: u32,
    role_pipeline_cycles: u64,
    with_harmonia: bool,
}

impl DatapathSim {
    /// Creates a simulation of `mac` feeding a role at `user_clock` ×
    /// `user_width_bits` through Harmonia's wrapper + CDC.
    pub fn new(mac: MacIp, user_clock: Freq, user_width_bits: u32) -> Self {
        DatapathSim {
            mac,
            user_clock,
            user_width_bits,
            role_pipeline_cycles: 16,
            with_harmonia: true,
        }
    }

    /// Sets the role pipeline depth.
    pub fn with_role_pipeline(mut self, cycles: u64) -> Self {
        self.role_pipeline_cycles = cycles;
        self
    }

    /// Removes the Harmonia wrapper's translation stages (native-interface
    /// baseline). The clock-domain crossing itself remains — the role runs
    /// in its own domain either way — so the measured delta isolates the
    /// wrapper's fixed pipeline cycles.
    pub fn without_harmonia(mut self) -> Self {
        self.with_harmonia = false;
        self
    }

    /// Runs `count` back-to-back packets of `packet_bytes` at line rate.
    ///
    /// # Panics
    ///
    /// Panics if the CDC configuration would be lossy (`S×M > R×U`) — a
    /// mis-sized role domain is a design error the tailoring flow rejects.
    pub fn run(&self, packet_bytes: u32, count: u64) -> DatapathReport {
        let mac_clock = self.mac.core_clock();
        let mac_width = self.mac.data_width_bits();
        if self.with_harmonia {
            let cdc = ParamCdc::new(
                mac_clock,
                mac_width,
                self.user_clock,
                self.user_width_bits,
                64,
            );
            assert!(
                cdc.is_lossless(),
                "role domain {} x {}b cannot absorb the MAC",
                self.user_clock,
                self.user_width_bits
            );
        }

        // Wire model: packet n's first bit arrives at n × (wire time of one
        // packet + overhead); serialization finishes a packet later.
        let wire_ps_per_pkt = (u64::from(packet_bytes) + 20) * 8 * 1000
            / u64::from(self.mac.speed_gbps());

        let mut mc = MultiClock::new();
        let mac_clk = mc.add(ClockDomain::new(mac_clock));
        let _user_clk = mc.add(ClockDomain::new(self.user_clock));

        // Ingress queue of (beat, packet index) the MAC has received off
        // the wire (fully serialized packets only: store-and-forward MAC).
        let mut ingress: VecDeque<(StreamBeat, u64)> = VecDeque::new();
        let mut next_ready_pkt: u64 = 0;

        let mut fifo: AsyncFifo<(StreamBeat, u64)> = AsyncFifo::new(64);
        let mut converter = WidthConverter::new(mac_width, self.user_width_bits);
        // Tags for packets whose eop has entered the converter, in order.
        let mut conv_tags: VecDeque<u64> = VecDeque::new();
        let mut role_pipe: Pipeline<u64> = Pipeline::new(self.role_pipeline_cycles);
        let wrapper_extra = if self.with_harmonia {
            InterfaceWrapper::wrap(&self.mac, self.user_width_bits).latency_cycles()
        } else {
            0
        };
        let mut delivery_pipe: Pipeline<u64> = Pipeline::new(wrapper_extra);

        let mut arrivals: Vec<Picos> = Vec::with_capacity(count as usize);
        let mut latency = LatencyStats::new();
        let mut throughput = Throughput::new();
        let mut delivered = 0u64;
        let mut ingress_stalled = false;
        let mut last_exit_ps: Picos = 0;

        // Run until everything is delivered (bounded by 4× the ideal time).
        let ideal_ps = wire_ps_per_pkt * count;
        let deadline = 4 * ideal_ps + 10_000_000;
        for edge in mc.edges_until(deadline) {
            if delivered == count {
                break;
            }
            if edge.clock == mac_clk {
                // Wire: packet n fully received at (n+1) × wire time.
                while next_ready_pkt < count
                    && edge.at_ps >= (next_ready_pkt + 1) * wire_ps_per_pkt
                {
                    arrivals.push(next_ready_pkt * wire_ps_per_pkt);
                    for beat in packet_to_beats(packet_bytes, mac_width) {
                        ingress.push_back((beat, next_ready_pkt));
                    }
                    next_ready_pkt += 1;
                }
                fifo.on_write_edge();
                if let Some(&(beat, tag)) = ingress.front() {
                    if fifo.can_push() {
                        fifo.try_push((beat, tag)).expect("can_push checked");
                        ingress.pop_front();
                    } else if ingress.len() > 256 {
                        // Sustained backlog = the path cannot keep line rate.
                        ingress_stalled = true;
                    }
                }
            } else {
                // User domain: pop one MAC-width beat, convert, advance the
                // role pipeline one cycle.
                fifo.on_read_edge();
                if let Some((beat, tag)) = fifo.try_pop() {
                    if beat.eop {
                        conv_tags.push_back(tag);
                    }
                    converter.push(beat);
                }
                // Drain converted beats; packet completion enters the role
                // pipeline at its eop beat.
                for out in converter.drain() {
                    if out.eop {
                        let tag = conv_tags.pop_front().expect("tag per packet");
                        let _ = role_pipe.push(edge.cycle, tag);
                    }
                }
                if let Some(tag) = role_pipe.pop(edge.cycle) {
                    let _ = delivery_pipe.push(edge.cycle, tag);
                }
                if let Some(tag) = delivery_pipe.pop(edge.cycle) {
                    let exit_ps = edge.at_ps;
                    latency.record(exit_ps - arrivals[tag as usize]);
                    throughput.record(u64::from(packet_bytes), 1);
                    delivered += 1;
                    last_exit_ps = exit_ps;
                }
            }
        }
        throughput.close(last_exit_ps.max(1));
        DatapathReport {
            throughput,
            latency,
            packets_delivered: delivered,
            ingress_stalled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::Vendor;

    fn sim() -> DatapathSim {
        DatapathSim::new(MacIp::new(Vendor::Xilinx, 100), Freq::khz(322_265), 512)
    }

    #[test]
    fn line_rate_sustained_without_bubbles() {
        for size in [64u32, 256, 1024] {
            let report = sim().run(size, 2_000);
            assert_eq!(report.packets_delivered, 2_000, "size {size}");
            assert!(!report.ingress_stalled, "size {size}: path stalled");
            let analytic = MacIp::new(Vendor::Xilinx, 100).throughput_gbps(size);
            let measured = report.throughput.gbps();
            let err = (measured - analytic).abs() / analytic;
            assert!(
                err < 0.03,
                "size {size}: simulated {measured:.2} vs analytic {analytic:.2} Gbps"
            );
        }
    }

    #[test]
    fn harmonia_latency_delta_is_fixed_cycles() {
        let with = sim().run(256, 500);
        let without = sim().without_harmonia().run(256, 500);
        assert_eq!(without.packets_delivered, 500);
        let delta = with.latency.mean_ps() - without.latency.mean_ps();
        // 4 wrapper cycles at ~322 MHz ≈ 12.4 ns.
        assert!(
            (8_000.0..20_000.0).contains(&delta),
            "wrapper delta {delta:.0} ps"
        );
    }

    #[test]
    fn latency_composition_is_sane() {
        let report = sim().with_role_pipeline(32).run(512, 300);
        let mean = report.latency.mean_ps();
        // Lower bound: one wire serialization (~42.6 µs? no — 512 B at
        // 100G ≈ 42.6 ns) plus 32 role cycles (~99 ns).
        assert!(mean > 100_000.0, "mean {mean:.0} ps too low");
        assert!(mean < 1_000_000.0, "mean {mean:.0} ps too high");
    }

    #[test]
    fn wider_role_domain_also_lossless() {
        // Role at 250 MHz × 1024 b absorbs the 322 MHz × 512 b MAC.
        let s = DatapathSim::new(MacIp::new(Vendor::Intel, 100), Freq::mhz(250), 1024);
        let report = s.run(128, 1_000);
        assert_eq!(report.packets_delivered, 1_000);
        assert!(!report.ingress_stalled);
    }

    #[test]
    #[should_panic(expected = "cannot absorb")]
    fn undersized_role_domain_rejected() {
        let s = DatapathSim::new(MacIp::new(Vendor::Xilinx, 100), Freq::mhz(100), 128);
        let _ = s.run(64, 10);
    }
}
