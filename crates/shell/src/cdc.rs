//! Parameterized clock-domain crossing (§3.3.1, Figure 6).
//!
//! "To synchronize an RBB at S MHz clock and M bits data width with a user
//! application at R MHz clock and U bits data width, Harmonia employs the
//! widely used asynchronous FIFO to perform cross-domain data read and
//! write. … Users can select instances that match S × M = R × U to achieve
//! lossless bandwidth." [`ParamCdc`] wires the gray-code
//! `AsyncFifo` between two clock/width domains
//! and can simulate a saturated transfer to verify exactly that condition.

use harmonia_sim::event::{Engine, EventClock, Wake};
use harmonia_sim::{AsyncFifo, ClockDomain, ClockEdge, Freq, MultiClock, Picos};

/// Report of a saturated CDC transfer simulation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CdcReport {
    /// Write-side beats offered (one per write edge).
    pub offered: u64,
    /// Write-side beats accepted into the FIFO.
    pub accepted: u64,
    /// Write-side edges where the FIFO back-pressured.
    pub writer_stalls: u64,
    /// Read-side beats delivered.
    pub delivered: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

impl CdcReport {
    /// Delivered bandwidth over a window, in Gbps.
    pub fn delivered_gbps(&self, window_ps: Picos) -> f64 {
        (self.bytes_delivered as f64 * 8.0) / (window_ps as f64 / 1e3) // bits/ns = Gbps
    }
}

/// A clock-domain crossing between an RBB-side domain (`S` MHz × `M` bits)
/// and a user-side domain (`R` MHz × `U` bits).
#[derive(Debug, Clone)]
pub struct ParamCdc {
    rbb_clock: ClockDomain,
    rbb_bits: u32,
    user_clock: ClockDomain,
    user_bits: u32,
    depth: usize,
}

impl ParamCdc {
    /// Creates a CDC with the given domain parameters and FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if widths are not positive multiples of 8 or `depth` is not a
    /// power of two.
    pub fn new(
        rbb_clock: Freq,
        rbb_bits: u32,
        user_clock: Freq,
        user_bits: u32,
        depth: usize,
    ) -> Self {
        assert!(rbb_bits >= 8 && rbb_bits.is_multiple_of(8), "bad RBB width");
        assert!(
            user_bits >= 8 && user_bits.is_multiple_of(8),
            "bad user width"
        );
        assert!(
            depth.is_power_of_two(),
            "async FIFO depth must be a power of two"
        );
        ParamCdc {
            rbb_clock: ClockDomain::new(rbb_clock),
            rbb_bits,
            user_clock: ClockDomain::new(user_clock),
            user_bits,
            depth,
        }
    }

    /// RBB-side bandwidth `S × M` in bits/second.
    pub fn rbb_bandwidth_bps(&self) -> u128 {
        u128::from(self.rbb_clock.freq().hz()) * u128::from(self.rbb_bits)
    }

    /// User-side bandwidth `R × U` in bits/second.
    pub fn user_bandwidth_bps(&self) -> u128 {
        u128::from(self.user_clock.freq().hz()) * u128::from(self.user_bits)
    }

    /// Whether the configuration satisfies the lossless condition
    /// `S × M ≤ R × U` (the reader drains at least as fast as the writer
    /// fills; equality is the paper's matched case).
    pub fn is_lossless(&self) -> bool {
        self.rbb_bandwidth_bps() <= self.user_bandwidth_bps()
    }

    /// Simulates a saturated transfer from the RBB domain to the user
    /// domain for `window_ps`. The writer offers one full `M`-bit beat per
    /// write edge; the reader drains one `U`-bit beat's worth per read edge.
    ///
    /// The FIFO carries words of the *wider* of the two interfaces: when
    /// the writer is narrower, the up-converting gearbox sits in the write
    /// domain (a word completes every `U/M` write beats); when the reader
    /// is narrower, the down-converting gearbox sits in the read domain.
    ///
    /// Dispatches on [`Engine::from_env`] (`HARMONIA_ENGINE`); both
    /// engines produce identical reports — see
    /// [`simulate_with`](ParamCdc::simulate_with).
    pub fn simulate(&self, window_ps: Picos) -> CdcReport {
        self.simulate_with(window_ps, Engine::from_env())
    }

    /// [`simulate`](ParamCdc::simulate) with an explicit engine choice.
    ///
    /// A saturated CDC has no quiescent regions — every edge carries a
    /// beat — so the event engine walks the same edge stream the cycle
    /// engine does and the two are identical by construction (the per-edge
    /// body is shared). The differential tests pin it anyway.
    pub fn simulate_with(&self, window_ps: Picos, engine: Engine) -> CdcReport {
        let mut run = CdcRun::new(self);
        match engine {
            Engine::Cycle => {
                let mut mc = MultiClock::new();
                mc.add(self.rbb_clock);
                mc.add(self.user_clock);
                for edge in mc.edges_until(window_ps) {
                    run.on_edge(edge);
                }
            }
            Engine::Event => {
                let mut ec = EventClock::new();
                ec.add(self.rbb_clock);
                ec.add(self.user_clock);
                while let Some(wake) = ec.next_wake_before(window_ps) {
                    if let Wake::Edge(edge) = wake {
                        run.on_edge(edge);
                    }
                }
            }
        }
        run.report
    }
}

/// The per-edge transfer body shared by both engines: clock index 0 is
/// the write (RBB) domain, index 1 the read (user) domain.
struct CdcRun {
    fifo: AsyncFifo<u32>,
    wbytes: u64,
    rbytes: u64,
    entry_bytes: u64,
    /// Write-side gearbox accumulator.
    wacc: u64,
    /// A completed word awaiting a FIFO slot (its presence back-pressures
    /// the writer).
    pending_word: bool,
    /// Read-side gearbox residue.
    reader_residue: u64,
    report: CdcReport,
}

impl CdcRun {
    fn new(cdc: &ParamCdc) -> Self {
        let wbytes = u64::from(cdc.rbb_bits / 8);
        let rbytes = u64::from(cdc.user_bits / 8);
        CdcRun {
            fifo: AsyncFifo::new(cdc.depth),
            wbytes,
            rbytes,
            entry_bytes: wbytes.max(rbytes),
            wacc: 0,
            pending_word: false,
            reader_residue: 0,
            report: CdcReport::default(),
        }
    }

    fn on_edge(&mut self, edge: ClockEdge) {
        if edge.clock == 0 {
            self.fifo.on_write_edge();
            if self.pending_word {
                if self.fifo.can_push() {
                    self.fifo
                        .try_push(self.entry_bytes as u32)
                        .expect("can_push checked");
                    self.pending_word = false;
                } else {
                    // The completed word has nowhere to go: the writer
                    // cannot accept a new beat this edge.
                    self.report.offered += 1;
                    self.report.writer_stalls += 1;
                    return;
                }
            }
            self.report.offered += 1;
            self.report.accepted += 1;
            self.wacc += self.wbytes;
            if self.wacc >= self.entry_bytes {
                self.wacc -= self.entry_bytes;
                if self.fifo.can_push() {
                    self.fifo
                        .try_push(self.entry_bytes as u32)
                        .expect("can_push checked");
                } else {
                    self.pending_word = true;
                }
            }
        } else {
            self.fifo.on_read_edge();
            if self.reader_residue < self.rbytes {
                if let Some(b) = self.fifo.try_pop() {
                    self.reader_residue += u64::from(b);
                }
            }
            let take = self.reader_residue.min(self.rbytes);
            if take > 0 {
                self.reader_residue -= take;
                self.report.delivered += 1;
                self.report.bytes_delivered += take;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: Picos = 1_000_000;

    #[test]
    fn matched_bandwidth_is_lossless() {
        // RBB: 322 MHz × 512 b; user: 322 MHz × 512 b.
        let cdc = ParamCdc::new(Freq::mhz(322), 512, Freq::mhz(322), 512, 32);
        assert!(cdc.is_lossless());
        let r = cdc.simulate(100 * US);
        assert_eq!(r.writer_stalls, 0);
        assert!(r.accepted > 0);
    }

    #[test]
    fn width_frequency_tradeoff_is_lossless() {
        // S×M = R×U with different shapes: 100 MHz × 512 b vs 400 MHz × 128 b.
        let cdc = ParamCdc::new(Freq::mhz(100), 512, Freq::mhz(400), 128, 32);
        assert!(cdc.is_lossless());
        let r = cdc.simulate(100 * US);
        assert_eq!(r.writer_stalls, 0, "stalled {} times", r.writer_stalls);
        // Delivered ≈ offered bandwidth (64 B per write edge).
        let offered_bytes = r.accepted * 64;
        assert!(r.bytes_delivered >= offered_bytes - 64 * 8);
    }

    #[test]
    fn undersized_reader_backpressures() {
        // Reader bandwidth half the writer's: S×M = 2·R×U.
        let cdc = ParamCdc::new(Freq::mhz(200), 512, Freq::mhz(200), 256, 16);
        assert!(!cdc.is_lossless());
        let r = cdc.simulate(100 * US);
        assert!(r.writer_stalls > r.accepted / 2, "expected heavy stalling");
        // Reader still runs at its own full rate.
        let reader_bw = r.delivered_gbps(100 * US);
        let expected = 200e6 * 256.0 / 1e9;
        assert!((reader_bw - expected).abs() / expected < 0.05);
    }

    #[test]
    fn oversized_reader_never_stalls_writer() {
        let cdc = ParamCdc::new(Freq::mhz(100), 128, Freq::mhz(400), 128, 16);
        assert!(cdc.is_lossless());
        let r = cdc.simulate(50 * US);
        assert_eq!(r.writer_stalls, 0);
    }

    #[test]
    fn paper_parameter_progression() {
        // The Network RBB widths/speeds of §3.3.1: 128 b / 512 b / 2048 b.
        for (bits, mhz) in [(128u32, 250u64), (512, 322), (2048, 402)] {
            let cdc = ParamCdc::new(
                Freq::mhz(mhz),
                bits,
                Freq::mhz(mhz),
                bits,
                32,
            );
            assert!(cdc.is_lossless());
        }
    }

    #[test]
    fn engines_agree_on_every_shape() {
        for (s, m, r, u) in [
            (322u64, 512u32, 322u64, 512u32), // matched
            (100, 512, 400, 128),             // width/frequency trade
            (200, 512, 200, 256),             // undersized reader, stalls
            (100, 128, 400, 128),             // oversized reader
        ] {
            let cdc = ParamCdc::new(Freq::mhz(s), m, Freq::mhz(r), u, 16);
            let cycle = cdc.simulate_with(20 * US, Engine::Cycle);
            let event = cdc.simulate_with(20 * US, Engine::Event);
            assert_eq!(cycle, event, "engines diverged for {s}×{m} → {r}×{u}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_depth_rejected() {
        let _ = ParamCdc::new(Freq::mhz(100), 64, Freq::mhz(100), 64, 12);
    }

    #[test]
    fn report_bandwidth_math() {
        let r = CdcReport {
            bytes_delivered: 1_250_000, // over 100 µs → 100 Gbps
            ..Default::default()
        };
        assert!((r.delivered_gbps(100 * US) - 100.0).abs() < 1e-9);
    }
}
