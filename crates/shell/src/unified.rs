//! The unified shell abstraction (§3.3.1).
//!
//! [`UnifiedShell::for_device`] instantiates every RBB a device's
//! peripherals support — at their maximum performance points — plus the
//! shell-management logic (health monitoring, dynamic configuration, board
//! I/O). It is deliberately one-size-fits-all: Figure 11's point is that
//! this unified shell costs more resources than a role needs, which is
//! what hierarchical tailoring then recovers.

use crate::rbb::{
    HostRbb, LogicComponent, LogicPart, MemoryRbb, MigrationKind, NetworkRbb, Portability, Rbb,
    RbbKind,
};
use harmonia_hw::device::{FpgaDevice, Peripheral};
use harmonia_hw::resource::ResourceUsage;
use harmonia_metrics::config::ConfigInventory;
use harmonia_metrics::workload::{ModuleWorkload, Origin};

/// Shell-management logic present in every shell instance: the §2.1
/// production-shell functionality that is not tied to one RBB.
pub fn management_components() -> Vec<LogicComponent> {
    vec![
        LogicComponent {
            name: "health-monitor",
            part: LogicPart::Monitoring,
            portability: Portability::Universal,
            loc: 1_800,
            resources: ResourceUsage::new(2_600, 3_900, 4, 0, 0),
        },
        LogicComponent {
            name: "dynamic-config",
            part: LogicPart::Control,
            portability: Portability::VendorBound,
            loc: 1_400,
            resources: ResourceUsage::new(2_000, 2_800, 6, 0, 0),
        },
        LogicComponent {
            name: "board-io",
            part: LogicPart::InstanceGlue,
            portability: Portability::ChipBound,
            loc: 800,
            resources: ResourceUsage::new(1_100, 1_600, 0, 0, 0),
        },
        LogicComponent {
            name: "sensor-bus",
            part: LogicPart::Control,
            portability: Portability::VendorBound,
            loc: 600,
            resources: ResourceUsage::new(800, 1_200, 0, 0, 0),
        },
    ]
}

/// The DDR generation a device's channels run at (oldest wins when mixed;
/// legacy boards still carry DDR3).
pub fn ddr_generation(device: &FpgaDevice) -> u8 {
    device
        .peripherals()
        .iter()
        .filter_map(|p| match p {
            Peripheral::Ddr { gen, .. } => Some(*gen),
            _ => None,
        })
        .min()
        .unwrap_or(4)
}

/// The one-size-fits-all shell for a device.
#[derive(Debug)]
pub struct UnifiedShell {
    device: FpgaDevice,
    rbbs: Vec<Box<dyn Rbb>>,
    mgmt: Vec<LogicComponent>,
}

impl UnifiedShell {
    /// Builds the unified shell for a device: one Network RBB per network
    /// cage at the cage's full speed, Memory RBBs covering every DRAM kind
    /// present, and the Host RBB at the device's PCIe performance point.
    pub fn for_device(device: &FpgaDevice) -> Self {
        let die = device.die_vendor();
        let mut rbbs: Vec<Box<dyn Rbb>> = Vec::new();
        for p in device.peripherals() {
            match *p {
                Peripheral::Qsfp { gbps } | Peripheral::Dsfp { gbps } => {
                    rbbs.push(Box::new(NetworkRbb::with_speed(
                        die,
                        gbps,
                        HostRbb::QUEUES,
                    )));
                }
                _ => {}
            }
        }
        let ddr_channels = device
            .peripherals()
            .iter()
            .filter(|p| matches!(p, Peripheral::Ddr { .. }))
            .count() as u32;
        if ddr_channels > 0 {
            rbbs.push(Box::new(MemoryRbb::ddr(die, ddr_generation(device), ddr_channels)));
        }
        if device.has_hbm() {
            rbbs.push(Box::new(MemoryRbb::hbm(die)));
        }
        if let Some((gen, lanes)) = device.pcie() {
            rbbs.push(Box::new(HostRbb::with_link(die, gen, lanes)));
        }
        UnifiedShell {
            device: device.clone(),
            rbbs,
            mgmt: management_components(),
        }
    }

    /// The device this shell was built for.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// The device's name.
    pub fn device_name(&self) -> &str {
        self.device.name()
    }

    /// The shell's RBBs.
    pub fn rbbs(&self) -> &[Box<dyn Rbb>] {
        &self.rbbs
    }

    /// RBBs of one kind.
    pub fn rbbs_of(&self, kind: RbbKind) -> impl Iterator<Item = &dyn Rbb> + '_ {
        self.rbbs
            .iter()
            .filter(move |r| r.kind() == kind)
            .map(|r| r.as_ref())
    }

    /// The shell-management component inventory.
    pub fn management(&self) -> &[LogicComponent] {
        &self.mgmt
    }

    /// Total shell resources: every RBB plus management logic.
    pub fn resources(&self) -> ResourceUsage {
        let rbb: ResourceUsage = self.rbbs.iter().map(|r| r.resources()).sum();
        let mgmt: ResourceUsage = self.mgmt.iter().map(|c| c.resources).sum();
        rbb + mgmt
    }

    /// The shell's development-workload inventory under a migration.
    pub fn workload(&self, migration: MigrationKind) -> ModuleWorkload {
        let mut w: ModuleWorkload = self.rbbs.iter().map(|r| r.workload(migration)).sum();
        for c in &self.mgmt {
            let origin = if c.portability.reused_under(migration) {
                Origin::Reused
            } else {
                Origin::Handcraft
            };
            w.add(c.name, c.loc, origin);
        }
        w
    }

    /// The merged configuration inventory across all RBBs.
    pub fn config_inventory(&self) -> ConfigInventory {
        let mut inv = ConfigInventory::new(format!("{}-unified-shell", self.device_name()));
        for r in &self.rbbs {
            inv.merge(&r.config_inventory());
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;

    #[test]
    fn device_a_gets_every_rbb_kind() {
        let shell = UnifiedShell::for_device(&catalog::device_a());
        assert_eq!(shell.rbbs_of(RbbKind::Network).count(), 2); // 2 cages
        assert_eq!(shell.rbbs_of(RbbKind::Memory).count(), 2); // DDR + HBM
        assert_eq!(shell.rbbs_of(RbbKind::Host).count(), 1);
    }

    #[test]
    fn device_c_has_no_memory_rbb() {
        let shell = UnifiedShell::for_device(&catalog::device_c());
        assert_eq!(shell.rbbs_of(RbbKind::Memory).count(), 0);
        assert_eq!(shell.rbbs_of(RbbKind::Network).count(), 2);
    }

    #[test]
    fn unified_shell_fits_every_catalog_device() {
        for dev in catalog::all() {
            let shell = UnifiedShell::for_device(&dev);
            assert!(
                shell
                    .resources()
                    .retargeted_for(dev.capacity())
                    .fits_in(dev.capacity()),
                "{}: shell does not fit",
                dev.name()
            );
            // A production shell is a significant but minority share.
            let pct = shell.resources().percent_of(dev.capacity(), harmonia_hw::ResourceKind::Lut);
            assert!(pct > 5.0 && pct < 50.0, "{}: LUT {pct:.1}%", dev.name());
        }
    }

    #[test]
    fn shell_reuse_fraction_in_band_across_devices() {
        // Figure 15: applications show 70–80 % shell reuse across FPGAs;
        // the unified shell's own cross-migration reuse must sit in a
        // compatible range.
        let shell = UnifiedShell::for_device(&catalog::device_a());
        let xv = shell.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = shell.workload(MigrationKind::CrossChip).reuse_fraction();
        assert!((0.64..0.80).contains(&xv), "cross-vendor {xv:.3}");
        assert!((0.80..0.95).contains(&xc), "cross-chip {xc:.3}");
    }

    #[test]
    fn config_inventory_merges_all_rbbs() {
        let shell = UnifiedShell::for_device(&catalog::device_d());
        let inv = shell.config_inventory();
        // 2 network + 1 memory + 1 host RBB, each with ≥20 items.
        assert!(inv.total() > 80, "only {} items", inv.total());
        assert!(inv.role_oriented() >= 12);
    }

    #[test]
    fn management_always_present() {
        for dev in catalog::all() {
            let shell = UnifiedShell::for_device(&dev);
            assert_eq!(shell.management().len(), 4);
        }
    }
}
