//! Host RBB: PCIe/DMA host connectivity (§3.3.1).
//!
//! Ex-function: **multi-queue isolation** — 1K DMA queues isolating
//! transmitted data from different tenants, with an active/inactive state
//! per queue so the scheduler "only schedules active queues to improve the
//! scheduling rate". Monitoring tracks per-queue depth, transmitted packets
//! and speed. Data moves on mem-map + stream interfaces; control uses a
//! 32-bit reg interface. Data width and clock double with each PCIe
//! generation, handled by the parameterized CDC.

use crate::rbb::{LogicComponent, LogicPart, Portability, Rbb, RbbKind};
use harmonia_hw::ip::{PcieDmaIp, VendorIp};
use harmonia_hw::regfile::{Access, RegisterFile};
use harmonia_hw::resource::ResourceUsage;
use harmonia_hw::Vendor;
use harmonia_metrics::config::{ConfigClass, ConfigInventory};
use harmonia_sim::SyncFifo;
use std::error::Error;
use std::fmt;

/// Per-queue statistics (the monitoring part: depth, packets, speed).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Entries accepted.
    pub enqueued: u64,
    /// Entries scheduled out.
    pub dequeued: u64,
    /// Bytes scheduled out.
    pub bytes: u64,
    /// Entries rejected (inactive queue or full buffer).
    pub dropped: u64,
}

/// Errors from queue operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HostQueueError {
    /// Queue index ≥ queue count.
    OutOfRange {
        /// Offending index.
        queue: u16,
    },
    /// The queue is inactive; tenants must activate before sending.
    Inactive {
        /// Offending index.
        queue: u16,
    },
    /// The queue's buffer is full (per-tenant backpressure).
    Full {
        /// Offending index.
        queue: u16,
    },
}

impl fmt::Display for HostQueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostQueueError::OutOfRange { queue } => write!(f, "queue {queue} out of range"),
            HostQueueError::Inactive { queue } => write!(f, "queue {queue} is inactive"),
            HostQueueError::Full { queue } => write!(f, "queue {queue} is full"),
        }
    }
}

impl Error for HostQueueError {}

#[derive(Debug)]
struct HostQueue {
    active: bool,
    buf: SyncFifo<u32>, // entry = payload size in bytes
    stats: QueueStats,
}

/// The Host RBB.
#[derive(Debug)]
pub struct HostRbb {
    dma: PcieDmaIp,
    components: Vec<LogicComponent>,
    /// Queues the role asked to have exposed (≤ QUEUES); drives how many
    /// contexts host software programs.
    advertised_queues: u16,
    queues: Vec<HostQueue>,
    /// Indices of active queues, in activation order (scheduler ring).
    active_ring: Vec<u16>,
    ring_pos: usize,
    /// Slots the scheduler examined (for the scheduling-rate ablation).
    sched_visits: u64,
}

impl HostRbb {
    /// Number of DMA queues (the paper's "1K DMA queues").
    pub const QUEUES: u16 = 1024;
    /// Per-queue buffer depth.
    pub const QUEUE_DEPTH: usize = 256;

    /// Creates a Host RBB around the selected DMA instance.
    pub fn new(dma: PcieDmaIp) -> Self {
        Self::with_advertised_queues(dma, Self::QUEUES)
    }

    /// Creates a Host RBB advertising only `queues` queues to the role
    /// (property-level tailoring of the queue surface).
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero or exceeds [`Self::QUEUES`].
    pub fn with_advertised_queues(dma: PcieDmaIp, queues: u16) -> Self {
        assert!(
            (1..=Self::QUEUES).contains(&queues),
            "advertised queues {queues} out of range"
        );
        HostRbb {
            dma,
            advertised_queues: queues,
            components: Self::component_inventory(),
            queues: (0..Self::QUEUES)
                .map(|_| HostQueue {
                    active: false,
                    buf: SyncFifo::new(Self::QUEUE_DEPTH),
                    stats: QueueStats::default(),
                })
                .collect(),
            active_ring: Vec::new(),
            ring_pos: 0,
            sched_visits: 0,
        }
    }

    /// Selects a PCIe instance matching the device's host link — "roles
    /// should select specific PCIe instances that align with their host
    /// communication demands".
    pub fn with_link(die_vendor: Vendor, gen: u8, lanes: u8) -> Self {
        Self::new(PcieDmaIp::new(die_vendor, gen, lanes))
    }

    /// Queues advertised to the role.
    pub fn advertised_queues(&self) -> u16 {
        self.advertised_queues
    }

    fn component_inventory() -> Vec<LogicComponent> {
        vec![
            LogicComponent {
                name: "mq-isolation",
                part: LogicPart::ExFunction,
                portability: Portability::Universal,
                loc: 3_500,
                resources: ResourceUsage::new(5_200, 7_800, 64, 16, 0),
            },
            LogicComponent {
                name: "active-scheduler",
                part: LogicPart::ExFunction,
                portability: Portability::Universal,
                loc: 2_400,
                resources: ResourceUsage::new(3_100, 4_400, 4, 0, 0),
            },
            LogicComponent {
                name: "stat-core",
                part: LogicPart::Monitoring,
                portability: Portability::Universal,
                loc: 1_000,
                resources: ResourceUsage::new(1_400, 2_100, 8, 0, 0),
            },
            LogicComponent {
                name: "dsc-ctrl",
                part: LogicPart::Control,
                portability: Portability::VendorBound,
                loc: 1_700,
                resources: ResourceUsage::new(2_300, 3_200, 2, 0, 0),
            },
            LogicComponent {
                name: "irq-glue",
                part: LogicPart::Monitoring,
                portability: Portability::VendorBound,
                loc: 700,
                resources: ResourceUsage::new(900, 1_300, 0, 0, 0),
            },
            LogicComponent {
                name: "instance-glue",
                part: LogicPart::InstanceGlue,
                portability: Portability::ChipBound,
                loc: 700,
                resources: ResourceUsage::new(1_000, 1_500, 0, 0, 0),
            },
        ]
    }

    /// The underlying DMA engine.
    pub fn dma(&self) -> &PcieDmaIp {
        &self.dma
    }

    fn check_range(&self, queue: u16) -> Result<(), HostQueueError> {
        if usize::from(queue) >= self.queues.len() {
            Err(HostQueueError::OutOfRange { queue })
        } else {
            Ok(())
        }
    }

    /// Activates a queue (tenant attach).
    ///
    /// # Errors
    ///
    /// [`HostQueueError::OutOfRange`].
    pub fn activate(&mut self, queue: u16) -> Result<(), HostQueueError> {
        self.check_range(queue)?;
        let q = &mut self.queues[usize::from(queue)];
        if !q.active {
            q.active = true;
            self.active_ring.push(queue);
        }
        Ok(())
    }

    /// Deactivates a queue (tenant detach); buffered entries are dropped.
    ///
    /// # Errors
    ///
    /// [`HostQueueError::OutOfRange`].
    pub fn deactivate(&mut self, queue: u16) -> Result<(), HostQueueError> {
        self.check_range(queue)?;
        let q = &mut self.queues[usize::from(queue)];
        if q.active {
            q.active = false;
            q.stats.dropped += q.buf.len() as u64;
            q.buf.drain();
            self.active_ring.retain(|&idx| idx != queue);
            if self.ring_pos >= self.active_ring.len() {
                self.ring_pos = 0;
            }
        }
        Ok(())
    }

    /// Number of active queues.
    pub fn active_count(&self) -> usize {
        self.active_ring.len()
    }

    /// Enqueues one entry of `bytes` to a tenant queue.
    ///
    /// # Errors
    ///
    /// Out-of-range, inactive or full queues reject the entry (isolation:
    /// one tenant's overflow never spills into another's queue).
    pub fn enqueue(&mut self, queue: u16, bytes: u32) -> Result<(), HostQueueError> {
        self.check_range(queue)?;
        let q = &mut self.queues[usize::from(queue)];
        if !q.active {
            q.stats.dropped += 1;
            return Err(HostQueueError::Inactive { queue });
        }
        match q.buf.push(bytes) {
            Ok(()) => {
                q.stats.enqueued += 1;
                Ok(())
            }
            Err(_) => {
                q.stats.dropped += 1;
                Err(HostQueueError::Full { queue })
            }
        }
    }

    /// Schedules the next entry round-robin **over active queues only** —
    /// the paper's scheduling-rate optimization.
    pub fn schedule(&mut self) -> Option<(u16, u32)> {
        let n = self.active_ring.len();
        for _ in 0..n {
            self.sched_visits += 1;
            let queue = self.active_ring[self.ring_pos];
            self.ring_pos = (self.ring_pos + 1) % n;
            let q = &mut self.queues[usize::from(queue)];
            if let Some(bytes) = q.buf.pop() {
                q.stats.dequeued += 1;
                q.stats.bytes += u64::from(bytes);
                return Some((queue, bytes));
            }
        }
        None
    }

    /// Baseline scheduler scanning **all** queues regardless of state —
    /// the ablation comparator for the active-ring design.
    pub fn schedule_naive(&mut self) -> Option<(u16, u32)> {
        let n = self.queues.len();
        for i in 0..n {
            self.sched_visits += 1;
            let queue = ((self.ring_pos + i) % n) as u16;
            let q = &mut self.queues[usize::from(queue)];
            if q.active {
                if let Some(bytes) = q.buf.pop() {
                    self.ring_pos = (usize::from(queue) + 1) % n;
                    q.stats.dequeued += 1;
                    q.stats.bytes += u64::from(bytes);
                    return Some((queue, bytes));
                }
            }
        }
        None
    }

    /// Scheduler slots examined so far (lower = higher scheduling rate).
    pub fn sched_visits(&self) -> u64 {
        self.sched_visits
    }

    /// Resets the visit counter.
    pub fn reset_sched_visits(&mut self) {
        self.sched_visits = 0;
    }

    /// A queue's statistics.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn queue_stats(&self, queue: u16) -> QueueStats {
        self.queues[usize::from(queue)].stats
    }

    /// A queue's current depth.
    pub fn queue_depth(&self, queue: u16) -> usize {
        self.queues[usize::from(queue)].buf.len()
    }

    /// Publishes live per-queue aggregates into a register file laid out
    /// like [`Rbb::register_file`].
    ///
    /// # Errors
    ///
    /// Fails only if `rf` lacks this RBB's monitor block.
    pub fn publish_stats(
        &self,
        rf: &mut RegisterFile,
    ) -> Result<(), harmonia_hw::regfile::RegError> {
        let totals = self.queues.iter().fold((0u64, 0u64, 0u64, 0u64), |a, q| {
            (
                a.0 + q.buf.len() as u64,
                a.1 + q.stats.dequeued,
                a.2 + q.stats.bytes,
                a.3 + q.stats.dropped,
            )
        });
        let set = |rf: &mut RegisterFile, name: &str, v: u64| match rf.addr_of(name) {
            Some(addr) => rf.hw_set(addr, v as u32),
            None => Err(harmonia_hw::regfile::RegError::Unmapped { addr: 0 }),
        };
        set(rf, "mon_qdepth_0", totals.0)?;
        set(rf, "mon_qpkts_0", totals.1)?;
        set(rf, "mon_qbytes_0", totals.2)?;
        set(rf, "mon_qbytes_1", totals.2 >> 32)?;
        set(rf, "mon_sched_0", self.sched_visits)?;
        set(rf, "mon_sched_1", self.active_ring.len() as u64)?;
        set(rf, "mon_qdepth_1", totals.3)?;
        Ok(())
    }
}

impl Rbb for HostRbb {
    fn kind(&self) -> RbbKind {
        RbbKind::Host
    }

    fn host_queue_hint(&self) -> Option<u16> {
        Some(self.advertised_queues)
    }

    fn instance(&self) -> &dyn VendorIp {
        &self.dma
    }

    fn components(&self) -> &[LogicComponent] {
        &self.components
    }

    fn register_file(&self) -> RegisterFile {
        let mut rf = RegisterFile::new("host-rbb");
        rf.define(0x000, "dma_ctrl", Access::ReadWrite, 0);
        rf.define(0x004, "queue_sel", Access::ReadWrite, 0);
        rf.define(0x008, "queue_ctrl", Access::ReadWrite, 0);
        rf.define(0x00C, "ring_base_lo", Access::ReadWrite, 0);
        rf.define(0x010, "ring_base_hi", Access::ReadWrite, 0);
        rf.define(0x014, "ring_size", Access::ReadWrite, 512);
        rf.define(0x018, "doorbell", Access::WriteOnly, 0);
        rf.define(0x01C, "irq_cfg", Access::ReadWrite, 0);
        rf.define(0x020, "status", Access::ReadOnly, 0);
        // 32 monitoring counters (per-queue depth/packets/speed windows).
        rf.define_block(0x100, "mon_qdepth_", 8, Access::ReadOnly, 0);
        rf.define_block(0x140, "mon_qpkts_", 8, Access::ReadOnly, 0);
        rf.define_block(0x180, "mon_qbytes_", 8, Access::ReadOnly, 0);
        rf.define_block(0x1C0, "mon_sched_", 8, Access::ReadOnly, 0);
        rf
    }

    fn config_inventory(&self) -> ConfigInventory {
        let mut inv = ConfigInventory::new("host-rbb");
        inv.add_all(
            ["pcie_instance", "desired_queues", "irq_mode"],
            ConfigClass::RoleOriented,
        );
        for c in self.dma.native_interface().configs() {
            inv.add(format!("dma.{}", c.name), ConfigClass::ShellOriented);
        }
        inv.add_all(
            [
                "bar_layout",
                "msix_table_size",
                "dsc_prefetch_depth",
                "wb_coalesce",
                "cdc_depth",
                "sriov_vf_map",
                "tlp_ordering",
                "completion_buf_depth",
                "link_eq_preset",
                "refclk_source",
                "reset_topology",
                "p2p_enable",
                "atomics_enable",
                "relaxed_ordering",
                "tag_width",
                "poison_handling",
                "flr_timeout",
                "doorbell_stride",
                "qext_mem_backing",
            ],
            ConfigClass::ShellOriented,
        );
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rbb::MigrationKind;

    fn rbb() -> HostRbb {
        HostRbb::with_link(Vendor::Xilinx, 4, 8)
    }

    #[test]
    fn enqueue_requires_activation() {
        let mut h = rbb();
        assert_eq!(
            h.enqueue(5, 100),
            Err(HostQueueError::Inactive { queue: 5 })
        );
        h.activate(5).unwrap();
        h.enqueue(5, 100).unwrap();
        assert_eq!(h.queue_depth(5), 1);
        assert_eq!(h.queue_stats(5).dropped, 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut h = rbb();
        assert_eq!(
            h.activate(HostRbb::QUEUES),
            Err(HostQueueError::OutOfRange {
                queue: HostRbb::QUEUES
            })
        );
    }

    #[test]
    fn per_queue_isolation_under_overflow() {
        let mut h = rbb();
        h.activate(1).unwrap();
        h.activate(2).unwrap();
        // Tenant 1 floods its queue far past capacity.
        let mut rejected = 0;
        for _ in 0..(HostRbb::QUEUE_DEPTH + 50) {
            if h.enqueue(1, 64).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 50);
        // Tenant 2 is unaffected.
        h.enqueue(2, 64).unwrap();
        assert_eq!(h.queue_depth(2), 1);
        assert_eq!(h.queue_stats(2).dropped, 0);
    }

    #[test]
    fn round_robin_is_fair_across_active_queues() {
        let mut h = rbb();
        for q in [3u16, 7, 11] {
            h.activate(q).unwrap();
            for _ in 0..10 {
                h.enqueue(q, 100).unwrap();
            }
        }
        let mut order = Vec::new();
        while let Some((q, _)) = h.schedule() {
            order.push(q);
        }
        assert_eq!(order.len(), 30);
        // Perfect interleaving in ring order.
        assert_eq!(&order[0..6], &[3, 7, 11, 3, 7, 11]);
        assert_eq!(h.queue_stats(7).dequeued, 10);
    }

    #[test]
    fn active_ring_schedules_faster_than_naive_scan() {
        let mut fast = rbb();
        let mut slow = rbb();
        for h in [&mut fast, &mut slow] {
            for q in [100u16, 900] {
                h.activate(q).unwrap();
                for _ in 0..50 {
                    h.enqueue(q, 64).unwrap();
                }
            }
        }
        while fast.schedule().is_some() {}
        while slow.schedule_naive().is_some() {}
        assert!(
            fast.sched_visits() * 10 < slow.sched_visits(),
            "active-ring {} visits vs naive {}",
            fast.sched_visits(),
            slow.sched_visits()
        );
    }

    #[test]
    fn deactivate_drops_buffered_and_leaves_ring() {
        let mut h = rbb();
        h.activate(4).unwrap();
        h.enqueue(4, 64).unwrap();
        h.deactivate(4).unwrap();
        assert_eq!(h.active_count(), 0);
        assert_eq!(h.queue_depth(4), 0);
        assert_eq!(h.queue_stats(4).dropped, 1);
        assert_eq!(h.schedule(), None);
        // Re-activation starts clean.
        h.activate(4).unwrap();
        h.enqueue(4, 10).unwrap();
        assert_eq!(h.schedule(), Some((4, 10)));
    }

    #[test]
    fn reuse_fractions_in_fig14_bands() {
        let h = rbb();
        let xv = h.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = h.workload(MigrationKind::CrossChip).reuse_fraction();
        assert!((0.66..=0.72).contains(&xv), "cross-vendor {xv:.3}");
        assert!((0.90..=0.95).contains(&xc), "cross-chip {xc:.3}");
    }

    #[test]
    fn config_reduction_in_band() {
        let f = rbb().config_inventory().reduction_factor().unwrap();
        assert!((8.8..=19.8).contains(&f), "factor {f:.1}");
    }

    #[test]
    fn stats_track_bytes() {
        let mut h = rbb();
        h.activate(0).unwrap();
        h.enqueue(0, 1500).unwrap();
        h.enqueue(0, 500).unwrap();
        h.schedule();
        h.schedule();
        let s = h.queue_stats(0);
        assert_eq!(s.bytes, 2000);
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dequeued, 2);
    }
}
