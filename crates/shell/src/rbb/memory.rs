//! Memory RBB: FPGA external-memory management (§3.3.1).
//!
//! Ex-functions: **address interleaving** that "maps data into different
//! bank groups [and channels] to improve the efficiency of read/write
//! operations", and a **hot cache** that "stores consecutively accessed
//! data on-chip for fast access, avoiding situations where interleaved
//! access is impossible". Data moves on a 512-bit mem-map interface;
//! control uses a 32-bit reg interface. The channel count parameter follows
//! the device: 2 channels for DDR, 32 for HBM.

use crate::rbb::{LogicComponent, LogicPart, Portability, Rbb, RbbKind};
use harmonia_hw::ip::dram::{DramModel, MemOp};
use harmonia_hw::ip::{DdrIp, HbmIp, VendorIp};
use harmonia_hw::regfile::{Access, RegisterFile};
use harmonia_hw::resource::ResourceUsage;
use harmonia_hw::Vendor;
use harmonia_metrics::config::{ConfigClass, ConfigInventory};
use harmonia_sim::Picos;

/// Which storage instance backs the RBB — "roles should select the
/// appropriate storage instance (HBM/DDR) based on their demands".
#[derive(Debug)]
enum StorageInstance {
    /// DDR with the given channel count.
    Ddr(DdrIp, u32),
    /// One HBM stack (32 pseudo-channels).
    Hbm(HbmIp),
}

/// A direct-mapped on-chip cache over memory lines.
#[derive(Debug, Clone)]
pub struct HotCache {
    /// Tag per line slot; `None` = invalid.
    tags: Vec<Option<u64>>,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl HotCache {
    /// Creates a cache of `lines` slots of `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(lines: usize, line_bytes: u64) -> Self {
        assert!(lines > 0 && line_bytes > 0, "cache geometry must be non-zero");
        HotCache {
            tags: vec![None; lines],
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    fn slot_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        ((line % self.tags.len() as u64) as usize, line)
    }

    /// Looks up a read; fills the line on miss. Returns hit/miss.
    pub fn lookup_fill(&mut self, addr: u64) -> bool {
        let (slot, tag) = self.slot_and_tag(addr);
        if self.tags[slot] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.tags[slot] = Some(tag);
            self.misses += 1;
            false
        }
    }

    /// Invalidates the line containing `addr` (write-through policy).
    pub fn invalidate(&mut self, addr: u64) {
        let (slot, tag) = self.slot_and_tag(addr);
        if self.tags[slot] == Some(tag) {
            self.tags[slot] = None;
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Result of running a memory trace through the RBB.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MemTraceResult {
    /// Wall-clock makespan of the trace.
    pub makespan_ps: Picos,
    /// Total bytes moved (cache + DRAM).
    pub bytes: u64,
    /// Bytes that reached DRAM.
    pub dram_bytes: u64,
    /// Reads served by the hot cache.
    pub cache_hits: u64,
}

impl MemTraceResult {
    /// Achieved bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        if self.makespan_ps == 0 {
            0.0
        } else {
            self.bytes as f64 / (self.makespan_ps as f64 / 1e3)
        }
    }

    /// Operations per second given the op count.
    pub fn ops_per_sec(&self, ops: u64) -> f64 {
        if self.makespan_ps == 0 {
            0.0
        } else {
            ops as f64 / (self.makespan_ps as f64 / 1e12)
        }
    }
}

/// The Memory RBB.
#[derive(Debug)]
pub struct MemoryRbb {
    storage: StorageInstance,
    components: Vec<LogicComponent>,
    channels: Vec<DramModel>,
    interleave_enabled: bool,
    cache_enabled: bool,
    cache: HotCache,
    /// Interleave stripe in bytes.
    stripe_bytes: u64,
    /// Capacity per channel for contiguous (non-interleaved) mapping.
    channel_span_bytes: u64,
    /// Service time per cache-hit access on the on-chip port.
    cache_port_ps: Picos,
}

impl MemoryRbb {
    /// Default cache geometry: 256 lines × 4 KiB = 1 MiB of on-chip RAM.
    pub const CACHE_LINES: usize = 256;
    /// Cache line size in bytes.
    pub const CACHE_LINE_BYTES: u64 = 4096;

    /// Creates a DDR-backed Memory RBB with `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn ddr(die_vendor: Vendor, gen: u8, channels: u32) -> Self {
        assert!(channels > 0, "memory RBB needs at least one channel");
        let ip = DdrIp::new(die_vendor, gen);
        let models = (0..channels).map(|_| ip.channel()).collect();
        Self::build(StorageInstance::Ddr(ip, channels), models)
    }

    /// Creates an HBM-backed Memory RBB (32 pseudo-channels).
    pub fn hbm(die_vendor: Vendor) -> Self {
        let ip = HbmIp::new(die_vendor);
        let models = ip.channels();
        Self::build(StorageInstance::Hbm(ip), models)
    }

    fn build(storage: StorageInstance, channels: Vec<DramModel>) -> Self {
        MemoryRbb {
            storage,
            components: Self::component_inventory(),
            channels,
            interleave_enabled: true,
            cache_enabled: true,
            cache: HotCache::new(Self::CACHE_LINES, Self::CACHE_LINE_BYTES),
            stripe_bytes: 4096,
            channel_span_bytes: 1 << 28, // 256 MiB contiguous regions
            cache_port_ps: 1_500,        // ≈42 GB/s on-chip port for 64 B ops
        }
    }

    fn component_inventory() -> Vec<LogicComponent> {
        vec![
            LogicComponent {
                name: "addr-interleaver",
                part: LogicPart::ExFunction,
                portability: Portability::Universal,
                loc: 2_700,
                resources: ResourceUsage::new(2_400, 3_400, 0, 0, 0),
            },
            LogicComponent {
                name: "hot-cache",
                part: LogicPart::ExFunction,
                portability: Portability::Universal,
                loc: 3_200,
                resources: ResourceUsage::new(2_600, 3_600, 0, 32, 0),
            },
            LogicComponent {
                name: "stat-core",
                part: LogicPart::Monitoring,
                portability: Portability::Universal,
                loc: 1_300,
                resources: ResourceUsage::new(1_200, 1_800, 2, 0, 0),
            },
            LogicComponent {
                name: "cal-ctrl",
                part: LogicPart::Control,
                portability: Portability::VendorBound,
                loc: 1_200,
                resources: ResourceUsage::new(1_000, 1_500, 0, 0, 0),
            },
            LogicComponent {
                name: "phy-glue",
                part: LogicPart::InstanceGlue,
                portability: Portability::ChipBound,
                loc: 1_600,
                resources: ResourceUsage::new(1_400, 2_200, 0, 0, 0),
            },
        ]
    }

    /// Enables/disables the address-interleaving ex-function.
    pub fn set_interleave(&mut self, enabled: bool) {
        self.interleave_enabled = enabled;
    }

    /// Enables/disables the hot cache.
    pub fn set_cache(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Number of memory channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Aggregate peak bandwidth across channels, GB/s.
    pub fn peak_gbs(&self) -> f64 {
        self.channels
            .iter()
            .map(|c| c.timing().peak_gbs())
            .sum()
    }

    fn channel_of(&self, addr: u64) -> usize {
        let n = self.channels.len() as u64;
        if self.interleave_enabled {
            ((addr / self.stripe_bytes) % n) as usize
        } else {
            ((addr / self.channel_span_bytes) % n) as usize
        }
    }

    /// Runs a trace of memory operations; the queue is kept saturated
    /// (issue time 0) so the result reflects steady-state bandwidth.
    pub fn run_trace<I: IntoIterator<Item = MemOp>>(&mut self, ops: I) -> MemTraceResult {
        // Channels keep absolute time across calls; measure this trace
        // relative to where they already were.
        let t0: Picos = self
            .channels
            .iter()
            .map(DramModel::busy_until)
            .max()
            .unwrap_or(0);
        let mut cache_port_busy: Picos = 0;
        let mut dram_done: Picos = t0;
        let mut bytes = 0u64;
        let mut dram_bytes = 0u64;
        let mut cache_hits = 0u64;
        for op in ops {
            bytes += u64::from(op.bytes);
            if self.cache_enabled {
                if op.is_write {
                    self.cache.invalidate(op.addr);
                } else if self.cache.lookup_fill(op.addr) {
                    cache_hits += 1;
                    cache_port_busy += self.cache_port_ps
                        * u64::from(op.bytes.div_ceil(64));
                    continue;
                }
            }
            let ch = self.channel_of(op.addr);
            dram_done = dram_done.max(self.channels[ch].access(0, op));
            dram_bytes += u64::from(op.bytes);
        }
        MemTraceResult {
            makespan_ps: (dram_done - t0).max(cache_port_busy),
            bytes,
            dram_bytes,
            cache_hits,
        }
    }

    /// The hot cache's statistics.
    pub fn cache(&self) -> &HotCache {
        &self.cache
    }

    /// Publishes cache/channel aggregates into a register file laid out
    /// like [`Rbb::register_file`].
    ///
    /// # Errors
    ///
    /// Fails only if `rf` lacks this RBB's monitor block.
    pub fn publish_stats(
        &self,
        rf: &mut RegisterFile,
    ) -> Result<(), harmonia_hw::regfile::RegError> {
        let set = |rf: &mut RegisterFile, name: &str, v: u64| match rf.addr_of(name) {
            Some(addr) => rf.hw_set(addr, v as u32),
            None => Err(harmonia_hw::regfile::RegError::Unmapped { addr: 0 }),
        };
        let hits: u64 = self.channels.iter().map(DramModel::row_hits).sum();
        let misses: u64 = self.channels.iter().map(DramModel::row_misses).sum();
        set(rf, "mon_rd_0", hits)?;
        set(rf, "mon_rd_1", misses)?;
        set(rf, "mon_cache_0", self.cache.hits())?;
        set(rf, "mon_cache_1", self.cache.misses())?;
        set(rf, "mon_cache_2", u64::from(self.interleave_enabled))?;
        set(rf, "mon_cache_3", u64::from(self.cache_enabled))?;
        Ok(())
    }
}

impl Rbb for MemoryRbb {
    fn kind(&self) -> RbbKind {
        RbbKind::Memory
    }

    fn instance(&self) -> &dyn VendorIp {
        match &self.storage {
            StorageInstance::Ddr(ip, _) => ip,
            StorageInstance::Hbm(ip) => ip,
        }
    }

    fn components(&self) -> &[LogicComponent] {
        &self.components
    }

    fn resources(&self) -> ResourceUsage {
        let logic: ResourceUsage = self.components.iter().map(|c| c.resources).sum();
        let per_instance = self.instance().resources();
        // DDR replicates the controller per channel; HBM ships one stack
        // controller for all 32 pseudo-channels.
        match &self.storage {
            StorageInstance::Ddr(_, ch) => per_instance * u64::from(*ch) + logic,
            StorageInstance::Hbm(_) => per_instance + logic,
        }
    }

    fn register_file(&self) -> RegisterFile {
        let mut rf = RegisterFile::new("memory-rbb");
        rf.define(0x000, "interleave_ctrl", Access::ReadWrite, 1);
        rf.define(0x004, "cache_ctrl", Access::ReadWrite, 1);
        rf.define(0x008, "stripe_log2", Access::ReadWrite, 12);
        rf.define(0x00C, "channel_mask", Access::ReadWrite, 0xFFFF_FFFF);
        rf.define(0x010, "cal_trigger", Access::WriteOnly, 0);
        rf.define(0x014, "status", Access::ReadOnly, 0);
        // 24 monitoring counters.
        rf.define_block(0x100, "mon_rd_", 8, Access::ReadOnly, 0);
        rf.define_block(0x140, "mon_wr_", 8, Access::ReadOnly, 0);
        rf.define_block(0x180, "mon_cache_", 8, Access::ReadOnly, 0);
        rf
    }

    fn config_inventory(&self) -> ConfigInventory {
        let mut inv = ConfigInventory::new("memory-rbb");
        inv.add_all(
            ["instance_kind", "occupied_channels", "cache_enable"],
            ConfigClass::RoleOriented,
        );
        for c in self.instance().native_interface().configs() {
            inv.add(format!("mem.{}", c.name), ConfigClass::ShellOriented);
        }
        inv.add_all(
            [
                "interleave_stripe",
                "cache_lines",
                "cache_line_bytes",
                "refresh_interval",
                "ecc_mode",
                "cal_vref",
                "io_standard",
                "dq_map",
                "dbi_mode",
                "clamshell_mode",
                "thermal_poll_ms",
                "bank_hash_seed",
                "wr_merge_window",
                "rd_reorder_depth",
                "axi_outstanding",
                "pin_swizzle",
                "dfi_ratio",
            ],
            ConfigClass::ShellOriented,
        );
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rbb::MigrationKind;

    fn seq_ops(n: u64, size: u32) -> impl Iterator<Item = MemOp> {
        (0..n).map(move |i| MemOp::read(i * u64::from(size), size))
    }

    fn rand_ops(n: u64, size: u32) -> impl Iterator<Item = MemOp> {
        let mut a = 0xDEAD_BEEFu64;
        (0..n).map(move |_| {
            a = a.wrapping_mul(6364136223846793005).wrapping_add(1);
            MemOp::read((a >> 7) % (1 << 33), size)
        })
    }

    #[test]
    fn ddr_two_channels_double_bandwidth() {
        let mut one = MemoryRbb::ddr(Vendor::Xilinx, 4, 1);
        let mut two = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        one.set_cache(false);
        two.set_cache(false);
        let r1 = one.run_trace(seq_ops(40_000, 64));
        let r2 = two.run_trace(seq_ops(40_000, 64));
        let ratio = r2.bandwidth_gbs() / r1.bandwidth_gbs();
        assert!(
            (1.8..=2.05).contains(&ratio),
            "2-channel speedup {ratio:.2} not ≈2x"
        );
    }

    #[test]
    fn hbm_aggregate_far_exceeds_ddr() {
        let mut hbm = MemoryRbb::hbm(Vendor::Xilinx);
        let mut ddr = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        hbm.set_cache(false);
        ddr.set_cache(false);
        let rh = hbm.run_trace(seq_ops(200_000, 64));
        let rd = ddr.run_trace(seq_ops(200_000, 64));
        assert!(rh.bandwidth_gbs() > 5.0 * rd.bandwidth_gbs());
        assert!((hbm.peak_gbs() - 460.8).abs() < 1.0);
    }

    #[test]
    fn interleaving_rescues_sequential_streams() {
        // Without interleaving, a contiguous stream hammers one channel;
        // with it, stripes spread across both.
        let mut on = MemoryRbb::ddr(Vendor::Intel, 4, 2);
        let mut off = MemoryRbb::ddr(Vendor::Intel, 4, 2);
        on.set_cache(false);
        off.set_cache(false);
        off.set_interleave(false);
        let r_on = on.run_trace(seq_ops(40_000, 64));
        let r_off = off.run_trace(seq_ops(40_000, 64));
        assert!(
            r_on.bandwidth_gbs() > 1.7 * r_off.bandwidth_gbs(),
            "interleave {:.1} vs contiguous {:.1} GB/s",
            r_on.bandwidth_gbs(),
            r_off.bandwidth_gbs()
        );
    }

    #[test]
    fn hot_cache_serves_repeated_reads() {
        let mut m = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        // Working set: 64 KiB, far smaller than the 1 MiB cache — second
        // pass onward hits on chip.
        let pass = |m: &mut MemoryRbb| {
            m.run_trace((0..1024u64).map(|i| MemOp::read(i * 64, 64)))
        };
        let first = pass(&mut m);
        let second = pass(&mut m);
        assert_eq!(first.cache_hits, 1008, "only line-granular misses expected");
        assert_eq!(second.cache_hits, 1024);
        assert!(second.dram_bytes == 0);
    }

    #[test]
    fn writes_invalidate_cache_lines() {
        let mut m = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        m.run_trace([MemOp::read(0, 64)]); // fill
        m.run_trace([MemOp::write(0, 64)]); // invalidate
        let r = m.run_trace([MemOp::read(0, 64)]);
        assert_eq!(r.cache_hits, 0, "stale line served after write");
    }

    #[test]
    fn random_below_sequential_with_exfunctions_off() {
        let mut m = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        m.set_cache(false);
        let seq = m.run_trace(seq_ops(20_000, 64));
        let mut m2 = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        m2.set_cache(false);
        let rnd = m2.run_trace(rand_ops(20_000, 64));
        assert!(seq.bandwidth_gbs() > 1.5 * rnd.bandwidth_gbs());
    }

    #[test]
    fn reuse_fractions_in_fig14_bands() {
        let m = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        let xv = m.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = m.workload(MigrationKind::CrossChip).reuse_fraction();
        assert!((0.64..=0.76).contains(&xv), "cross-vendor {xv:.3}");
        assert!((0.80..=0.93).contains(&xc), "cross-chip {xc:.3}");
    }

    #[test]
    fn config_reduction_in_band() {
        let m = MemoryRbb::hbm(Vendor::Xilinx);
        let f = m.config_inventory().reduction_factor().unwrap();
        assert!((6.0..=19.8).contains(&f), "factor {f:.1}");
    }

    #[test]
    fn ddr_resources_scale_with_channels() {
        let one = MemoryRbb::ddr(Vendor::Xilinx, 4, 1);
        let two = MemoryRbb::ddr(Vendor::Xilinx, 4, 2);
        assert!(two.resources().lut > one.resources().lut);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = MemoryRbb::ddr(Vendor::Xilinx, 4, 0);
    }

    #[test]
    fn trace_result_math() {
        let r = MemTraceResult {
            makespan_ps: 1_000_000, // 1 µs
            bytes: 64_000,
            dram_bytes: 64_000,
            cache_hits: 0,
        };
        assert!((r.bandwidth_gbs() - 64.0).abs() < 1e-9);
        assert!((r.ops_per_sec(1000) - 1e9).abs() < 1.0);
    }
}
