//! RDMA flow-level transport engine.
//!
//! §3.3.1: the Network RBB covers "packet-level processing (e.g., MAC) and
//! flow-level processing (e.g., RDMA)". This module models the flow-level
//! instance: a reliable-connection transport with queue pairs, MTU
//! segmentation, a bounded in-flight window, cumulative acknowledgements
//! and go-back-N retransmission — the SRNIC-class design the paper's
//! deployment uses for its RDMA NICs.
//!
//! The engine is deterministic: packet loss is injected by the test/bench
//! harness through a seeded RNG, and the delivery invariant (every message
//! byte delivered exactly once, in order) is property-tested.

use harmonia_sim::SplitMix64;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Transport configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RdmaConfig {
    /// Path MTU in bytes.
    pub mtu: u32,
    /// Maximum unacknowledged segments in flight per QP.
    pub window: usize,
    /// Slots without progress before a go-back-N timeout fires.
    pub timeout_slots: u32,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        RdmaConfig {
            mtu: 4096,
            window: 64,
            timeout_slots: 16,
        }
    }
}

/// Errors from queue-pair operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RdmaError {
    /// QP index out of range.
    NoSuchQp {
        /// Offending index.
        qp: usize,
    },
    /// A zero-byte message was posted.
    EmptyMessage,
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::NoSuchQp { qp } => write!(f, "no queue pair {qp}"),
            RdmaError::EmptyMessage => f.write_str("zero-byte RDMA message"),
        }
    }
}

impl Error for RdmaError {}

/// One transmit segment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Segment {
    psn: u64,
    bytes: u32,
    /// Marks the last segment of a message (completion boundary).
    last: bool,
}

/// Sender-side state of a reliable connection.
#[derive(Debug, Default)]
struct TxState {
    segments: Vec<Segment>,
    /// Index of the oldest unacknowledged segment.
    base: usize,
    /// Index of the next segment to (re)transmit.
    next: usize,
    /// Slots since last cumulative-ACK progress.
    stall_slots: u32,
}

/// Receiver-side state.
#[derive(Debug, Default)]
struct RxState {
    expected_psn: u64,
    delivered_bytes: u64,
    delivered_messages: u64,
    /// Bytes of the in-progress message.
    partial_bytes: u64,
}

/// Per-QP statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QpStats {
    /// Messages fully delivered to the receiver.
    pub messages_delivered: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Segments the link dropped.
    pub drops: u64,
}

impl QpStats {
    /// Goodput efficiency: delivered segments over transmitted segments.
    pub fn efficiency(&self) -> f64 {
        if self.segments_sent == 0 {
            0.0
        } else {
            (self.segments_sent - self.retransmits) as f64 / self.segments_sent as f64
        }
    }
}

/// A reliable-connection queue pair bound to a lossy link, simulated in
/// discrete slots (one slot ≈ one wire transmission opportunity per
/// window).
#[derive(Debug)]
pub struct QueuePair {
    config: RdmaConfig,
    tx: TxState,
    rx: RxState,
    stats: QpStats,
    /// Messages posted, in order, as byte lengths (for invariant checks).
    posted: VecDeque<u32>,
}

impl QueuePair {
    /// Creates a QP with the given transport configuration.
    pub fn new(config: RdmaConfig) -> Self {
        QueuePair {
            config,
            tx: TxState::default(),
            rx: RxState::default(),
            stats: QpStats::default(),
            posted: VecDeque::new(),
        }
    }

    /// Posts a send work request of `bytes`, segmented at the MTU.
    ///
    /// # Errors
    ///
    /// [`RdmaError::EmptyMessage`] for zero-byte messages.
    pub fn post_send(&mut self, bytes: u32) -> Result<(), RdmaError> {
        if bytes == 0 {
            return Err(RdmaError::EmptyMessage);
        }
        self.posted.push_back(bytes);
        let full = bytes / self.config.mtu;
        let tail = bytes % self.config.mtu;
        let mut psn = self.tx.segments.len() as u64;
        for i in 0..full {
            self.tx.segments.push(Segment {
                psn,
                bytes: self.config.mtu,
                last: tail == 0 && i == full - 1,
            });
            psn += 1;
        }
        if tail > 0 {
            self.tx.segments.push(Segment {
                psn,
                bytes: tail,
                last: true,
            });
        }
        Ok(())
    }

    /// Whether all posted work has been delivered and acknowledged.
    pub fn is_drained(&self) -> bool {
        self.tx.base == self.tx.segments.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> QpStats {
        self.stats
    }

    /// Runs one simulation slot against a lossy link: transmit up to the
    /// window, deliver/drop each segment, process the cumulative ACK,
    /// handle timeout. `loss` is the per-segment drop probability.
    pub fn slot(&mut self, rng: &mut SplitMix64, loss: f64) {
        let window_end = (self.tx.base + self.config.window).min(self.tx.segments.len());
        let mut progressed = false;
        // Transmit every sendable segment this slot.
        while self.tx.next < window_end {
            let seg = self.tx.segments[self.tx.next];
            self.tx.next += 1;
            self.stats.segments_sent += 1;
            if rng.chance(loss) {
                self.stats.drops += 1;
                continue;
            }
            // Receiver side: in-order acceptance only (RC semantics).
            if seg.psn == self.rx.expected_psn {
                self.rx.expected_psn += 1;
                self.rx.partial_bytes += u64::from(seg.bytes);
                if seg.last {
                    self.rx.delivered_messages += 1;
                    self.rx.delivered_bytes += self.rx.partial_bytes;
                    self.rx.partial_bytes = 0;
                }
            }
            // Out-of-order segments are silently dropped by the responder;
            // the cumulative ACK below tells the sender where it stands.
        }
        // Cumulative ACK (assume the reverse path is reliable — NAK/ACK
        // coalescing loss is folded into the timeout path).
        let acked = self.rx.expected_psn as usize;
        if acked > self.tx.base {
            self.tx.base = acked;
            self.tx.stall_slots = 0;
            progressed = true;
        }
        // Go-back-N on timeout: rewind `next` to the oldest unacked.
        if !progressed && !self.is_drained() {
            self.tx.stall_slots += 1;
            if self.tx.stall_slots >= self.config.timeout_slots || self.tx.next > self.tx.base {
                let rewound = self.tx.next.saturating_sub(self.tx.base) as u64;
                // Only count as retransmission the segments sent again.
                if self.tx.next > self.tx.base {
                    self.stats.retransmits += rewound.min(self.config.window as u64);
                }
                self.tx.next = self.tx.base;
                self.tx.stall_slots = 0;
            }
        }
        self.stats.messages_delivered = self.rx.delivered_messages;
        self.stats.bytes_delivered = self.rx.delivered_bytes;
    }

    /// Runs slots until drained or `max_slots` elapse; returns the slots
    /// used, or `None` if the transfer did not complete.
    pub fn run_to_completion(
        &mut self,
        rng: &mut SplitMix64,
        loss: f64,
        max_slots: u64,
    ) -> Option<u64> {
        for slot in 0..max_slots {
            if self.is_drained() {
                return Some(slot);
            }
            self.slot(rng, loss);
        }
        self.is_drained().then_some(max_slots)
    }
}

/// A set of queue pairs (the flow-level Network RBB instance).
#[derive(Debug)]
pub struct RdmaEngine {
    qps: Vec<QueuePair>,
    config: RdmaConfig,
}

impl RdmaEngine {
    /// Creates an engine with `qp_count` queue pairs.
    ///
    /// # Panics
    ///
    /// Panics if `qp_count` is zero.
    pub fn new(qp_count: usize, config: RdmaConfig) -> Self {
        assert!(qp_count > 0, "need at least one queue pair");
        RdmaEngine {
            qps: (0..qp_count).map(|_| QueuePair::new(config)).collect(),
            config,
        }
    }

    /// The transport configuration.
    pub fn config(&self) -> RdmaConfig {
        self.config
    }

    /// Number of queue pairs.
    pub fn qp_count(&self) -> usize {
        self.qps.len()
    }

    /// Access a QP.
    ///
    /// # Errors
    ///
    /// [`RdmaError::NoSuchQp`].
    pub fn qp_mut(&mut self, qp: usize) -> Result<&mut QueuePair, RdmaError> {
        self.qps.get_mut(qp).ok_or(RdmaError::NoSuchQp { qp })
    }

    /// Aggregate statistics across QPs.
    pub fn total_stats(&self) -> QpStats {
        let mut total = QpStats::default();
        for qp in &self.qps {
            let s = qp.stats();
            total.messages_delivered += s.messages_delivered;
            total.bytes_delivered += s.bytes_delivered;
            total.segments_sent += s.segments_sent;
            total.retransmits += s.retransmits;
            total.drops += s.drops;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_transfer_is_exact_and_efficient() {
        let mut qp = QueuePair::new(RdmaConfig::default());
        for bytes in [100u32, 4096, 5000, 65536] {
            qp.post_send(bytes).unwrap();
        }
        let mut rng = SplitMix64::new(1);
        let slots = qp.run_to_completion(&mut rng, 0.0, 10_000).unwrap();
        let s = qp.stats();
        assert_eq!(s.messages_delivered, 4);
        assert_eq!(s.bytes_delivered, 100 + 4096 + 5000 + 65536);
        assert_eq!(s.retransmits, 0);
        assert_eq!(s.efficiency(), 1.0);
        assert!(slots < 50);
    }

    #[test]
    fn segmentation_respects_mtu() {
        let mut qp = QueuePair::new(RdmaConfig {
            mtu: 1024,
            ..Default::default()
        });
        qp.post_send(2500).unwrap();
        assert_eq!(qp.tx.segments.len(), 3);
        assert_eq!(qp.tx.segments[2].bytes, 452);
        assert!(qp.tx.segments[2].last);
        assert!(!qp.tx.segments[0].last);
    }

    #[test]
    fn heavy_loss_still_delivers_everything_in_order() {
        let mut qp = QueuePair::new(RdmaConfig::default());
        for _ in 0..50 {
            qp.post_send(10_000).unwrap();
        }
        let mut rng = SplitMix64::new(7);
        qp.run_to_completion(&mut rng, 0.3, 1_000_000)
            .expect("transfer must complete despite 30% loss");
        let s = qp.stats();
        assert_eq!(s.messages_delivered, 50);
        assert_eq!(s.bytes_delivered, 50 * 10_000);
        assert!(s.retransmits > 0, "loss must trigger retransmission");
        assert!(s.efficiency() < 1.0);
    }

    #[test]
    fn loss_degrades_efficiency_monotonically() {
        let eff = |loss: f64| {
            let mut qp = QueuePair::new(RdmaConfig::default());
            for _ in 0..100 {
                qp.post_send(8192).unwrap();
            }
            let mut rng = SplitMix64::new(42);
            qp.run_to_completion(&mut rng, loss, 10_000_000).unwrap();
            qp.stats().efficiency()
        };
        let e0 = eff(0.0);
        let e05 = eff(0.05);
        let e2 = eff(0.2);
        assert!(e0 > e05 && e05 > e2, "{e0} {e05} {e2}");
        // Go-back-N with a 64-segment window is brutal at 20% loss —
        // roughly (1-p)/(p·W) useful work — but must not deadlock.
        assert!(e2 > 0.04, "go-back-N collapsed entirely: {e2}");
    }

    #[test]
    fn zero_byte_message_rejected() {
        let mut qp = QueuePair::new(RdmaConfig::default());
        assert_eq!(qp.post_send(0), Err(RdmaError::EmptyMessage));
    }

    #[test]
    fn engine_multiplexes_qps() {
        let mut engine = RdmaEngine::new(8, RdmaConfig::default());
        let mut rng = SplitMix64::new(3);
        for q in 0..8 {
            engine.qp_mut(q).unwrap().post_send(4096 * (q as u32 + 1)).unwrap();
        }
        for q in 0..8 {
            engine
                .qp_mut(q)
                .unwrap()
                .run_to_completion(&mut rng, 0.1, 100_000)
                .unwrap();
        }
        let total = engine.total_stats();
        assert_eq!(total.messages_delivered, 8);
        assert_eq!(
            total.bytes_delivered,
            (1..=8u64).map(|q| 4096 * q).sum::<u64>()
        );
        assert!(engine.qp_mut(99).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one queue pair")]
    fn zero_qps_rejected() {
        let _ = RdmaEngine::new(0, RdmaConfig::default());
    }
}
