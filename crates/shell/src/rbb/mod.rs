//! The Reusable Building Block (RBB) abstraction (§3.3.1).
//!
//! Each RBB = a **specific instance** (a vendor IP selected to match the
//! role's performance demands) + **reusable logic** (ex-functions for
//! performance/feature enhancement, plus control and monitoring logic).
//! The reusable logic is what survives migration across FPGA generations;
//! the instance and a thin layer of glue are what gets swapped.
//!
//! The paper's Figure 14 measures exactly this split, so every logic
//! component declares its [`Portability`]: universal components survive any
//! migration, vendor-bound components are redeveloped when the die vendor
//! changes, chip-bound components whenever the chip changes.

pub mod host;
pub mod memory;
pub mod network;
pub mod rdma;

pub use host::HostRbb;
pub use memory::MemoryRbb;
pub use network::NetworkRbb;
pub use rdma::{RdmaConfig, RdmaEngine};

use harmonia_hw::device::FpgaDevice;
use harmonia_hw::ip::VendorIp;
use harmonia_hw::regfile::RegisterFile;
use harmonia_hw::resource::ResourceUsage;
use harmonia_metrics::config::ConfigInventory;
use harmonia_metrics::workload::{ModuleWorkload, Origin};
use std::fmt;

/// The RBB categories of §3.3.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RbbKind {
    /// Packet/flow network processing.
    Network,
    /// External memory (DDR/HBM).
    Memory,
    /// Host connectivity via PCIe DMA.
    Host,
}

impl RbbKind {
    /// All RBB kinds.
    pub const ALL: [RbbKind; 3] = [RbbKind::Network, RbbKind::Memory, RbbKind::Host];

    /// The RBB id used in command packets (Figure 9's `RBB ID` field).
    pub fn id(self) -> u8 {
        match self {
            RbbKind::Network => 1,
            RbbKind::Memory => 2,
            RbbKind::Host => 3,
        }
    }

    /// Parses a command-packet RBB id.
    pub fn from_id(id: u8) -> Option<RbbKind> {
        match id {
            1 => Some(RbbKind::Network),
            2 => Some(RbbKind::Memory),
            3 => Some(RbbKind::Host),
            _ => None,
        }
    }
}

impl fmt::Display for RbbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RbbKind::Network => "Network",
            RbbKind::Memory => "Memory",
            RbbKind::Host => "Host",
        };
        f.write_str(s)
    }
}

/// How a migration between two devices is classified.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MigrationKind {
    /// Same chip family and vendor — nothing is redeveloped.
    SamePlatform,
    /// Same die vendor, different chip family/peripherals (devices A↔B).
    CrossChip,
    /// Different die vendor (devices A↔C): toolchain, protocols and IP
    /// catalogs all change.
    CrossVendor,
}

impl MigrationKind {
    /// Classifies the migration between two devices.
    pub fn between(from: &FpgaDevice, to: &FpgaDevice) -> MigrationKind {
        if from.die_vendor() != to.die_vendor() {
            MigrationKind::CrossVendor
        } else if from.family() != to.family() || from.part() != to.part() {
            MigrationKind::CrossChip
        } else {
            MigrationKind::SamePlatform
        }
    }
}

impl fmt::Display for MigrationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MigrationKind::SamePlatform => "same-platform",
            MigrationKind::CrossChip => "cross-chip",
            MigrationKind::CrossVendor => "cross-vendor",
        };
        f.write_str(s)
    }
}

/// How far a logic component travels across platforms unchanged.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Portability {
    /// Pure algorithmic logic on unified interfaces: reused everywhere
    /// (ex-functions, statistic cores, CDC).
    Universal,
    /// Depends on vendor conventions (control sequencing, monitor probes):
    /// redeveloped on cross-vendor migrations.
    VendorBound,
    /// Depends on the exact chip/board (instance glue, PHY hookup):
    /// redeveloped on any chip change.
    ChipBound,
}

impl Portability {
    /// Whether a component with this portability is reused under the given
    /// migration.
    pub fn reused_under(self, migration: MigrationKind) -> bool {
        match migration {
            MigrationKind::SamePlatform => true,
            MigrationKind::CrossChip => self != Portability::ChipBound,
            MigrationKind::CrossVendor => self == Portability::Universal,
        }
    }
}

/// One component of an RBB's reusable logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicComponent {
    /// Component name.
    pub name: &'static str,
    /// Which reusable-logic part it belongs to (ex-function, control, …).
    pub part: LogicPart,
    /// Portability class.
    pub portability: Portability,
    /// Hardware-logic lines of code.
    pub loc: u64,
    /// Resource footprint.
    pub resources: ResourceUsage,
}

/// The reusable-logic taxonomy of Figure 6.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LogicPart {
    /// Performance/feature enhancement (packet filter, hot cache, …).
    ExFunction,
    /// Initialization and runtime control.
    Control,
    /// Real-time statistics.
    Monitoring,
    /// Parameterized clock-domain crossing.
    Cdc,
    /// Instance-specific glue.
    InstanceGlue,
}

/// Object-safe surface shared by the three RBBs.
///
/// `Send + Sync` lets shells holding boxed RBBs be swept across the
/// `harmonia_sim::exec` worker pool.
pub trait Rbb: fmt::Debug + Send + Sync {
    /// The RBB category.
    fn kind(&self) -> RbbKind;

    /// The selected vendor-IP instance.
    fn instance(&self) -> &dyn VendorIp;

    /// The reusable-logic component inventory.
    fn components(&self) -> &[LogicComponent];

    /// A fresh register file covering the RBB's control and monitoring
    /// registers (monitor counters are hardware-set).
    fn register_file(&self) -> RegisterFile;

    /// The RBB's full configuration inventory with the shell-/role-oriented
    /// split used by property-level tailoring.
    fn config_inventory(&self) -> ConfigInventory;

    /// For Host RBBs: the queue count advertised to the role (drives how
    /// many queue contexts host software programs). `None` elsewhere.
    fn host_queue_hint(&self) -> Option<u16> {
        None
    }

    /// Total resources: instance + wrapper + reusable logic.
    fn resources(&self) -> ResourceUsage {
        let logic: ResourceUsage = self.components().iter().map(|c| c.resources).sum();
        self.instance().resources() + logic
    }

    /// The development-workload inventory for a migration: the vendor IP
    /// itself is script-generated/off-the-shelf, and each logic component
    /// lands as reused or handcraft per its portability.
    fn workload(&self, migration: MigrationKind) -> ModuleWorkload {
        let mut w = ModuleWorkload::new(format!("{}-rbb", self.kind()));
        // Off-the-shelf IP + generated constraints are excluded, as in the
        // paper's methodology.
        w.add("vendor-instance", 4_000, Origin::ScriptGenerated);
        for c in self.components() {
            let origin = if c.portability.reused_under(migration) {
                Origin::Reused
            } else {
                Origin::Handcraft
            };
            w.add(c.name, c.loc, origin);
        }
        w
    }
}

/// Sums the resources of a set of RBBs.
pub fn total_resources<'a, I: IntoIterator<Item = &'a dyn Rbb>>(rbbs: I) -> ResourceUsage {
    rbbs.into_iter().map(|r| r.resources()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;

    #[test]
    fn migration_classification_matches_fig14_setup() {
        let a = catalog::device_a();
        let b = catalog::device_b();
        let c = catalog::device_c();
        // Devices A & B: cross chip families (§5.3).
        assert_eq!(MigrationKind::between(&a, &b), MigrationKind::CrossChip);
        // Devices A & C: cross vendors.
        assert_eq!(MigrationKind::between(&a, &c), MigrationKind::CrossVendor);
        assert_eq!(MigrationKind::between(&a, &a), MigrationKind::SamePlatform);
    }

    #[test]
    fn portability_rules() {
        use MigrationKind::*;
        use Portability::*;
        assert!(Universal.reused_under(CrossVendor));
        assert!(VendorBound.reused_under(CrossChip));
        assert!(!VendorBound.reused_under(CrossVendor));
        assert!(!ChipBound.reused_under(CrossChip));
        assert!(ChipBound.reused_under(SamePlatform));
    }

    #[test]
    fn rbb_ids_round_trip() {
        for kind in RbbKind::ALL {
            assert_eq!(RbbKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(RbbKind::from_id(0), None);
        assert_eq!(RbbKind::from_id(9), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(RbbKind::Network.to_string(), "Network");
        assert_eq!(MigrationKind::CrossVendor.to_string(), "cross-vendor");
    }
}
