//! Network RBB: packet-level and flow-level network processing (§3.3.1).
//!
//! Ex-functions: a **packet filter** that "intercepts packets with
//! destination addresses that do not belong to the local machine, thereby
//! supporting multicast scenarios", and a **flow director** that "directs
//! incoming flows to their corresponding host queues, ensuring network
//! isolation for multi-tenant environments". Monitoring tracks real-time
//! throughput, packet loss, queue usage and processing rate. Data moves on
//! the stream interface; control uses a 32-bit reg interface.

use crate::rbb::{LogicComponent, LogicPart, Portability, Rbb, RbbKind};
use harmonia_hw::ip::{MacIp, VendorIp};
use harmonia_hw::regfile::{Access, RegisterFile};
use harmonia_hw::resource::ResourceUsage;
use harmonia_hw::Vendor;
use harmonia_metrics::config::{ConfigClass, ConfigInventory};
use std::collections::{BTreeMap, BTreeSet};

/// A parsed packet header, as the RBB's ex-functions see it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PacketMeta {
    /// Destination MAC address (48 bits used).
    pub dst_mac: u64,
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// Frame size in bytes.
    pub bytes: u32,
}

impl PacketMeta {
    /// The flow key (5-tuple) of this packet.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            proto: self.proto,
        }
    }

    /// Whether the destination MAC is an Ethernet multicast address.
    pub fn is_multicast(&self) -> bool {
        self.dst_mac & 0x0100_0000_0000 != 0
    }
}

/// A 5-tuple flow identifier.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// IP protocol.
    pub proto: u8,
}

impl FlowKey {
    /// A deterministic hash of the flow key (Toeplitz-flavoured mix).
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            u64::from(self.src_ip),
            u64::from(self.dst_ip),
            u64::from(self.src_port),
            u64::from(self.dst_port),
            u64::from(self.proto),
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The RX-path verdict for one packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RxDecision {
    /// Deliver to the given host queue.
    Deliver {
        /// Target queue index.
        queue: u16,
    },
    /// Filtered out: destination not local and not an accepted multicast.
    Filtered,
}

/// Real-time traffic statistics (the monitoring part of Figure 6).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Packets delivered.
    pub rx_packets: u64,
    /// Bytes delivered.
    pub rx_bytes: u64,
    /// Packets filtered.
    pub filtered: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
}

/// The Network RBB.
#[derive(Debug)]
pub struct NetworkRbb {
    mac: MacIp,
    components: Vec<LogicComponent>,
    // Packet-filter state.
    local_macs: BTreeSet<u64>,
    accept_multicast: bool,
    filter_enabled: bool,
    // Flow-director state.
    flow_table: BTreeMap<FlowKey, u16>,
    queue_count: u16,
    stats: TrafficStats,
}

impl NetworkRbb {
    /// Maximum exact-match flow-table entries.
    pub const FLOW_TABLE_CAPACITY: usize = 4096;

    /// Creates a Network RBB around the selected MAC instance with
    /// `queue_count` host queues for the flow director.
    ///
    /// # Panics
    ///
    /// Panics if `queue_count` is zero.
    pub fn new(mac: MacIp, queue_count: u16) -> Self {
        assert!(queue_count > 0, "flow director needs at least one queue");
        NetworkRbb {
            mac,
            components: Self::component_inventory(),
            local_macs: BTreeSet::new(),
            accept_multicast: false,
            filter_enabled: true,
            flow_table: BTreeMap::new(),
            queue_count,
            stats: TrafficStats::default(),
        }
    }

    /// Selects a MAC instance by speed for the device's die vendor — the
    /// "roles can select specific network instances" step.
    pub fn with_speed(die_vendor: Vendor, gbps: u32, queue_count: u16) -> Self {
        Self::new(MacIp::new(die_vendor, gbps), queue_count)
    }

    fn component_inventory() -> Vec<LogicComponent> {
        vec![
            LogicComponent {
                name: "packet-filter",
                part: LogicPart::ExFunction,
                portability: Portability::Universal,
                loc: 2_600,
                resources: ResourceUsage::new(2_400, 3_600, 4, 0, 0),
            },
            LogicComponent {
                name: "flow-director",
                part: LogicPart::ExFunction,
                portability: Portability::Universal,
                loc: 3_000,
                resources: ResourceUsage::new(2_800, 4_200, 12, 0, 0),
            },
            LogicComponent {
                name: "stat-core",
                part: LogicPart::Monitoring,
                portability: Portability::Universal,
                loc: 1_600,
                resources: ResourceUsage::new(1_400, 2_200, 2, 0, 0),
            },
            LogicComponent {
                name: "monitor-probes",
                part: LogicPart::Monitoring,
                portability: Portability::VendorBound,
                loc: 600,
                resources: ResourceUsage::new(500, 800, 0, 0, 0),
            },
            LogicComponent {
                name: "ctrl-sequencer",
                part: LogicPart::Control,
                portability: Portability::VendorBound,
                loc: 1_100,
                resources: ResourceUsage::new(800, 1_200, 0, 0, 0),
            },
            LogicComponent {
                name: "param-cdc",
                part: LogicPart::Cdc,
                portability: Portability::Universal,
                loc: 600,
                resources: ResourceUsage::new(600, 1_000, 2, 0, 0),
            },
            LogicComponent {
                name: "instance-glue",
                part: LogicPart::InstanceGlue,
                portability: Portability::ChipBound,
                loc: 900,
                resources: ResourceUsage::new(700, 1_100, 0, 0, 0),
            },
        ]
    }

    /// The underlying MAC.
    pub fn mac(&self) -> &MacIp {
        &self.mac
    }

    /// Registers a local MAC address the filter should accept.
    pub fn add_local_mac(&mut self, mac: u64) {
        self.local_macs.insert(mac & 0xFFFF_FFFF_FFFF);
    }

    /// Enables or disables multicast acceptance (the multicast scenario of
    /// §3.3.1).
    pub fn set_accept_multicast(&mut self, accept: bool) {
        self.accept_multicast = accept;
    }

    /// Enables or disables the packet filter entirely.
    pub fn set_filter_enabled(&mut self, enabled: bool) {
        self.filter_enabled = enabled;
    }

    /// Installs an exact-match flow-director entry.
    ///
    /// # Errors
    ///
    /// Returns the key back when the table is full or the queue is out of
    /// range.
    pub fn direct_flow(&mut self, key: FlowKey, queue: u16) -> Result<(), FlowKey> {
        if queue >= self.queue_count
            || (self.flow_table.len() >= Self::FLOW_TABLE_CAPACITY
                && !self.flow_table.contains_key(&key))
        {
            return Err(key);
        }
        self.flow_table.insert(key, queue);
        Ok(())
    }

    /// Number of installed exact-match entries.
    pub fn flow_table_len(&self) -> usize {
        self.flow_table.len()
    }

    /// Processes one received packet through filter → director.
    pub fn process_rx(&mut self, pkt: &PacketMeta) -> RxDecision {
        if self.filter_enabled {
            let local = self.local_macs.contains(&(pkt.dst_mac & 0xFFFF_FFFF_FFFF));
            let multicast_ok = self.accept_multicast && pkt.is_multicast();
            if !local && !multicast_ok {
                self.stats.filtered += 1;
                return RxDecision::Filtered;
            }
        }
        let key = pkt.flow_key();
        let queue = match self.flow_table.get(&key) {
            Some(&q) => q,
            None => (key.hash() % u64::from(self.queue_count)) as u16,
        };
        self.stats.rx_packets += 1;
        self.stats.rx_bytes += u64::from(pkt.bytes);
        RxDecision::Deliver { queue }
    }

    /// Records one transmitted packet.
    pub fn record_tx(&mut self, bytes: u32) {
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += u64::from(bytes);
    }

    /// Current traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Publishes the live counters into a register file laid out like
    /// [`Rbb::register_file`] — the hardware side of the monitoring logic
    /// (software then reads them via `StatsRead`).
    ///
    /// # Errors
    ///
    /// Fails only if `rf` does not carry this RBB's monitor block.
    pub fn publish_stats(
        &self,
        rf: &mut RegisterFile,
    ) -> Result<(), harmonia_hw::regfile::RegError> {
        let set = |rf: &mut RegisterFile, name: &str, v: u64| {
            match rf.addr_of(name) {
                Some(addr) => rf.hw_set(addr, v as u32),
                None => Err(harmonia_hw::regfile::RegError::Unmapped { addr: 0 }),
            }
        };
        set(rf, "mon_rx_0", self.stats.rx_packets)?;
        set(rf, "mon_rx_1", self.stats.rx_bytes)?;
        set(rf, "mon_rx_2", self.stats.rx_bytes >> 32)?;
        set(rf, "mon_rx_3", self.stats.filtered)?;
        set(rf, "mon_tx_0", self.stats.tx_packets)?;
        set(rf, "mon_tx_1", self.stats.tx_bytes)?;
        set(rf, "mon_q_0", u64::from(self.queue_count))?;
        set(rf, "mon_q_1", self.flow_table.len() as u64)?;
        Ok(())
    }

    /// Configured queue count.
    pub fn queue_count(&self) -> u16 {
        self.queue_count
    }
}

impl Rbb for NetworkRbb {
    fn kind(&self) -> RbbKind {
        RbbKind::Network
    }

    fn instance(&self) -> &dyn VendorIp {
        &self.mac
    }

    fn components(&self) -> &[LogicComponent] {
        &self.components
    }

    fn register_file(&self) -> RegisterFile {
        let mut rf = RegisterFile::new("network-rbb");
        // Control registers.
        rf.define(0x000, "filter_ctrl", Access::ReadWrite, 1);
        rf.define(0x004, "multicast_ctrl", Access::ReadWrite, 0);
        rf.define(0x008, "director_ctrl", Access::ReadWrite, 1);
        rf.define(0x00C, "queue_count", Access::ReadWrite, u32::from(self.queue_count));
        rf.define(0x010, "table_addr", Access::ReadWrite, 0);
        rf.define(0x014, "table_wdata_lo", Access::ReadWrite, 0);
        rf.define(0x018, "table_wdata_hi", Access::ReadWrite, 0);
        rf.define(0x01C, "table_cmd", Access::WriteOnly, 0);
        rf.define(0x020, "mac_sel", Access::ReadWrite, 0);
        rf.define(0x024, "status", Access::ReadOnly, 0);
        // Monitoring registers (28 counters: the Table 4 "monitoring"
        // surface contributed by the Network RBB).
        rf.define_block(0x100, "mon_rx_", 10, Access::ReadOnly, 0);
        rf.define_block(0x140, "mon_tx_", 10, Access::ReadOnly, 0);
        rf.define_block(0x180, "mon_q_", 8, Access::ReadOnly, 0);
        rf
    }

    fn config_inventory(&self) -> ConfigInventory {
        let mut inv = ConfigInventory::new("network-rbb");
        // Role-oriented: what §3.3.2 actually exposes.
        inv.add_all(
            ["instance_speed", "queue_count", "multicast_enable"],
            ConfigClass::RoleOriented,
        );
        // Shell-oriented: everything the vendor instance wanted configured.
        for c in self.mac.native_interface().configs() {
            inv.add(format!("mac.{}", c.name), ConfigClass::ShellOriented);
        }
        inv.add_all(
            [
                "gt_refclk_map",
                "lane_polarity",
                "fec_mode",
                "cdc_depth",
                "filter_table_depth",
                "director_hash_seed",
                "stat_window_cycles",
                "pause_quanta",
                "rx_fifo_depth",
                "tx_fifo_depth",
                "ptp_mode",
                "serdes_eq_preset",
                "board_skew_ps",
                "clock_source_idx",
                "reset_polarity",
                "mtu_max",
                "vlan_strip",
                "loopback_mode",
                "led_map",
                "sensor_poll_interval",
            ],
            ConfigClass::ShellOriented,
        );
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(dst_mac: u64, src_port: u16) -> PacketMeta {
        PacketMeta {
            dst_mac,
            src_ip: 0x0A00_0001,
            dst_ip: 0x0A00_0002,
            src_port,
            dst_port: 443,
            proto: 6,
            bytes: 128,
        }
    }

    const LOCAL: u64 = 0x02_11_22_33_44_55;

    fn rbb() -> NetworkRbb {
        let mut n = NetworkRbb::with_speed(Vendor::Xilinx, 100, 64);
        n.add_local_mac(LOCAL);
        n
    }

    #[test]
    fn filter_drops_foreign_unicast() {
        let mut n = rbb();
        assert_eq!(n.process_rx(&pkt(0x02_99_99_99_99_99, 1000)), RxDecision::Filtered);
        assert!(matches!(
            n.process_rx(&pkt(LOCAL, 1000)),
            RxDecision::Deliver { .. }
        ));
        assert_eq!(n.stats().filtered, 1);
        assert_eq!(n.stats().rx_packets, 1);
    }

    #[test]
    fn multicast_accepted_only_when_enabled() {
        let mut n = rbb();
        let mcast = pkt(0x0100_5E00_0001, 1);
        assert_eq!(n.process_rx(&mcast), RxDecision::Filtered);
        n.set_accept_multicast(true);
        assert!(matches!(n.process_rx(&mcast), RxDecision::Deliver { .. }));
    }

    #[test]
    fn filter_bypass_when_disabled() {
        let mut n = rbb();
        n.set_filter_enabled(false);
        assert!(matches!(
            n.process_rx(&pkt(0x02_99_99_99_99_99, 1)),
            RxDecision::Deliver { .. }
        ));
    }

    #[test]
    fn director_is_deterministic_and_in_range() {
        let mut n = rbb();
        let p = pkt(LOCAL, 777);
        let q1 = n.process_rx(&p);
        let q2 = n.process_rx(&p);
        assert_eq!(q1, q2);
        if let RxDecision::Deliver { queue } = q1 {
            assert!(queue < 64);
        }
    }

    #[test]
    fn exact_entries_override_hash() {
        let mut n = rbb();
        let p = pkt(LOCAL, 777);
        n.direct_flow(p.flow_key(), 7).unwrap();
        assert_eq!(n.process_rx(&p), RxDecision::Deliver { queue: 7 });
    }

    #[test]
    fn flow_table_rejects_bad_queue_and_overflow() {
        let mut n = rbb();
        let key = pkt(LOCAL, 1).flow_key();
        assert!(n.direct_flow(key, 64).is_err()); // out of range
        for i in 0..NetworkRbb::FLOW_TABLE_CAPACITY as u16 {
            let mut k = key;
            k.src_port = i;
            k.dst_port = 9;
            n.direct_flow(k, 1).unwrap();
        }
        let mut k = key;
        k.dst_port = 10;
        assert!(n.direct_flow(k, 1).is_err()); // full
        // Updating an existing entry still works.
        let mut existing = key;
        existing.src_port = 0;
        existing.dst_port = 9;
        assert!(n.direct_flow(existing, 2).is_ok());
    }

    #[test]
    fn flows_spread_across_queues() {
        let mut n = rbb();
        let mut queues = BTreeSet::new();
        for port in 0..200 {
            if let RxDecision::Deliver { queue } = n.process_rx(&pkt(LOCAL, port)) {
                queues.insert(queue);
            }
        }
        assert!(queues.len() > 32, "only {} queues used", queues.len());
    }

    #[test]
    fn reuse_fractions_in_fig14_bands() {
        use crate::rbb::MigrationKind;
        let n = rbb();
        let xv = n.workload(MigrationKind::CrossVendor).reuse_fraction();
        let xc = n.workload(MigrationKind::CrossChip).reuse_fraction();
        assert!((0.69..=0.76).contains(&xv), "cross-vendor {xv:.3}");
        assert!((0.84..=0.93).contains(&xc), "cross-chip {xc:.3}");
        let same = n.workload(MigrationKind::SamePlatform).reuse_fraction();
        assert_eq!(same, 1.0);
    }

    #[test]
    fn config_split_reduces_role_burden() {
        let inv = rbb().config_inventory();
        let factor = inv.reduction_factor().unwrap();
        assert!(
            (8.8..=19.8).contains(&factor),
            "reduction factor {factor:.1} outside Figure 12's band"
        );
    }

    #[test]
    fn register_file_shape() {
        let rf = rbb().register_file();
        assert!(rf.addr_of("mon_rx_9").is_some());
        assert!(rf.addr_of("table_cmd").is_some());
        assert_eq!(
            rf.iter().filter(|(_, n)| n.starts_with("mon_")).count(),
            28
        );
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_rejected() {
        let _ = NetworkRbb::with_speed(Vendor::Intel, 100, 0);
    }
}
