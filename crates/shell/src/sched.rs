//! Time-multiplexed multi-tenancy: a deterministic tenant scheduler
//! over the PR plane (ROADMAP item 2; SYNERGY's time-sharing model on
//! RC3E-style cloud provisioning).
//!
//! [`crate::pr::MultiTenantRegion`] gives Harmonia *spatial* tenancy:
//! tenants live side by side in PR slots. This module adds the
//! *temporal* axis — more tenants than slots, sharing one slot through
//! scheduled partial reconfiguration. Each registered tenant pins a
//! persistent, disjoint host-queue range (its doorbells survive
//! preemption); every involuntary switch pays the honest PR price: one
//! context-save readback of the outgoing tenant plus one bitstream load
//! of the incoming one, both charged through
//! [`crate::pr::PrSlot::reconfig_time_ps`].
//!
//! Two policies, selected by [`TENANT_POLICY_ENV`]:
//!
//! * **round-robin** — equal fixed slices in registration order. Simple
//!   and starvation-free, but a noisy neighbor degrades everyone
//!   equally: an N-tenant region hands a victim 1/N of the doorbell
//!   budget regardless of weight.
//! * **weighted-fair** — WF²Q+-style virtual-clock scheduling with
//!   integer arithmetic only. Tenant `i` with weight `w_i` receives
//!   `w_i / Σw` of the slices (within one slice of exact, see
//!   `shell/tests/tenancy_properties.rs`) *and* a per-slice command
//!   budget scaled by `w_i`, so a weighted victim keeps its tail
//!   latency while an aggressor floods its own queues.
//!
//! Everything here is integer/deterministic: virtual time is tracked in
//! units of `VSCALE/w` so every division is exact for weights up to
//! 16, and ties break on tenant index. The same registration order
//! yields byte-identical schedules on any engine or thread count.

use crate::pr::{MultiTenantRegion, TenancyError, TenantRole};
use harmonia_sim::metrics::MetricsRegistry;
use harmonia_sim::{Picos, TraceCollector, TraceEventKind};
use std::ops::Range;

/// Environment knob selecting the scheduling policy: `rr`/`round-robin`
/// (default) or `wfq`/`weighted-fair`.
pub const TENANT_POLICY_ENV: &str = "HARMONIA_TENANT_POLICY";
/// Environment knob for the wall-clock length of one time slice, in
/// picoseconds.
pub const TENANT_SLICE_ENV: &str = "HARMONIA_TENANT_SLICE_PS";
/// Default slice length: 2 ms — an order of magnitude above the
/// millisecond-scale PR reconfiguration cost, so useful work dominates
/// switch overhead even under round-robin.
pub const DEFAULT_TENANT_SLICE_PS: Picos = 2_000_000_000;
/// Command budget of one unweighted slice. Weighted-fair multiplies
/// this by the tenant's weight.
pub const BASE_SLICE_CMDS: u64 = 64;
/// Virtual-time unit: `lcm(1..=16)`, so `VSCALE / w` is exact for every
/// admissible weight and the virtual clock never accumulates rounding.
const VSCALE: u128 = 720_720;
/// Largest admissible tenant weight (keeps `VSCALE` divisions exact).
pub const MAX_TENANT_WEIGHT: u64 = 16;

/// Scheduling policy for the time-shared slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantPolicy {
    /// Equal slices in registration order.
    RoundRobin,
    /// WF²Q+-style weighted fair queueing.
    WeightedFair,
}

impl TenantPolicy {
    /// Parses a policy string; unknown or absent values fall back to
    /// round-robin (the conservative, weight-blind default).
    pub fn parse(s: Option<&str>) -> TenantPolicy {
        match s.map(str::trim) {
            Some("wfq") | Some("weighted-fair") => TenantPolicy::WeightedFair,
            _ => TenantPolicy::RoundRobin,
        }
    }

    /// Reads [`TENANT_POLICY_ENV`].
    pub fn from_env() -> TenantPolicy {
        Self::parse(std::env::var(TENANT_POLICY_ENV).ok().as_deref())
    }

    /// Stable short name (`rr` / `wfq`) for bench rows and reports.
    pub fn name(&self) -> &'static str {
        match self {
            TenantPolicy::RoundRobin => "rr",
            TenantPolicy::WeightedFair => "wfq",
        }
    }
}

/// Reads [`TENANT_SLICE_ENV`], falling back to
/// [`DEFAULT_TENANT_SLICE_PS`] on absent or unparseable values.
pub fn slice_ps_from_env() -> Picos {
    parse_slice_ps(std::env::var(TENANT_SLICE_ENV).ok().as_deref())
}

fn parse_slice_ps(s: Option<&str>) -> Picos {
    s.and_then(|v| v.trim().parse::<Picos>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_TENANT_SLICE_PS)
}

/// One scheduling decision: which tenant owns the slot next and what it
/// may spend there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceGrant {
    /// Index of the granted tenant (registration order).
    pub tenant: usize,
    /// Doorbell command budget for this slice (policy- and
    /// weight-dependent); enforced by the control kernel.
    pub budget_cmds: u64,
    /// Wall-clock length of the slice.
    pub slice_ps: Picos,
    /// PR cost paid to make the tenant resident (context save of the
    /// evicted tenant + bitstream load), `0` when it already was.
    pub switch_ps: Picos,
}

#[derive(Clone, Debug)]
struct ScheduledTenant {
    role: TenantRole,
    weight: u64,
    queue_range: Range<u16>,
    slices: u64,
    /// WF²Q+ virtual start tag.
    start: u128,
    /// WF²Q+ virtual finish tag.
    finish: u128,
    /// Runnable state at the previous scheduling point (detects the
    /// idle→busy edge that re-anchors the tags to the virtual clock).
    prev_runnable: bool,
}

/// Deterministic time-multiplexing scheduler for one PR slot.
///
/// ```
/// use harmonia_shell::pr::{MultiTenantRegion, TenantRole};
/// use harmonia_shell::sched::{TenantPolicy, TenantScheduler, DEFAULT_TENANT_SLICE_PS};
/// use harmonia_shell::{RoleSpec, TailoredShell, UnifiedShell};
/// use harmonia_hw::device::catalog;
/// use harmonia_hw::resource::ResourceUsage;
///
/// let device = catalog::device_a();
/// let unified = UnifiedShell::for_device(&device);
/// let role = RoleSpec::builder("mt").network_gbps(100).build();
/// let shell = TailoredShell::tailor(&unified, &role).unwrap();
/// let region = MultiTenantRegion::partition(&shell, device.capacity(), 1, 256);
/// let mut sched = TenantScheduler::new(
///     region, 0, TenantPolicy::WeightedFair, DEFAULT_TENANT_SLICE_PS).unwrap();
/// let logic = ResourceUsage::new(50_000, 80_000, 100, 20, 100);
/// let victim = sched.register(TenantRole::new("victim", logic, 8), 4).unwrap();
/// let noisy = sched.register(TenantRole::new("noisy", logic, 8), 1).unwrap();
/// let grant = sched.next_slice(0, &[true, true]).unwrap().unwrap();
/// assert_eq!(grant.tenant, victim);
/// assert!(grant.switch_ps > 0, "first residency pays the PR load");
/// assert_eq!(grant.budget_cmds, 64 * 4, "budget scales with weight");
/// # let _ = noisy;
/// ```
#[derive(Debug)]
pub struct TenantScheduler {
    region: MultiTenantRegion,
    slot: usize,
    policy: TenantPolicy,
    slice_ps: Picos,
    tenants: Vec<ScheduledTenant>,
    /// Tenant currently loaded in the slot.
    resident: Option<usize>,
    /// Round-robin rotation cursor.
    rr_next: usize,
    /// WF²Q+ virtual clock, in `VSCALE` units.
    vclock: u128,
    switches: u64,
    trace: TraceCollector,
    metrics: MetricsRegistry,
}

impl TenantScheduler {
    /// Wraps a region, time-sharing `slot` under `policy` with
    /// `slice_ps`-long slices.
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoSuchSlot`] when `slot` is out of range, and
    /// [`TenancyError::SlotOccupied`] when something is already deployed
    /// there (the scheduler must own the slot's lifecycle exclusively).
    pub fn new(
        region: MultiTenantRegion,
        slot: usize,
        policy: TenantPolicy,
        slice_ps: Picos,
    ) -> Result<TenantScheduler, TenancyError> {
        let s = region
            .slots()
            .get(slot)
            .ok_or(TenancyError::NoSuchSlot { slot })?;
        if let Some(resident) = s.tenant() {
            return Err(TenancyError::SlotOccupied {
                slot,
                resident: resident.name.clone(),
            });
        }
        assert!(slice_ps > 0, "slice length must be positive");
        Ok(TenantScheduler {
            region,
            slot,
            policy,
            slice_ps,
            tenants: Vec::new(),
            resident: None,
            rr_next: 0,
            vclock: 0,
            switches: 0,
            trace: TraceCollector::disabled(),
            metrics: MetricsRegistry::default(),
        })
    }

    /// [`TenantScheduler::new`] with policy and slice length read from
    /// [`TENANT_POLICY_ENV`] / [`TENANT_SLICE_ENV`].
    ///
    /// # Errors
    ///
    /// See [`TenantScheduler::new`].
    pub fn from_env(
        region: MultiTenantRegion,
        slot: usize,
    ) -> Result<TenantScheduler, TenancyError> {
        Self::new(region, slot, TenantPolicy::from_env(), slice_ps_from_env())
    }

    /// Attaches a trace collector; switches emit
    /// [`TraceEventKind::TenantSwitch`] spans covering the PR cost.
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.trace = trace;
    }

    /// Attaches a metrics registry to the scheduler *and* its region, so
    /// `harmonia_tenant_*` and `harmonia_pr_*` series land together.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.region.set_metrics_registry(metrics.clone());
        self.metrics = metrics;
    }

    /// Registers a tenant: reserves its persistent queue range and seeds
    /// its fair-queueing tags. Weights only matter under
    /// [`TenantPolicy::WeightedFair`]; round-robin ignores them.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is outside `1..=`[`MAX_TENANT_WEIGHT`].
    ///
    /// # Errors
    ///
    /// [`TenancyError::QueuesExhausted`] when the region cannot supply
    /// the tenant's queue demand, and [`TenancyError::DoesNotFit`] when
    /// its logic exceeds the shared slot's capacity.
    pub fn register(&mut self, role: TenantRole, weight: u64) -> Result<usize, TenancyError> {
        assert!(
            (1..=MAX_TENANT_WEIGHT).contains(&weight),
            "tenant weight {weight} outside 1..={MAX_TENANT_WEIGHT}"
        );
        // Fit is checked at registration so an oversized tenant fails
        // here, not mid-schedule on its first slice.
        let capacity = *self.region.slots()[self.slot].capacity();
        if !role.resources.fits_in(&capacity) {
            return Err(TenancyError::DoesNotFit {
                slot: self.slot,
                requested: role.resources,
                capacity,
            });
        }
        let queue_range = self.region.reserve_queues(role.queues)?;
        let idx = self.tenants.len();
        self.tenants.push(ScheduledTenant {
            role,
            weight,
            queue_range,
            slices: 0,
            start: 0,
            finish: VSCALE / weight as u128,
            prev_runnable: false,
        });
        self.metrics
            .gauge_max("harmonia_tenant_registered", &[], idx as u64 + 1);
        Ok(idx)
    }

    /// The policy in force.
    pub fn policy(&self) -> TenantPolicy {
        self.policy
    }

    /// The configured slice length.
    pub fn slice_ps(&self) -> Picos {
        self.slice_ps
    }

    /// Registered tenant count.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant's pinned queue range.
    pub fn queue_range(&self, tenant: usize) -> Range<u16> {
        self.tenants[tenant].queue_range.clone()
    }

    /// A tenant's name.
    pub fn tenant_name(&self, tenant: usize) -> &str {
        &self.tenants[tenant].role.name
    }

    /// Slices granted to a tenant so far.
    pub fn slices_granted(&self, tenant: usize) -> u64 {
        self.tenants[tenant].slices
    }

    /// Tenant switches performed (residency changes, not grants).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Tenant currently resident in the slot.
    pub fn resident(&self) -> Option<usize> {
        self.resident
    }

    /// The underlying region (reconfig-time accounting lives there).
    pub fn region(&self) -> &MultiTenantRegion {
        &self.region
    }

    /// Doorbell budget one slice grants `tenant` under the policy.
    pub fn budget_cmds(&self, tenant: usize) -> u64 {
        match self.policy {
            TenantPolicy::RoundRobin => BASE_SLICE_CMDS,
            TenantPolicy::WeightedFair => BASE_SLICE_CMDS * self.tenants[tenant].weight,
        }
    }

    /// Picks the next tenant to own the slot and makes it resident,
    /// paying (and reporting) the PR switch cost when residency changes.
    /// `runnable[i]` says whether tenant `i` has queued work; idle
    /// tenants are skipped without consuming virtual time, so backlogged
    /// tenants absorb the slack (work-conserving). Returns `None` when
    /// nobody is runnable.
    ///
    /// # Panics
    ///
    /// Panics when `runnable.len()` disagrees with the tenant count.
    ///
    /// # Errors
    ///
    /// Propagates [`TenancyError`] from the PR plane (cannot happen for
    /// ranges the scheduler itself reserved, but the region stays the
    /// single source of truth for isolation).
    pub fn next_slice(
        &mut self,
        now: Picos,
        runnable: &[bool],
    ) -> Result<Option<SliceGrant>, TenancyError> {
        assert_eq!(
            runnable.len(),
            self.tenants.len(),
            "runnable mask must cover every registered tenant"
        );
        let pick = match self.policy {
            TenantPolicy::RoundRobin => self.pick_round_robin(runnable),
            TenantPolicy::WeightedFair => self.pick_weighted_fair(runnable),
        };
        let Some(pick) = pick else {
            return Ok(None);
        };

        let mut switch_ps = 0;
        if self.resident != Some(pick) {
            let from = self.resident;
            if let Some(out) = from {
                // Preempting a live tenant: read its context back before
                // the slot is overwritten, then evict.
                switch_ps += self.region.charge_context_save(self.slot)?;
                self.region.undeploy(self.slot)?;
                let _ = out;
            }
            switch_ps += self.region.deploy_with_range(
                self.slot,
                self.tenants[pick].role.clone(),
                self.tenants[pick].queue_range.clone(),
            )?;
            self.resident = Some(pick);
            self.switches += 1;
            self.trace.span(
                now,
                switch_ps,
                TraceEventKind::TenantSwitch {
                    slot: self.slot as u32,
                    from: from.map_or(u32::MAX, |i| i as u32),
                    to: pick as u32,
                },
            );
            self.metrics
                .counter_inc("harmonia_tenant_switches_total", &[]);
            self.metrics
                .counter_add("harmonia_tenant_switch_ps_total", &[], switch_ps);
        }
        self.tenants[pick].slices += 1;
        self.metrics.counter_inc(
            "harmonia_tenant_slices_total",
            &[("tenant", &self.tenants[pick].role.name)],
        );
        self.metrics
            .gauge_set("harmonia_tenant_resident", &[], pick as u64);
        Ok(Some(SliceGrant {
            tenant: pick,
            budget_cmds: self.budget_cmds(pick),
            slice_ps: self.slice_ps,
            switch_ps,
        }))
    }

    fn pick_round_robin(&mut self, runnable: &[bool]) -> Option<usize> {
        let n = self.tenants.len();
        for off in 0..n {
            let idx = (self.rr_next + off) % n;
            if runnable[idx] {
                self.rr_next = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// WF²Q+ with integer virtual time. A tenant is *eligible* when its
    /// start tag has come due (`start <= vclock`); among eligible
    /// tenants the smallest finish tag wins, index breaking ties. The
    /// clock advances by `VSCALE / Σ(runnable weights)` per slice, so
    /// over any window each backlogged tenant's share tracks
    /// `w_i / Σw` within one slice — the eligibility gate is what stops
    /// a heavy tenant from bunching its whole share at the front.
    fn pick_weighted_fair(&mut self, runnable: &[bool]) -> Option<usize> {
        // Re-anchor tenants that just became busy: credit earned while
        // idle is forfeited (tags catch up to the clock).
        for (t, &r) in self.tenants.iter_mut().zip(runnable) {
            if r && !t.prev_runnable {
                t.start = t.start.max(self.vclock);
                t.finish = t.start + VSCALE / t.weight as u128;
            }
            t.prev_runnable = r;
        }
        let total_weight: u64 = self
            .tenants
            .iter()
            .zip(runnable)
            .filter(|(_, &r)| r)
            .map(|(t, _)| t.weight)
            .sum();
        if total_weight == 0 {
            return None;
        }
        let eligible_min = |tenants: &[ScheduledTenant], vclock: u128| {
            tenants
                .iter()
                .enumerate()
                .zip(runnable)
                .filter(|((_, t), &r)| r && t.start <= vclock)
                .min_by_key(|((i, t), _)| (t.finish, *i))
                .map(|((i, _), _)| i)
        };
        let pick = match eligible_min(&self.tenants, self.vclock) {
            Some(i) => i,
            None => {
                // Every runnable tenant is ahead of the clock; jump to
                // the earliest start so the schedule stays
                // work-conserving.
                let jump = self
                    .tenants
                    .iter()
                    .zip(runnable)
                    .filter(|(_, &r)| r)
                    .map(|(t, _)| t.start)
                    .min()
                    .expect("total_weight > 0 implies a runnable tenant");
                self.vclock = self.vclock.max(jump);
                eligible_min(&self.tenants, self.vclock)
                    .expect("a tenant with start == vclock is eligible")
            }
        };
        let t = &mut self.tenants[pick];
        t.start = t.finish;
        t.finish = t.start + VSCALE / t.weight as u128;
        self.vclock += VSCALE / total_weight as u128;
        Some(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::RoleSpec;
    use crate::tailor::TailoredShell;
    use crate::unified::UnifiedShell;
    use harmonia_hw::device::catalog;
    use harmonia_hw::resource::ResourceUsage;

    fn region() -> MultiTenantRegion {
        let device = catalog::device_a();
        let unified = UnifiedShell::for_device(&device);
        let role = RoleSpec::builder("mt").network_gbps(100).build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        MultiTenantRegion::partition(&shell, device.capacity(), 1, 1024)
    }

    fn tenant(name: &str) -> TenantRole {
        TenantRole::new(name, ResourceUsage::new(50_000, 80_000, 100, 20, 100), 8)
    }

    fn sched(policy: TenantPolicy, weights: &[u64]) -> TenantScheduler {
        let mut s =
            TenantScheduler::new(region(), 0, policy, DEFAULT_TENANT_SLICE_PS).unwrap();
        for (i, &w) in weights.iter().enumerate() {
            s.register(tenant(&format!("t{i}")), w).unwrap();
        }
        s
    }

    fn run_slices(s: &mut TenantScheduler, n: usize) -> Vec<usize> {
        let runnable = vec![true; s.tenant_count()];
        (0..n)
            .map(|i| {
                s.next_slice(i as Picos * DEFAULT_TENANT_SLICE_PS, &runnable)
                    .unwrap()
                    .unwrap()
                    .tenant
            })
            .collect()
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(TenantPolicy::parse(None), TenantPolicy::RoundRobin);
        assert_eq!(TenantPolicy::parse(Some("rr")), TenantPolicy::RoundRobin);
        assert_eq!(
            TenantPolicy::parse(Some("round-robin")),
            TenantPolicy::RoundRobin
        );
        assert_eq!(TenantPolicy::parse(Some("wfq")), TenantPolicy::WeightedFair);
        assert_eq!(
            TenantPolicy::parse(Some(" weighted-fair ")),
            TenantPolicy::WeightedFair
        );
        assert_eq!(
            TenantPolicy::parse(Some("nonsense")),
            TenantPolicy::RoundRobin
        );
        assert_eq!(parse_slice_ps(None), DEFAULT_TENANT_SLICE_PS);
        assert_eq!(parse_slice_ps(Some("12345")), 12345);
        assert_eq!(parse_slice_ps(Some("0")), DEFAULT_TENANT_SLICE_PS);
        assert_eq!(parse_slice_ps(Some("junk")), DEFAULT_TENANT_SLICE_PS);
    }

    #[test]
    fn round_robin_rotates_in_registration_order() {
        let mut s = sched(TenantPolicy::RoundRobin, &[1, 1, 1]);
        assert_eq!(run_slices(&mut s, 7), vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_idle_tenants() {
        let mut s = sched(TenantPolicy::RoundRobin, &[1, 1, 1]);
        let g = s.next_slice(0, &[false, true, true]).unwrap().unwrap();
        assert_eq!(g.tenant, 1);
        let g = s.next_slice(1, &[false, true, true]).unwrap().unwrap();
        assert_eq!(g.tenant, 2);
        assert_eq!(s.next_slice(2, &[false, false, false]).unwrap(), None);
    }

    #[test]
    fn wfq_share_tracks_weights_within_one_slice() {
        for weights in [&[1u64, 1, 8][..], &[4, 2, 1], &[16, 1, 1], &[3, 5, 7]] {
            let mut s = sched(TenantPolicy::WeightedFair, weights);
            let total: u64 = weights.iter().sum();
            let rounds = 6 * total;
            let picks = run_slices(&mut s, rounds as usize);
            for (i, &w) in weights.iter().enumerate() {
                let got = picks.iter().filter(|&&p| p == i).count() as i128;
                // got * total within ±total of rounds * w  ⇔  share off
                // by at most one slice.
                let diff = got * total as i128 - (rounds * w) as i128;
                assert!(
                    diff.abs() <= total as i128,
                    "weights {weights:?}: tenant {i} got {got}/{rounds}, diff {diff}"
                );
            }
        }
    }

    #[test]
    fn wfq_budget_scales_with_weight_rr_does_not() {
        let mut wfq = sched(TenantPolicy::WeightedFair, &[4, 1]);
        assert_eq!(wfq.budget_cmds(0), BASE_SLICE_CMDS * 4);
        assert_eq!(wfq.budget_cmds(1), BASE_SLICE_CMDS);
        let rr = sched(TenantPolicy::RoundRobin, &[4, 1]);
        assert_eq!(rr.budget_cmds(0), BASE_SLICE_CMDS);
        assert_eq!(rr.budget_cmds(1), BASE_SLICE_CMDS);
        // Weighted grants carry the scaled budget.
        let g = wfq.next_slice(0, &[true, true]).unwrap().unwrap();
        assert_eq!(g.budget_cmds, BASE_SLICE_CMDS * wfq.tenants[g.tenant].weight);
    }

    #[test]
    fn switch_pays_save_plus_load_and_same_tenant_is_free() {
        let mut s = sched(TenantPolicy::RoundRobin, &[1, 1]);
        let load = s.region().slots()[0].reconfig_time_ps();
        let g0 = s.next_slice(0, &[true, true]).unwrap().unwrap();
        // First residency: no context to save, just the load.
        assert_eq!(g0.switch_ps, load);
        let g1 = s.next_slice(1, &[true, true]).unwrap().unwrap();
        // Preemption: save the outgoing tenant, load the incoming one.
        assert_eq!(g1.switch_ps, 2 * load);
        // Only one tenant runnable → repeated grants stay resident.
        let g2 = s.next_slice(2, &[false, true]).unwrap().unwrap();
        assert_eq!((g2.tenant, g2.switch_ps), (1, 0));
        assert_eq!(s.switches(), 2);
        assert_eq!(s.region().total_reconfig_ps(), 3 * load);
    }

    #[test]
    fn queue_ranges_stay_pinned_and_disjoint_across_switches() {
        let mut s = sched(TenantPolicy::WeightedFair, &[2, 1, 1]);
        let ranges: Vec<_> = (0..3).map(|i| s.queue_range(i)).collect();
        assert_eq!(ranges, vec![0..8, 8..16, 16..24]);
        for _ in 0..3 {
            let picks = run_slices(&mut s, 8);
            assert!(picks.iter().any(|&p| p != picks[0]), "must multiplex");
        }
        for i in 0..3 {
            assert_eq!(s.queue_range(i), ranges[i], "range moved for tenant {i}");
        }
        assert!(s.region().queues_disjoint());
    }

    #[test]
    fn switch_emits_span_and_metrics() {
        let mut s = sched(TenantPolicy::RoundRobin, &[1, 1]);
        let tc = TraceCollector::enabled();
        let m = MetricsRegistry::enabled();
        s.set_trace_collector(tc.clone());
        s.set_metrics_registry(m.clone());
        run_slices(&mut s, 4);
        let trace = tc.take();
        let switches: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TenantSwitch { .. }))
            .collect();
        assert_eq!(switches.len(), 4);
        assert!(switches.iter().all(|e| e.dur > 0));
        match switches[0].kind {
            TraceEventKind::TenantSwitch { slot, from, to } => {
                assert_eq!((slot, from, to), (0, u32::MAX, 0));
            }
            _ => unreachable!(),
        }
        let prom = m.snapshot().export_prometheus();
        assert!(prom.contains("harmonia_tenant_switches_total 4"), "{prom}");
        assert!(
            prom.contains("harmonia_tenant_slices_total{tenant=\"t0\"} 2"),
            "{prom}"
        );
        assert!(prom.contains("harmonia_pr_reconfig_ps_total"), "{prom}");
    }

    #[test]
    fn wfq_rising_edge_forfeits_idle_credit() {
        let mut s = sched(TenantPolicy::WeightedFair, &[1, 1]);
        // Tenant 1 idles while tenant 0 runs for a while...
        for i in 0..10 {
            let g = s.next_slice(i, &[true, false]).unwrap().unwrap();
            assert_eq!(g.tenant, 0);
        }
        // ...then wakes: it must NOT monopolize the slot to "catch up".
        let picks: Vec<_> = (10..20)
            .map(|i| s.next_slice(i, &[true, true]).unwrap().unwrap().tenant)
            .collect();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert!((4..=6).contains(&ones), "woken tenant got {ones}/10: {picks:?}");
    }

    #[test]
    fn oversized_tenant_rejected_at_registration() {
        let mut s = sched(TenantPolicy::RoundRobin, &[]);
        let huge = TenantRole::new("huge", ResourceUsage::new(5_000_000, 1, 0, 0, 0), 4);
        assert!(matches!(
            s.register(huge, 1),
            Err(TenancyError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn occupied_slot_rejected_at_construction() {
        let mut r = region();
        r.deploy(0, tenant("squatter")).unwrap();
        assert!(matches!(
            TenantScheduler::new(r, 0, TenantPolicy::RoundRobin, 1),
            Err(TenancyError::SlotOccupied { .. })
        ));
    }

    #[test]
    fn deterministic_across_reconstruction() {
        let run = || {
            let mut s = sched(TenantPolicy::WeightedFair, &[4, 2, 1, 1]);
            format!("{:?}", run_slices(&mut s, 64))
        };
        assert_eq!(run(), run());
    }
}
