//! Property-based tests for the platform-independent layer.

use harmonia_hw::Vendor;
use harmonia_shell::cdc::ParamCdc;
use harmonia_shell::rbb::network::{FlowKey, PacketMeta, RxDecision};
use harmonia_shell::rbb::rdma::{QueuePair, RdmaConfig};
use harmonia_shell::rbb::{HostRbb, NetworkRbb};
use harmonia_sim::{Freq, SplitMix64};
use harmonia_testkit::prelude::*;

fn arb_packet() -> impl Strategy<Value = PacketMeta> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8)],
        64u32..9000,
    )
        .prop_map(
            |(dst_mac, src_ip, dst_ip, src_port, dst_port, proto, bytes)| PacketMeta {
                dst_mac: dst_mac & 0xFFFF_FFFF_FFFF,
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                proto,
                bytes,
            },
        )
}

forall! {
    /// The flow director is deterministic and always lands in range; with
    /// the filter disabled every packet is delivered.
    #[test]
    fn director_deterministic_in_range(
        pkts in collection::vec(arb_packet(), 1..100),
        queues in 1u16..512,
    ) {
        let mut rbb = NetworkRbb::with_speed(Vendor::Xilinx, 100, queues);
        rbb.set_filter_enabled(false);
        for p in &pkts {
            let d1 = rbb.process_rx(p);
            let d2 = rbb.process_rx(p);
            prop_assert_eq!(d1, d2, "director not deterministic");
            match d1 {
                RxDecision::Deliver { queue } => prop_assert!(queue < queues),
                RxDecision::Filtered => prop_assert!(false, "filter disabled"),
            }
        }
    }

    /// Same 5-tuple → same queue, regardless of other header fields.
    #[test]
    fn director_keyed_on_flow_only(p in arb_packet(), other_mac in any::<u64>(), other_len in 64u32..9000) {
        let mut rbb = NetworkRbb::with_speed(Vendor::Intel, 100, 64);
        rbb.set_filter_enabled(false);
        let mut q = p;
        q.dst_mac = other_mac & 0xFFFF_FFFF_FFFF;
        q.bytes = other_len;
        prop_assert_eq!(rbb.process_rx(&p), rbb.process_rx(&q));
    }

    /// Filter semantics: a packet is delivered iff its MAC is local, or
    /// multicast is enabled and the MAC has the group bit.
    #[test]
    fn filter_semantics(p in arb_packet(), local in any::<u64>(), multicast in any::<bool>()) {
        let mut rbb = NetworkRbb::with_speed(Vendor::Xilinx, 100, 8);
        let local = local & 0xFFFF_FFFF_FFFF;
        rbb.add_local_mac(local);
        rbb.set_accept_multicast(multicast);
        let delivered = matches!(rbb.process_rx(&p), RxDecision::Deliver { .. });
        let expect = p.dst_mac == local || (multicast && p.is_multicast());
        prop_assert_eq!(delivered, expect);
    }

    /// Host RBB conservation: everything enqueued is either scheduled out
    /// or still buffered; per-queue stats add up.
    #[test]
    fn host_queue_conservation(
        ops in collection::vec((0u16..32, 1u32..2000, any::<bool>()), 1..300),
    ) {
        let mut h = HostRbb::with_link(Vendor::Xilinx, 4, 8);
        for q in 0..32 {
            h.activate(q).unwrap();
        }
        let mut accepted = 0u64;
        let mut scheduled = 0u64;
        for (q, bytes, drain) in ops {
            if h.enqueue(q, bytes).is_ok() {
                accepted += 1;
            }
            if drain && h.schedule().is_some() {
                scheduled += 1;
            }
        }
        let buffered: u64 = (0..32).map(|q| h.queue_depth(q) as u64).sum();
        prop_assert_eq!(accepted, scheduled + buffered);
    }

    /// CDC: the lossless predicate is exactly `S×M ≤ R×U`, and when it
    /// holds a saturated simulation never stalls the writer.
    #[test]
    fn cdc_lossless_predicate(
        wfreq in 50u64..500,
        wbits_log in 3u32..9,
        rfreq in 50u64..500,
        rbits_log in 3u32..9,
    ) {
        let wbits = 8u32 << wbits_log.min(8);
        let rbits = 8u32 << rbits_log.min(8);
        let cdc = ParamCdc::new(Freq::mhz(wfreq), wbits, Freq::mhz(rfreq), rbits, 64);
        let predicted = u128::from(wfreq) * u128::from(wbits) <= u128::from(rfreq) * u128::from(rbits);
        prop_assert_eq!(cdc.is_lossless(), predicted);
        if predicted {
            let r = cdc.simulate(3_000_000);
            prop_assert_eq!(r.writer_stalls, 0, "lossless config stalled");
        }
    }

    /// RDMA delivers every posted byte exactly once for any loss rate
    /// below certainty and any seed.
    #[test]
    fn rdma_delivery_invariant(
        seed in any::<u64>(),
        loss_pct in 0u32..45,
        msgs in collection::vec(1u32..20_000, 1..20),
    ) {
        let mut qp = QueuePair::new(RdmaConfig {
            mtu: 1024,
            window: 16,
            timeout_slots: 8,
        });
        for &m in &msgs {
            qp.post_send(m).unwrap();
        }
        let mut rng = SplitMix64::new(seed);
        qp.run_to_completion(&mut rng, f64::from(loss_pct) / 100.0, 5_000_000)
            .expect("must complete below 100% loss");
        let s = qp.stats();
        prop_assert_eq!(s.messages_delivered, msgs.len() as u64);
        prop_assert_eq!(s.bytes_delivered, msgs.iter().map(|&m| u64::from(m)).sum::<u64>());
    }

    /// FlowKey hashing is stable and spreads: two keys differing in one
    /// field hash differently almost always (checked deterministically for
    /// the port field).
    #[test]
    fn flow_hash_sensitivity(src_ip in any::<u32>(), port in 0u16..u16::MAX) {
        let a = FlowKey { src_ip, dst_ip: 1, src_port: port, dst_port: 80, proto: 6 };
        let b = FlowKey { src_port: port + 1, ..a };
        prop_assert_ne!(a.hash(), b.hash());
    }
}
