//! Property suites for the multi-tenant PR plane (`pr.rs` + `sched.rs`):
//! arbitrary deploy/undeploy/swap/reserve interleavings against a model
//! region, swap-vs-(undeploy+deploy) equivalence with atomic failure,
//! scheduler reconfig-time accounting under random runnable masks, and
//! the WF²Q+ ±1-slice fairness bound for arbitrary weight vectors.
//! Shrunk counterexamples are committed as regression tapes in
//! `tests/regressions/`.

use harmonia_hw::device::catalog;
use harmonia_hw::resource::ResourceUsage;
use harmonia_shell::pr::{MultiTenantRegion, TenancyError, TenantRole};
use harmonia_shell::sched::{TenantPolicy, TenantScheduler};
use harmonia_shell::{RoleSpec, TailoredShell, UnifiedShell};
use harmonia_sim::Picos;
use harmonia_testkit::prelude::*;
use std::ops::Range;

/// A region over device A's tailored shell with `slots` PR slots and
/// `total_queues` host queues (small queue totals make
/// `QueuesExhausted` reachable with single-digit tenant demands).
fn region(slots: usize, total_queues: u16) -> MultiTenantRegion {
    let device = catalog::device_a();
    let unified = UnifiedShell::for_device(&device);
    let role = RoleSpec::builder("mt").network_gbps(100).build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    MultiTenantRegion::partition(&shell, device.capacity(), slots, total_queues)
}

/// A tenant small enough to fit any slot of a ≤4-way partition.
fn tenant(name: &str, queues: u16) -> TenantRole {
    TenantRole::new(name, ResourceUsage::new(50_000, 80_000, 100, 20, 100), queues)
}

/// Canonical observable state of a region: occupancy, free queues,
/// reconfig accounting, and per-slot resident/range/reconfig-count.
fn fingerprint(r: &MultiTenantRegion) -> String {
    let slots: Vec<String> = r
        .slots()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "{i}:{}:{}:{:?}",
                s.tenant().map_or("-", |t| t.name.as_str()),
                s.reconfigurations(),
                r.queue_range(i)
            )
        })
        .collect();
    format!(
        "occ={} free={} reconfig_ps={} slots=[{}]",
        r.occupied(),
        r.free_queues(),
        r.total_reconfig_ps(),
        slots.join(" ")
    )
}

forall! {
    /// Arbitrary operation interleavings against a model region: queue
    /// ranges stay pairwise disjoint, occupancy / free-queue / reconfig
    /// accounting agree with the model after every step, and every error
    /// path (occupied slot, empty slot, exhausted queues) surfaces as the
    /// right `TenancyError` with the region untouched. Op decode per
    /// `u64` draw `d`: kind = d%5 (0 deploy, 1 undeploy, 2 swap,
    /// 3 reserve+deploy_with_range, 4 charge_context_save),
    /// slot = (d/5)%slots, queues = 1+((d>>8)%8).
    #[test]
    fn region_ops(slots in 1usize..5, ops in collection::vec(any::<u64>(), 0..40)) {
        let total_queues: u16 = 12;
        let mut r = region(slots, total_queues);
        let load = r.slots()[0].reconfig_time_ps();
        // Model state: per-slot assigned range, free queues, reconfig sum.
        let mut model: Vec<Option<Range<u16>>> = vec![None; slots];
        let mut free: u16 = total_queues;
        let mut expected_ps: Picos = 0;
        for (step, d) in ops.into_iter().enumerate() {
            let kind = d % 5;
            let slot = ((d / 5) as usize) % slots;
            let q = 1 + ((d >> 8) % 8) as u16;
            let t = tenant(&format!("t{step}"), q);
            match kind {
                0 => {
                    // Error precedence mirrors deploy: slot validation
                    // runs before the queue-exhaustion check.
                    let res = r.deploy(slot, t);
                    if model[slot].is_some() {
                        prop_assert!(
                            matches!(res, Err(TenancyError::SlotOccupied { .. })),
                            "step {step}: deploy into occupied slot gave {res:?}"
                        );
                    } else if q > free {
                        prop_assert!(
                            matches!(res, Err(TenancyError::QueuesExhausted { .. })),
                            "step {step}: deploy past exhaustion gave {res:?}"
                        );
                    } else {
                        prop_assert_eq!(res, Ok(load), "step {step}: deploy cost");
                        let range = r.queue_range(slot).unwrap();
                        prop_assert_eq!(range.end - range.start, q);
                        model[slot] = Some(range);
                        free -= q;
                        expected_ps += load;
                    }
                }
                1 => {
                    let res = r.undeploy(slot);
                    if model[slot].is_none() {
                        prop_assert!(
                            matches!(res, Err(TenancyError::SlotEmpty { .. })),
                            "step {step}: undeploy of empty slot gave {res:?}"
                        );
                    } else {
                        prop_assert!(res.is_ok(), "step {step}: {res:?}");
                        // Retired queues are NOT recycled: free unchanged.
                        model[slot] = None;
                    }
                }
                2 => {
                    let res = r.swap(slot, t);
                    if model[slot].is_none() {
                        prop_assert!(
                            matches!(res, Err(TenancyError::SlotEmpty { .. })),
                            "step {step}: swap on empty slot gave {res:?}"
                        );
                    } else if q > free {
                        prop_assert!(
                            matches!(res, Err(TenancyError::QueuesExhausted { .. })),
                            "step {step}: swap past exhaustion gave {res:?}"
                        );
                    } else {
                        let (_evicted, cost) = res.unwrap();
                        prop_assert_eq!(cost, load, "step {step}: swap load cost");
                        model[slot] = r.queue_range(slot);
                        free -= q;
                        expected_ps += load;
                    }
                }
                3 => {
                    // Scheduler-style path: reserve a pinned range, then
                    // deploy with it. A reservation consumes queues even
                    // when the deploy leg then refuses an occupied slot —
                    // reserved ranges are retired, never recycled.
                    if q > free {
                        prop_assert!(matches!(
                            r.reserve_queues(q),
                            Err(TenancyError::QueuesExhausted { .. })
                        ));
                    } else {
                        let range = r.reserve_queues(q).unwrap();
                        free -= q;
                        let res = r.deploy_with_range(slot, t, range.clone());
                        if model[slot].is_some() {
                            prop_assert!(
                                matches!(res, Err(TenancyError::SlotOccupied { .. })),
                                "step {step}: ranged deploy into occupied slot gave {res:?}"
                            );
                        } else {
                            prop_assert_eq!(res, Ok(load), "step {step}: ranged deploy cost");
                            model[slot] = Some(range);
                            expected_ps += load;
                        }
                    }
                }
                _ => {
                    let res = r.charge_context_save(slot);
                    if model[slot].is_none() {
                        prop_assert!(
                            matches!(res, Err(TenancyError::SlotEmpty { .. })),
                            "step {step}: context save of empty slot gave {res:?}"
                        );
                    } else {
                        prop_assert_eq!(res, Ok(load), "step {step}: save cost");
                        expected_ps += load;
                    }
                }
            }
            prop_assert!(r.queues_disjoint(), "step {step}: isolation broke");
            prop_assert_eq!(r.occupied(), model.iter().flatten().count());
            prop_assert_eq!(r.free_queues(), free, "step {step}");
            prop_assert_eq!(r.total_reconfig_ps(), expected_ps, "step {step}");
            for s in 0..slots {
                prop_assert_eq!(r.queue_range(s), model[s].clone(), "slot {s} range");
            }
        }
    }

    /// `swap` is exactly undeploy-then-deploy when it succeeds — same
    /// evicted tenant, same load cost, byte-identical region state — and
    /// atomic when it fails: the region fingerprint is unchanged, unlike
    /// the manual sequence which can strand the slot empty. Setup decode
    /// per `u64` draw `d`: slot = d%4, queues = 1+((d>>8)%8).
    #[test]
    fn swap_equals_undeploy_deploy(
        setup in collection::vec(any::<u64>(), 1..6),
        slot_d in any::<u64>(),
        q_new in 1u16..33,
    ) {
        let mut r = region(4, 40);
        for (i, d) in setup.iter().enumerate() {
            let slot = (*d as usize) % 4;
            let q = 1 + ((d >> 8) % 8) as u16;
            // Occupied slots / exhausted queues are simply skipped here;
            // region_ops owns the setup-error contracts.
            let _ = r.deploy(slot, tenant(&format!("s{i}"), q));
        }
        let slot = (slot_d as usize) % 4;
        let incoming = tenant("incoming", q_new);
        let before = fingerprint(&r);
        let mut swapped = r.clone();
        let mut manual = r;
        match swapped.swap(slot, incoming.clone()) {
            Ok((evicted, cost)) => {
                let evicted_manual = manual.undeploy(slot).unwrap();
                let cost_manual = manual.deploy(slot, incoming).unwrap();
                prop_assert_eq!(evicted, evicted_manual);
                prop_assert_eq!(cost, cost_manual);
                prop_assert_eq!(fingerprint(&swapped), fingerprint(&manual));
            }
            Err(e) => {
                prop_assert_eq!(
                    fingerprint(&swapped),
                    before.clone(),
                    "failed swap ({e}) must leave the region untouched"
                );
                // The error agrees with the observable state.
                match e {
                    TenancyError::SlotEmpty { .. } => {
                        prop_assert!(swapped.queue_range(slot).is_none());
                    }
                    TenancyError::QueuesExhausted { requested, available } => {
                        prop_assert_eq!(requested, q_new);
                        prop_assert_eq!(available, swapped.free_queues());
                        prop_assert!(q_new > swapped.free_queues());
                    }
                    other => prop_assert!(false, "unexpected swap error {other:?}"),
                }
            }
        }
    }

    /// Under either policy and arbitrary runnable masks: grants only go
    /// to runnable tenants, the grant's budget matches the policy, the
    /// region's reconfiguration total is exactly the sum of reported
    /// switch costs (every save/load is accounted, nothing double-
    /// charged), and the pinned queue ranges never move.
    #[test]
    fn scheduler_reconfig_accounting(
        weights in collection::vec(1u64..17, 2..6),
        masks in collection::vec(any::<u64>(), 1..50),
        wfq in any::<bool>(),
    ) {
        let policy = if wfq { TenantPolicy::WeightedFair } else { TenantPolicy::RoundRobin };
        let slice_ps: Picos = 1_000_000;
        let mut s = TenantScheduler::new(region(1, 1024), 0, policy, slice_ps).unwrap();
        let n = weights.len();
        let mut pinned = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            let idx = s.register(tenant(&format!("t{i}"), 4), w).unwrap();
            prop_assert_eq!(idx, i);
            pinned.push(s.queue_range(idx));
        }
        let mut total_switch: Picos = 0;
        let mut granted = vec![0u64; n];
        for (step, m) in masks.iter().enumerate() {
            let runnable: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            match s.next_slice(step as Picos * slice_ps, &runnable).unwrap() {
                Some(g) => {
                    prop_assert!(runnable[g.tenant], "granted an idle tenant");
                    prop_assert_eq!(g.budget_cmds, s.budget_cmds(g.tenant));
                    prop_assert_eq!(g.slice_ps, slice_ps);
                    total_switch += g.switch_ps;
                    granted[g.tenant] += 1;
                }
                None => prop_assert!(
                    runnable.iter().all(|&x| !x),
                    "no grant while step {step} had runnable tenants"
                ),
            }
        }
        prop_assert_eq!(s.region().total_reconfig_ps(), total_switch,
            "reconfig accounting must equal the sum of reported switch costs");
        for (i, r0) in pinned.iter().enumerate() {
            prop_assert_eq!(&s.queue_range(i), r0, "tenant {i} range moved");
            prop_assert_eq!(s.slices_granted(i), granted[i]);
        }
        prop_assert!(s.region().queues_disjoint());
    }

    /// The WF²Q+ fairness bound for arbitrary admissible weight vectors:
    /// over any all-backlogged window of `mult·Σw` slices from a fresh
    /// scheduler, tenant `i` receives within one slice of its exact
    /// `w_i/Σw` share (|got·Σw − rounds·w_i| ≤ Σw).
    #[test]
    fn wfq_share_within_one_slice(
        weights in collection::vec(1u64..17, 2..6),
        mult in 2u64..8,
    ) {
        let slice_ps: Picos = 1_000_000;
        let mut s = TenantScheduler::new(
            region(1, 1024), 0, TenantPolicy::WeightedFair, slice_ps).unwrap();
        for (i, &w) in weights.iter().enumerate() {
            s.register(tenant(&format!("t{i}"), 2), w).unwrap();
        }
        let total: u64 = weights.iter().sum();
        let rounds = mult * total;
        let runnable = vec![true; weights.len()];
        let mut counts = vec![0u64; weights.len()];
        for step in 0..rounds {
            let g = s.next_slice(step * slice_ps, &runnable).unwrap().unwrap();
            counts[g.tenant] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let diff = counts[i] as i128 * total as i128 - (rounds * w) as i128;
            prop_assert!(
                diff.abs() <= total as i128,
                "weights {weights:?}: tenant {i} got {}/{rounds} slices (diff {diff})",
                counts[i]
            );
        }
        prop_assert_eq!(counts.iter().sum::<u64>(), rounds);
    }
}
