//! The unified control kernel (§3.3.3, Figure 8).
//!
//! A lightweight software core inside the FPGA (Nios-class) that
//! centralizes command execution: commands arrive through a dedicated
//! control queue, wait in a configurable-depth buffer, and are executed
//! sequentially — "each of which defines its own processing logic (such as
//! register read/write, flash erase, time count, etc.)". Reading responses
//! are encapsulated as command response packets and uploaded back through
//! the same DMA engine.
//!
//! The key portability property: `ModuleInit` executes the *vendor-specific*
//! register program inside the kernel, so migrating from device C to
//! device D changes the kernel's program tables, not the host software.

use crate::codes::{CommandCode, SrcId};
use crate::packet::{CommandPacket, DecodeError, VERSION};
use crate::queue::{
    CommandBudget, CompletionQueue, CompletionRecord, CompletionStatus, SubmissionQueue,
};
use std::collections::btree_map::Entry;
use harmonia_hw::regfile::{RegOp, RegisterFile};
use harmonia_hw::resource::ResourceUsage;
use harmonia_shell::rbb::Rbb;
use harmonia_sim::{MetricsRegistry, Picos, SyncFifo, TraceCollector, TraceEventKind};
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

/// One hardware module registered with the kernel: the RBB-level register
/// file plus the vendor instance's register map and init program.
#[derive(Debug)]
pub struct ModuleHandle {
    /// RBB id (Figure 9 routing).
    pub rbb_id: u8,
    /// Instance id within the RBB.
    pub instance_id: u8,
    /// Human-readable module name.
    pub name: String,
    /// The RBB's unified registers (tables, monitors, control).
    pub rbb_regs: RegisterFile,
    /// The vendor IP's native registers.
    pub ip_regs: RegisterFile,
    /// The vendor-specific initialization program.
    pub ip_init: Vec<RegOp>,
}

impl ModuleHandle {
    /// Builds a handle from an RBB (§4's shell-construction step wires the
    /// kernel to every retained RBB).
    pub fn from_rbb(rbb: &dyn Rbb, instance_id: u8) -> Self {
        ModuleHandle {
            rbb_id: rbb.kind().id(),
            instance_id,
            name: format!("{}#{}", rbb.instance().instance_name(), instance_id),
            rbb_regs: rbb.register_file(),
            ip_regs: rbb.instance().register_map(),
            ip_init: rbb.instance().init_sequence(),
        }
    }
}

/// Kernel-side errors, reported in response packets in production and as
/// typed errors here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The packet failed to parse.
    Decode(DecodeError),
    /// The command buffer is full (backpressure to the driver).
    BufferFull,
    /// No module registered at (rbb, instance).
    UnknownModule {
        /// Target RBB id.
        rbb_id: u8,
        /// Target instance id.
        instance_id: u8,
    },
    /// The command code is not implemented by this kernel build.
    Unsupported {
        /// The offending code.
        code: u16,
    },
    /// The payload does not match the command's expected layout.
    BadPayload {
        /// What the command expected.
        expected: &'static str,
    },
    /// A register operation failed during execution.
    RegFault {
        /// The register-file error text.
        detail: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Decode(e) => write!(f, "decode: {e}"),
            KernelError::BufferFull => f.write_str("command buffer full"),
            KernelError::UnknownModule {
                rbb_id,
                instance_id,
            } => write!(f, "no module at rbb {rbb_id} instance {instance_id}"),
            KernelError::Unsupported { code } => write!(f, "unsupported command {code:#06x}"),
            KernelError::BadPayload { expected } => write!(f, "bad payload: expected {expected}"),
            KernelError::RegFault { detail } => write!(f, "register fault: {detail}"),
        }
    }
}

impl Error for KernelError {}

impl From<DecodeError> for KernelError {
    fn from(e: DecodeError) -> Self {
        KernelError::Decode(e)
    }
}

/// Handler for an RBB-defined extension command (§3.3.3: commands "support
/// the extension to new hardware modules (e.g., i2c) and software"). The
/// handler receives the request packet and produces the response payload.
pub type ExtensionHandler = Box<dyn FnMut(&CommandPacket) -> Result<Vec<u32>, KernelError> + Send>;

/// What one [`UnifiedControlKernel::ring_doorbell`] drain produced, in
/// addition to the records posted on the completion ring.
#[derive(Debug, Default)]
pub struct DrainOutcome {
    /// Descriptors consumed from the submission ring.
    pub drained: usize,
    /// Total execution latency of the drained commands, picoseconds
    /// (what the host's clock advances by for the batch).
    pub exec_ps: Picos,
    /// Response packets for [`CompletionStatus::Ok`](crate::queue::CompletionStatus)
    /// records, keyed by descriptor tag, in drain order.
    pub responses: Vec<(u32, CommandPacket)>,
    /// Typed errors for `CompletionStatus::Error` records, keyed by tag.
    pub errors: Vec<(u32, KernelError)>,
    /// Whether the drain stopped because the tenant's
    /// [`CommandBudget`] ran out with work
    /// still queued (never set on the unbudgeted path).
    pub quota_exhausted: bool,
}

/// The unified control kernel.
pub struct UnifiedControlKernel {
    buffer: SyncFifo<CommandPacket>,
    modules: BTreeMap<(u8, u8), ModuleHandle>,
    health: RegisterFile,
    extensions: BTreeMap<u16, ExtensionHandler>,
    commands_executed: u64,
    reg_ops_executed: u64,
    idem_cache: BTreeMap<(u8, u32), CommandPacket>,
    idem_order: VecDeque<(u8, u32)>,
    decode_errors: u64,
    replays: u64,
    /// Observability handle (disabled by default — zero cost). Purely
    /// observational: recording never feeds back into execution.
    trace: TraceCollector,
    /// Metrics handle (disabled by default — zero cost). Same contract
    /// as `trace`: recording never feeds back into execution.
    metrics: MetricsRegistry,
    /// Trace-only clock: advanced by executed-command latencies and
    /// synced forward by the driver. Never consulted by execution logic.
    trace_clock_ps: Picos,
}

impl fmt::Debug for UnifiedControlKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnifiedControlKernel")
            .field("pending", &self.buffer.len())
            .field("modules", &self.modules.len())
            .field("extensions", &self.extensions.keys().collect::<Vec<_>>())
            .field("commands_executed", &self.commands_executed)
            .finish()
    }
}

impl UnifiedControlKernel {
    /// Soft-core clock: commands execute at Nios-class speed.
    pub const CORE_CLOCK_MHZ: u64 = 250;
    /// Bound on cached idempotent responses (oldest evicted first).
    pub const IDEM_CACHE_DEPTH: usize = 256;
    /// Fixed per-command overhead in core cycles (parse + dispatch +
    /// encapsulate).
    pub const CYCLES_PER_COMMAND: u64 = 60;
    /// Core cycles per register operation executed.
    pub const CYCLES_PER_REG_OP: u64 = 4;

    /// Creates a kernel with the given command-buffer depth.
    pub fn new(buffer_depth: usize) -> Self {
        let mut health = RegisterFile::new("board-health");
        health.define(0x00, "temp_fpga", harmonia_hw::Access::ReadOnly, 41);
        health.define(0x04, "temp_board", harmonia_hw::Access::ReadOnly, 33);
        health.define(0x08, "vccint_mv", harmonia_hw::Access::ReadOnly, 850);
        health.define(0x0C, "vcc12_mv", harmonia_hw::Access::ReadOnly, 12_010);
        health.define(0x10, "time_lo", harmonia_hw::Access::ReadWrite, 0);
        health.define(0x14, "time_hi", harmonia_hw::Access::ReadWrite, 0);
        health.define(0x18, "flash_status", harmonia_hw::Access::ReadOnly, 1);
        UnifiedControlKernel {
            buffer: SyncFifo::new(buffer_depth),
            modules: BTreeMap::new(),
            health,
            extensions: BTreeMap::new(),
            commands_executed: 0,
            reg_ops_executed: 0,
            idem_cache: BTreeMap::new(),
            idem_order: VecDeque::new(),
            decode_errors: 0,
            replays: 0,
            trace: TraceCollector::disabled(),
            metrics: MetricsRegistry::disabled(),
            trace_clock_ps: 0,
        }
    }

    /// Attaches an observability collector: the kernel emits
    /// [`TraceEventKind::KernelExec`] spans, replay/NACK instants and
    /// buffer-stall events into it. Disabled collectors cost one branch
    /// per hook.
    pub fn set_trace_collector(&mut self, trace: TraceCollector) {
        self.trace = trace;
    }

    /// Attaches a metrics registry: the kernel bumps
    /// `harmonia_kernel_*` counters (executed, replays, nacks, reg ops,
    /// ring drains) and ring-occupancy high-water gauges into it.
    /// Disabled registries cost one branch per hook.
    pub fn set_metrics_registry(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Advances the kernel's trace-only clock to `now` (the driver calls
    /// this with its own clock before submitting, so kernel-side events
    /// line up with driver-side events on one timeline). Never moves
    /// backwards; has no effect on execution.
    pub fn sync_clock(&mut self, now: Picos) {
        self.trace_clock_ps = self.trace_clock_ps.max(now);
    }

    /// Registers a handler for an extension command code (≥ 0x0010; the
    /// 0x000A–0x000F band is reserved for protocol codes such as
    /// [`CommandCode::Nack`]). The kernel's command space stays open for
    /// new hardware modules — i2c sensor buses, flash controllers —
    /// without touching the packet format or the drivers.
    ///
    /// # Panics
    ///
    /// Panics if `code` collides with a built-in command or an existing
    /// extension.
    pub fn register_extension(&mut self, code: u16, handler: ExtensionHandler) {
        assert!(
            code >= 0x0010,
            "extension code {code:#06x} collides with built-in commands"
        );
        match self.extensions.entry(code) {
            Entry::Vacant(v) => {
                v.insert(handler);
            }
            Entry::Occupied(_) => panic!("extension {code:#06x} registered twice"),
        }
    }

    /// Registers a module.
    ///
    /// # Panics
    ///
    /// Panics if the (rbb, instance) slot is already taken — module
    /// addressing must be unambiguous.
    pub fn register_module(&mut self, handle: ModuleHandle) {
        let key = (handle.rbb_id, handle.instance_id);
        let prev = self.modules.insert(key, handle);
        assert!(prev.is_none(), "module slot {key:?} registered twice");
    }

    /// Registers every RBB of a shell, numbering instances per RBB kind.
    pub fn attach_shell<'a, I: IntoIterator<Item = &'a dyn Rbb>>(&mut self, rbbs: I) {
        let mut counters: BTreeMap<u8, u8> = BTreeMap::new();
        for rbb in rbbs {
            let id = rbb.kind().id();
            let n = counters.entry(id).or_insert(0);
            self.register_module(ModuleHandle::from_rbb(rbb, *n));
            *n += 1;
        }
    }

    /// Number of registered modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Enqueues an encoded packet (steps 2–3 of the walkthrough: transfer
    /// into the kernel buffer and parse).
    ///
    /// # Errors
    ///
    /// Decode failures and buffer backpressure.
    pub fn submit_bytes(&mut self, bytes: &[u8]) -> Result<(), KernelError> {
        let packet = CommandPacket::decode(bytes)?;
        self.submit(packet)
    }

    /// Drop/corrupt-aware ingest: bytes that fail to decode produce a
    /// [`CommandCode::Nack`] response packet addressed to `reply_to` (the
    /// controller whose queue the bytes arrived on) instead of an error —
    /// the kernel must survive a corrupted wire, not panic or wedge.
    ///
    /// Returns `Ok(Some(nack))` for undecodable bytes, `Ok(None)` when the
    /// command was accepted into the buffer.
    ///
    /// # Errors
    ///
    /// [`KernelError::BufferFull`] under backpressure (the bytes were
    /// valid; the driver should retry after draining responses).
    pub fn submit_bytes_or_nack(
        &mut self,
        bytes: &[u8],
        reply_to: SrcId,
    ) -> Result<Option<CommandPacket>, KernelError> {
        match CommandPacket::decode(bytes) {
            Ok(packet) => {
                self.submit(packet)?;
                Ok(None)
            }
            Err(e) => {
                self.decode_errors += 1;
                self.metrics.counter_inc("harmonia_kernel_nacks_total", &[]);
                self.trace.instant(
                    self.trace_clock_ps,
                    TraceEventKind::CmdNack {
                        error_code: e.code(),
                    },
                );
                let nack = CommandPacket {
                    version: VERSION,
                    src: reply_to,
                    dst: reply_to.to_u8(),
                    rbb_id: 0,
                    instance_id: 0,
                    code: CommandCode::Nack,
                    options: 0,
                    data: vec![e.code()],
                };
                Ok(Some(nack))
            }
        }
    }

    /// Enqueues a parsed packet.
    ///
    /// # Errors
    ///
    /// [`KernelError::BufferFull`] under backpressure.
    pub fn submit(&mut self, packet: CommandPacket) -> Result<(), KernelError> {
        self.buffer
            .push_traced(packet, &self.trace, self.trace_clock_ps)
            .map_err(|_| KernelError::BufferFull)?;
        self.metrics.gauge_max(
            "harmonia_kernel_buffer_high_water",
            &[],
            self.buffer.len() as u64,
        );
        Ok(())
    }

    /// Commands waiting in the buffer.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Executes the next buffered command (steps 4–6) and returns its
    /// response packet.
    ///
    /// # Errors
    ///
    /// Execution errors; `Ok(None)` when the buffer is empty.
    pub fn step(&mut self) -> Result<Option<CommandPacket>, KernelError> {
        let Some(packet) = self.buffer.pop() else {
            return Ok(None);
        };
        // Idempotency-tagged commands replay their cached response: a
        // retried `ModuleInit` whose completion interrupt was lost must
        // not run the vendor init program twice.
        let idem_key = packet.idempotency_key().map(|k| (packet.src.to_u8(), k));
        if let Some(key) = idem_key {
            if let Some(cached) = self.idem_cache.get(&key) {
                self.replays += 1;
                self.metrics.counter_inc("harmonia_kernel_replays_total", &[]);
                self.trace.instant(
                    self.trace_clock_ps,
                    TraceEventKind::KernelReplay {
                        code: packet.code.to_u16(),
                    },
                );
                return Ok(Some(cached.clone()));
            }
        }
        let ops_before = self.reg_ops_executed;
        let data = self.execute(&packet)?;
        self.commands_executed += 1;
        self.metrics.counter_inc("harmonia_kernel_cmds_executed_total", &[]);
        self.metrics.counter_add(
            "harmonia_kernel_reg_ops_total",
            &[],
            self.reg_ops_executed - ops_before,
        );
        let exec_ps = Self::command_latency_ps(self.reg_ops_executed - ops_before);
        self.trace.span(
            self.trace_clock_ps,
            exec_ps,
            TraceEventKind::KernelExec {
                code: packet.code.to_u16(),
                reg_ops: self.reg_ops_executed - ops_before,
            },
        );
        self.trace_clock_ps += exec_ps;
        let response = packet.response(data);
        if let Some(key) = idem_key {
            if self.idem_order.len() == Self::IDEM_CACHE_DEPTH {
                if let Some(old) = self.idem_order.pop_front() {
                    self.idem_cache.remove(&old);
                }
            }
            self.idem_cache.insert(key, response.clone());
            self.idem_order.push_back(key);
        }
        Ok(Some(response))
    }

    /// Doorbell entry for the batched SQ/CQ path: drains up to `n`
    /// descriptors from the submission ring through the normal
    /// decode/idempotency/replay machinery, posting one compact
    /// [`CompletionRecord`] per drained descriptor to the completion
    /// ring.
    ///
    /// Per descriptor, in ring order:
    ///
    /// * undecodable bytes post [`CompletionStatus::Nack`] with the stable
    ///   decode-error code (the NACK packet the single-shot path would
    ///   have returned is collapsed into the record);
    /// * executed (or idempotently replayed) commands post
    ///   [`CompletionStatus::Ok`]; the response packet rides back in
    ///   [`DrainOutcome::responses`] keyed by tag;
    /// * typed execution failures post [`CompletionStatus::Error`] with
    ///   the [`KernelError`] in [`DrainOutcome::errors`] — one bad
    ///   command must not wedge the rest of the batch.
    ///
    /// The drain stops early when the completion ring fills (the host
    /// hasn't polled; posting would overwrite unread completions) —
    /// undrained descriptors stay queued for the next doorbell.
    pub fn ring_doorbell(
        &mut self,
        sq: &mut SubmissionQueue,
        cq: &mut CompletionQueue,
        n: usize,
        reply_to: SrcId,
    ) -> DrainOutcome {
        let mut unlimited = CommandBudget::unlimited();
        self.ring_doorbell_budgeted(sq, cq, n, reply_to, &mut unlimited)
    }

    /// [`UnifiedControlKernel::ring_doorbell`] with a tenant
    /// [`CommandBudget`]: every drained descriptor is charged against
    /// the budget and the drain refuses to start a descriptor past
    /// exhaustion. When the budget runs dry with descriptors still
    /// queued, [`DrainOutcome::quota_exhausted`] is set and a
    /// `QuotaExhausted` trace instant plus a
    /// `harmonia_kernel_quota_exhausted_total` counter tick record the
    /// preemption cause. With [`CommandBudget::unlimited`] this is
    /// byte-for-byte the unbudgeted path.
    pub fn ring_doorbell_budgeted(
        &mut self,
        sq: &mut SubmissionQueue,
        cq: &mut CompletionQueue,
        n: usize,
        reply_to: SrcId,
        budget: &mut CommandBudget,
    ) -> DrainOutcome {
        let drain_start = self.trace_clock_ps;
        self.metrics
            .gauge_max("harmonia_kernel_sq_high_water", &[], sq.len() as u64);
        let mut out = DrainOutcome {
            drained: 0,
            exec_ps: 0,
            responses: Vec::new(),
            errors: Vec::new(),
            quota_exhausted: false,
        };
        for _ in 0..n {
            if cq.is_full() {
                break;
            }
            if budget.exhausted() {
                break;
            }
            let Some(desc) = sq.pop() else { break };
            budget.charge();
            out.drained += 1;
            let status = match self.submit_bytes_or_nack(&desc.bytes, reply_to) {
                Ok(Some(nack)) => CompletionStatus::Nack {
                    error_code: nack.data[0],
                },
                Ok(None) => {
                    let before = self.reg_ops_executed;
                    match self.step() {
                        Ok(Some(resp)) => {
                            out.exec_ps +=
                                Self::command_latency_ps(self.reg_ops_executed - before);
                            out.responses.push((desc.tag, resp));
                            CompletionStatus::Ok
                        }
                        Ok(None) => unreachable!("descriptor was just submitted"),
                        Err(e) => {
                            out.errors.push((desc.tag, e));
                            CompletionStatus::Error
                        }
                    }
                }
                Err(e) => {
                    // Command-buffer backpressure (only reachable with a
                    // degenerate buffer depth: the drain is one-in-one-out).
                    out.errors.push((desc.tag, e));
                    CompletionStatus::Error
                }
            };
            cq.push(CompletionRecord {
                tag: desc.tag,
                status,
                at_ps: self.trace_clock_ps,
            })
            .expect("cq fullness was checked before the pop");
        }
        if out.drained > 0 {
            self.metrics
                .counter_add("harmonia_kernel_sq_drained_total", &[], out.drained as u64);
            self.trace.span(
                drain_start,
                out.exec_ps,
                TraceEventKind::BatchDrain {
                    entries: out.drained as u32,
                },
            );
        }
        if budget.exhausted() && !sq.is_empty() {
            out.quota_exhausted = true;
            self.trace.instant(
                self.trace_clock_ps,
                TraceEventKind::QuotaExhausted {
                    tenant: budget.tenant,
                    granted: budget.granted,
                },
            );
            self.metrics
                .counter_inc("harmonia_kernel_quota_exhausted_total", &[]);
        }
        out
    }

    /// Drains the whole buffer, returning all responses.
    ///
    /// # Errors
    ///
    /// Stops at the first failing command.
    pub fn run_to_idle(&mut self) -> Result<Vec<CommandPacket>, KernelError> {
        let mut out = Vec::new();
        while let Some(resp) = self.step()? {
            out.push(resp);
        }
        Ok(out)
    }

    fn module_mut(
        modules: &mut BTreeMap<(u8, u8), ModuleHandle>,
        rbb_id: u8,
        instance_id: u8,
    ) -> Result<&mut ModuleHandle, KernelError> {
        modules
            .get_mut(&(rbb_id, instance_id))
            .ok_or(KernelError::UnknownModule {
                rbb_id,
                instance_id,
            })
    }

    fn execute(&mut self, packet: &CommandPacket) -> Result<Vec<u32>, KernelError> {
        match packet.code {
            CommandCode::HealthRead => {
                let mut out = Vec::new();
                for addr in [0x00u32, 0x04, 0x08, 0x0C] {
                    out.push(self.reg(|k| k.health.read(addr))?);
                }
                Ok(out)
            }
            CommandCode::TimeSync => {
                let [lo, hi] = packet.data[..] else {
                    return Err(KernelError::BadPayload {
                        expected: "[time_lo, time_hi]",
                    });
                };
                self.reg(|k| k.health.write(0x10, lo))?;
                self.reg(|k| k.health.write(0x14, hi))?;
                Ok(Vec::new())
            }
            CommandCode::FlashErase => {
                // Board-level flash: acknowledge with the flash status.
                self.reg(|k| k.health.read(0x18)).map(|v| vec![v])
            }
            CommandCode::ModuleStatusRead => {
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                let mut out = Vec::new();
                if packet.data.is_empty() {
                    let addr = m.rbb_regs.addr_of("status").ok_or(KernelError::BadPayload {
                        expected: "addresses (module has no default status reg)",
                    })?;
                    out.push(Self::reg_on(&mut self.reg_ops_executed, || {
                        m.rbb_regs.read(addr)
                    })?);
                } else {
                    for &addr in &packet.data {
                        out.push(Self::reg_on(&mut self.reg_ops_executed, || {
                            m.rbb_regs.read(addr)
                        })?);
                    }
                }
                Ok(out)
            }
            CommandCode::ModuleStatusWrite => {
                if !packet.data.len().is_multiple_of(2) || packet.data.is_empty() {
                    return Err(KernelError::BadPayload {
                        expected: "[addr, value] pairs",
                    });
                }
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                for pair in packet.data.chunks_exact(2) {
                    Self::reg_on(&mut self.reg_ops_executed, || {
                        m.rbb_regs.write(pair[0], pair[1])
                    })?;
                }
                Ok(Vec::new())
            }
            CommandCode::ModuleInit => {
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                let init = m.ip_init.clone();
                for op in &init {
                    // The hardware raises polled status bits as the module
                    // comes up; model that before each wait.
                    if let RegOp::WaitStatus { addr, mask, expect } = *op {
                        let cur = Self::reg_on(&mut self.reg_ops_executed, || {
                            m.ip_regs.read(addr)
                        })?;
                        m.ip_regs
                            .hw_set(addr, (cur & !mask) | expect)
                            .map_err(|e| KernelError::RegFault {
                                detail: e.to_string(),
                            })?;
                    }
                    Self::reg_on(&mut self.reg_ops_executed, || m.ip_regs.apply(op))?;
                }
                Ok(vec![init.len() as u32])
            }
            CommandCode::ModuleReset => {
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                m.rbb_regs.reset();
                m.ip_regs.reset();
                self.reg_ops_executed += 2;
                Ok(Vec::new())
            }
            CommandCode::TableWrite => {
                let [index, lo, hi] = packet.data[..] else {
                    return Err(KernelError::BadPayload {
                        expected: "[index, value_lo, value_hi]",
                    });
                };
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                for (reg, val) in [
                    ("table_addr", index),
                    ("table_wdata_lo", lo),
                    ("table_wdata_hi", hi),
                    ("table_cmd", 1),
                ] {
                    let addr = m.rbb_regs.addr_of(reg).ok_or(KernelError::BadPayload {
                        expected: "a module with table registers",
                    })?;
                    Self::reg_on(&mut self.reg_ops_executed, || m.rbb_regs.write(addr, val))?;
                }
                Ok(Vec::new())
            }
            CommandCode::TableRead => {
                let [index] = packet.data[..] else {
                    return Err(KernelError::BadPayload {
                        expected: "[index]",
                    });
                };
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                let addr_reg = m.rbb_regs.addr_of("table_addr").ok_or(KernelError::BadPayload {
                    expected: "a module with table registers",
                })?;
                Self::reg_on(&mut self.reg_ops_executed, || {
                    m.rbb_regs.write(addr_reg, index)
                })?;
                let lo = m.rbb_regs.addr_of("table_wdata_lo").expect("table regs");
                let hi = m.rbb_regs.addr_of("table_wdata_hi").expect("table regs");
                let vlo = Self::reg_on(&mut self.reg_ops_executed, || m.rbb_regs.read(lo))?;
                let vhi = Self::reg_on(&mut self.reg_ops_executed, || m.rbb_regs.read(hi))?;
                Ok(vec![vlo, vhi])
            }
            CommandCode::StatsRead => {
                let m = Self::module_mut(&mut self.modules, packet.rbb_id, packet.instance_id)?;
                let addrs: Vec<u32> = m
                    .rbb_regs
                    .iter()
                    .filter(|(_, name)| name.starts_with("mon_"))
                    .map(|(a, _)| a)
                    .collect();
                let mut out = Vec::with_capacity(addrs.len());
                for addr in addrs {
                    out.push(Self::reg_on(&mut self.reg_ops_executed, || {
                        m.rbb_regs.read(addr)
                    })?);
                }
                Ok(out)
            }
            // NACK is kernel-originated only; a host submitting one is a
            // protocol violation.
            CommandCode::Nack => Err(KernelError::Unsupported {
                code: CommandCode::Nack.to_u16(),
            }),
            CommandCode::Extension(code) => match self.extensions.get_mut(&code) {
                Some(handler) => handler(packet),
                None => Err(KernelError::Unsupported { code }),
            },
        }
    }

    fn reg<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, harmonia_hw::regfile::RegError>,
    ) -> Result<T, KernelError> {
        self.reg_ops_executed += 1;
        f(self).map_err(|e| KernelError::RegFault {
            detail: e.to_string(),
        })
    }

    fn reg_on<T, E: fmt::Display>(
        counter: &mut u64,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, KernelError> {
        *counter += 1;
        f().map_err(|e| KernelError::RegFault {
            detail: e.to_string(),
        })
    }

    /// Hardware-side access to a module's RBB register file, so live RBB
    /// state (monitor counters) can be published into the registers the
    /// kernel serves to `StatsRead`.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownModule`] when no module is registered there.
    pub fn module_regs_mut(
        &mut self,
        rbb_id: u8,
        instance_id: u8,
    ) -> Result<&mut RegisterFile, KernelError> {
        self.modules
            .get_mut(&(rbb_id, instance_id))
            .map(|m| &mut m.rbb_regs)
            .ok_or(KernelError::UnknownModule {
                rbb_id,
                instance_id,
            })
    }

    /// Hardware-side sensor update: the board management fabric refreshes
    /// the health registers (software reads them via `HealthRead`).
    pub fn update_sensors(&mut self, temp_fpga_c: u32, temp_board_c: u32, vccint_mv: u32) {
        self.health
            .hw_set(0x00, temp_fpga_c)
            .expect("health map is fixed");
        self.health
            .hw_set(0x04, temp_board_c)
            .expect("health map is fixed");
        self.health
            .hw_set(0x08, vccint_mv)
            .expect("health map is fixed");
    }

    /// Commands executed so far.
    pub fn commands_executed(&self) -> u64 {
        self.commands_executed
    }

    /// Register operations the kernel executed on software's behalf — the
    /// operations host software would otherwise perform itself (Figure 13).
    pub fn reg_ops_executed(&self) -> u64 {
        self.reg_ops_executed
    }

    /// Undecodable submissions turned into NACK responses.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Idempotent retries served from the response cache (no re-execution).
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Execution latency of a command that performs `reg_ops` register
    /// operations, in picoseconds.
    pub fn command_latency_ps(reg_ops: u64) -> Picos {
        let cycles = Self::CYCLES_PER_COMMAND + Self::CYCLES_PER_REG_OP * reg_ops;
        cycles * (1_000_000 / Self::CORE_CLOCK_MHZ)
    }

    /// Soft-core resource footprint — bounded by Figure 16's 0.67%.
    pub fn resources() -> ResourceUsage {
        ResourceUsage::new(3_600, 4_800, 8, 2, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::SrcId;
    use harmonia_hw::device::catalog;
    use harmonia_shell::rbb::RbbKind;
    use harmonia_shell::{RoleSpec, TailoredShell, UnifiedShell};

    fn kernel_on_device_a() -> UnifiedControlKernel {
        let unified = UnifiedShell::for_device(&catalog::device_a());
        let role = RoleSpec::builder("test")
            .network_gbps(100)
            .memory(harmonia_shell::MemoryDemand::Hbm)
            .build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut k = UnifiedControlKernel::new(64);
        k.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
        k
    }

    fn net_cmd(code: CommandCode) -> CommandPacket {
        CommandPacket::new(SrcId::Application, RbbKind::Network.id(), 0, code)
    }

    #[test]
    fn attach_shell_registers_all_rbbs() {
        let k = kernel_on_device_a();
        assert_eq!(k.module_count(), 4); // 2 net + hbm + host
    }

    #[test]
    fn module_init_executes_vendor_program() {
        let mut k = kernel_on_device_a();
        k.submit(net_cmd(CommandCode::ModuleInit)).unwrap();
        let resp = k.step().unwrap().unwrap();
        let ops = resp.data[0];
        assert!(ops > 5, "init ran only {ops} ops");
        assert!(k.reg_ops_executed() >= u64::from(ops));
        assert_eq!(k.commands_executed(), 1);
    }

    #[test]
    fn status_read_defaults_to_status_register() {
        let mut k = kernel_on_device_a();
        k.submit(net_cmd(CommandCode::ModuleStatusRead)).unwrap();
        let resp = k.step().unwrap().unwrap();
        assert_eq!(resp.data.len(), 1);
        assert_eq!(resp.dst, SrcId::Application.to_u8());
    }

    #[test]
    fn table_write_then_read_round_trip() {
        let mut k = kernel_on_device_a();
        k.submit(net_cmd(CommandCode::TableWrite).with_data(vec![3, 0xAAAA, 0x5555]))
            .unwrap();
        k.submit(net_cmd(CommandCode::TableRead).with_data(vec![3]))
            .unwrap();
        let resps = k.run_to_idle().unwrap();
        assert_eq!(resps[1].data, vec![0xAAAA, 0x5555]);
    }

    #[test]
    fn stats_read_returns_all_monitor_registers() {
        let mut k = kernel_on_device_a();
        k.submit(net_cmd(CommandCode::StatsRead)).unwrap();
        let resp = k.step().unwrap().unwrap();
        assert_eq!(resp.data.len(), 28); // the Network RBB monitor block
    }

    #[test]
    fn unknown_module_reported() {
        let mut k = kernel_on_device_a();
        k.submit(CommandPacket::new(
            SrcId::CtrlTool,
            RbbKind::Memory.id(),
            7,
            CommandCode::ModuleReset,
        ))
        .unwrap();
        assert_eq!(
            k.step(),
            Err(KernelError::UnknownModule {
                rbb_id: 2,
                instance_id: 7
            })
        );
    }

    #[test]
    fn health_and_timesync_are_device_level() {
        let mut k = kernel_on_device_a();
        k.submit(CommandPacket::new(SrcId::Bmc, 0, 0, CommandCode::HealthRead))
            .unwrap();
        let resp = k.step().unwrap().unwrap();
        assert_eq!(resp.data.len(), 4);
        assert_eq!(resp.data[0], 41); // temp
        k.submit(
            CommandPacket::new(SrcId::Bmc, 0, 0, CommandCode::TimeSync).with_data(vec![99, 1]),
        )
        .unwrap();
        assert!(k.step().unwrap().is_some());
    }

    #[test]
    fn buffer_backpressure() {
        let mut k = UnifiedControlKernel::new(2);
        k.submit(net_cmd(CommandCode::HealthRead)).unwrap();
        k.submit(net_cmd(CommandCode::HealthRead)).unwrap();
        assert_eq!(
            k.submit(net_cmd(CommandCode::HealthRead)),
            Err(KernelError::BufferFull)
        );
    }

    #[test]
    fn bad_payload_reported() {
        let mut k = kernel_on_device_a();
        k.submit(net_cmd(CommandCode::TableWrite).with_data(vec![1]))
            .unwrap();
        assert!(matches!(k.step(), Err(KernelError::BadPayload { .. })));
    }

    #[test]
    fn submit_bytes_decodes_first() {
        let mut k = kernel_on_device_a();
        let good = net_cmd(CommandCode::ModuleStatusRead).encode();
        k.submit_bytes(&good).unwrap();
        let mut bad = good.clone();
        bad[15] ^= 0xFF;
        assert!(matches!(
            k.submit_bytes(&bad),
            Err(KernelError::Decode(_))
        ));
    }

    #[test]
    fn reset_restores_module_registers() {
        let mut k = kernel_on_device_a();
        k.submit(net_cmd(CommandCode::ModuleStatusWrite).with_data(vec![0x000, 0]))
            .unwrap(); // filter_ctrl := 0
        k.submit(net_cmd(CommandCode::ModuleStatusRead).with_data(vec![0x000]))
            .unwrap();
        k.submit(net_cmd(CommandCode::ModuleReset)).unwrap();
        k.submit(net_cmd(CommandCode::ModuleStatusRead).with_data(vec![0x000]))
            .unwrap();
        let resps = k.run_to_idle().unwrap();
        assert_eq!(resps[1].data, vec![0]);
        assert_eq!(resps[3].data, vec![1]); // reset value
    }

    #[test]
    fn kernel_overhead_below_fig16_bound() {
        for dev in catalog::all() {
            let pct = UnifiedControlKernel::resources().max_percent_of(dev.capacity());
            assert!(pct < 0.67, "{}: UCK at {pct:.3}%", dev.name());
        }
    }

    #[test]
    fn command_latency_is_sub_microsecond() {
        let ps = UnifiedControlKernel::command_latency_ps(40);
        assert!(ps < 1_000_000, "command latency {ps} ps");
    }

    #[test]
    fn extension_commands_route_to_handlers() {
        let mut k = kernel_on_device_a();
        // An i2c temperature read, new hardware module, no format changes.
        let i2c_regs = [0x19u32, 0x2A];
        k.register_extension(
            0x0010,
            Box::new(move |pkt| {
                let [dev_addr] = pkt.data[..] else {
                    return Err(KernelError::BadPayload {
                        expected: "[i2c device address]",
                    });
                };
                Ok(vec![i2c_regs[(dev_addr % 2) as usize], dev_addr])
            }),
        );
        let resp = {
            k.submit(
                CommandPacket::new(SrcId::Bmc, 0, 0, CommandCode::Extension(0x0010))
                    .with_data(vec![1]),
            )
            .unwrap();
            k.step().unwrap().unwrap()
        };
        assert_eq!(resp.data, vec![0x2A, 1]);
        // Unknown extensions still fail cleanly.
        k.submit(CommandPacket::new(
            SrcId::Bmc,
            0,
            0,
            CommandCode::Extension(0x0099),
        ))
        .unwrap();
        assert_eq!(k.step(), Err(KernelError::Unsupported { code: 0x0099 }));
    }

    #[test]
    #[should_panic(expected = "collides with built-in")]
    fn extension_cannot_shadow_builtins() {
        let mut k = UnifiedControlKernel::new(4);
        k.register_extension(0x0002, Box::new(|_| Ok(Vec::new())));
    }

    #[test]
    #[should_panic(expected = "collides with built-in")]
    fn extension_cannot_shadow_nack() {
        let mut k = UnifiedControlKernel::new(4);
        k.register_extension(0x000F, Box::new(|_| Ok(Vec::new())));
    }

    #[test]
    fn corrupt_bytes_become_a_nack_not_a_panic() {
        let mut k = kernel_on_device_a();
        let mut bytes = net_cmd(CommandCode::ModuleStatusRead).encode();
        bytes[15] ^= 0xFF;
        let nack = k
            .submit_bytes_or_nack(&bytes, SrcId::Application)
            .unwrap()
            .expect("corrupt bytes must NACK");
        assert_eq!(nack.code, CommandCode::Nack);
        assert_eq!(nack.dst, SrcId::Application.to_u8());
        assert_eq!(
            nack.data,
            vec![CommandPacket::decode(&bytes).unwrap_err().code()]
        );
        assert_eq!(k.decode_errors(), 1);
        assert_eq!(k.pending(), 0);
        // Valid bytes still go through the same entry point.
        let good = net_cmd(CommandCode::ModuleStatusRead).encode();
        assert_eq!(k.submit_bytes_or_nack(&good, SrcId::Application), Ok(None));
        assert_eq!(k.pending(), 1);
    }

    #[test]
    fn idempotent_module_init_replays_without_double_apply() {
        let mut k = kernel_on_device_a();
        let cmd = net_cmd(CommandCode::ModuleInit).with_idempotency_tag(7);
        k.submit(cmd.clone()).unwrap();
        let first = k.step().unwrap().unwrap();
        let (execs, reg_ops) = (k.commands_executed(), k.reg_ops_executed());
        // The driver retries the identical tagged command (e.g. its
        // completion interrupt was lost).
        k.submit(cmd).unwrap();
        let replay = k.step().unwrap().unwrap();
        assert_eq!(replay, first);
        assert_eq!(k.commands_executed(), execs, "init must not run twice");
        assert_eq!(k.reg_ops_executed(), reg_ops);
        assert_eq!(k.replays(), 1);
        // A different tag executes fresh.
        k.submit(net_cmd(CommandCode::ModuleInit).with_idempotency_tag(8))
            .unwrap();
        k.step().unwrap().unwrap();
        assert_eq!(k.commands_executed(), execs + 1);
    }

    #[test]
    fn idempotency_cache_is_bounded() {
        let mut k = kernel_on_device_a();
        for tag in 0..(UnifiedControlKernel::IDEM_CACHE_DEPTH as u32 + 8) {
            k.submit(net_cmd(CommandCode::ModuleStatusRead).with_idempotency_tag(tag))
                .unwrap();
            k.step().unwrap().unwrap();
        }
        // Tag 0 was evicted, so re-submitting it executes again.
        let execs = k.commands_executed();
        k.submit(net_cmd(CommandCode::ModuleStatusRead).with_idempotency_tag(0))
            .unwrap();
        k.step().unwrap().unwrap();
        assert_eq!(k.commands_executed(), execs + 1);
        assert_eq!(k.replays(), 0);
    }

    #[test]
    fn traced_kernel_emits_exec_replay_and_nack_events() {
        use harmonia_sim::TraceEventKind;
        let mut k = kernel_on_device_a();
        let tc = harmonia_sim::TraceCollector::enabled();
        k.set_trace_collector(tc.clone());
        // Normal execution → one KernelExec span.
        k.submit(net_cmd(CommandCode::ModuleStatusRead)).unwrap();
        k.step().unwrap().unwrap();
        // Replay of an idempotent retry → KernelReplay instant.
        let tagged = net_cmd(CommandCode::ModuleInit).with_idempotency_tag(1);
        k.submit(tagged.clone()).unwrap();
        k.step().unwrap().unwrap();
        k.submit(tagged).unwrap();
        k.step().unwrap().unwrap();
        // Corrupt bytes → CmdNack instant.
        let mut bytes = net_cmd(CommandCode::ModuleStatusRead).encode();
        bytes[15] ^= 0xFF;
        k.submit_bytes_or_nack(&bytes, SrcId::Application).unwrap();
        let trace = tc.take();
        let names: Vec<&str> = trace.events().iter().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"kernel-exec"));
        assert!(names.contains(&"kernel-replay"));
        assert!(names.contains(&"cmd-nack"));
        let execs = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::KernelExec { .. }))
            .count();
        assert_eq!(execs, 2, "status read + first init");
    }

    #[test]
    fn untraced_kernel_behaves_identically() {
        let run = |traced: bool| {
            let mut k = kernel_on_device_a();
            if traced {
                k.set_trace_collector(harmonia_sim::TraceCollector::enabled());
            }
            k.submit(net_cmd(CommandCode::ModuleInit)).unwrap();
            let resp = k.step().unwrap().unwrap();
            (resp, k.commands_executed(), k.reg_ops_executed())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_module_slot_panics() {
        let unified = UnifiedShell::for_device(&catalog::device_a());
        let role = RoleSpec::builder("t").network_gbps(100).build();
        let shell = TailoredShell::tailor(&unified, &role).unwrap();
        let mut k = UnifiedControlKernel::new(8);
        let rbb = shell.rbbs()[0].as_ref();
        k.register_module(ModuleHandle::from_rbb(rbb, 0));
        k.register_module(ModuleHandle::from_rbb(rbb, 0));
    }

    fn health_desc(tag: u32) -> crate::queue::SqDescriptor {
        let pkt = CommandPacket::new(SrcId::Application, 0, 0, CommandCode::HealthRead)
            .with_idempotency_tag(tag);
        crate::queue::SqDescriptor {
            tag,
            bytes: pkt.encode(),
        }
    }

    #[test]
    fn budgeted_drain_stops_at_quota_and_flags_it() {
        let mut k = kernel_on_device_a();
        let mut sq = SubmissionQueue::new(16);
        let mut cq = CompletionQueue::new(16);
        for tag in 0..8 {
            sq.push(health_desc(tag)).unwrap();
        }
        let mut budget = CommandBudget::new(3, 5);
        let out = k.ring_doorbell_budgeted(&mut sq, &mut cq, 16, SrcId::Application, &mut budget);
        assert_eq!(out.drained, 5);
        assert!(out.quota_exhausted, "work was still queued");
        assert!(budget.exhausted());
        assert_eq!(budget.remaining(), 0);
        assert_eq!(sq.len(), 3, "undrained descriptors stay queued");
        // A fresh slice budget picks the backlog up where it stopped.
        let mut next = CommandBudget::new(3, 5);
        let out = k.ring_doorbell_budgeted(&mut sq, &mut cq, 16, SrcId::Application, &mut next);
        assert_eq!(out.drained, 3);
        assert!(!out.quota_exhausted, "queue emptied before the budget");
        assert_eq!(next.remaining(), 2);
    }

    #[test]
    fn exact_budget_is_not_flagged_exhausted() {
        let mut k = kernel_on_device_a();
        let mut sq = SubmissionQueue::new(8);
        let mut cq = CompletionQueue::new(8);
        for tag in 0..4 {
            sq.push(health_desc(tag)).unwrap();
        }
        let mut budget = CommandBudget::new(0, 4);
        let out = k.ring_doorbell_budgeted(&mut sq, &mut cq, 8, SrcId::Application, &mut budget);
        assert_eq!(out.drained, 4);
        assert!(
            !out.quota_exhausted,
            "an empty SQ is a finished slice, not a preemption"
        );
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_doorbell() {
        let run = |budgeted: bool| {
            let mut k = kernel_on_device_a();
            let tc = harmonia_sim::TraceCollector::enabled();
            k.set_trace_collector(tc.clone());
            let mut sq = SubmissionQueue::new(16);
            let mut cq = CompletionQueue::new(16);
            for tag in 0..10 {
                sq.push(health_desc(tag)).unwrap();
            }
            let out = if budgeted {
                let mut b = CommandBudget::unlimited();
                k.ring_doorbell_budgeted(&mut sq, &mut cq, 16, SrcId::Application, &mut b)
            } else {
                k.ring_doorbell(&mut sq, &mut cq, 16, SrcId::Application)
            };
            let mut recs = Vec::new();
            while let Some(r) = cq.pop() {
                recs.push(r);
            }
            let trace: Vec<String> =
                tc.take().events().iter().map(|e| format!("{e:?}")).collect();
            (out.drained, out.exec_ps, out.quota_exhausted, recs, trace)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn quota_exhaustion_emits_trace_and_metric() {
        let mut k = kernel_on_device_a();
        let tc = harmonia_sim::TraceCollector::enabled();
        let m = MetricsRegistry::enabled();
        k.set_trace_collector(tc.clone());
        k.set_metrics_registry(m.clone());
        let mut sq = SubmissionQueue::new(8);
        let mut cq = CompletionQueue::new(8);
        for tag in 0..6 {
            sq.push(health_desc(tag)).unwrap();
        }
        let mut budget = CommandBudget::new(7, 2);
        k.ring_doorbell_budgeted(&mut sq, &mut cq, 8, SrcId::Application, &mut budget);
        let trace = tc.take();
        let quota: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::QuotaExhausted { tenant, granted } => Some((tenant, granted)),
                _ => None,
            })
            .collect();
        assert_eq!(quota, vec![(7, 2)]);
        let prom = m.snapshot().export_prometheus();
        assert!(
            prom.contains("harmonia_kernel_quota_exhausted_total 1"),
            "{prom}"
        );
    }
}
