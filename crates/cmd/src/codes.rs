//! Command codes and controller identifiers.
//!
//! Figure 9 defines the common commands; the code space is extensible per
//! RBB ("the CommandCode specifies the dedicated control operations defined
//! by each RBB for its operational needs").

use std::fmt;

/// A command's operation code.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CommandCode {
    /// 0x0000 — read module status.
    ModuleStatusRead,
    /// 0x0001 — write module status/configuration.
    ModuleStatusWrite,
    /// 0x0002 — run the module's full initialization program.
    ModuleInit,
    /// 0x0003 — reset the module.
    ModuleReset,
    /// 0x0004 — write a table entry (filter/flow/policy tables).
    TableWrite,
    /// 0x0005 — read a table entry.
    TableRead,
    /// 0x0006 — read the module's monitoring statistics block.
    StatsRead,
    /// 0x0007 — erase a flash region (board management).
    FlashErase,
    /// 0x0008 — synchronize the hardware time counter.
    TimeSync,
    /// 0x0009 — read board health (temperatures, voltages).
    HealthRead,
    /// 0x000F — negative acknowledgement: the kernel received bytes it
    /// could not decode. The response payload carries a numeric reason
    /// ([`crate::packet::DecodeError::code`]); the driver treats it as a
    /// retryable failure.
    Nack,
    /// An RBB-defined extension code (≥ 0x0010).
    Extension(u16),
}

impl CommandCode {
    /// The 16-bit wire encoding.
    pub fn to_u16(self) -> u16 {
        match self {
            CommandCode::ModuleStatusRead => 0x0000,
            CommandCode::ModuleStatusWrite => 0x0001,
            CommandCode::ModuleInit => 0x0002,
            CommandCode::ModuleReset => 0x0003,
            CommandCode::TableWrite => 0x0004,
            CommandCode::TableRead => 0x0005,
            CommandCode::StatsRead => 0x0006,
            CommandCode::FlashErase => 0x0007,
            CommandCode::TimeSync => 0x0008,
            CommandCode::HealthRead => 0x0009,
            CommandCode::Nack => 0x000F,
            CommandCode::Extension(v) => v,
        }
    }

    /// Decodes a 16-bit wire value.
    pub fn from_u16(v: u16) -> CommandCode {
        match v {
            0x0000 => CommandCode::ModuleStatusRead,
            0x0001 => CommandCode::ModuleStatusWrite,
            0x0002 => CommandCode::ModuleInit,
            0x0003 => CommandCode::ModuleReset,
            0x0004 => CommandCode::TableWrite,
            0x0005 => CommandCode::TableRead,
            0x0006 => CommandCode::StatsRead,
            0x0007 => CommandCode::FlashErase,
            0x0008 => CommandCode::TimeSync,
            0x0009 => CommandCode::HealthRead,
            0x000F => CommandCode::Nack,
            other => CommandCode::Extension(other),
        }
    }
}

impl fmt::Display for CommandCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandCode::ModuleStatusRead => "module-status-read",
            CommandCode::ModuleStatusWrite => "module-status-write",
            CommandCode::ModuleInit => "module-init",
            CommandCode::ModuleReset => "module-reset",
            CommandCode::TableWrite => "table-write",
            CommandCode::TableRead => "table-read",
            CommandCode::StatsRead => "stats-read",
            CommandCode::FlashErase => "flash-erase",
            CommandCode::TimeSync => "time-sync",
            CommandCode::HealthRead => "health-read",
            CommandCode::Nack => "nack",
            CommandCode::Extension(v) => return write!(f, "extension({v:#06x})"),
        };
        f.write_str(s)
    }
}

/// Host-side controller types ("the SrcID represents the type of host
/// software controllers"): production servers carry applications, BMCs and
/// standalone tools concurrently, which is why command execution is
/// centralized in hardware.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SrcId {
    /// The user application.
    Application,
    /// The board management controller.
    Bmc,
    /// A standalone operations/control tool.
    CtrlTool,
}

impl SrcId {
    /// 4-bit wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            SrcId::Application => 1,
            SrcId::Bmc => 2,
            SrcId::CtrlTool => 3,
        }
    }

    /// Decodes a wire value.
    pub fn from_u8(v: u8) -> Option<SrcId> {
        match v {
            1 => Some(SrcId::Application),
            2 => Some(SrcId::Bmc),
            3 => Some(SrcId::CtrlTool),
            _ => None,
        }
    }
}

impl fmt::Display for SrcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SrcId::Application => "application",
            SrcId::Bmc => "bmc",
            SrcId::CtrlTool => "ctrl-tool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_codes_match() {
        assert_eq!(CommandCode::ModuleStatusRead.to_u16(), 0x0000);
        assert_eq!(CommandCode::ModuleStatusWrite.to_u16(), 0x0001);
        assert_eq!(CommandCode::ModuleInit.to_u16(), 0x0002);
        assert_eq!(CommandCode::ModuleReset.to_u16(), 0x0003);
        assert_eq!(CommandCode::TableWrite.to_u16(), 0x0004);
    }

    #[test]
    fn round_trip_all_codes() {
        for v in 0..32u16 {
            assert_eq!(CommandCode::from_u16(v).to_u16(), v);
        }
        assert_eq!(
            CommandCode::from_u16(0x7777),
            CommandCode::Extension(0x7777)
        );
    }

    #[test]
    fn nack_sits_below_the_extension_space() {
        assert_eq!(CommandCode::Nack.to_u16(), 0x000F);
        assert_eq!(CommandCode::from_u16(0x000F), CommandCode::Nack);
        assert_eq!(CommandCode::from_u16(0x0010), CommandCode::Extension(0x0010));
        assert_eq!(CommandCode::Nack.to_string(), "nack");
    }

    #[test]
    fn src_ids_round_trip() {
        for s in [SrcId::Application, SrcId::Bmc, SrcId::CtrlTool] {
            assert_eq!(SrcId::from_u8(s.to_u8()), Some(s));
        }
        assert_eq!(SrcId::from_u8(0), None);
        assert_eq!(SrcId::from_u8(9), None);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(CommandCode::TableWrite.to_string(), "table-write");
        assert!(CommandCode::Extension(0x1234).to_string().contains("1234"));
        assert_eq!(SrcId::Bmc.to_string(), "bmc");
    }
}
