//! SQ/CQ ring pair for the batched command path.
//!
//! Production host interfaces (NVMe, QDMA) amortize per-command doorbell
//! and interrupt overhead with ring-buffer submission/completion queues:
//! the host writes N descriptors, rings the doorbell once, and the device
//! posts N compact completion records back. This module is that idiom for
//! Harmonia's control plane — a fixed-depth power-of-two
//! [`SubmissionQueue`] of encoded [`CommandPacket`](crate::CommandPacket)
//! descriptors paired with a [`CompletionQueue`] of [`CompletionRecord`]s,
//! drained by [`UnifiedControlKernel::ring_doorbell`](crate::UnifiedControlKernel::ring_doorbell).
//!
//! Indices are free-running `u64` counters masked down to slots, the
//! classic lock-free-ring trick that makes full/empty unambiguous without
//! wasting a slot: the ring is empty when `head == tail` and full when
//! `tail - head == depth`.

use harmonia_sim::Picos;

/// Environment override for the submission/completion ring depth.
pub const SQ_DEPTH_ENV: &str = "HARMONIA_SQ_DEPTH";

/// Default ring depth (matches the kernel's default command-buffer depth).
pub const DEFAULT_SQ_DEPTH: usize = 64;

/// Reads the ring depth from [`SQ_DEPTH_ENV`], falling back to
/// [`DEFAULT_SQ_DEPTH`] for unset or unparsable values. The result is
/// rounded up to a power of two (rings mask, they don't divide).
pub fn sq_depth_from_env() -> usize {
    std::env::var(SQ_DEPTH_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&d| d > 0)
        .unwrap_or(DEFAULT_SQ_DEPTH)
}

/// One submission-ring entry: an encoded command packet plus the host-side
/// idempotency tag its completion record will carry back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqDescriptor {
    /// Host-side tag pairing this descriptor with its completion.
    pub tag: u32,
    /// The encoded [`CommandPacket`](crate::CommandPacket) wire bytes.
    pub bytes: Vec<u8>,
}

/// Completion status carried in a [`CompletionRecord`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The command executed (or replayed); its response packet is
    /// available from the drain outcome.
    Ok,
    /// The descriptor bytes failed to decode; the kernel NACKed.
    Nack {
        /// The stable [`DecodeError::code`](crate::DecodeError::code).
        error_code: u32,
    },
    /// The command reached the kernel but execution failed with a typed
    /// [`KernelError`](crate::KernelError) (carried in the drain outcome).
    Error,
}

/// One completion-ring entry: compact — tag, status, completion time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CompletionRecord {
    /// The originating descriptor's tag.
    pub tag: u32,
    /// How the command completed.
    pub status: CompletionStatus,
    /// Kernel-side completion time, picoseconds.
    pub at_ps: Picos,
}

/// The shared ring mechanics: fixed power-of-two slot array indexed by
/// free-running head/tail counters.
#[derive(Debug)]
struct Ring<T> {
    slots: Vec<Option<T>>,
    /// Consumer index (free-running; never wraps in practice).
    head: u64,
    /// Producer index (free-running).
    tail: u64,
    mask: u64,
}

impl<T> Ring<T> {
    fn new(depth: usize) -> Self {
        let depth = depth.max(1).next_power_of_two();
        Ring {
            slots: (0..depth).map(|_| None).collect(),
            head: 0,
            tail: 0,
            mask: depth as u64 - 1,
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        let slot = (self.tail & self.mask) as usize;
        debug_assert!(self.slots[slot].is_none(), "full/empty accounting broke");
        self.slots[slot] = Some(item);
        self.tail += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let slot = (self.head & self.mask) as usize;
        let item = self.slots[slot].take();
        debug_assert!(item.is_some(), "full/empty accounting broke");
        self.head += 1;
        item
    }
}

/// Fixed-depth submission ring of encoded command descriptors.
#[derive(Debug)]
pub struct SubmissionQueue {
    ring: Ring<SqDescriptor>,
}

impl SubmissionQueue {
    /// Creates a ring of the given depth, rounded up to a power of two
    /// (minimum 1).
    pub fn new(depth: usize) -> Self {
        SubmissionQueue {
            ring: Ring::new(depth),
        }
    }

    /// Creates a ring with the [`SQ_DEPTH_ENV`]-controlled depth.
    pub fn from_env() -> Self {
        Self::new(sq_depth_from_env())
    }

    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Descriptors currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring has no descriptors.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether every slot is occupied (producer must back off).
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// Free-running consumer index (wrap-around is `index & (depth-1)`).
    pub fn head(&self) -> u64 {
        self.ring.head
    }

    /// Free-running producer index.
    pub fn tail(&self) -> u64 {
        self.ring.tail
    }

    /// Enqueues a descriptor.
    ///
    /// # Errors
    ///
    /// Returns the descriptor back when the ring is full.
    pub fn push(&mut self, desc: SqDescriptor) -> Result<(), SqDescriptor> {
        self.ring.push(desc)
    }

    /// Dequeues the oldest descriptor, or `None` when empty.
    pub fn pop(&mut self) -> Option<SqDescriptor> {
        self.ring.pop()
    }
}

/// Fixed-depth completion ring of compact completion records.
#[derive(Debug)]
pub struct CompletionQueue {
    ring: Ring<CompletionRecord>,
}

impl CompletionQueue {
    /// Creates a ring of the given depth, rounded up to a power of two
    /// (minimum 1).
    pub fn new(depth: usize) -> Self {
        CompletionQueue {
            ring: Ring::new(depth),
        }
    }

    /// Creates a ring with the [`SQ_DEPTH_ENV`]-controlled depth (SQ and
    /// CQ are sized together, so a full drain can always post).
    pub fn from_env() -> Self {
        Self::new(sq_depth_from_env())
    }

    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Records currently posted and unread.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring has no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether every slot is occupied (the kernel must stop draining).
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// Free-running consumer index.
    pub fn head(&self) -> u64 {
        self.ring.head
    }

    /// Free-running producer index.
    pub fn tail(&self) -> u64 {
        self.ring.tail
    }

    /// Posts a completion record.
    ///
    /// # Errors
    ///
    /// Returns the record back when the ring is full.
    pub fn push(&mut self, rec: CompletionRecord) -> Result<(), CompletionRecord> {
        self.ring.push(rec)
    }

    /// Pops the oldest completion record, or `None` when empty.
    pub fn pop(&mut self) -> Option<CompletionRecord> {
        self.ring.pop()
    }
}

/// Per-slice doorbell quota for a tenant, enforced by
/// [`UnifiedControlKernel::ring_doorbell_budgeted`](crate::UnifiedControlKernel::ring_doorbell_budgeted):
/// the tenant scheduler grants a command budget per time slice, the
/// kernel charges every drained descriptor against it and refuses to
/// drain past exhaustion — a flooding tenant stalls its *own* rings
/// instead of monopolizing the control kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandBudget {
    /// Tenant index the budget belongs to (scheduler registration
    /// order); carried into `QuotaExhausted` trace events.
    pub tenant: u32,
    /// Commands the slice granted.
    pub granted: u64,
    /// Commands charged so far.
    pub used: u64,
}

impl CommandBudget {
    /// A fresh budget of `granted` commands for `tenant`.
    pub fn new(tenant: u32, granted: u64) -> CommandBudget {
        CommandBudget {
            tenant,
            granted,
            used: 0,
        }
    }

    /// An effectively unlimited budget (the single-tenant fast path).
    pub fn unlimited() -> CommandBudget {
        CommandBudget::new(u32::MAX, u64::MAX)
    }

    /// Commands still chargeable.
    pub fn remaining(&self) -> u64 {
        self.granted.saturating_sub(self.used)
    }

    /// Whether the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.used >= self.granted
    }

    /// Charges one command.
    pub fn charge(&mut self) {
        self.used += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(tag: u32) -> SqDescriptor {
        SqDescriptor {
            tag,
            bytes: vec![tag as u8],
        }
    }

    #[test]
    fn depth_rounds_up_to_power_of_two() {
        assert_eq!(SubmissionQueue::new(0).capacity(), 1);
        assert_eq!(SubmissionQueue::new(1).capacity(), 1);
        assert_eq!(SubmissionQueue::new(3).capacity(), 4);
        assert_eq!(CompletionQueue::new(64).capacity(), 64);
        assert_eq!(CompletionQueue::new(65).capacity(), 128);
    }

    #[test]
    fn fifo_order_and_full_empty_detection() {
        let mut sq = SubmissionQueue::new(2);
        assert!(sq.is_empty() && !sq.is_full());
        sq.push(desc(0)).unwrap();
        sq.push(desc(1)).unwrap();
        assert!(sq.is_full());
        assert_eq!(sq.push(desc(2)).unwrap_err().tag, 2);
        assert_eq!(sq.pop().unwrap().tag, 0);
        assert_eq!(sq.pop().unwrap().tag, 1);
        assert!(sq.pop().is_none());
        assert!(sq.is_empty());
    }

    #[test]
    fn indices_free_run_across_wrap_around() {
        let mut cq = CompletionQueue::new(4);
        for i in 0..10u32 {
            cq.push(CompletionRecord {
                tag: i,
                status: CompletionStatus::Ok,
                at_ps: u64::from(i),
            })
            .unwrap();
            assert_eq!(cq.pop().unwrap().tag, i);
        }
        // Ten pushes through a 4-slot ring: the counters kept running.
        assert_eq!(cq.tail(), 10);
        assert_eq!(cq.head(), 10);
        assert!(cq.is_empty());
    }

    #[test]
    fn env_depth_parses_with_fallback() {
        // Not an env-mutation test (those race): exercise the parse path.
        assert_eq!(DEFAULT_SQ_DEPTH, 64);
        assert!(sq_depth_from_env() >= 1);
    }
}
