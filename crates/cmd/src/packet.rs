//! The command packet format (Figure 9).
//!
//! Layout, in 32-bit words (all fields big-endian on the wire):
//!
//! ```text
//! word 0:  Version(4) | HdLen(4) | PayloadLen(16) | SrcID(4) | DstID(4)
//! word 1:  RBB ID(8)  | Instance ID(8)            | Command Code(16)
//! word 2:  Options (PCIe/I2C/…)
//! words 3…: Data (PayloadLen−1 words)
//! last word: Checksum
//! ```
//!
//! `HdLen` and `PayloadLen` are measured in 4-byte units "to ensure
//! alignment"; the unified control kernel uses them to find command
//! boundaries in its buffer. The checksum covers every preceding word and
//! "is provided as an error handling".

use crate::codes::{CommandCode, SrcId};
use std::error::Error;
use std::fmt;

/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;
/// Options-word flag marking a command as idempotency-tagged: the
/// remaining options bits carry a driver-chosen tag, and the kernel
/// caches the response under `(src, options)` so a *retried* command
/// (the execution succeeded but the completion was lost) replays the
/// cached response instead of executing twice.
pub const IDEMPOTENCY_FLAG: u32 = 0x8000_0000;
/// Header length in 32-bit words.
pub const HEADER_WORDS: u8 = 3;
/// Maximum data words per packet (bounded by the 16-bit PayloadLen).
pub const MAX_DATA_WORDS: usize = 1024;

/// A command packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandPacket {
    /// Protocol version.
    pub version: u8,
    /// Originating controller.
    pub src: SrcId,
    /// Destination id (hardware module class; response packets echo the
    /// request's src here).
    pub dst: u8,
    /// Target RBB id (see `RbbKind::id`).
    pub rbb_id: u8,
    /// Target instance within the RBB.
    pub instance_id: u8,
    /// The operation.
    pub code: CommandCode,
    /// Physical-interface options (PCIe/I2C routing hints).
    pub options: u32,
    /// Command payload.
    pub data: Vec<u32>,
}

impl CommandPacket {
    /// Creates a command with empty payload.
    pub fn new(src: SrcId, rbb_id: u8, instance_id: u8, code: CommandCode) -> Self {
        CommandPacket {
            version: VERSION,
            src,
            dst: 0,
            rbb_id,
            instance_id,
            code,
            options: 0,
            data: Vec::new(),
        }
    }

    /// Builder-style payload assignment.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_DATA_WORDS`].
    pub fn with_data(mut self, data: Vec<u32>) -> Self {
        assert!(
            data.len() <= MAX_DATA_WORDS,
            "payload of {} words exceeds the maximum {MAX_DATA_WORDS}",
            data.len()
        );
        self.data = data;
        self
    }

    /// Builder-style options assignment.
    pub fn with_options(mut self, options: u32) -> Self {
        self.options = options;
        self
    }

    /// Builder-style idempotency tag: sets [`IDEMPOTENCY_FLAG`] plus the
    /// tag in the options word.
    pub fn with_idempotency_tag(mut self, tag: u32) -> Self {
        self.options = IDEMPOTENCY_FLAG | (tag & !IDEMPOTENCY_FLAG);
        self
    }

    /// The idempotency key when the options word carries the flag.
    pub fn idempotency_key(&self) -> Option<u32> {
        (self.options & IDEMPOTENCY_FLAG != 0).then_some(self.options)
    }

    /// Total encoded size in bytes.
    pub fn wire_bytes(&self) -> usize {
        (usize::from(HEADER_WORDS) + self.data.len() + 1) * 4
    }

    fn header_words(&self) -> [u32; 3] {
        let payload_len = (self.data.len() + 1) as u32; // data + checksum
        let w0 = (u32::from(self.version) << 28)
            | (u32::from(HEADER_WORDS) << 24)
            | (payload_len << 8)
            | (u32::from(self.src.to_u8()) << 4)
            | u32::from(self.dst & 0xF);
        let w1 = (u32::from(self.rbb_id) << 24)
            | (u32::from(self.instance_id) << 16)
            | u32::from(self.code.to_u16());
        [w0, w1, self.options]
    }

    fn checksum_of(words: &[u32]) -> u32 {
        // Ones'-complement style folding sum, like IP checksums but 32-bit.
        let mut sum: u64 = 0;
        for w in words {
            sum += u64::from(*w);
        }
        while sum >> 32 != 0 {
            sum = (sum & 0xFFFF_FFFF) + (sum >> 32);
        }
        !(sum as u32)
    }

    /// Encodes the packet to wire bytes (big-endian words).
    pub fn encode(&self) -> Vec<u8> {
        let mut words: Vec<u32> = self.header_words().to_vec();
        words.extend_from_slice(&self.data);
        words.push(Self::checksum_of(&words));
        words.iter().flat_map(|w| w.to_be_bytes()).collect()
    }

    /// Decodes one packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the malformation.
    pub fn decode(bytes: &[u8]) -> Result<CommandPacket, DecodeError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(DecodeError::Misaligned { len: bytes.len() });
        }
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        if words.len() < usize::from(HEADER_WORDS) + 1 {
            return Err(DecodeError::TooShort { words: words.len() });
        }
        let w0 = words[0];
        let version = (w0 >> 28) as u8;
        if version != VERSION {
            return Err(DecodeError::BadVersion { version });
        }
        let hd_len = ((w0 >> 24) & 0xF) as u8;
        if hd_len != HEADER_WORDS {
            return Err(DecodeError::BadHeaderLen { hd_len });
        }
        let payload_len = ((w0 >> 8) & 0xFFFF) as usize;
        let expected_words = usize::from(hd_len) + payload_len;
        if words.len() != expected_words {
            return Err(DecodeError::LengthMismatch {
                declared: expected_words,
                actual: words.len(),
            });
        }
        let src = SrcId::from_u8(((w0 >> 4) & 0xF) as u8)
            .ok_or(DecodeError::BadSrcId {
                src: ((w0 >> 4) & 0xF) as u8,
            })?;
        let declared = *words.last().expect("length checked");
        let computed = Self::checksum_of(&words[..words.len() - 1]);
        if declared != computed {
            return Err(DecodeError::ChecksumMismatch { declared, computed });
        }
        let w1 = words[1];
        Ok(CommandPacket {
            version,
            src,
            dst: (w0 & 0xF) as u8,
            rbb_id: (w1 >> 24) as u8,
            instance_id: ((w1 >> 16) & 0xFF) as u8,
            code: CommandCode::from_u16((w1 & 0xFFFF) as u16),
            options: words[2],
            data: words[3..words.len() - 1].to_vec(),
        })
    }

    /// Builds the response packet for this request: same routing fields
    /// with the destination set back to the source, carrying `data`.
    pub fn response(&self, data: Vec<u32>) -> CommandPacket {
        CommandPacket {
            version: self.version,
            src: self.src,
            dst: self.src.to_u8(),
            rbb_id: self.rbb_id,
            instance_id: self.instance_id,
            code: self.code,
            options: self.options,
            data,
        }
    }
}

impl fmt::Display for CommandPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cmd[{} rbb={} inst={} from {} +{}w]",
            self.code,
            self.rbb_id,
            self.instance_id,
            self.src,
            self.data.len()
        )
    }
}

/// Malformed-packet errors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Byte length not a multiple of 4.
    Misaligned {
        /// Actual byte length.
        len: usize,
    },
    /// Fewer words than a minimal packet.
    TooShort {
        /// Actual word count.
        words: usize,
    },
    /// Unknown protocol version.
    BadVersion {
        /// Claimed version.
        version: u8,
    },
    /// Header length field disagrees with this protocol version.
    BadHeaderLen {
        /// Claimed header length.
        hd_len: u8,
    },
    /// Declared total length disagrees with the buffer.
    LengthMismatch {
        /// Declared word count.
        declared: usize,
        /// Actual word count.
        actual: usize,
    },
    /// Unknown source id.
    BadSrcId {
        /// Claimed source id.
        src: u8,
    },
    /// Checksum failure.
    ChecksumMismatch {
        /// Checksum in the packet.
        declared: u32,
        /// Checksum computed over the contents.
        computed: u32,
    },
}

impl DecodeError {
    /// Stable numeric reason code, carried in NACK response payloads so
    /// host software can classify the failure without string parsing.
    pub fn code(&self) -> u32 {
        match self {
            DecodeError::Misaligned { .. } => 1,
            DecodeError::TooShort { .. } => 2,
            DecodeError::BadVersion { .. } => 3,
            DecodeError::BadHeaderLen { .. } => 4,
            DecodeError::LengthMismatch { .. } => 5,
            DecodeError::BadSrcId { .. } => 6,
            DecodeError::ChecksumMismatch { .. } => 7,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Misaligned { len } => write!(f, "packet length {len} not word-aligned"),
            DecodeError::TooShort { words } => write!(f, "packet of {words} words too short"),
            DecodeError::BadVersion { version } => write!(f, "unsupported version {version}"),
            DecodeError::BadHeaderLen { hd_len } => write!(f, "unexpected header length {hd_len}"),
            DecodeError::LengthMismatch { declared, actual } => {
                write!(f, "declared {declared} words, buffer has {actual}")
            }
            DecodeError::BadSrcId { src } => write!(f, "unknown source id {src}"),
            DecodeError::ChecksumMismatch { declared, computed } => write!(
                f,
                "checksum {declared:#010x} does not match computed {computed:#010x}"
            ),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommandPacket {
        CommandPacket::new(SrcId::Application, 1, 0, CommandCode::TableWrite)
            .with_data(vec![0xAABB, 0xCCDD, 0x1234])
            .with_options(0x5)
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let decoded = CommandPacket::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn empty_payload_round_trip() {
        let p = CommandPacket::new(SrcId::Bmc, 3, 2, CommandCode::ModuleInit);
        assert_eq!(CommandPacket::decode(&p.encode()).unwrap(), p);
        assert_eq!(p.wire_bytes(), 16);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut bytes = sample().encode();
        bytes[9] ^= 0x40;
        assert!(matches!(
            CommandPacket::decode(&bytes),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_packet_detected() {
        let bytes = sample().encode();
        assert!(matches!(
            CommandPacket::decode(&bytes[..bytes.len() - 4]),
            Err(DecodeError::LengthMismatch { .. })
        ));
        assert!(matches!(
            CommandPacket::decode(&bytes[..6]),
            Err(DecodeError::Misaligned { .. })
        ));
        assert!(matches!(
            CommandPacket::decode(&bytes[..8]),
            Err(DecodeError::TooShort { .. })
        ));
    }

    #[test]
    fn version_and_header_validation() {
        let mut bytes = sample().encode();
        bytes[0] = 0x23; // version 2
        assert!(matches!(
            CommandPacket::decode(&bytes),
            Err(DecodeError::BadVersion { version: 2 })
        ));
        let mut bytes = sample().encode();
        bytes[0] = 0x14; // hd_len 4
        assert!(matches!(
            CommandPacket::decode(&bytes),
            Err(DecodeError::BadHeaderLen { hd_len: 4 })
        ));
    }

    #[test]
    fn alignment_fields_in_four_byte_units() {
        let p = sample();
        let bytes = p.encode();
        // PayloadLen = data(3) + checksum(1) = 4 words.
        let w0 = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        assert_eq!((w0 >> 8) & 0xFFFF, 4);
        assert_eq!((w0 >> 24) & 0xF, u32::from(HEADER_WORDS));
    }

    #[test]
    fn response_swaps_direction() {
        let p = sample();
        let r = p.response(vec![7]);
        assert_eq!(r.dst, SrcId::Application.to_u8());
        assert_eq!(r.rbb_id, p.rbb_id);
        assert_eq!(r.data, vec![7]);
        // Response is itself a valid packet.
        assert_eq!(CommandPacket::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    #[should_panic(expected = "exceeds the maximum")]
    fn oversized_payload_rejected() {
        let _ = CommandPacket::new(SrcId::Application, 1, 0, CommandCode::TableWrite)
            .with_data(vec![0; MAX_DATA_WORDS + 1]);
    }

    #[test]
    fn display_mentions_code() {
        assert!(sample().to_string().contains("table-write"));
    }

    #[test]
    fn idempotency_tag_round_trips() {
        let p = sample().with_idempotency_tag(0x42);
        assert_eq!(p.options, IDEMPOTENCY_FLAG | 0x42);
        assert_eq!(p.idempotency_key(), Some(IDEMPOTENCY_FLAG | 0x42));
        assert_eq!(
            CommandPacket::decode(&p.encode()).unwrap().idempotency_key(),
            p.idempotency_key()
        );
        assert_eq!(sample().idempotency_key(), None);
    }

    #[test]
    fn decode_error_codes_are_distinct() {
        let errs = [
            DecodeError::Misaligned { len: 1 },
            DecodeError::TooShort { words: 0 },
            DecodeError::BadVersion { version: 9 },
            DecodeError::BadHeaderLen { hd_len: 9 },
            DecodeError::LengthMismatch {
                declared: 1,
                actual: 2,
            },
            DecodeError::BadSrcId { src: 0 },
            DecodeError::ChecksumMismatch {
                declared: 0,
                computed: 1,
            },
        ];
        let mut codes: Vec<u32> = errs.iter().map(DecodeError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }
}
