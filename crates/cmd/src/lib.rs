//! Harmonia's command-based interface (§3.3.3).
//!
//! Instead of exposing per-platform register sequences to host software,
//! Harmonia abstracts control operations into commands carried in a
//! packet format (Figure 9) and executed by a **unified control kernel**
//! running on a soft core inside the FPGA. Software calls
//! `cmd_read`/`cmd_write`; the kernel parses the packet, executes the
//! command's platform-specific register program, and returns a response
//! packet — so register details can change across platforms while the
//! command stream does not.
//!
//! * [`packet`] — the command packet format with encode/decode/checksum;
//! * [`codes`] — command codes (Figure 9's table plus extensions) and
//!   source/destination ids;
//! * [`kernel`] — the unified control kernel: buffering, parsing,
//!   execution, distribution to module register files, response
//!   encapsulation;
//! * [`queue`] — the SQ/CQ ring pair for the batched command path
//!   (doorbell batching amortizes per-command delivery cost).

pub mod codes;
pub mod kernel;
pub mod packet;
pub mod queue;

pub use codes::{CommandCode, SrcId};
pub use kernel::{DrainOutcome, KernelError, ModuleHandle, UnifiedControlKernel};
pub use packet::{CommandPacket, DecodeError, IDEMPOTENCY_FLAG};
pub use queue::{
    CommandBudget, CompletionQueue, CompletionRecord, CompletionStatus, SqDescriptor,
    SubmissionQueue, DEFAULT_SQ_DEPTH, SQ_DEPTH_ENV,
};
