//! Property suites for the SQ/CQ ring pair: wrap-around against a model
//! queue, the full/empty boundary, and ringing the doorbell again while a
//! previous drain left descriptors queued (the batched driver's steady
//! state). Shrunk counterexamples are committed as regression tapes in
//! `tests/regressions/`.

use harmonia_cmd::queue::{
    CompletionQueue, CompletionRecord, CompletionStatus, SqDescriptor, SubmissionQueue,
};
use harmonia_cmd::{CommandCode, CommandPacket, SrcId, UnifiedControlKernel};
use harmonia_testkit::prelude::*;
use std::collections::VecDeque;

fn desc(tag: u32) -> SqDescriptor {
    SqDescriptor {
        tag,
        bytes: vec![tag as u8],
    }
}

fn rec(tag: u32) -> CompletionRecord {
    CompletionRecord {
        tag,
        status: CompletionStatus::Ok,
        at_ps: u64::from(tag),
    }
}

/// A device-level `HealthRead` descriptor (needs no registered modules).
fn health_desc(tag: u32) -> SqDescriptor {
    let pkt = CommandPacket::new(SrcId::Application, 0, 0, CommandCode::HealthRead)
        .with_idempotency_tag(tag);
    SqDescriptor {
        tag,
        bytes: pkt.encode(),
    }
}

forall! {
    /// Arbitrary push/pop interleavings against a model queue: FIFO order,
    /// len/full/empty agreement, and free-running head/tail counters whose
    /// difference is always the occupancy — across any number of
    /// wrap-arounds of the slot array.
    #[test]
    fn ring_wrap_around(depth_log in 0usize..4, ops in collection::vec(any::<bool>(), 0..96)) {
        let depth = 1usize << depth_log;
        let mut sq = SubmissionQueue::new(depth);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        let mut pushes = 0u64;
        let mut pops = 0u64;
        for push in ops {
            if push {
                match sq.push(desc(next)) {
                    Ok(()) => {
                        prop_assert!(model.len() < depth, "accepted a push while full");
                        model.push_back(next);
                        pushes += 1;
                    }
                    Err(rejected) => {
                        prop_assert_eq!(model.len(), depth, "rejected a push while not full");
                        prop_assert_eq!(rejected.tag, next, "rejection must return the item");
                    }
                }
                next += 1;
            } else {
                match sq.pop() {
                    Some(d) => {
                        prop_assert_eq!(Some(d.tag), model.pop_front());
                        pops += 1;
                    }
                    None => prop_assert!(model.is_empty(), "empty pop while occupied"),
                }
            }
            prop_assert_eq!(sq.len(), model.len());
            prop_assert_eq!(sq.is_empty(), model.is_empty());
            prop_assert_eq!(sq.is_full(), model.len() == depth);
            prop_assert_eq!(sq.tail(), pushes, "tail free-runs over accepted pushes");
            prop_assert_eq!(sq.head(), pops, "head free-runs over pops");
            prop_assert_eq!(sq.tail() - sq.head(), model.len() as u64);
        }
    }

    /// The full/empty boundary: exactly `capacity` pushes are accepted,
    /// every push beyond is rejected without disturbing the contents, and
    /// draining returns everything in order down to a clean empty ring
    /// with indices still advanced.
    #[test]
    fn ring_full_empty_boundary(depth in 1usize..10, extra in 1usize..5) {
        let mut cq = CompletionQueue::new(depth);
        let cap = cq.capacity();
        prop_assert!(cap.is_power_of_two() && cap >= depth);
        for i in 0..cap {
            prop_assert!(cq.push(rec(i as u32)).is_ok());
            prop_assert_eq!(cq.len(), i + 1);
        }
        prop_assert!(cq.is_full());
        for j in 0..extra {
            let refused = cq.push(rec((cap + j) as u32)).unwrap_err();
            prop_assert_eq!(refused.tag, (cap + j) as u32);
            prop_assert_eq!(cq.len(), cap, "a refused push must not disturb the ring");
        }
        for i in 0..cap {
            prop_assert_eq!(cq.pop().unwrap().tag, i as u32);
        }
        prop_assert!(cq.is_empty());
        prop_assert!(cq.pop().is_none());
        prop_assert_eq!(cq.head(), cap as u64);
        prop_assert_eq!(cq.tail(), cap as u64);
    }

    /// Doorbell-while-draining: a first doorbell drains part of the ring,
    /// the host tops the SQ back up *before* polling any completions, and
    /// a second doorbell runs against the partially-drained state — with
    /// the CQ possibly filling mid-drain (backpressure). Every accepted
    /// descriptor must complete exactly once, in ring order, with a
    /// response for every Ok record.
    #[test]
    fn doorbell_while_draining(
        depth_log in 0usize..4,
        first in 0usize..12,
        second in 0usize..12,
        n1 in 0usize..16,
    ) {
        let depth = 1usize << depth_log;
        let mut sq = SubmissionQueue::new(depth);
        let mut cq = CompletionQueue::new(depth);
        let mut k = UnifiedControlKernel::new(64);
        let mut next = 0u32;
        let mut accepted: Vec<u32> = Vec::new();
        for _ in 0..first {
            if sq.push(health_desc(next)).is_ok() {
                accepted.push(next);
                next += 1;
            }
        }
        let queued1 = sq.len();
        let out1 = k.ring_doorbell(&mut sq, &mut cq, n1, SrcId::Application);
        prop_assert_eq!(out1.drained, n1.min(queued1), "CQ starts empty; only n limits");
        prop_assert_eq!(cq.len(), out1.drained);
        let mut responses: Vec<u32> = out1.responses.iter().map(|(t, _)| *t).collect();
        // Top the ring back up before polling a single completion.
        for _ in 0..second {
            if sq.push(health_desc(next)).is_ok() {
                accepted.push(next);
                next += 1;
            }
        }
        // Second doorbell with an oversized n: the un-polled CQ may fill
        // and stop the drain early — that is the backpressure contract.
        let queued2 = sq.len();
        let cq_free = cq.capacity() - cq.len();
        let out2 = k.ring_doorbell(&mut sq, &mut cq, 16, SrcId::Application);
        prop_assert_eq!(out2.drained, queued2.min(cq_free).min(16));
        responses.extend(out2.responses.iter().map(|(t, _)| *t));
        let mut records: Vec<CompletionRecord> = Vec::new();
        while let Some(r) = cq.pop() {
            records.push(r);
        }
        // Whatever the full CQ blocked stays queued for later doorbells.
        while !sq.is_empty() {
            let before = sq.len();
            let out = k.ring_doorbell(&mut sq, &mut cq, before, SrcId::Application);
            prop_assert_eq!(out.drained, before, "CQ was just emptied");
            responses.extend(out.responses.iter().map(|(t, _)| *t));
            while let Some(r) = cq.pop() {
                records.push(r);
            }
        }
        let tags: Vec<u32> = records.iter().map(|r| r.tag).collect();
        prop_assert_eq!(&tags, &accepted, "completions must cover the ring in order");
        prop_assert_eq!(&responses, &accepted, "every Ok record carries a response");
        for r in &records {
            prop_assert_eq!(r.status, CompletionStatus::Ok);
        }
        prop_assert_eq!(k.commands_executed(), accepted.len() as u64);
    }
}
