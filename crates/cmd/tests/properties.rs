//! Property-based tests for the command packet codec: the Figure 9 format
//! must survive arbitrary field values and detect arbitrary corruption.

use harmonia_cmd::{CommandCode, CommandPacket, SrcId};
use harmonia_testkit::prelude::*;

fn arb_src() -> impl Strategy<Value = SrcId> {
    prop_oneof![
        Just(SrcId::Application),
        Just(SrcId::Bmc),
        Just(SrcId::CtrlTool)
    ]
}

fn arb_packet() -> impl Strategy<Value = CommandPacket> {
    (
        arb_src(),
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u32>(),
        collection::vec(any::<u32>(), 0..64),
    )
        .prop_map(|(src, rbb, inst, code, options, data)| {
            CommandPacket::new(src, rbb, inst, CommandCode::from_u16(code))
                .with_options(options)
                .with_data(data)
        })
}

forall! {
    /// Encode → decode is the identity for every well-formed packet.
    #[test]
    fn codec_round_trip(p in arb_packet()) {
        let bytes = p.encode();
        prop_assert_eq!(bytes.len(), p.wire_bytes());
        prop_assert_eq!(CommandPacket::decode(&bytes).unwrap(), p);
    }

    /// Responses are themselves valid packets that carry routing back.
    #[test]
    fn response_round_trip(p in arb_packet(), data in collection::vec(any::<u32>(), 0..16)) {
        let r = p.response(data.clone());
        prop_assert_eq!(r.dst, p.src.to_u8());
        prop_assert_eq!(&r.data, &data);
        prop_assert_eq!(CommandPacket::decode(&r.encode()).unwrap(), r);
    }

    /// Any single bit flip anywhere in the packet is detected (the 32-bit
    /// folded checksum catches all single-bit errors) — except in the four
    /// header nibbles whose validation rejects the packet for structural
    /// reasons first.
    #[test]
    fn single_bit_corruption_detected(p in arb_packet(), bit in 0usize..128) {
        let mut bytes = p.encode();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match CommandPacket::decode(&bytes) {
            Err(_) => {} // detected: checksum or structural validation
            Ok(decoded) => {
                // The only way decode can still succeed is if the flip and
                // the checksum cancel — impossible for a single flip.
                prop_assert_eq!(decoded, p, "silent corruption");
                prop_assert!(false, "single-bit flip went undetected");
            }
        }
    }

    /// Truncations never decode successfully.
    #[test]
    fn truncation_detected(p in arb_packet(), cut in 1usize..32) {
        let bytes = p.encode();
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(CommandPacket::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    /// Concatenating two packets does not decode as one.
    #[test]
    fn concatenation_detected(a in arb_packet(), b in arb_packet()) {
        let mut bytes = a.encode();
        bytes.extend(b.encode());
        prop_assert!(CommandPacket::decode(&bytes).is_err());
    }

    /// Command codes round-trip through the 16-bit wire encoding.
    #[test]
    fn code_round_trip(v in any::<u16>()) {
        prop_assert_eq!(CommandCode::from_u16(v).to_u16(), v);
    }
}
