//! Decode-hardening fuzz campaign: `CommandPacket::decode` and the
//! kernel's NACK path must classify arbitrary hostile bytes as a typed
//! [`DecodeError`] — never panic, never silently accept garbage. This is
//! the software side of the fault plane's `CmdCorrupt` contract.

use harmonia_cmd::{CommandCode, CommandPacket, DecodeError, SrcId, UnifiedControlKernel};
use harmonia_testkit::prelude::*;

fn arb_src() -> impl Strategy<Value = SrcId> {
    prop_oneof![
        Just(SrcId::Application),
        Just(SrcId::Bmc),
        Just(SrcId::CtrlTool)
    ]
}

fn arb_packet() -> impl Strategy<Value = CommandPacket> {
    (
        arb_src(),
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u32>(),
        collection::vec(any::<u32>(), 0..32),
    )
        .prop_map(|(src, rbb, inst, code, options, data)| {
            CommandPacket::new(src, rbb, inst, CommandCode::from_u16(code))
                .with_options(options)
                .with_data(data)
        })
}

forall! {
    /// Completely arbitrary byte soup: decode returns a typed error or a
    /// packet whose re-encoding is decodable — it never panics.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..256)) {
        match CommandPacket::decode(&bytes) {
            Err(_) => {}
            Ok(p) => {
                // Anything accepted must be internally consistent.
                prop_assert_eq!(CommandPacket::decode(&p.encode()).unwrap(), p);
            }
        }
    }

    /// Single-byte overwrite of a valid packet (the fault plane's
    /// `CmdCorrupt` model) is always rejected: the folding checksum
    /// changes under any delta smaller than 2^32 - 1, and the header
    /// validators catch what the checksum can't.
    #[test]
    fn byte_overwrite_always_rejected(
        p in arb_packet(),
        pos in 0usize..2048,
        val in any::<u8>(),
    ) {
        let mut bytes = p.encode();
        let pos = pos % bytes.len();
        if bytes[pos] != val {
            bytes[pos] = val;
            prop_assert!(CommandPacket::decode(&bytes).is_err());
        }
    }

    /// Every prefix and every word-misaligned slice of a valid packet is
    /// rejected with a typed error.
    #[test]
    fn prefixes_and_misalignments_rejected(p in arb_packet(), cut in 1usize..4096) {
        let bytes = p.encode();
        let cut = cut % bytes.len();
        if cut > 0 {
            let sliced = &bytes[..bytes.len() - cut];
            let err = CommandPacket::decode(sliced).unwrap_err();
            if !sliced.len().is_multiple_of(4) {
                prop_assert!(matches!(err, DecodeError::Misaligned { .. }));
            }
        }
    }

    /// Declared-length lies (PayloadLen field rewritten, checksum fixed
    /// up to match) are caught by the length validator even though the
    /// checksum is now consistent.
    #[test]
    fn length_lies_rejected(p in arb_packet(), lie in 0u32..0xFFFF) {
        let mut words: Vec<u32> = p.encode()
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let true_payload = (words[0] >> 8) & 0xFFFF;
        if lie != true_payload {
            words[0] = (words[0] & 0xFF00_00FF) | (lie << 8);
            let n = words.len();
            // Recompute the checksum so only the length lie remains.
            let mut sum: u64 = words[..n - 1].iter().map(|w| u64::from(*w)).sum();
            while sum >> 32 != 0 {
                sum = (sum & 0xFFFF_FFFF) + (sum >> 32);
            }
            words[n - 1] = !(sum as u32);
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
            prop_assert!(matches!(
                CommandPacket::decode(&bytes),
                Err(DecodeError::LengthMismatch { .. })
            ));
        }
    }

    /// The kernel's drop/corrupt-aware ingest turns every undecodable
    /// buffer into a NACK response carrying the decode reason — the
    /// control plane survives a corrupted wire without panicking.
    #[test]
    fn kernel_nacks_hostile_bytes(
        bytes in collection::vec(any::<u8>(), 0..128),
        src in arb_src(),
    ) {
        let mut k = UnifiedControlKernel::new(8);
        match CommandPacket::decode(&bytes) {
            Err(e) => {
                let nack = k.submit_bytes_or_nack(&bytes, src).unwrap()
                    .expect("undecodable bytes must NACK");
                prop_assert_eq!(nack.code, CommandCode::Nack);
                prop_assert_eq!(nack.dst, src.to_u8());
                prop_assert_eq!(nack.data, vec![e.code()]);
                prop_assert_eq!(k.decode_errors(), 1);
            }
            Ok(_) => {
                prop_assert_eq!(k.submit_bytes_or_nack(&bytes, src).unwrap(), None);
                prop_assert_eq!(k.pending(), 1);
            }
        }
    }
}
