//! # harmonia-testkit
//!
//! The hermetic, first-party test substrate for the Harmonia workspace.
//! Everything the repo needs to verify itself — property-based testing,
//! deterministic random distributions, and micro-benchmarking — lives
//! here, with **zero external dependencies**, so
//! `cargo build --release && cargo test -q` and `cargo bench` run with
//! an empty crates.io registry.
//!
//! Three pieces:
//!
//! - **Property testing** ([`forall!`], [`strategy`], [`runner`],
//!   [`shrink`]): seeded case generation with integrated shrinking.
//!   Every strategy draws through a recorded tape ([`source`]); a
//!   failure shrinks the *tape*, not the value, so `prop_map` and
//!   `prop_oneof!` shrink for free. Minimal counterexamples persist to
//!   `tests/regressions/<property>.tape` and replay before fresh cases.
//! - **Deterministic RNG** ([`rng::DetRng`]): uniform/range/choice/
//!   shuffle/weighted distributions on [`harmonia_sim::SplitMix64`],
//!   replacing the `rand` crate in the workload generators.
//! - **Micro-benchmarks** ([`mod@bench`]): warmup + calibrated timed batches
//!   with median/p99, `BENCH_<group>.json` artifacts, and
//!   [`bench_group!`]/[`bench_main!`] for `harness = false` targets.
//!
//! Environment knobs: `TESTKIT_CASES`, `TESTKIT_SEED`,
//! `TESTKIT_SHRINK_BUDGET`, `TESTKIT_PERSIST`, `TESTKIT_BENCH_DIR`.

#![warn(missing_docs)]

pub mod bench;
mod macros;
pub mod rng;
pub mod runner;
pub mod shrink;
pub mod source;
pub mod strategy;

pub use rng::DetRng;
pub use source::DataSource;

/// One-stop imports for property-test files.
///
/// ```
/// use harmonia_testkit::prelude::*;
/// ```
pub mod prelude {
    pub use crate::strategy::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{collection, option, BoxedStrategy, Just, Strategy, StrategyExt, Union};
    pub use crate::{forall, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof};
}
