//! A minimal micro-bench harness: warmup, calibrated sample batches,
//! median/p99 statistics, and one `BENCH_<group>.json` artifact per
//! group.
//!
//! This replaces `criterion` for the workspace's `cargo bench` targets.
//! The types and method names mirror the criterion subset the bench
//! files used (`benchmark_group`, `throughput`, `sample_size`,
//! `bench_function`, `bench_with_input`, `black_box`), so migrating a
//! bench is an import swap plus `bench_group!`/`bench_main!` at the
//! bottom.
//!
//! Methodology: after a short warmup, the per-iteration cost is
//! estimated and a batch size is chosen so one sample spans enough wall
//! time to dwarf timer overhead; `sample_size` batches are then timed
//! individually and summarized as min/mean/median/p99 per iteration.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 30;
const WARMUP_NANOS: u128 = 20_000_000; // 20 ms
const TARGET_SAMPLE_NANOS: u128 = 2_000_000; // 2 ms

/// Smoke mode (`TESTKIT_BENCH_SMOKE=1`): CI-grade runs that still emit
/// every `BENCH_*.json` but cap the time spent per benchmark.
const SMOKE_SAMPLE_SIZE: usize = 5;
const SMOKE_WARMUP_NANOS: u128 = 2_000_000; // 2 ms
const SMOKE_TARGET_SAMPLE_NANOS: u128 = 500_000; // 0.5 ms

fn smoke_mode() -> bool {
    std::env::var("TESTKIT_BENCH_SMOKE")
        .map(|v| v.trim() != "0" && !v.trim().is_empty())
        .unwrap_or(false)
}

/// Work accounted per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// A `function/parameter` benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name within its group.
    pub name: String,
    /// Timed batches.
    pub samples: usize,
    /// Iterations per batch.
    pub iters_per_sample: u64,
    /// Fastest batch.
    pub min_ns: f64,
    /// Arithmetic mean over batches.
    pub mean_ns: f64,
    /// Median over batches.
    pub median_ns: f64,
    /// 99th percentile over batches.
    pub p99_ns: f64,
    /// Declared per-iteration work, if any.
    pub throughput: Option<Throughput>,
}

impl BenchStats {
    fn rate_suffix(&self) -> String {
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / self.median_ns * 1e9 / (1u64 << 30) as f64;
                format!("   {gib:8.2} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let me = n as f64 / self.median_ns * 1e9 / 1e6;
                format!("   {me:8.2} Melem/s")
            }
            None => String::new(),
        }
    }
}

/// The top-level bench context handed to every `bench_group!` function.
pub struct Criterion {
    filters: Vec<String>,
    out_dir: PathBuf,
    groups_run: usize,
    smoke: bool,
}

impl Criterion {
    /// Builds a context from CLI args (non-flag args are name filters),
    /// `TESTKIT_BENCH_DIR` (default `target/testkit-bench`), and
    /// `TESTKIT_BENCH_SMOKE` (non-zero enables fast CI smoke runs).
    pub fn from_env() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let out_dir = std::env::var("TESTKIT_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| default_out_dir());
        Criterion {
            filters,
            out_dir,
            groups_run: 0,
            smoke: smoke_mode(),
        }
    }

    /// Starts a named group; finish it with [`BenchmarkGroup::finish`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: DEFAULT_SAMPLE_SIZE,
            results: Vec::new(),
        }
    }

    /// Prints the run footer. Called by `bench_main!`.
    pub fn final_summary(&self) {
        println!(
            "\n[testkit-bench] {} group(s) complete; JSON artifacts in {}",
            self.groups_run,
            self.out_dir.display()
        );
    }

    fn matches(&self, group: &str, name: &str) -> bool {
        self.filters.is_empty()
            || self
                .filters
                .iter()
                .any(|f| group.contains(f.as_str()) || name.contains(f.as_str()))
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    results: Vec<BenchStats>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the number of timed batches (minimum 10).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(10);
    }

    /// Runs one benchmark. The routine receives a [`Bencher`] and must
    /// call [`Bencher::iter`] exactly once.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        if !self.criterion.matches(&self.name, &name) {
            return;
        }
        let smoke = self.criterion.smoke;
        let mut bencher = Bencher {
            sample_size: if smoke {
                self.sample_size.min(SMOKE_SAMPLE_SIZE)
            } else {
                self.sample_size
            },
            warmup_nanos: if smoke { SMOKE_WARMUP_NANOS } else { WARMUP_NANOS },
            target_sample_nanos: if smoke {
                SMOKE_TARGET_SAMPLE_NANOS
            } else {
                TARGET_SAMPLE_NANOS
            },
            stats: None,
        };
        routine(&mut bencher);
        let stats = bencher
            .stats
            .expect("benchmark routine must call Bencher::iter");
        let stats = BenchStats {
            name: name.clone(),
            throughput: self.throughput,
            ..stats
        };
        println!(
            "{:<48} median {:>10} ns   p99 {:>10} ns   ({} × {} iters){}",
            format!("{}/{}", self.name, name),
            format_ns(stats.median_ns),
            format_ns(stats.p99_ns),
            stats.samples,
            stats.iters_per_sample,
            stats.rate_suffix(),
        );
        self.results.push(stats);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input));
    }

    /// Writes `BENCH_<group>.json` and consumes the group.
    pub fn finish(self) {
        if self.results.is_empty() {
            return;
        }
        let path = self
            .criterion
            .out_dir
            .join(format!("BENCH_{}.json", sanitize(&self.name)));
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, group_json(&self.name, &self.results)) {
            Ok(()) => self.criterion.groups_run += 1,
            Err(e) => eprintln!("[testkit-bench] cannot write {}: {e}", path.display()),
        }
    }
}

/// Times the measured routine. Handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    warmup_nanos: u128,
    target_sample_nanos: u128,
    stats: Option<BenchStats>,
}

impl Bencher {
    /// Measures `f`: warmup, batch-size calibration, then
    /// `sample_size` timed batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup until the clock has seen enough work to calibrate.
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed().as_nanos() >= self.warmup_nanos && warm_iters >= 3 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() / u128::from(warm_iters)).max(1);
        let iters_per_sample = (self.target_sample_nanos / est_ns).clamp(1, 10_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = samples_ns.len();
        self.stats = Some(BenchStats {
            name: String::new(),
            samples: n,
            iters_per_sample,
            min_ns: samples_ns[0],
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
            median_ns: samples_ns[n / 2],
            p99_ns: samples_ns[((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1],
            throughput: None,
        });
    }
}

/// `<workspace root>/target/testkit-bench`, resolved by walking up from
/// the running crate's manifest dir (cargo sets the bench binary's CWD
/// to the *package* dir, so a bare relative path would scatter stray
/// `target/` dirs across member crates).
fn default_out_dir() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let root = start
        .ancestors()
        .filter(|a| a.join("Cargo.toml").is_file())
        .last()
        .unwrap_or(&start)
        .to_path_buf();
    root.join("target").join("testkit-bench")
}

fn format_ns(ns: f64) -> String {
    if ns < 100.0 {
        format!("{ns:.2}")
    } else {
        format!("{:.0}", ns.round())
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the group's JSON artifact (the `BENCH_*.json` shape):
/// `{"group", "unit", "benchmarks": [{"name", "samples",
/// "iters_per_sample", "min_ns", "mean_ns", "median_ns", "p99_ns",
/// "throughput"?}]}`.
pub fn group_json(group: &str, results: &[BenchStats]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"group\": \"{}\",\n", escape(group)));
    out.push_str("  \"unit\": \"ns/iter\",\n");
    out.push_str("  \"benchmarks\": [\n");
    for (i, s) in results.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", escape(&s.name)));
        out.push_str(&format!("\"samples\": {}, ", s.samples));
        out.push_str(&format!("\"iters_per_sample\": {}, ", s.iters_per_sample));
        out.push_str(&format!("\"min_ns\": {:.3}, ", s.min_ns));
        out.push_str(&format!("\"mean_ns\": {:.3}, ", s.mean_ns));
        out.push_str(&format!("\"median_ns\": {:.3}, ", s.median_ns));
        out.push_str(&format!("\"p99_ns\": {:.3}", s.p99_ns));
        match s.throughput {
            Some(Throughput::Bytes(n)) => {
                out.push_str(&format!(", \"throughput\": {{\"bytes_per_iter\": {n}}}"));
            }
            Some(Throughput::Elements(n)) => {
                out.push_str(&format!(", \"throughput\": {{\"elements_per_iter\": {n}}}"));
            }
            None => {}
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Bundles bench functions into one callable group, mirroring
/// `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($function:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $($function(c);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::from_env();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_contains_required_fields() {
        let stats = BenchStats {
            name: "encode".into(),
            samples: 30,
            iters_per_sample: 1000,
            min_ns: 10.0,
            mean_ns: 12.5,
            median_ns: 12.0,
            p99_ns: 19.0,
            throughput: Some(Throughput::Bytes(292)),
        };
        let json = group_json("packet_codec", &[stats]);
        for needle in [
            "\"group\": \"packet_codec\"",
            "\"name\": \"encode\"",
            "\"median_ns\": 12.000",
            "\"p99_ns\": 19.000",
            "\"throughput\": {\"bytes_per_iter\": 292}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn sanitize_makes_filenames_safe() {
        assert_eq!(sanitize("a b/c-d"), "a_b_c_d");
    }
}
