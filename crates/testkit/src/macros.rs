//! The `forall!` property macro and its assertion companions.
//!
//! `forall!` mirrors the `proptest!` surface this workspace previously
//! used: each item is an ordinary test function whose parameters are
//! drawn from strategies. Bodies use `prop_assert!`-family macros (which
//! record the failure and let the runner shrink it) or plain panics.

/// Declares property tests.
///
/// ```
/// use harmonia_testkit::prelude::*;
///
/// forall! {
///     /// Addition of small numbers never overflows a u32.
///     #[test]
///     fn add_in_range(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert!(a.checked_add(b).is_some());
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// On failure the runner shrinks the case, persists the minimal draw
/// tape to `tests/regressions/<property>.tape` in the consumer crate,
/// and panics with the minimal counterexample. Existing tapes replay
/// before fresh cases are generated.
///
/// Generated cases fan out across a scoped worker pool
/// (`HARMONIA_THREADS` workers; `=1` pins the exact serial path). Seeds
/// derive from the case *index*, and the lowest-index failure is the one
/// reported, so the failing seed, shrink tape and persisted regression
/// are identical at every thread count.
#[macro_export]
macro_rules! forall {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($param:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strategy,)+);
            let runner = $crate::runner::Runner::new(stringify!($name))
                .with_regressions_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/regressions"));
            let outcome = runner.run_parallel(
                |src| $crate::strategy::Strategy::generate(&strategy, src),
                |case| -> $crate::runner::CaseResult {
                    let ($($param,)+) = ::core::clone::Clone::clone(case);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
            $crate::runner::report(stringify!($name), outcome);
        }
    )*};
}

/// Asserts a condition inside a `forall!` body, failing the case (not
/// the process) so the runner can shrink it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::runner::CaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `forall!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  note: {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `forall!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n  note: {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Uniform choice among strategies producing one value type.
///
/// ```
/// use harmonia_testkit::prelude::*;
/// let proto = prop_oneof![Just(6u8), Just(17u8)];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::StrategyExt::boxed($arm)),+
        ])
    };
}
