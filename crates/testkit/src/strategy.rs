//! Value strategies: how a property's inputs are generated from a
//! [`DataSource`].
//!
//! The surface deliberately mirrors the subset of `proptest` this
//! workspace used — `any::<T>()`, integer ranges, tuples, `Just`,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `option::of` — so the
//! property suites migrated with mechanical edits. Shrinking is not
//! implemented per-strategy: the runner shrinks the underlying draw tape
//! (see [`crate::shrink`]), which covers every combinator uniformly.

use crate::source::DataSource;

/// A generator of test-case values.
///
/// Object-safe: combinators live on [`StrategyExt`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value from the draw stream.
    fn generate(&self, src: &mut DataSource) -> Self::Value;
}

/// Combinators for every sized strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f` (shrinks via the source tape).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous collections.
    ///
    /// Boxed strategies are `Send + Sync` so properties can be shared
    /// with the parallel case-runner's workers.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Send + Sync + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// A type-erased strategy (thread-shareable for the parallel runner).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T> + Send + Sync>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, src: &mut DataSource) -> T {
        (**self).generate(src)
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, src: &mut DataSource) -> S::Value {
        (**self).generate(src)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut DataSource) -> T {
        self.0.clone()
    }
}

/// See [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, src: &mut DataSource) -> T {
        (self.f)(self.inner.generate(src))
    }
}

/// Uniform choice between alternative strategies of one value type.
///
/// Built by [`prop_oneof!`](crate::prop_oneof); the arm index is drawn
/// first, so tape shrinking biases toward earlier arms.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, src: &mut DataSource) -> T {
        let i = src.draw_below(self.arms.len() as u64) as usize;
        self.arms[i].generate(src)
    }
}

macro_rules! uint_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut DataSource) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (src.draw() as u128) % span;
                self.start + off as $t
            }
        }

        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, src: &mut DataSource) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let off = (src.draw() as u128) % span;
                self.start() + off as $t
            }
        }
    )*};
}

uint_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, src: &mut DataSource) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(src),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Full-domain strategies for primitives, used by [`any()`](arbitrary::any).
pub mod arbitrary {
    use super::*;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy over the whole domain.
        fn arbitrary() -> Self::Strategy;
    }

    /// The full domain of a primitive integer (or `bool`).
    #[derive(Debug, Clone, Copy)]
    pub struct FullDomain<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for FullDomain<T> {
        fn default() -> Self {
            FullDomain {
                _marker: core::marker::PhantomData,
            }
        }
    }

    macro_rules! arbitrary_uints {
        ($($t:ty),*) => {$(
            impl Strategy for FullDomain<$t> {
                type Value = $t;
                fn generate(&self, src: &mut DataSource) -> $t {
                    src.draw() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = FullDomain<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullDomain::default()
                }
            }
        )*};
    }

    arbitrary_uints!(u8, u16, u32, u64, usize);

    impl Strategy for FullDomain<bool> {
        type Value = bool;
        fn generate(&self, src: &mut DataSource) -> bool {
            src.draw() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullDomain<bool>;
        fn arbitrary() -> Self::Strategy {
            FullDomain::default()
        }
    }

    /// The canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length bounds for [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, src: &mut DataSource) -> Vec<S::Value> {
            // Length is a single leading draw so the shrinker can cut the
            // collection down independently of the element draws.
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + src.draw_below(span) as usize;
            (0..len).map(|_| self.element.generate(src)).collect()
        }
    }

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Optional-value strategies.
pub mod option {
    use super::*;

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, src: &mut DataSource) -> Option<S::Value> {
            // `None` on even draws: shrinking a draw toward zero prefers
            // the absent case, the conventional minimum.
            if src.draw() % 2 == 0 {
                None
            } else {
                Some(self.inner.generate(src))
            }
        }
    }

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::arbitrary::any;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut src = DataSource::live(3);
        for _ in 0..2000 {
            let v = (10u32..20).generate(&mut src);
            assert!((10..20).contains(&v));
            let w = (5u8..=7).generate(&mut src);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn full_u64_range_is_valid() {
        let mut src = DataSource::live(4);
        let _ = (0u64..u64::MAX).generate(&mut src);
        let _ = (0u64..=u64::MAX).generate(&mut src);
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (1u32..5, any::<bool>()).prop_map(|(n, b)| if b { n * 2 } else { n });
        let mut src = DataSource::live(5);
        for _ in 0..500 {
            let v = s.generate(&mut src);
            assert!((1..10).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let s = collection::vec(0u32..100, 2..6);
        let mut src = DataSource::live(6);
        for _ in 0..500 {
            let v = s.generate(&mut src);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut src = DataSource::live(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut src) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn option_of_yields_both_cases() {
        let s = option::of(0u32..10);
        let mut src = DataSource::live(8);
        let vals: Vec<Option<u32>> = (0..100).map(|_| s.generate(&mut src)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
    }
}
