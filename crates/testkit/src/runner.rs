//! The property runner: regression replay, seeded case generation,
//! failure shrinking, and counterexample persistence.
//!
//! Determinism policy: the default base seed is **fixed** so that offline
//! CI runs are reproducible bit-for-bit. Set `TESTKIT_SEED` to explore a
//! different region of the input space and `TESTKIT_CASES` to change the
//! number of cases per property.

use crate::shrink::shrink_tape;
use crate::source::DataSource;
use harmonia_sim::SplitMix64;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Default cases per property (`TESTKIT_CASES` overrides).
pub const DEFAULT_CASES: u32 = 64;

/// Default base seed (`TESTKIT_SEED` overrides). Spells "HARMONIA".
pub const DEFAULT_SEED: u64 = 0x4841_524D_4F4E_4941;

/// Default shrink evaluation budget (`TESTKIT_SHRINK_BUDGET` overrides).
pub const DEFAULT_SHRINK_BUDGET: usize = 4096;

/// A failed test case: the message explaining why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseError(pub String);

impl CaseError {
    /// Builds an error from any displayable reason.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError(msg.into())
    }
}

/// What a property body returns per case.
pub type CaseResult = Result<(), CaseError>;

/// Runner configuration, resolved from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it.
    pub seed: u64,
    /// Max property evaluations spent shrinking one failure.
    pub shrink_budget: usize,
    /// Whether minimal counterexample tapes are appended to the
    /// regression file on failure.
    pub persist: bool,
    /// Worker threads for [`Runner::run_parallel`] (1 = exact serial
    /// path). Resolved from `HARMONIA_THREADS` / available parallelism.
    pub threads: usize,
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl Config {
    /// Reads `TESTKIT_CASES`, `TESTKIT_SEED`, `TESTKIT_SHRINK_BUDGET`,
    /// `TESTKIT_PERSIST` (0 disables), and `HARMONIA_THREADS`, with
    /// hermetic defaults.
    pub fn from_env() -> Self {
        Config {
            cases: env_parse("TESTKIT_CASES").unwrap_or(DEFAULT_CASES),
            seed: env_parse("TESTKIT_SEED").unwrap_or(DEFAULT_SEED),
            shrink_budget: env_parse("TESTKIT_SHRINK_BUDGET").unwrap_or(DEFAULT_SHRINK_BUDGET),
            persist: env_parse::<u8>("TESTKIT_PERSIST").unwrap_or(1) != 0,
            threads: harmonia_sim::exec::threads(),
        }
    }
}

/// Result of running one property.
#[derive(Debug)]
pub enum Outcome<T> {
    /// Every case passed.
    Passed {
        /// Regression cases replayed plus generated cases.
        cases: u32,
    },
    /// A case failed; `minimal` reproduces it after shrinking.
    Failed {
        /// The shrunk counterexample.
        minimal: T,
        /// The draw tape that regenerates `minimal`.
        tape: Vec<u64>,
        /// Seed of the originally failing case (0 for regression replays).
        seed: u64,
        /// The failure message of the minimal case.
        error: String,
        /// Accepted shrink steps.
        shrink_steps: u32,
        /// Where the regression tape was persisted, if anywhere.
        persisted_to: Option<PathBuf>,
    },
}

/// Runs one property: regression tapes first, then seeded generation.
pub struct Runner {
    name: String,
    config: Config,
    regressions_dir: Option<PathBuf>,
}

impl Runner {
    /// A runner for the property `name` with environment config.
    pub fn new(name: impl Into<String>) -> Self {
        Runner {
            name: name.into(),
            config: Config::from_env(),
            regressions_dir: None,
        }
    }

    /// Overrides the configuration (used by selftests).
    pub fn with_config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Directory holding `<property>.tape` regression files. The
    /// [`forall!`](crate::forall) macro passes the consumer crate's
    /// `tests/regressions/`.
    pub fn with_regressions_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.regressions_dir = Some(dir.into());
        self
    }

    fn regression_file(&self) -> Option<PathBuf> {
        self.regressions_dir
            .as_ref()
            .map(|d| d.join(format!("{}.tape", self.name)))
    }

    /// Per-case seeds, derived from the base seed **by case index** (the
    /// i-th seed is the i-th output of the master stream). Workers never
    /// touch the master stream, so a failing case reports the same seed
    /// and tape at any thread count.
    fn case_seeds(&self) -> Vec<u64> {
        let mut master = SplitMix64::new(self.config.seed);
        (0..self.config.cases).map(|_| master.next_u64()).collect()
    }

    /// Executes the property serially. `gen` builds a case from the draw
    /// stream; `test` checks it (panics are treated as failures and
    /// shrunk too).
    pub fn run<T, G, F>(&self, gen: G, test: F) -> Outcome<T>
    where
        T: Clone + Debug,
        G: Fn(&mut DataSource) -> T,
        F: Fn(&T) -> CaseResult,
    {
        // Phase 1: replay persisted counterexamples.
        if let Some((tape, err)) = self.replay_regressions(&gen, &test) {
            return self.shrunk_failure(tape, 0, err, &gen, eval_tape(&gen, &test));
        }

        // Phase 2: seeded generation, first failure wins.
        for case_seed in self.case_seeds() {
            let mut src = DataSource::live(case_seed);
            let value = gen(&mut src);
            if let Err(err) = run_case(&test, &value) {
                let tape = src.tape().to_vec();
                return self.shrunk_failure(tape, case_seed, err, &gen, eval_tape(&gen, &test));
            }
        }

        Outcome::Passed {
            cases: self.regression_count() + self.config.cases,
        }
    }

    /// Executes the property with generated cases fanned out across
    /// `config.threads` workers (the path [`forall!`](crate::forall)
    /// takes).
    ///
    /// Determinism contract: seeds derive from the case index (see
    /// `Runner::case_seeds`), and when several cases fail, the one
    /// with the lowest index is reported — the same case the serial run
    /// stops at. With `threads == 1` this *is* [`Runner::run`], so
    /// failures, shrink tapes and persisted regressions are identical at
    /// every thread count.
    pub fn run_parallel<T, G, F>(&self, gen: G, test: F) -> Outcome<T>
    where
        T: Clone + Debug,
        G: Fn(&mut DataSource) -> T + Sync,
        F: Fn(&T) -> CaseResult + Sync,
    {
        let pool = harmonia_sim::exec::WorkerPool::with_threads(self.config.threads);
        if pool.is_serial() {
            return self.run(gen, test);
        }

        // Phase 1 stays serial: regression replays are few and ordered.
        if let Some((tape, err)) = self.replay_regressions(&gen, &test) {
            return self.shrunk_failure(tape, 0, err, &gen, eval_tape(&gen, &test));
        }

        // Phase 2: every case runs (no early exit across workers); the
        // lowest-index failure is selected, matching the serial run.
        let failures = pool.map(self.case_seeds(), |case_seed| {
            let mut src = DataSource::live(case_seed);
            let value = gen(&mut src);
            run_case(&test, &value)
                .err()
                .map(|err| (src.tape().to_vec(), case_seed, err))
        });
        if let Some((tape, case_seed, err)) = failures.into_iter().flatten().next() {
            return self.shrunk_failure(tape, case_seed, err, &gen, eval_tape(&gen, &test));
        }

        Outcome::Passed {
            cases: self.regression_count() + self.config.cases,
        }
    }

    /// Replays persisted counterexample tapes in file order; returns the
    /// first failing tape with its error.
    fn replay_regressions<T, G, F>(&self, gen: &G, test: &F) -> Option<(Vec<u64>, CaseError)>
    where
        T: Clone + Debug,
        G: Fn(&mut DataSource) -> T,
        F: Fn(&T) -> CaseResult,
    {
        for tape in self.load_regressions() {
            let mut src = DataSource::replay(tape.clone());
            let value = gen(&mut src);
            if let Err(err) = run_case(test, &value) {
                return Some((tape, err));
            }
        }
        None
    }

    fn regression_count(&self) -> u32 {
        self.load_regressions().len() as u32
    }

    fn shrunk_failure<T, G>(
        &self,
        tape: Vec<u64>,
        seed: u64,
        first_error: CaseError,
        gen: &G,
        eval_tape: impl FnMut(&[u64]) -> Option<String>,
    ) -> Outcome<T>
    where
        T: Clone + Debug,
        G: Fn(&mut DataSource) -> T,
    {
        let (min_tape, min_err, shrink_steps) =
            shrink_tape(tape, eval_tape, self.config.shrink_budget);
        let mut src = DataSource::replay(min_tape.clone());
        let minimal = gen(&mut src);
        let error = min_err.unwrap_or(first_error.0);
        let persisted_to = if self.config.persist {
            self.persist(&min_tape, &error)
        } else {
            None
        };
        Outcome::Failed {
            minimal,
            tape: min_tape,
            seed,
            error,
            shrink_steps,
            persisted_to,
        }
    }

    fn load_regressions(&self) -> Vec<Vec<u64>> {
        let Some(path) = self.regression_file() else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        parse_regressions(&text)
    }

    fn persist(&self, tape: &[u64], error: &str) -> Option<PathBuf> {
        let path = self.regression_file()?;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).ok()?;
        }
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        if parse_regressions(&existing).iter().any(|t| t == tape) {
            return Some(path); // already recorded
        }
        let mut text = existing;
        if text.is_empty() {
            text.push_str(
                "# harmonia-testkit regression tapes: draw sequences that once\n\
                 # produced a failing case. Replayed before fresh generation;\n\
                 # check this file in. Format: `tape <u64>...` per line.\n",
            );
        }
        text.push_str(&format_regression(tape, error));
        std::fs::write(&path, text).ok()?;
        Some(path)
    }
}

/// Parses a regression file: `tape <u64> <u64> ...` lines, `#` comments.
pub fn parse_regressions(text: &str) -> Vec<Vec<u64>> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            let rest = line.strip_prefix("tape")?;
            rest.split_whitespace()
                .map(|w| w.parse().ok())
                .collect::<Option<Vec<u64>>>()
        })
        .collect()
}

/// Renders one regression line.
pub fn format_regression(tape: &[u64], error: &str) -> String {
    let draws: Vec<String> = tape.iter().map(u64::to_string).collect();
    let note = error.lines().next().unwrap_or("").chars().take(120).collect::<String>();
    format!("tape {} # {}\n", draws.join(" "), note)
}

/// The shrinker's candidate evaluator: regenerate from a mutated tape and
/// re-test. A strategy panicking on a mutated tape is not a property
/// failure; the candidate is rejected.
fn eval_tape<'a, T, G, F>(gen: &'a G, test: &'a F) -> impl FnMut(&[u64]) -> Option<String> + 'a
where
    G: Fn(&mut DataSource) -> T,
    F: Fn(&T) -> CaseResult,
{
    move |tape: &[u64]| {
        let mut src = DataSource::replay(tape.to_vec());
        let value = match catch_unwind(AssertUnwindSafe(|| gen(&mut src))) {
            Ok(v) => v,
            Err(_) => return None,
        };
        run_case(test, &value).err().map(|e| e.0)
    }
}

fn run_case<T>(test: impl Fn(&T) -> CaseResult, value: &T) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "test case panicked".to_string()
            };
            Err(CaseError::fail(format!("panic: {msg}")))
        }
    }
}

/// Panics with a readable report if `outcome` is a failure. Called by the
/// [`forall!`](crate::forall) macro after `Runner::run`.
pub fn report<T: Debug>(property: &str, outcome: Outcome<T>) {
    match outcome {
        Outcome::Passed { .. } => {}
        Outcome::Failed {
            minimal,
            tape,
            seed,
            error,
            shrink_steps,
            persisted_to,
        } => {
            let saved = match persisted_to {
                Some(p) => format!("regression saved to {}", p.display()),
                None => "regression persistence disabled".to_string(),
            };
            panic!(
                "property `{property}` failed.\n\
                 minimal case (after {shrink_steps} shrink steps): {minimal:#?}\n\
                 error: {error}\n\
                 original seed: {seed:#x}\n\
                 replay line: {}\
                 {saved}",
                format_regression(&tape, &error),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_format_round_trips() {
        let line = format_regression(&[223, 0, 0, 3], "wfreq too high");
        let parsed = parse_regressions(&line);
        assert_eq!(parsed, vec![vec![223, 0, 0, 3]]);
    }

    #[test]
    fn parser_skips_comments_and_garbage() {
        let text = "# header\n\ntape 1 2 3 # note\nnot a tape line\ntape 9\n";
        assert_eq!(parse_regressions(text), vec![vec![1, 2, 3], vec![9]]);
    }
}
