//! Deterministic RNG distributions on top of [`SplitMix64`].
//!
//! This is the workspace's replacement for the `rand` crate: the workload
//! generators (`harmonia-workloads`) and the bench harness draw from a
//! [`DetRng`], so every generated trace is a pure function of its seed —
//! on every platform, offline, forever. The method names mirror the
//! `rand::Rng` surface the generators previously used (`gen_range`,
//! `gen_bool`) to keep call sites unchanged.

use harmonia_sim::SplitMix64;

/// A seeded deterministic random generator with distribution helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng(SplitMix64);

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng(SplitMix64::new(seed))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.0.next_f64()
    }

    /// Uniform value in a range (half-open or inclusive; integer or
    /// `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// Uniformly chosen element.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.0.next_below(items.len() as u64) as usize]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.0.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Index drawn with probability proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "need at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        // Float accumulation can leave u at a hair above the final
        // boundary; the last positive weight owns that sliver.
        weights.iter().rposition(|&w| w > 0.0).unwrap()
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! int_sample_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for ::core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128) % span) as $t
            }
        }

        impl SampleRange for ::core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_sample_ranges!(u8, u16, u32, u64, usize);

impl SampleRange for ::core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard the upper bound against float rounding on huge spans.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(3);
        let mut b = DetRng::new(3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::new(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn weighted_skips_zero_weights() {
        let mut r = DetRng::new(5);
        for _ in 0..500 {
            let i = r.weighted_index(&[0.0, 2.0, 0.0, 1.0]);
            assert!(i == 1 || i == 3);
        }
    }
}
