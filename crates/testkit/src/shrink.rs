//! Tape shrinking: reduce a failing draw tape to a (locally) minimal one.
//!
//! Because every strategy is a deterministic function of the tape, the
//! shrinker never inspects values. It alternates three passes until a
//! fixpoint (or the evaluation budget runs out):
//!
//! 1. **Block deletion** — remove spans of draws; shorter tapes replay as
//!    smaller collections and zeroed suffixes.
//! 2. **Zeroing** — set single draws to 0, the minimum of every mapping.
//! 3. **Binary minimization** — per draw, binary-search the smallest
//!    replacement that still fails. Range strategies map draws monotonely
//!    below their span, so this converges on the smallest failing value.
//!
//! A candidate is accepted only if the property still fails on it, so the
//! result always reproduces the original failure mode's observable: a
//! failing case.

/// Outcome of evaluating one candidate tape.
pub type CandidateFailure = Option<String>;

/// Shrinks `tape` against `eval`, which returns `Some(error)` while the
/// property still fails. Returns the minimal tape, its error, and the
/// number of accepted shrink steps.
pub fn shrink_tape(
    tape: Vec<u64>,
    mut eval: impl FnMut(&[u64]) -> CandidateFailure,
    mut budget: usize,
) -> (Vec<u64>, Option<String>, u32) {
    let mut cur = tape;
    let mut cur_err = None;
    let mut steps = 0u32;
    loop {
        let mut improved = false;

        // Pass 1: block deletion, large blocks first.
        let mut block = (cur.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i + block <= cur.len() && budget > 0 {
                budget -= 1;
                let mut cand = cur.clone();
                cand.drain(i..i + block);
                if let Some(err) = eval(&cand) {
                    cur = cand;
                    cur_err = Some(err);
                    steps += 1;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            if block == 1 {
                break;
            }
            block = (block / 2).max(1);
        }

        // Pass 2 + 3: zero, then binary-minimize each remaining draw.
        for i in 0..cur.len() {
            if budget == 0 {
                break;
            }
            if cur[i] == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand[i] = 0;
            budget -= 1;
            if let Some(err) = eval(&cand) {
                cur = cand;
                cur_err = Some(err);
                steps += 1;
                improved = true;
                continue;
            }
            // 0 passes, cur[i] fails: bisect the smallest failing value.
            let (mut lo, mut hi) = (0u64, cur[i]);
            while hi - lo > 1 && budget > 0 {
                let mid = lo + (hi - lo) / 2;
                cand[i] = mid;
                budget -= 1;
                if let Some(err) = eval(&cand) {
                    hi = mid;
                    cur_err = Some(err);
                } else {
                    lo = mid;
                }
            }
            if hi < cur[i] {
                cur[i] = hi;
                steps += 1;
                improved = true;
            }
        }

        if !improved || budget == 0 {
            return (cur, cur_err, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deletes_irrelevant_draws() {
        // Fails iff any draw equals 7; everything else is noise.
        let tape = vec![3, 9, 7, 12, 4];
        let (min, _, _) = shrink_tape(
            tape,
            |t| t.contains(&7).then(|| "has 7".to_string()),
            10_000,
        );
        assert_eq!(min, vec![7]);
    }

    #[test]
    fn bisects_to_threshold() {
        // Fails while the first draw is >= 100.
        let (min, _, _) = shrink_tape(
            vec![982_451_653],
            |t| (t.first().copied().unwrap_or(0) >= 100).then(|| "big".to_string()),
            10_000,
        );
        assert_eq!(min, vec![100]);
    }

    #[test]
    fn respects_budget() {
        let mut evals = 0u32;
        let _ = shrink_tape(
            vec![5; 64],
            |_| {
                evals += 1;
                Some("always fails".to_string())
            },
            50,
        );
        assert!(evals <= 50);
    }
}
