//! The draw tape: every random decision a strategy makes flows through a
//! [`DataSource`], which either draws fresh values from a seeded
//! [`SplitMix64`] (recording them) or replays a previously recorded tape.
//!
//! Recording the raw draws is what buys integrated shrinking for *every*
//! combinator, including `prop_map` and `prop_oneof`: the shrinker never
//! needs to invert a mapping — it mutates the tape and re-runs generation.
//! Replay past the end of a tape yields zeros, so truncated tapes still
//! produce well-defined (and usually smaller) values.

use harmonia_sim::SplitMix64;

/// A recording or replaying stream of `u64` draws.
#[derive(Debug, Clone)]
pub struct DataSource {
    rng: SplitMix64,
    tape: Vec<u64>,
    pos: usize,
    replay: bool,
}

impl DataSource {
    /// A live source: draws come from `SplitMix64::new(seed)` and are
    /// recorded on the tape.
    pub fn live(seed: u64) -> Self {
        DataSource {
            rng: SplitMix64::new(seed),
            tape: Vec::new(),
            pos: 0,
            replay: false,
        }
    }

    /// A replaying source: draws come from `tape`, then zeros forever.
    pub fn replay(tape: Vec<u64>) -> Self {
        DataSource {
            rng: SplitMix64::new(0),
            tape,
            pos: 0,
            replay: true,
        }
    }

    /// Next raw draw.
    pub fn draw(&mut self) -> u64 {
        if self.replay {
            let v = self.tape.get(self.pos).copied().unwrap_or(0);
            self.pos += 1;
            v
        } else {
            let v = self.rng.next_u64();
            self.tape.push(v);
            v
        }
    }

    /// Draw mapped uniformly (mod bias accepted) into `[0, bound)`.
    ///
    /// The mapping is monotone for draws already below `bound`, which is
    /// what lets the shrinker binary-search a draw down to the smallest
    /// failing *value*.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "draw_below bound must be non-zero");
        self.draw() % bound
    }

    /// The draws made so far (recorded or consumed).
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_records_what_it_draws() {
        let mut s = DataSource::live(7);
        let a = s.draw();
        let b = s.draw();
        assert_eq!(s.tape(), &[a, b]);
    }

    #[test]
    fn replay_reproduces_then_zeroes() {
        let mut live = DataSource::live(9);
        let vals: Vec<u64> = (0..4).map(|_| live.draw()).collect();
        let mut rep = DataSource::replay(live.tape().to_vec());
        let replayed: Vec<u64> = (0..4).map(|_| rep.draw()).collect();
        assert_eq!(vals, replayed);
        assert_eq!(rep.draw(), 0, "exhausted tape must yield zeros");
    }

    #[test]
    fn draw_below_in_range() {
        let mut s = DataSource::live(1);
        for _ in 0..1000 {
            assert!(s.draw_below(13) < 13);
        }
    }
}
