//! The testkit testing itself: shrinking converges on minimal
//! counterexamples, seeded runs reproduce exactly, regression tapes
//! replay-then-persist, and the `DetRng` distributions are
//! bounds-correct.

use harmonia_testkit::prelude::*;
use harmonia_testkit::runner::{Config, Outcome, Runner};
use harmonia_testkit::source::DataSource;
use harmonia_testkit::DetRng;

fn quiet_config() -> Config {
    let mut c = Config::from_env();
    c.persist = false; // selftests must not write regression files
    c
}

/// Runs `test` over `strategy` with persistence off and returns the
/// failure, if any.
fn check<T, S, F>(name: &str, strategy: S, test: F) -> Outcome<T>
where
    T: Clone + std::fmt::Debug,
    S: Strategy<Value = T>,
    F: Fn(&T) -> Result<(), harmonia_testkit::runner::CaseError>,
{
    Runner::new(name)
        .with_config(quiet_config())
        .run(|src| strategy.generate(src), test)
}

#[test]
fn shrinking_converges_to_threshold_scalar() {
    // Property: x < 100. The minimal counterexample over 0..10_000 is
    // exactly 100; the tape shrinker must find it, not just something
    // smallish.
    let outcome = check("selftest_scalar", (0u64..10_000,), |&(x,)| {
        if x < 100 {
            Ok(())
        } else {
            Err(harmonia_testkit::runner::CaseError::fail("x too big"))
        }
    });
    match outcome {
        Outcome::Failed {
            minimal: (x,),
            shrink_steps,
            ..
        } => {
            assert_eq!(x, 100, "shrinker stopped early");
            assert!(shrink_steps > 0, "no shrinking happened");
        }
        Outcome::Passed { .. } => panic!("property must fail"),
    }
}

#[test]
fn shrinking_converges_to_minimal_vector() {
    // Property: every element < 500. Minimal counterexample: [500].
    let outcome = check(
        "selftest_vec",
        (collection::vec(0u32..1000, 0..50),),
        |(v,)| {
            if v.iter().all(|&x| x < 500) {
                Ok(())
            } else {
                Err(harmonia_testkit::runner::CaseError::fail("big element"))
            }
        },
    );
    match outcome {
        Outcome::Failed { minimal: (v,), .. } => {
            assert_eq!(v, vec![500], "minimal vector counterexample not found");
        }
        Outcome::Passed { .. } => panic!("property must fail"),
    }
}

#[test]
fn shrinking_handles_panicking_properties() {
    // Failures signalled by panic (not prop_assert) shrink the same way.
    let outcome = check("selftest_panic", (0u64..1_000,), |&(x,)| {
        assert!(x < 250, "boom at {x}");
        Ok(())
    });
    match outcome {
        Outcome::Failed {
            minimal: (x,),
            error,
            ..
        } => {
            assert_eq!(x, 250);
            assert!(error.contains("panic"), "panic not captured: {error}");
        }
        Outcome::Passed { .. } => panic!("property must fail"),
    }
}

#[test]
fn seeded_runs_reproduce_exactly() {
    let collect = |seed: u64| -> Vec<(u64, Vec<u32>)> {
        let mut cfg = quiet_config();
        cfg.seed = seed;
        cfg.cases = 32;
        let seen = std::cell::RefCell::new(Vec::new());
        let strategy = (any::<u64>(), collection::vec(0u32..77, 1..9));
        let outcome = Runner::new("selftest_repro").with_config(cfg).run(
            |src| strategy.generate(src),
            |case| {
                seen.borrow_mut().push(case.clone());
                Ok(())
            },
        );
        assert!(matches!(outcome, Outcome::Passed { .. }));
        seen.into_inner()
    };
    assert_eq!(collect(7), collect(7), "same seed must replay identically");
    assert_ne!(collect(7), collect(8), "different seeds must differ");
}

#[test]
fn failing_case_replays_from_its_tape() {
    // The reported tape regenerates the reported minimal value.
    let strategy = (50u64..500, 3u32..9, 50u64..500, 3u32..9);
    let outcome = check("selftest_tape", strategy, |&(wf, _, _, _)| {
        if wf < 200 {
            Ok(())
        } else {
            Err(harmonia_testkit::runner::CaseError::fail("wf"))
        }
    });
    let Outcome::Failed { minimal, tape, .. } = outcome else {
        panic!("property must fail");
    };
    let strategy = (50u64..500, 3u32..9, 50u64..500, 3u32..9);
    let mut src = DataSource::replay(tape);
    assert_eq!(strategy.generate(&mut src), minimal);
}

#[test]
fn ported_shell_regression_tape_decodes_to_documented_values() {
    // Guards the crates/shell/tests/regressions/cdc_lossless_predicate
    // port: the tape must regenerate the counterexample the retired
    // proptest file documented (wfreq 273, wbits_log 3, rfreq 50,
    // rbits_log 6), given the same strategy order as the shell test.
    let strategy = (50u64..500, 3u32..9, 50u64..500, 3u32..9);
    let mut src = DataSource::replay(vec![223, 0, 0, 3]);
    assert_eq!(strategy.generate(&mut src), (273, 3, 50, 6));
}

#[test]
fn regression_tapes_replay_before_generation() {
    // A runner pointed at a regression dir must fail on the stored tape
    // even when generation would never find the failure.
    let dir = std::env::temp_dir().join(format!("testkit-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("selftest_replay.tape"),
        "# stored counterexample\ntape 123456\n",
    )
    .unwrap();
    let mut cfg = quiet_config();
    cfg.cases = 0; // no generation: only the regression tape can fail
    let outcome = Runner::new("selftest_replay")
        .with_config(cfg)
        .with_regressions_dir(&dir)
        .run(
            |src| (0u64..1_000_000).generate(src),
            |&v| {
                if v == 123_456 {
                    Err(harmonia_testkit::runner::CaseError::fail("stored"))
                } else {
                    Ok(())
                }
            },
        );
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        matches!(outcome, Outcome::Failed { minimal, .. } if minimal == 123_456),
        "stored regression did not replay"
    );
}

#[test]
fn failures_persist_minimal_tapes() {
    let dir = std::env::temp_dir().join(format!("testkit-persist-{}", std::process::id()));
    let mut cfg = quiet_config();
    cfg.persist = true;
    let outcome = Runner::new("selftest_persist")
        .with_config(cfg)
        .with_regressions_dir(&dir)
        .run(
            |src| (0u64..1_000).generate(src),
            |&v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err(harmonia_testkit::runner::CaseError::fail("v"))
                }
            },
        );
    let Outcome::Failed {
        persisted_to: Some(path),
        ..
    } = outcome
    else {
        panic!("failure must persist a tape");
    };
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        harmonia_testkit::runner::parse_regressions(&text),
        vec![vec![10]],
        "persisted tape must be the minimal counterexample"
    );
}

// ---- DetRng distribution correctness ----------------------------------

forall! {
    /// Integer ranges (half-open and inclusive) stay in bounds for
    /// arbitrary windows.
    #[test]
    fn detrng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!(v >= lo && v < lo + span, "{v} outside [{lo}, {})", lo + span);
            let w = rng.gen_range(lo..=lo + span);
            prop_assert!(w >= lo && w <= lo + span);
        }
    }

    /// Float ranges stay in `[lo, hi)`.
    #[test]
    fn detrng_f64_range_bounds(seed in any::<u64>(), lo_m in 0u32..1000, span_m in 1u32..1000) {
        let (lo, span) = (f64::from(lo_m) / 8.0, f64::from(span_m) / 8.0);
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// `choice` only ever returns members of the slice.
    #[test]
    fn detrng_choice_is_a_member(seed in any::<u64>(), items in collection::vec(any::<u32>(), 1..40)) {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let c = *rng.choice(&items);
            prop_assert!(items.contains(&c));
        }
    }

    /// `shuffle` is a permutation: multiset unchanged.
    #[test]
    fn detrng_shuffle_is_permutation(seed in any::<u64>(), items in collection::vec(any::<u16>(), 0..60)) {
        let mut shuffled = items.clone();
        DetRng::new(seed).shuffle(&mut shuffled);
        let mut a = items;
        let mut b = shuffled;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// `weighted_index` lands in range and never selects a zero weight.
    #[test]
    fn detrng_weighted_respects_zeros(
        seed in any::<u64>(),
        weights in collection::vec(prop_oneof![Just(0u32), 1u32..100], 1..20),
    ) {
        if weights.iter().all(|&w| w == 0) {
            return Ok(()); // all-zero weights are rejected by contract
        }
        let wf: Vec<f64> = weights.iter().map(|&w| f64::from(w)).collect();
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let i = rng.weighted_index(&wf);
            prop_assert!(i < wf.len());
            prop_assert!(wf[i] > 0.0, "picked zero-weight index {i}");
        }
    }

    /// `shuffle` with distinct seeds reorders at least sometimes — the
    /// generator is not degenerate.
    #[test]
    fn detrng_distinct_seeds_decorrelate(seed in 0u64..10_000) {
        let items: Vec<u32> = (0..32).collect();
        let mut a = items.clone();
        let mut b = items;
        DetRng::new(seed).shuffle(&mut a);
        DetRng::new(seed.wrapping_add(1)).shuffle(&mut b);
        prop_assert_ne!(a, b);
    }
}
