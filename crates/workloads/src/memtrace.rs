//! Memory-trace generation for the DDR/HBM benchmarks.

use harmonia_hw::ip::dram::MemOp;
use harmonia_testkit::DetRng;

/// The access patterns of Figure 10c.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Consecutive addresses.
    Sequential,
    /// Repeated access to a small fixed region.
    Fixed,
    /// Uniform random addresses over the footprint.
    Random,
}

impl AccessPattern {
    /// All patterns, in reporting order.
    pub const ALL: [AccessPattern; 3] = [
        AccessPattern::Random,
        AccessPattern::Fixed,
        AccessPattern::Sequential,
    ];
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccessPattern::Sequential => "sequential",
            AccessPattern::Fixed => "fixed",
            AccessPattern::Random => "random",
        };
        f.write_str(s)
    }
}

/// Deterministic memory-trace generator.
///
/// ```
/// use harmonia_workloads::{AccessPattern, MemTraceGen};
/// let ops = MemTraceGen::new(1).trace(AccessPattern::Sequential, false, 64, 100);
/// assert_eq!(ops.len(), 100);
/// assert_eq!(ops[1].addr, 64);
/// ```
#[derive(Debug)]
pub struct MemTraceGen {
    rng: DetRng,
    /// Total footprint the random pattern spans.
    footprint_bytes: u64,
    /// Size of the fixed pattern's hot region.
    fixed_region_bytes: u64,
}

impl MemTraceGen {
    /// Creates a generator over a 4 GiB footprint with a 64 KiB hot region.
    pub fn new(seed: u64) -> Self {
        MemTraceGen {
            rng: DetRng::new(seed),
            footprint_bytes: 4 << 30,
            fixed_region_bytes: 64 << 10,
        }
    }

    /// Overrides the random-pattern footprint.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "footprint must be non-zero");
        self.footprint_bytes = bytes;
        self
    }

    /// Generates a trace of `count` operations of `op_bytes` each.
    pub fn trace(
        &mut self,
        pattern: AccessPattern,
        write: bool,
        op_bytes: u32,
        count: usize,
    ) -> Vec<MemOp> {
        let step = u64::from(op_bytes);
        (0..count as u64)
            .map(|i| {
                let addr = match pattern {
                    AccessPattern::Sequential => i * step,
                    AccessPattern::Fixed => (i * step) % self.fixed_region_bytes,
                    AccessPattern::Random => {
                        self.rng.gen_range(0..self.footprint_bytes / step) * step
                    }
                };
                if write {
                    MemOp::write(addr, op_bytes)
                } else {
                    MemOp::read(addr, op_bytes)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_strided() {
        let ops = MemTraceGen::new(1).trace(AccessPattern::Sequential, false, 128, 10);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.addr, i as u64 * 128);
            assert!(!op.is_write);
        }
    }

    #[test]
    fn fixed_stays_in_region() {
        let ops = MemTraceGen::new(1).trace(AccessPattern::Fixed, true, 64, 10_000);
        assert!(ops.iter().all(|o| o.addr < 64 << 10));
        assert!(ops.iter().all(|o| o.is_write));
    }

    #[test]
    fn random_spreads_widely() {
        let ops = MemTraceGen::new(1).trace(AccessPattern::Random, false, 64, 5_000);
        let above_1g = ops.iter().filter(|o| o.addr > 1 << 30).count();
        assert!(above_1g > 1_000, "random trace not spread: {above_1g}");
        // Aligned to the op size.
        assert!(ops.iter().all(|o| o.addr % 64 == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MemTraceGen::new(9).trace(AccessPattern::Random, false, 64, 100);
        let b = MemTraceGen::new(9).trace(AccessPattern::Random, false, 64, 100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_rejected() {
        let _ = MemTraceGen::new(1).with_footprint(0);
    }
}
