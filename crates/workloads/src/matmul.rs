//! The matrix-multiplication compute benchmark (Figure 18b).
//!
//! "Single-precision floating-point matrix calculations for matrices sized
//! 64 × 64 across 1024 iterations, measuring the number of matrix
//! calculations per second." On the FPGA this maps to a DSP systolic
//! pipeline whose throughput scales with the unroll/parallelism factor;
//! the model computes matrices/second from MAC counts, DSP parallelism and
//! clock, and the reference implementation actually performs the multiply
//! so functional tests have ground truth.

use harmonia_sim::Freq;

/// The Figure 18b workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatMulWorkload {
    n: usize,
    iterations: u64,
}

impl MatMulWorkload {
    /// The paper's configuration: 64 × 64, 1024 iterations.
    pub fn paper() -> Self {
        MatMulWorkload {
            n: 64,
            iterations: 1024,
        }
    }

    /// Creates a workload of `n × n` matrices.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `iterations` is zero.
    pub fn new(n: usize, iterations: u64) -> Self {
        assert!(n > 0 && iterations > 0, "degenerate matmul workload");
        MatMulWorkload { n, iterations }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Iteration count.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Multiply-accumulate operations per matrix product.
    pub fn macs_per_matrix(&self) -> u64 {
        (self.n * self.n * self.n) as u64
    }

    /// Matrices per second on a DSP array with `parallelism` MACs/cycle at
    /// `clock`, with a pipeline efficiency factor for drain/refill between
    /// tiles.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn matrices_per_sec(&self, parallelism: u32, clock: Freq) -> f64 {
        assert!(parallelism > 0, "parallelism must be non-zero");
        let macs_per_sec = f64::from(parallelism) * clock.hz() as f64;
        // Tile drain/refill costs a little; deeper unrolls amortize less.
        let efficiency = 0.93 - 0.005 * f64::from(parallelism.ilog2());
        macs_per_sec * efficiency / self.macs_per_matrix() as f64
    }

    /// Wall-clock seconds for the whole workload at the given design point.
    pub fn duration_secs(&self, parallelism: u32, clock: Freq) -> f64 {
        self.iterations as f64 / self.matrices_per_sec(parallelism, clock)
    }

    /// Reference software implementation: `a × b` for `n × n` row-major
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are not `n × n`.
    pub fn multiply(&self, a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = self.n;
        assert_eq!(a.len(), n * n, "lhs must be n*n");
        assert_eq!(b.len(), n * n, "rhs must be n*n");
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    c[i * n + j] += aik * b[k * n + j];
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let w = MatMulWorkload::paper();
        assert_eq!(w.n(), 64);
        assert_eq!(w.iterations(), 1024);
        assert_eq!(w.macs_per_matrix(), 262_144);
    }

    #[test]
    fn throughput_scales_with_parallelism() {
        let w = MatMulWorkload::paper();
        let clk = Freq::mhz(300);
        let x4 = w.matrices_per_sec(4, clk);
        let x8 = w.matrices_per_sec(8, clk);
        let x16 = w.matrices_per_sec(16, clk);
        assert!(x8 > 1.9 * x4 && x8 < 2.0 * x4);
        assert!(x16 > 1.9 * x8 && x16 < 2.0 * x8);
        // Order of magnitude sanity: x16 @300 MHz ≈ 16k matrices/s.
        assert!((15_000.0..20_000.0).contains(&x16), "x16 = {x16:.0}");
    }

    #[test]
    fn duration_inverse_of_rate() {
        let w = MatMulWorkload::paper();
        let clk = Freq::mhz(300);
        let d = w.duration_secs(8, clk);
        assert!((d * w.matrices_per_sec(8, clk) - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn multiply_identity() {
        let w = MatMulWorkload::new(4, 1);
        let mut ident = vec![0.0f32; 16];
        for i in 0..4 {
            ident[i * 4 + i] = 1.0;
        }
        let a: Vec<f32> = (0..16).map(|v| v as f32).collect();
        assert_eq!(w.multiply(&a, &ident), a);
        assert_eq!(w.multiply(&ident, &a), a);
    }

    #[test]
    fn multiply_known_product() {
        let w = MatMulWorkload::new(2, 1);
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(w.multiply(&a, &b), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn shape_validated() {
        let w = MatMulWorkload::new(4, 1);
        let _ = w.multiply(&[0.0; 15], &[0.0; 16]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_dimension_rejected() {
        let _ = MatMulWorkload::new(0, 1);
    }
}
