//! The TCP transmission benchmark (Figure 18d).
//!
//! "We deploy FPGAs on two servers and connect them via the device network
//! interfaces. The FPGAs directly forward the host's TCP traffic, measuring
//! end-to-end throughput and latency with varying packet sizes." The model
//! composes the path host-A → DMA → FPGA-A → wire → FPGA-B → DMA → host-B
//! with TCP header overhead.

use harmonia_sim::Picos;

/// TCP/IP/Ethernet header bytes per segment (Eth 14 + IP 20 + TCP 20 +
/// FCS 4).
pub const HEADER_BYTES: u32 = 58;

/// End-to-end TCP benchmark between two FPGA-equipped servers.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TcpWorkload {
    /// Network line rate between the FPGAs, Gbps.
    pub link_gbps: u32,
    /// Host link (DMA) bandwidth each side, GB/s.
    pub host_gbs: f64,
    /// Fixed per-side host-stack latency, ps.
    pub host_stack_ps: Picos,
    /// Fixed per-FPGA forwarding latency, ps.
    pub fpga_forward_ps: Picos,
}

impl TcpWorkload {
    /// The evaluation setup: 100G link, Gen4×8-class hosts.
    pub fn paper() -> Self {
        TcpWorkload {
            link_gbps: 100,
            host_gbs: 13.0,
            host_stack_ps: 8_000_000,  // 8 µs per host stack traversal
            fpga_forward_ps: 1_200_000, // 1.2 µs store-and-forward + pipeline
        }
    }

    /// Goodput in Gbps for a given payload size per segment.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` is zero.
    pub fn goodput_gbps(&self, payload_bytes: u32) -> f64 {
        assert!(payload_bytes > 0, "empty TCP segments");
        let frame = payload_bytes + HEADER_BYTES;
        let wire_eff = f64::from(payload_bytes) / f64::from(frame + 20); // + preamble/IFG
        let wire_gbps = f64::from(self.link_gbps) * wire_eff;
        // The host side must also carry the traffic (bytes/s → bits/s).
        let host_gbps = self.host_gbs * 8.0 * f64::from(payload_bytes) / f64::from(frame);
        wire_gbps.min(host_gbps)
    }

    /// One-way end-to-end latency for a segment, ps.
    pub fn latency_ps(&self, payload_bytes: u32) -> Picos {
        let frame = u64::from(payload_bytes + HEADER_BYTES);
        let wire_ps = frame * 8 * 1000 / u64::from(self.link_gbps);
        let dma_ps = (frame as f64 / self.host_gbs * 1e3) as Picos;
        2 * self.host_stack_ps + 2 * self.fpga_forward_ps + wire_ps + 2 * dma_ps
    }

    /// The packet sizes of Figure 18d.
    pub const PACKET_SIZES: [u32; 3] = [64, 512, 1500];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_packet_size() {
        let w = TcpWorkload::paper();
        let t64 = w.goodput_gbps(64);
        let t512 = w.goodput_gbps(512);
        let t1500 = w.goodput_gbps(1500);
        assert!(t64 < t512 && t512 < t1500);
        // Large segments approach the wire limit but never exceed it.
        assert!(t1500 > 80.0 && t1500 < 100.0);
    }

    #[test]
    fn latency_grows_with_packet_size() {
        let w = TcpWorkload::paper();
        assert!(w.latency_ps(1500) > w.latency_ps(64));
        // Dominated by host stacks: ~16 µs floor, tens of µs total.
        let us = w.latency_ps(64) as f64 / 1e6;
        assert!((16.0..40.0).contains(&us), "latency {us:.1} µs");
    }

    #[test]
    fn small_segments_are_header_bound() {
        let w = TcpWorkload::paper();
        // 64 B payload in a 142 B wire frame: goodput well under half rate.
        assert!(w.goodput_gbps(64) < 50.0);
    }

    #[test]
    fn faster_links_help_until_host_bound() {
        let mut w = TcpWorkload::paper();
        let base = w.goodput_gbps(1500);
        w.link_gbps = 400;
        let faster = w.goodput_gbps(1500);
        // Host DMA (13 GB/s ≈ 104 Gbps) becomes the ceiling.
        assert!(faster > base);
        assert!(faster <= 13.0 * 8.0);
    }

    #[test]
    #[should_panic(expected = "empty TCP")]
    fn zero_payload_rejected() {
        let _ = TcpWorkload::paper().goodput_gbps(0);
    }
}
