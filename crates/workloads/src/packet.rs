//! Packet-stream generation.

use harmonia_testkit::DetRng;

/// A generated packet: header fields plus frame size.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WorkloadPacket {
    /// Destination MAC address.
    pub dst_mac: u64,
    /// IPv4 source.
    pub src_ip: u32,
    /// IPv4 destination.
    pub dst_ip: u32,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// IP protocol (6 = TCP).
    pub proto: u8,
    /// Frame size in bytes.
    pub bytes: u32,
}

/// Deterministic packet generator.
///
/// ```
/// use harmonia_workloads::PacketGen;
/// let mut g = PacketGen::new(7, 0x02_00_00_00_00_01);
/// let pkts = g.fixed_size(64, 10);
/// assert_eq!(pkts.len(), 10);
/// assert!(pkts.iter().all(|p| p.bytes == 64));
/// ```
#[derive(Debug)]
pub struct PacketGen {
    rng: DetRng,
    local_mac: u64,
    flows: u32,
}

impl PacketGen {
    /// Creates a generator targeting `local_mac` with 256 active flows.
    pub fn new(seed: u64, local_mac: u64) -> Self {
        PacketGen {
            rng: DetRng::new(seed),
            local_mac,
            flows: 256,
        }
    }

    /// Sets the number of distinct flows generated.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero.
    pub fn with_flows(mut self, flows: u32) -> Self {
        assert!(flows > 0, "need at least one flow");
        self.flows = flows;
        self
    }

    fn packet(&mut self, bytes: u32) -> WorkloadPacket {
        let flow = self.rng.gen_range(0..self.flows);
        WorkloadPacket {
            dst_mac: self.local_mac,
            src_ip: 0x0A00_0000 | flow,
            dst_ip: 0x0A01_0001,
            src_port: 1024 + (flow % 60_000) as u16,
            dst_port: 443,
            proto: 6,
            bytes,
        }
    }

    /// Generates `count` packets of one frame size.
    pub fn fixed_size(&mut self, bytes: u32, count: usize) -> Vec<WorkloadPacket> {
        (0..count).map(|_| self.packet(bytes)).collect()
    }

    /// Generates an IMIX-like mix (7:4:1 of 64/576/1500 B).
    pub fn imix(&mut self, count: usize) -> Vec<WorkloadPacket> {
        (0..count)
            .map(|_| {
                let r = self.rng.gen_range(0u32..12);
                let bytes = if r < 7 {
                    64
                } else if r < 11 {
                    576
                } else {
                    1500
                };
                self.packet(bytes)
            })
            .collect()
    }

    /// Generates packets where a fraction `foreign` carry a non-local
    /// destination MAC (exercising the packet filter).
    pub fn with_foreign_traffic(
        &mut self,
        bytes: u32,
        count: usize,
        foreign: f64,
    ) -> Vec<WorkloadPacket> {
        (0..count)
            .map(|_| {
                let mut p = self.packet(bytes);
                if self.rng.gen_bool(foreign) {
                    p.dst_mac = 0x02_FF_FF_00_00_01;
                }
                p
            })
            .collect()
    }

    /// Generates packets whose flows follow a Zipf(s) popularity law —
    /// the skewed distribution real load balancers face (a few elephant
    /// flows, a long mice tail).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not positive.
    pub fn zipf(&mut self, s: f64, bytes: u32, count: usize) -> Vec<WorkloadPacket> {
        assert!(s > 0.0, "zipf exponent must be positive");
        // Precompute the CDF over the flow universe.
        let n = self.flows as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        (0..count)
            .map(|_| {
                let u = self.rng.gen_range(0.0..total);
                let flow = cdf.partition_point(|&c| c < u) as u32;
                let mut p = self.packet(bytes);
                p.src_ip = 0x0A00_0000 | flow;
                p.src_port = 1024 + (flow % 60_000) as u16;
                p
            })
            .collect()
    }

    /// Generates on/off bursty traffic: bursts of `burst_len` back-to-back
    /// packets separated by idle gaps, returned as `(gap_slots, packet)`
    /// pairs where `gap_slots` is the idle time preceding the packet in
    /// transmission-slot units.
    pub fn bursty(
        &mut self,
        bytes: u32,
        burst_len: usize,
        mean_gap_slots: u32,
        count: usize,
    ) -> Vec<(u32, WorkloadPacket)> {
        assert!(burst_len > 0, "bursts must contain packets");
        let mut out = Vec::with_capacity(count);
        let mut in_burst = 0usize;
        for _ in 0..count {
            let gap = if in_burst == 0 && mean_gap_slots > 0 {
                self.rng.gen_range(0..=2 * mean_gap_slots)
            } else {
                0
            };
            out.push((gap, self.packet(bytes)));
            in_burst = (in_burst + 1) % burst_len;
        }
        out
    }

    /// The frame sizes the paper sweeps in Figures 10a and 17.
    pub const FRAME_SIZES: [u32; 5] = [64, 128, 256, 512, 1024];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = PacketGen::new(1, 1).fixed_size(64, 50);
        let b = PacketGen::new(1, 1).fixed_size(64, 50);
        assert_eq!(a, b);
        let c = PacketGen::new(2, 1).fixed_size(64, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn imix_mixes_sizes() {
        let pkts = PacketGen::new(3, 1).imix(1200);
        let small = pkts.iter().filter(|p| p.bytes == 64).count();
        let large = pkts.iter().filter(|p| p.bytes == 1500).count();
        assert!(small > large);
        assert!(large > 0);
    }

    #[test]
    fn foreign_fraction_respected() {
        let local = 0x02_00_00_00_00_01;
        let pkts = PacketGen::new(4, local).with_foreign_traffic(64, 2000, 0.25);
        let foreign = pkts.iter().filter(|p| p.dst_mac != local).count();
        assert!((300..700).contains(&foreign), "foreign = {foreign}");
    }

    #[test]
    fn flow_count_bounds_sources() {
        let pkts = PacketGen::new(5, 1).with_flows(4).fixed_size(64, 500);
        let mut ips: Vec<u32> = pkts.iter().map(|p| p.src_ip).collect();
        ips.sort_unstable();
        ips.dedup();
        assert!(ips.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn zero_flows_rejected() {
        let _ = PacketGen::new(0, 1).with_flows(0);
    }

    #[test]
    fn zipf_concentrates_on_head_flows() {
        let mut g = PacketGen::new(11, 1).with_flows(1000);
        let pkts = g.zipf(1.1, 64, 20_000);
        // Count traffic of the single most popular flow.
        let mut counts = std::collections::HashMap::new();
        for p in &pkts {
            *counts.entry(p.src_ip).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let uniform_share = 20_000 / 1000;
        assert!(
            max > 20 * uniform_share,
            "head flow got {max}, uniform would be {uniform_share}"
        );
        // But the tail still exists.
        assert!(counts.len() > 300, "only {} flows seen", counts.len());
    }

    #[test]
    fn zipf_is_deterministic() {
        let a = PacketGen::new(5, 1).with_flows(100).zipf(1.0, 64, 500);
        let b = PacketGen::new(5, 1).with_flows(100).zipf(1.0, 64, 500);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn zipf_rejects_nonpositive_exponent() {
        let _ = PacketGen::new(1, 1).zipf(0.0, 64, 10);
    }

    #[test]
    fn bursts_have_gaps_only_at_boundaries() {
        let mut g = PacketGen::new(6, 1);
        let stream = g.bursty(64, 8, 50, 80);
        for (i, (gap, _)) in stream.iter().enumerate() {
            if i % 8 != 0 {
                assert_eq!(*gap, 0, "gap inside a burst at {i}");
            }
        }
        // At least some inter-burst gaps are non-zero.
        let gaps: u32 = stream.iter().map(|(g, _)| *g).sum();
        assert!(gaps > 0);
    }
}
