//! Workload generators for the Harmonia evaluation.
//!
//! Deterministic (seeded) generators for every traffic type the paper's
//! benchmarks exercise:
//!
//! * [`packet`] — network packet streams (fixed-size sweeps, IMIX, flow
//!   mixes) for the BITW applications and MAC micro-benchmarks;
//! * [`memtrace`] — memory traces (sequential / fixed / random, read /
//!   write) for the DDR/HBM micro-benchmarks;
//! * [`matmul`] — the 64×64 single-precision matrix-multiplication compute
//!   benchmark (Figure 18b);
//! * [`vectordb`] — the vector-database access benchmark (Figure 18c);
//! * [`tcp`] — the TCP transmission benchmark (Figure 18d).

pub mod matmul;
pub mod memtrace;
pub mod packet;
pub mod tcp;
pub mod vectordb;

pub use matmul::MatMulWorkload;
pub use memtrace::{AccessPattern, MemTraceGen};
pub use packet::{PacketGen, WorkloadPacket};
pub use tcp::TcpWorkload;
pub use vectordb::{AccessMode, VectorDbWorkload};
