//! The vector-database access benchmark (Figure 18c).
//!
//! "We deploy a vector database on external memory and sequentially,
//! fixedly, and randomly read and write 32-bit vectors to measure the
//! number of vectors processed per second." Each vector access touches one
//! DRAM burst; vectors/second is therefore bounded by the memory system's
//! behaviour under the chosen access mode — which is what the benchmark is
//! designed to expose.

use harmonia_hw::ip::dram::MemOp;
use harmonia_testkit::DetRng;

/// The access modes of Figure 18c.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Uniform random vector indices.
    Random,
    /// A fixed small set of hot vectors.
    Fixed,
    /// Ascending vector indices.
    Sequential,
}

impl AccessMode {
    /// Reporting order used by the figure.
    pub const ALL: [AccessMode; 3] = [AccessMode::Random, AccessMode::Fixed, AccessMode::Sequential];
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccessMode::Random => "random",
            AccessMode::Fixed => "fixed",
            AccessMode::Sequential => "sequential",
        };
        f.write_str(s)
    }
}

/// The vector-database workload.
#[derive(Debug)]
pub struct VectorDbWorkload {
    rng: DetRng,
    /// Number of vectors in the database.
    vectors: u64,
    /// Bytes fetched per vector access (one DRAM burst).
    access_bytes: u32,
    /// Hot-set size for the fixed mode.
    hot_vectors: u64,
}

impl VectorDbWorkload {
    /// Creates a database of `vectors` 32-bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is zero.
    pub fn new(seed: u64, vectors: u64) -> Self {
        assert!(vectors > 0, "empty database");
        VectorDbWorkload {
            rng: DetRng::new(seed),
            vectors,
            access_bytes: 64,
            hot_vectors: 1024.min(vectors),
        }
    }

    /// Database size in vectors.
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Bytes per vector access.
    pub fn access_bytes(&self) -> u32 {
        self.access_bytes
    }

    /// Generates `count` accesses in a mode; `write_ratio` in `[0,1]`
    /// selects the read/write mix.
    ///
    /// # Panics
    ///
    /// Panics if `write_ratio` is outside `[0, 1]`.
    pub fn accesses(&mut self, mode: AccessMode, write_ratio: f64, count: usize) -> Vec<MemOp> {
        assert!(
            (0.0..=1.0).contains(&write_ratio),
            "write ratio must be a fraction"
        );
        let stride = u64::from(self.access_bytes);
        (0..count as u64)
            .map(|i| {
                let index = match mode {
                    AccessMode::Sequential => i % self.vectors,
                    AccessMode::Fixed => i % self.hot_vectors,
                    AccessMode::Random => self.rng.gen_range(0..self.vectors),
                };
                let addr = index * stride;
                if self.rng.gen_bool(write_ratio) {
                    MemOp::write(addr, self.access_bytes)
                } else {
                    MemOp::read(addr, self.access_bytes)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_walks_the_database() {
        let mut db = VectorDbWorkload::new(1, 1000);
        let ops = db.accesses(AccessMode::Sequential, 0.0, 100);
        assert_eq!(ops[0].addr, 0);
        assert_eq!(ops[99].addr, 99 * 64);
    }

    #[test]
    fn fixed_mode_stays_hot() {
        let mut db = VectorDbWorkload::new(1, 1_000_000);
        let ops = db.accesses(AccessMode::Fixed, 0.0, 10_000);
        assert!(ops.iter().all(|o| o.addr < 1024 * 64));
    }

    #[test]
    fn random_mode_covers_the_footprint() {
        let mut db = VectorDbWorkload::new(1, 1_000_000);
        let ops = db.accesses(AccessMode::Random, 0.0, 10_000);
        let far = ops.iter().filter(|o| o.addr > 500_000 * 64).count();
        assert!(far > 3_000);
    }

    #[test]
    fn write_ratio_mixes() {
        let mut db = VectorDbWorkload::new(1, 1000);
        let ops = db.accesses(AccessMode::Sequential, 0.5, 10_000);
        let writes = ops.iter().filter(|o| o.is_write).count();
        assert!((4_000..6_000).contains(&writes));
        let pure = db.accesses(AccessMode::Sequential, 1.0, 100);
        assert!(pure.iter().all(|o| o.is_write));
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn zero_vectors_rejected() {
        let _ = VectorDbWorkload::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_write_ratio_rejected() {
        let mut db = VectorDbWorkload::new(1, 10);
        let _ = db.accesses(AccessMode::Random, 1.5, 1);
    }
}
