//! Framework kernel-performance factors (Figures 18b–d).
//!
//! §5.4's conclusion is *comparability*: none of the frameworks adds
//! datapath overhead to compute units, memory interfaces or network
//! pipelines, so throughput matches within measurement noise and only
//! small constant latency deltas exist (interconnect hops, runtime
//! scheduling). These factors encode those small deltas.

use crate::baseline::Framework;
use harmonia_sim::{Freq, Picos};

/// Per-framework performance factors.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PerfFactors {
    /// Kernel clock the framework's flow typically closes timing at.
    pub kernel_clock: Freq,
    /// Multiplicative throughput efficiency (≈1.0 for all).
    pub throughput_factor: f64,
    /// Additive datapath latency from framework plumbing, ps.
    pub extra_latency_ps: Picos,
}

impl PerfFactors {
    /// The factors for a framework.
    pub fn of(framework: Framework) -> PerfFactors {
        match framework {
            Framework::Vitis => PerfFactors {
                kernel_clock: Freq::mhz(300),
                throughput_factor: 1.00,
                extra_latency_ps: 90_000, // AXI interconnect hops
            },
            Framework::OneApi => PerfFactors {
                kernel_clock: Freq::mhz(480),
                throughput_factor: 0.99,
                extra_latency_ps: 70_000,
            },
            Framework::Coyote => PerfFactors {
                kernel_clock: Freq::mhz(250),
                throughput_factor: 1.00,
                extra_latency_ps: 60_000,
            },
            Framework::Harmonia => PerfFactors {
                kernel_clock: Freq::mhz(300),
                throughput_factor: 1.00,
                extra_latency_ps: 12_400, // 4-cycle wrapper at 322 MHz
            },
        }
    }

    /// Applies the factors to a raw throughput figure.
    pub fn throughput(&self, raw: f64) -> f64 {
        raw * self.throughput_factor
    }

    /// Applies the factors to a raw latency figure.
    pub fn latency_ps(&self, raw: Picos) -> Picos {
        raw + self.extra_latency_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_frameworks_within_a_few_percent() {
        let t: Vec<f64> = Framework::ALL
            .iter()
            .map(|&f| PerfFactors::of(f).throughput(100.0))
            .collect();
        let min = t.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = t.iter().cloned().fold(0.0, f64::max);
        assert!((max - min) / max < 0.02, "spread too wide: {t:?}");
    }

    #[test]
    fn harmonia_latency_overhead_is_nanoseconds() {
        let h = PerfFactors::of(Framework::Harmonia);
        assert!(h.extra_latency_ps < 20_000);
        // Negligible against a 5 µs application path (<1 %, §5.3).
        let app: Picos = 5_000_000;
        let ratio = h.extra_latency_ps as f64 / app as f64;
        assert!(ratio < 0.01);
    }

    #[test]
    fn latency_is_additive() {
        let v = PerfFactors::of(Framework::Vitis);
        assert_eq!(v.latency_ps(1_000_000), 1_090_000);
    }
}
