//! Baseline shell resource footprints (Figure 18a).
//!
//! Commercial and open-source shells are monolithic: one static region
//! carries every service whether or not the application uses it, plus the
//! framework's own runtime plumbing (XRT/OFS/Coyote services). This model
//! derives each baseline's footprint from Harmonia's *unified* shell for
//! the same device — which carries the same functional modules — plus a
//! framework-specific monolithic overhead, while Harmonia itself deploys
//! the *tailored* shell. The 3.5–14.9 % saving of Figure 18a is then the
//! tailoring win plus the avoided runtime plumbing.

use crate::baseline::Framework;
use harmonia_hw::device::FpgaDevice;
use harmonia_hw::resource::ResourceUsage;
use harmonia_shell::{RoleSpec, TailorError, TailoredShell, UnifiedShell};

/// Monolithic-runtime overhead factors per framework, in percent of the
/// functional shell (static-region plumbing, built-in interconnect,
/// mandatory profiling/debug infrastructure).
fn monolith_overhead_percent(framework: Framework) -> u64 {
    match framework {
        Framework::Vitis => 9,  // XRT static region + profiling monitors
        Framework::OneApi => 7, // OFS FIM services
        Framework::Coyote => 4, // lean research shell, but undropable services
        Framework::Harmonia => 0,
    }
}

/// The shell resources a framework spends on a device for a given role.
///
/// # Errors
///
/// Returns the tailoring error when the role cannot be deployed at all
/// (Harmonia path), or `Ok(None)` when the baseline simply does not support
/// the device (Table 3).
pub fn baseline_shell_resources(
    framework: Framework,
    device: &FpgaDevice,
    role: &RoleSpec,
) -> Result<Option<ResourceUsage>, TailorError> {
    if !framework.supports(device) {
        return Ok(None);
    }
    let unified = UnifiedShell::for_device(device);
    let usage = match framework {
        Framework::Harmonia => TailoredShell::tailor(&unified, role)?.resources(),
        baseline => {
            let base = unified.resources();
            let pct = monolith_overhead_percent(baseline);
            ResourceUsage::new(
                base.lut * (100 + pct) / 100,
                base.reg * (100 + pct) / 100,
                base.bram * (100 + pct) / 100,
                base.uram,
                base.dsp,
            )
        }
    };
    Ok(Some(usage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::ResourceKind;
    use harmonia_shell::MemoryDemand;

    fn bench_role() -> RoleSpec {
        RoleSpec::builder("benchmark")
            .network_gbps(100)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .build()
    }

    #[test]
    fn harmonia_saves_in_fig18a_band_vs_vitis_and_coyote() {
        let dev = catalog::device_a();
        let role = bench_role();
        let h = baseline_shell_resources(Framework::Harmonia, &dev, &role)
            .unwrap()
            .unwrap();
        for f in [Framework::Vitis, Framework::Coyote] {
            let b = baseline_shell_resources(f, &dev, &role).unwrap().unwrap();
            let saving = 100.0 * (1.0 - h.lut as f64 / b.lut as f64);
            assert!(
                (3.5..=35.0).contains(&saving),
                "{f}: saving {saving:.1}% out of band"
            );
        }
    }

    #[test]
    fn harmonia_saves_vs_oneapi_on_device_d() {
        let dev = catalog::device_d();
        let role = bench_role();
        let h = baseline_shell_resources(Framework::Harmonia, &dev, &role)
            .unwrap()
            .unwrap();
        let o = baseline_shell_resources(Framework::OneApi, &dev, &role)
            .unwrap()
            .unwrap();
        for kind in [ResourceKind::Lut, ResourceKind::Reg, ResourceKind::Bram] {
            assert!(
                h.get(kind) < o.get(kind),
                "{kind}: harmonia {} >= oneAPI {}",
                h.get(kind),
                o.get(kind)
            );
        }
    }

    #[test]
    fn unsupported_devices_yield_none() {
        let role = bench_role();
        assert_eq!(
            baseline_shell_resources(Framework::Vitis, &catalog::device_d(), &role).unwrap(),
            None
        );
        assert_eq!(
            baseline_shell_resources(Framework::OneApi, &catalog::device_b(), &role).unwrap(),
            None
        );
    }

    #[test]
    fn tailoring_failure_propagates() {
        let role = RoleSpec::builder("x")
            .memory(MemoryDemand::Hbm)
            .build();
        let err = baseline_shell_resources(Framework::Harmonia, &catalog::device_c(), &role);
        assert!(err.is_err());
    }
}
