//! Framework identities, capability classes (Table 1) and device support
//! (Table 3).

use harmonia_hw::device::FpgaDevice;
use harmonia_hw::Vendor;
use std::fmt;

/// The frameworks compared in §5.4.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Framework {
    /// Xilinx Vitis (commercial).
    Vitis,
    /// Intel oneAPI / OFS (commercial).
    OneApi,
    /// Coyote (open-source FPGA OS).
    Coyote,
    /// This paper's framework.
    Harmonia,
}

impl Framework {
    /// All frameworks, in the paper's comparison order.
    pub const ALL: [Framework; 4] = [
        Framework::Vitis,
        Framework::OneApi,
        Framework::Coyote,
        Framework::Harmonia,
    ];

    /// The baselines (everything but Harmonia).
    pub const BASELINES: [Framework; 3] =
        [Framework::Vitis, Framework::OneApi, Framework::Coyote];

    /// Whether the framework supports a device (Table 3): Vitis covers
    /// Xilinx parts, Coyote only Xilinx Alveo-class boards, oneAPI only
    /// Intel parts; none of them supports in-house custom boards, whose
    /// shells require redesign under their monolithic structure.
    pub fn supports(self, device: &FpgaDevice) -> bool {
        match self {
            Framework::Vitis => device.vendor() == Vendor::Xilinx,
            Framework::OneApi => device.vendor() == Vendor::Intel,
            Framework::Coyote => {
                device.vendor() == Vendor::Xilinx && device.die_vendor() == Vendor::Xilinx
            }
            Framework::Harmonia => true,
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Framework::Vitis => "Vitis",
            Framework::OneApi => "oneAPI",
            Framework::Coyote => "Coyote",
            Framework::Harmonia => "Harmonia",
        };
        f.write_str(s)
    }
}

/// A Table 1 capability level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Capability {
    /// Fully provided.
    Yes,
    /// Not provided.
    No,
    /// Provided but "requires laborious development workloads or ad-hoc
    /// modifications" on cross-vendor FPGAs (the table's △).
    Laborious,
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Capability::Yes => "yes",
            Capability::No => "no",
            Capability::Laborious => "laborious",
        };
        f.write_str(s)
    }
}

/// One framework class's row of Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CapabilityMatrix {
    /// Handles heterogeneous FPGAs at all.
    pub heterogeneity: Capability,
    /// Provides a unified shell across devices.
    pub unified_shell: Capability,
    /// Roles port with minimal modification.
    pub portable_role: Capability,
    /// Host interface consistent across devices.
    pub consistent_host_if: Capability,
}

impl CapabilityMatrix {
    /// The Table 1 row for a framework (classing Vitis/oneAPI as the
    /// commercial-framework row and Coyote as the FPGA-OS row).
    pub fn of(framework: Framework) -> CapabilityMatrix {
        use Capability::*;
        match framework {
            Framework::Vitis | Framework::OneApi => CapabilityMatrix {
                heterogeneity: Yes,
                unified_shell: Laborious,
                portable_role: Yes,
                consistent_host_if: Laborious,
            },
            Framework::Coyote => CapabilityMatrix {
                heterogeneity: Yes,
                unified_shell: Laborious,
                portable_role: Yes,
                consistent_host_if: Laborious,
            },
            Framework::Harmonia => CapabilityMatrix {
                heterogeneity: Yes,
                unified_shell: Yes,
                portable_role: Yes,
                consistent_host_if: Yes,
            },
        }
    }

    /// Whether every capability is fully provided.
    pub fn is_comprehensive(&self) -> bool {
        [
            self.heterogeneity,
            self.unified_shell,
            self.portable_role,
            self.consistent_host_if,
        ]
        .iter()
        .all(|c| *c == Capability::Yes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;

    #[test]
    fn table3_support_matrix() {
        let a = catalog::device_a(); // Xilinx
        let b = catalog::device_b(); // in-house (Xilinx die)
        let c = catalog::device_c(); // in-house (Intel die)
        let d = catalog::device_d(); // Intel

        assert!(Framework::Vitis.supports(&a));
        assert!(!Framework::Vitis.supports(&b)); // custom board
        assert!(!Framework::Vitis.supports(&d));

        assert!(Framework::OneApi.supports(&d));
        assert!(!Framework::OneApi.supports(&a));
        assert!(!Framework::OneApi.supports(&c)); // custom board

        assert!(Framework::Coyote.supports(&a));
        assert!(!Framework::Coyote.supports(&c));

        for dev in catalog::all() {
            assert!(Framework::Harmonia.supports(&dev), "{}", dev.name());
        }
    }

    #[test]
    fn only_harmonia_is_comprehensive() {
        for f in Framework::ALL {
            let m = CapabilityMatrix::of(f);
            assert_eq!(m.is_comprehensive(), f == Framework::Harmonia);
        }
    }

    #[test]
    fn every_baseline_misses_in_house_devices() {
        let b = catalog::device_b();
        let c = catalog::device_c();
        for f in Framework::BASELINES {
            assert!(!f.supports(&b) || !f.supports(&c));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Framework::OneApi.to_string(), "oneAPI");
        assert_eq!(Capability::Laborious.to_string(), "laborious");
    }
}
