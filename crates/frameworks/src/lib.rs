//! Baseline framework models for the comparative evaluation (§5.4).
//!
//! Models of the frameworks the paper compares against — Vitis, oneAPI/OFS
//! and Coyote — at the granularity the comparison needs: capability
//! classification (Table 1), device-support matrices (Table 3), monolithic
//! shell resource footprints (Figure 18a) and kernel-performance factors
//! (Figures 18b–d).

pub mod baseline;
pub mod perf;
pub mod shells;

pub use baseline::{Capability, CapabilityMatrix, Framework};
pub use perf::PerfFactors;
pub use shells::baseline_shell_resources;
