//! The [`FleetController`]: campaign loop, failure domains, rolling
//! upgrades, exact command accounting.
//!
//! A *campaign* runs a fleet for a simulated day (plus a drain phase):
//! each 5-minute tick routes the diurnal load across role replicas in
//! proportion to their real service capacity, consults each device's
//! PR 4 fault injector (`FaultKind::LinkDown` is the kill switch for a
//! card or a whole rack), drains and reschedules the work of dead or
//! upgrading devices through the migration cost matrix, and executes
//! queued commands against per-device service rates, recording every
//! command's latency.
//!
//! The accounting invariant is checked every tick: commands injected
//! equal commands executed plus commands still queued somewhere —
//! nothing is ever lost or double-executed, including across kills,
//! rack failures and upgrade waves.

use crate::catalog::{standard_catalog, RoleClass};
use crate::inventory::{device_speed, record_position_range, DeviceState, Inventory};
use crate::placement::{migration_matrix, place, Assignment, PlacementError, PlacementPolicy};
use crate::traffic::{DiurnalTraffic, TickLoad};
use harmonia_sim::metrics::{MetricsRegistry, Slo, SloObjective};
use harmonia_sim::{FaultInjector, FaultKind, FaultPlan, LogHistogram, Picos};
use std::collections::BTreeMap;

/// Ticks a replacement spare spends deploying before it serves.
pub const DEPLOY_TICKS: u32 = 2;

/// Ticks one rolling-upgrade wave keeps its devices out of service.
pub const UPGRADE_TICKS: u32 = 2;

/// Upper bound on post-traffic drain ticks before the campaign gives
/// up and reports the residual backlog as `pending`.
pub const MAX_DRAIN_TICKS: u32 = 2_000;

/// Campaign parameters: the fleet is a pure function of this value
/// plus the scheduled kill/upgrade events.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Simulated device count.
    pub devices: usize,
    /// Campaign seed (inventory shuffle, traffic jitter, random placement).
    pub seed: u64,
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Traffic ticks (default one day, [`crate::TICKS_PER_DAY`]).
    pub ticks: u32,
    /// Simulated users (default `devices ×` [`crate::USERS_PER_DEVICE`]).
    pub users: u64,
}

impl FleetSpec {
    /// A one-day campaign over `devices` cards with the derived
    /// default user population.
    pub fn new(devices: usize, seed: u64, policy: PlacementPolicy) -> FleetSpec {
        FleetSpec {
            devices,
            seed,
            policy,
            ticks: crate::TICKS_PER_DAY,
            users: devices as u64 * crate::USERS_PER_DEVICE,
        }
    }

    /// Builds a spec from the environment: device count from
    /// [`crate::FLEET_DEVICES_ENV`] (default
    /// [`crate::DEFAULT_FLEET_DEVICES`]), policy from
    /// [`crate::FLEET_POLICY_ENV`] (default best-fit), seed 42.
    pub fn from_env() -> FleetSpec {
        let devices = std::env::var(crate::FLEET_DEVICES_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(crate::DEFAULT_FLEET_DEVICES);
        FleetSpec::new(devices, 42, PlacementPolicy::from_env())
    }
}

/// Fleet bring-up failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The placement scheduler could not cover a role's peak demand.
    Placement(PlacementError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Placement(e) => write!(f, "placement failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<PlacementError> for FleetError {
    fn from(e: PlacementError) -> FleetError {
        FleetError::Placement(e)
    }
}

/// Exact command accounting over a campaign.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Commands injected by the traffic generator.
    pub injected: u64,
    /// Commands executed by devices.
    pub executed: u64,
    /// Commands moved between devices (kill drains, upgrade drains,
    /// orphan re-dispatch).
    pub migrated: u64,
    /// Commands still queued when the campaign ended.
    pub pending: u64,
}

impl Accounting {
    /// Whether the books balance exactly: every injected command was
    /// executed once or is still queued — none lost, none doubled.
    pub fn exact(&self) -> bool {
        self.injected == self.executed + self.pending
    }
}

/// Outcome of a scheduled rolling upgrade.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UpgradeReport {
    /// Shell version the fleet was driven to.
    pub target_version: u32,
    /// Waves executed.
    pub waves: u32,
    /// Devices upgraded.
    pub devices_upgraded: u32,
    /// Tick the last wave completed, `None` if the campaign ended first.
    pub completed_tick: Option<u32>,
}

/// Per-role campaign outcome.
#[derive(Clone, Debug)]
pub struct RoleReport {
    /// Role name.
    pub name: &'static str,
    /// Replicas holding the role when the campaign ended.
    pub replicas: usize,
    /// Commands executed by those replicas.
    pub executed: u64,
    /// Role command-latency histogram (merged over replicas).
    pub latency: LogHistogram,
}

/// The campaign result: accounting, latency, faults, upgrade outcome.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Placement policy name.
    pub policy: &'static str,
    /// Device count.
    pub devices: usize,
    /// Rack count.
    pub racks: u32,
    /// Simulated users.
    pub users: u64,
    /// Traffic ticks.
    pub traffic_ticks: u32,
    /// Total ticks run, including the drain phase.
    pub total_ticks: u32,
    /// Replicas placed (fleet-wide).
    pub replicas: usize,
    /// Unassigned spares left after placement.
    pub spares: usize,
    /// The exact command accounting.
    pub accounting: Accounting,
    /// Fleet-wide command-latency histogram.
    pub fleet_latency: LogHistogram,
    /// Per-role outcomes, catalog order.
    pub roles: Vec<RoleReport>,
    /// Device kills injected (rack kills count each device).
    pub kills: u32,
    /// Tick of the first injected fault, if any.
    pub first_fault_tick: Option<u32>,
    /// Ticks at/after the first fault that ended with aged backlog —
    /// the rebalance latency after failure.
    pub rebalance_ticks: u32,
    /// All ticks that ended with aged backlog (work older than one tick).
    pub congested_ticks: u32,
    /// Rolling-upgrade outcome, if one was scheduled.
    pub upgrade: Option<UpgradeReport>,
}

impl CampaignReport {
    /// Renders the campaign as deterministic text: integer math end to
    /// end, byte-identical across the `{cycle,event}×{1,4}-thread`
    /// matrix (pinned by tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet campaign: policy={} devices={} racks={} users={} ticks={}+{}\n",
            self.policy,
            self.devices,
            self.racks,
            self.users,
            self.traffic_ticks,
            self.total_ticks - self.traffic_ticks,
        ));
        out.push_str(&format!(
            "placement: {} replicas over {} roles, {} spares\n",
            self.replicas,
            self.roles.len(),
            self.spares,
        ));
        out.push_str(&format!(
            "accounting: injected={} executed={} migrated={} pending={} exact={}\n",
            self.accounting.injected,
            self.accounting.executed,
            self.accounting.migrated,
            self.accounting.pending,
            if self.accounting.exact() { "yes" } else { "NO" },
        ));
        out.push_str(&format!(
            "latency: p50={} p99={} max={} ps\n",
            self.fleet_latency.p50(),
            self.fleet_latency.p99(),
            self.fleet_latency.max(),
        ));
        for r in &self.roles {
            out.push_str(&format!(
                "role {}: replicas={} executed={} p50={} p99={} ps\n",
                r.name,
                r.replicas,
                r.executed,
                r.latency.p50(),
                r.latency.p99(),
            ));
        }
        match self.first_fault_tick {
            Some(t) => out.push_str(&format!(
                "faults: {} kill(s), first at tick {}, rebalance_ticks={}\n",
                self.kills, t, self.rebalance_ticks
            )),
            None => out.push_str("faults: none\n"),
        }
        match &self.upgrade {
            Some(u) => out.push_str(&format!(
                "upgrade: v{} over {} wave(s), {} device(s), completed_tick={}\n",
                u.target_version,
                u.waves,
                u.devices_upgraded,
                u.completed_tick.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            )),
            None => out.push_str("upgrade: none\n"),
        }
        out.push_str(&format!("congested_ticks={}\n", self.congested_ticks));
        out
    }

    /// Publishes the campaign into a metrics registry as
    /// `harmonia_fleet_*` counters, gauges and histograms.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        registry.gauge_set("harmonia_fleet_devices", &[], self.devices as u64);
        registry.gauge_set("harmonia_fleet_racks", &[], u64::from(self.racks));
        registry.gauge_set("harmonia_fleet_users", &[], self.users);
        registry.gauge_set("harmonia_fleet_replicas", &[], self.replicas as u64);
        registry.gauge_set("harmonia_fleet_spares", &[], self.spares as u64);
        registry.counter_add("harmonia_fleet_cmds_injected", &[], self.accounting.injected);
        registry.counter_add("harmonia_fleet_cmds_executed", &[], self.accounting.executed);
        registry.counter_add("harmonia_fleet_cmds_migrated", &[], self.accounting.migrated);
        registry.gauge_set("harmonia_fleet_cmds_pending", &[], self.accounting.pending);
        registry.counter_add("harmonia_fleet_kills", &[], u64::from(self.kills));
        registry.gauge_set(
            "harmonia_fleet_rebalance_ticks",
            &[],
            u64::from(self.rebalance_ticks),
        );
        registry.gauge_set(
            "harmonia_fleet_congested_ticks",
            &[],
            u64::from(self.congested_ticks),
        );
        registry.observe_histogram("harmonia_fleet_latency_ps", &[], &self.fleet_latency);
        for r in &self.roles {
            registry.gauge_set("harmonia_fleet_role_replicas", &[("role", r.name)], r.replicas as u64);
            registry.counter_add("harmonia_fleet_role_cmds", &[("role", r.name)], r.executed);
            registry.observe_histogram(
                "harmonia_fleet_role_latency_ps",
                &[("role", r.name)],
                &r.latency,
            );
        }
        if let Some(u) = &self.upgrade {
            registry.counter_add("harmonia_fleet_upgraded_devices", &[], u64::from(u.devices_upgraded));
        }
    }
}

/// The fleet-level service objectives the operator's handbook grades a
/// campaign against (see `OPERATIONS.md`): the fleet p99 must fit
/// inside one control tick, and no more than 5 % of commands may need
/// migration.
pub fn fleet_slos() -> Vec<Slo> {
    vec![
        Slo {
            name: "fleet-p99-within-tick",
            objective: SloObjective::PercentileMaxPs {
                histogram: "harmonia_fleet_latency_ps",
                percentile: 99.0,
                max_ps: crate::TICK_PS,
            },
        },
        Slo {
            name: "fleet-migration-ratio",
            objective: SloObjective::RatioMaxPpm {
                numerator: "harmonia_fleet_cmds_migrated",
                denominator: "harmonia_fleet_cmds_injected",
                max_ppm: 50_000,
            },
        },
    ]
}

#[derive(Clone, Debug)]
struct UpgradePlan {
    start_tick: u32,
    target_version: u32,
    wave_size: usize,
    waves: u32,
    upgraded: u32,
    completed_tick: Option<u32>,
}

/// The cluster control plane over one simulated fleet.
///
/// Construct with [`FleetController::new`], schedule faults and
/// upgrades, then [`FleetController::run`] the campaign to completion.
pub struct FleetController {
    spec: FleetSpec,
    roles: Vec<RoleClass>,
    inventory: Inventory,
    assignments: Vec<Assignment>,
    role_members: Vec<Vec<u32>>,
    schedule: Vec<TickLoad>,
    fault_events: BTreeMap<u32, Vec<(Picos, FaultKind)>>,
    injectors: Vec<FaultInjector>,
    upgrade: Option<UpgradePlan>,
    orphaned: Vec<(usize, u32, u64)>,
    acc: Accounting,
    kills: u32,
    first_fault_tick: Option<u32>,
    rebalance_ticks: u32,
    congested_ticks: u32,
}

impl FleetController {
    /// Builds the fleet: samples the inventory, generates the day's
    /// traffic schedule (through the ordered pool), and places every
    /// role under the spec's policy.
    pub fn new(spec: FleetSpec) -> Result<FleetController, FleetError> {
        let roles = standard_catalog();
        let inventory = Inventory::sample(spec.devices, spec.seed);
        let traffic = DiurnalTraffic::new(spec.users, spec.seed);
        let schedule = traffic.schedule(spec.ticks, &roles);
        let peaks = DiurnalTraffic::peak_per_role(&schedule, &roles);
        let assignments = place(spec.policy, &inventory, &roles, &peaks, spec.seed)?;
        let mut inventory = inventory;
        let mut role_members = vec![Vec::new(); roles.len()];
        for a in &assignments {
            inventory.devices[a.device as usize].role = Some(a.role);
            role_members[a.role].push(a.device);
        }
        let injectors = vec![FaultInjector::none(); spec.devices];
        Ok(FleetController {
            spec,
            roles,
            inventory,
            assignments,
            role_members,
            schedule,
            fault_events: BTreeMap::new(),
            injectors,
            upgrade: None,
            orphaned: Vec::new(),
            acc: Accounting::default(),
            kills: 0,
            first_fault_tick: None,
            rebalance_ticks: 0,
            congested_ticks: 0,
        })
    }

    /// The placement decided at bring-up, `(role, device)`-ordered.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The role catalog this fleet serves.
    pub fn roles(&self) -> &[RoleClass] {
        &self.roles
    }

    /// The inventory (for inspection; mutated by [`FleetController::run`]).
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// Schedules a link-down kill of one device at `tick` — the PR 4
    /// fault plane's `LinkDown` wired to this device's injector.
    pub fn kill_device(&mut self, device: u32, tick: u32) {
        self.push_fault(device, tick, FaultKind::LinkDown);
        self.kills += 1;
        self.first_fault_tick =
            Some(self.first_fault_tick.map_or(tick, |t| t.min(tick)));
    }

    /// Schedules a link restore of one device at `tick`.
    pub fn restore_device(&mut self, device: u32, tick: u32) {
        self.push_fault(device, tick, FaultKind::LinkUp);
    }

    /// Kills every device in a rack at `tick` — a whole failure domain
    /// going dark at once.
    pub fn kill_rack(&mut self, rack: u32, tick: u32) {
        let victims: Vec<u32> = self
            .inventory
            .devices
            .iter()
            .filter(|d| d.rack == rack)
            .map(|d| d.index)
            .collect();
        for v in victims {
            self.kill_device(v, tick);
        }
    }

    /// Schedules a rolling shell upgrade: from `start_tick`, waves of
    /// `wave_size` devices drain their work, go dark for
    /// [`UPGRADE_TICKS`], and come back on `target_version`.
    pub fn schedule_upgrade(&mut self, start_tick: u32, target_version: u32, wave_size: usize) {
        self.upgrade = Some(UpgradePlan {
            start_tick,
            target_version,
            wave_size: wave_size.max(1),
            waves: 0,
            upgraded: 0,
            completed_tick: None,
        });
    }

    fn push_fault(&mut self, device: u32, tick: u32, kind: FaultKind) {
        self.fault_events
            .entry(device)
            .or_default()
            .push((Picos::from(tick) * crate::TICK_PS, kind));
    }

    /// Runs the campaign: the traffic ticks, then a drain phase until
    /// every queue is empty (bounded by [`MAX_DRAIN_TICKS`]).
    pub fn run(&mut self) -> CampaignReport {
        // Arm the per-device injectors from the scheduled fault events.
        for (&device, events) in &self.fault_events {
            let mut sorted = events.clone();
            sorted.sort_by_key(|&(at, _)| at);
            let mut plan = FaultPlan::new();
            for (at, kind) in sorted {
                plan = plan.at(at, kind);
            }
            self.injectors[device as usize] = plan.injector();
        }
        let mut t: u32 = 0;
        loop {
            let draining = t >= self.spec.ticks;
            let upgrading = self
                .upgrade
                .as_ref()
                .map(|u| u.completed_tick.is_none())
                .unwrap_or(false);
            if draining && self.acc.pending == 0 && !upgrading {
                break;
            }
            if t >= self.spec.ticks + MAX_DRAIN_TICKS {
                break;
            }
            self.step(t, draining);
            t += 1;
        }
        self.report(t)
    }

    /// One control tick.
    fn step(&mut self, t: u32, draining: bool) {
        self.promote(t);
        if !draining {
            self.inject(t);
        }
        self.consult_faults(t);
        self.upgrade_wave(t);
        self.redispatch_orphans(t);
        self.execute(t);
        self.settle(t);
    }

    /// Promotes devices whose deploy/upgrade completes at `t`.
    fn promote(&mut self, t: u32) {
        let mut completed_upgrades = 0u32;
        for d in &mut self.inventory.devices {
            match d.state {
                DeviceState::Deploying { ready_tick } if ready_tick <= t => {
                    d.state = DeviceState::Live;
                }
                DeviceState::Upgrading { done_tick } if done_tick <= t => {
                    if let Some(u) = &self.upgrade {
                        d.shell_version = u.target_version;
                    }
                    d.state = DeviceState::Live;
                    d.stall_ps += crate::placement::DEPLOY_BASE_PS;
                    completed_upgrades += 1;
                }
                _ => {}
            }
        }
        if completed_upgrades > 0 {
            if let Some(u) = &mut self.upgrade {
                u.upgraded += completed_upgrades;
            }
        }
    }

    /// Routes this tick's load across role replicas in proportion to
    /// their real per-tick service capacity (largest-remainder split,
    /// so the command count is conserved exactly).
    fn inject(&mut self, t: u32) {
        let load = self.schedule[t as usize].clone();
        for (r, &n) in load.per_role.iter().enumerate() {
            if n == 0 {
                continue;
            }
            self.acc.injected += n;
            let eligible: Vec<(u32, u64)> = self.role_members[r]
                .iter()
                .filter(|&&i| {
                    !matches!(
                        self.inventory.devices[i as usize].state,
                        DeviceState::Down | DeviceState::Upgrading { .. }
                    )
                })
                .map(|&i| {
                    let role = &self.roles[r];
                    (i, role.capacity_per_tick(device_speed(self.inventory.devices[i as usize].model)))
                })
                .collect();
            if eligible.is_empty() {
                self.orphaned.push((r, t, n));
                continue;
            }
            for (i, share) in split_by_capacity(n, &eligible) {
                self.inventory.devices[i as usize].incoming += share;
            }
        }
    }

    /// Consults every armed injector: link-down drains and reschedules
    /// the device's work; link-up brings it back (with a redeploy stall).
    fn consult_faults(&mut self, t: u32) {
        let now = Picos::from(t) * crate::TICK_PS + 1;
        for i in 0..self.inventory.devices.len() {
            if !self.injectors[i].is_active() {
                continue;
            }
            let up = self.injectors[i].link_up(now);
            let state = self.inventory.devices[i].state;
            if !up && state != DeviceState::Down {
                self.drain_and_reschedule(i, t, true);
                self.inventory.devices[i].state = DeviceState::Down;
            } else if up && state == DeviceState::Down {
                self.inventory.devices[i].state = DeviceState::Live;
                self.inventory.devices[i].stall_ps += crate::placement::DEPLOY_BASE_PS;
            }
        }
    }

    /// Launches the next upgrade wave when none is in flight.
    fn upgrade_wave(&mut self, t: u32) {
        let Some(plan) = self.upgrade.clone() else { return };
        if plan.completed_tick.is_some() || t < plan.start_tick {
            return;
        }
        let in_flight = self
            .inventory
            .devices
            .iter()
            .any(|d| matches!(d.state, DeviceState::Upgrading { .. }));
        if in_flight {
            return;
        }
        let wave: Vec<usize> = self
            .inventory
            .devices
            .iter()
            .filter(|d| d.shell_version < plan.target_version && d.state == DeviceState::Live)
            .map(|d| d.index as usize)
            .take(plan.wave_size)
            .collect();
        if wave.is_empty() {
            if let Some(u) = &mut self.upgrade {
                u.completed_tick = Some(t);
            }
            return;
        }
        for i in wave {
            self.drain_and_reschedule(i, t, false);
            self.inventory.devices[i].state = DeviceState::Upgrading {
                done_tick: t + UPGRADE_TICKS,
            };
        }
        if let Some(u) = &mut self.upgrade {
            u.waves += 1;
        }
    }

    /// Moves a device's queued work off it: to a freshly-deployed spare
    /// (kills, when one fits) or spread onto the surviving replicas of
    /// the same role. Orphans the cohorts when nobody can take them —
    /// they re-dispatch the moment a replica is eligible again, so the
    /// accounting never loses a command.
    fn drain_and_reschedule(&mut self, victim: usize, t: u32, deploy_spare: bool) {
        let (role_idx, victim_model) = {
            let d = &mut self.inventory.devices[victim];
            let role = d.role;
            let model = d.model;
            (role, model)
        };
        let mut cohorts: Vec<(u32, u64)> = self.inventory.devices[victim].backlog.drain(..).collect();
        let incoming = std::mem::take(&mut self.inventory.devices[victim].incoming);
        if incoming > 0 {
            cohorts.push((t, incoming));
        }
        let moved: u64 = cohorts.iter().map(|&(_, n)| n).sum();
        let Some(r) = role_idx else { return };
        if moved == 0 && !deploy_spare {
            return;
        }
        // Preferred target for a kill: the fastest fitting spare, which
        // joins the role after a deploy delay and a migration stall from
        // the real migration cost matrix.
        let spare = if deploy_spare {
            let mut spares: Vec<u32> = self
                .inventory
                .devices
                .iter()
                .filter(|d| {
                    d.role.is_none()
                        && d.state == DeviceState::Live
                        && self.roles[r].fits(d.model)
                })
                .map(|d| d.index)
                .collect();
            spares.sort_by_key(|&i| {
                (std::cmp::Reverse(device_speed(self.inventory.devices[i as usize].model)), i)
            });
            spares.first().copied()
        } else {
            None
        };
        if let Some(s) = spare {
            let cost = migration_matrix(&self.roles)
                .cost(victim_model, r, self.inventory.devices[s as usize].model, r)
                .expect("spare was fit-checked");
            let d = &mut self.inventory.devices[s as usize];
            d.role = Some(r);
            d.state = DeviceState::Deploying { ready_tick: t + DEPLOY_TICKS };
            d.stall_ps += cost;
            for &(at, n) in &cohorts {
                push_cohort(&mut d.backlog, at, n);
            }
            self.role_members[r].push(s);
            self.role_members[r].sort_unstable();
            self.acc.migrated += moved;
            return;
        }
        // No spare (or a planned upgrade): spread onto the surviving
        // replicas, least-loaded first.
        let survivors: Vec<u32> = self.role_members[r]
            .iter()
            .filter(|&&i| {
                i as usize != victim
                    && !matches!(
                        self.inventory.devices[i as usize].state,
                        DeviceState::Down | DeviceState::Upgrading { .. }
                    )
            })
            .copied()
            .collect();
        if survivors.is_empty() {
            for (at, n) in cohorts {
                self.orphaned.push((r, at, n));
            }
            // Parked, not lost: still part of `pending` until re-dispatch.
            return;
        }
        let target = survivors
            .iter()
            .min_by_key(|&&i| (self.inventory.devices[i as usize].queued(), i))
            .copied()
            .expect("nonempty survivors");
        let d = &mut self.inventory.devices[target as usize];
        for &(at, n) in &cohorts {
            push_cohort(&mut d.backlog, at, n);
        }
        self.acc.migrated += moved;
    }

    /// Re-dispatches orphaned cohorts once their role has an eligible
    /// replica again.
    fn redispatch_orphans(&mut self, _t: u32) {
        if self.orphaned.is_empty() {
            return;
        }
        let orphaned = std::mem::take(&mut self.orphaned);
        for (r, at, n) in orphaned {
            let target = self.role_members[r]
                .iter()
                .filter(|&&i| {
                    !matches!(
                        self.inventory.devices[i as usize].state,
                        DeviceState::Down | DeviceState::Upgrading { .. }
                    )
                })
                .min_by_key(|&&i| (self.inventory.devices[i as usize].queued(), i))
                .copied();
            match target {
                Some(i) => {
                    push_cohort(&mut self.inventory.devices[i as usize].backlog, at, n);
                    self.acc.migrated += n;
                }
                None => self.orphaned.push((r, at, n)),
            }
        }
    }

    /// Executes queued commands on every live replica: FIFO cohorts at
    /// the device's per-role service rate, after any pending stall.
    fn execute(&mut self, t: u32) {
        for i in 0..self.inventory.devices.len() {
            let incoming = std::mem::take(&mut self.inventory.devices[i].incoming);
            if incoming > 0 {
                push_cohort(&mut self.inventory.devices[i].backlog, t, incoming);
            }
            let d = &self.inventory.devices[i];
            let Some(r) = d.role else { continue };
            if d.state != DeviceState::Live {
                continue;
            }
            let service = self.roles[r].service_ps(device_speed(d.model));
            let d = &mut self.inventory.devices[i];
            let stall = d.stall_ps.min(crate::TICK_PS);
            d.stall_ps -= stall;
            let budget = crate::TICK_PS - stall;
            let mut capacity = budget / service;
            let mut pos = 0u64;
            while capacity > 0 {
                let Some(&(at, n)) = d.backlog.front() else { break };
                let k = n.min(capacity);
                let age = Picos::from(t - at) * crate::TICK_PS;
                record_position_range(
                    &mut d.latency,
                    age + stall + service,
                    service,
                    pos,
                    pos + k - 1,
                );
                d.executed += k;
                self.acc.executed += k;
                pos += k;
                capacity -= k;
                if k == n {
                    d.backlog.pop_front();
                } else {
                    d.backlog.front_mut().expect("checked").1 -= k;
                }
            }
        }
    }

    /// End-of-tick bookkeeping: recompute pending from the actual
    /// queues, assert exact conservation, track congestion.
    fn settle(&mut self, t: u32) {
        let queued: u64 = self.inventory.devices.iter().map(|d| d.queued() + d.incoming).sum();
        let orphaned: u64 = self.orphaned.iter().map(|&(_, _, n)| n).sum();
        self.acc.pending = queued + orphaned;
        assert!(
            self.acc.exact(),
            "conservation violated at tick {t}: injected={} executed={} pending={}",
            self.acc.injected,
            self.acc.executed,
            self.acc.pending,
        );
        let aged = self
            .inventory
            .devices
            .iter()
            .any(|d| d.backlog.front().is_some_and(|&(at, _)| at < t))
            || self.orphaned.iter().any(|&(_, at, _)| at < t);
        if aged {
            self.congested_ticks += 1;
            if self.first_fault_tick.is_some_and(|f| t >= f) {
                self.rebalance_ticks += 1;
            }
        }
    }

    fn report(&self, total_ticks: u32) -> CampaignReport {
        let mut fleet_latency = LogHistogram::new();
        let mut roles: Vec<RoleReport> = self
            .roles
            .iter()
            .map(|r| RoleReport {
                name: r.name,
                replicas: 0,
                executed: 0,
                latency: LogHistogram::new(),
            })
            .collect();
        for d in &self.inventory.devices {
            fleet_latency.merge(&d.latency);
            if let Some(r) = d.role {
                roles[r].replicas += 1;
                roles[r].executed += d.executed;
                roles[r].latency.merge(&d.latency);
            }
        }
        let spares = self.inventory.devices.iter().filter(|d| d.role.is_none()).count();
        CampaignReport {
            policy: self.spec.policy.name(),
            devices: self.spec.devices,
            racks: self.inventory.racks,
            users: self.spec.users,
            traffic_ticks: self.spec.ticks,
            total_ticks,
            replicas: self.inventory.devices.len() - spares,
            spares,
            accounting: self.acc,
            fleet_latency,
            roles,
            kills: self.kills,
            first_fault_tick: self.first_fault_tick,
            rebalance_ticks: self.rebalance_ticks,
            congested_ticks: self.congested_ticks,
            upgrade: self.upgrade.as_ref().map(|u| UpgradeReport {
                target_version: u.target_version,
                waves: u.waves,
                devices_upgraded: u.upgraded,
                completed_tick: u.completed_tick,
            }),
        }
    }
}

/// Splits `n` commands across `(device, capacity)` pairs in proportion
/// to capacity, conserving `n` exactly (largest-remainder rounding).
fn split_by_capacity(n: u64, eligible: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let cap_sum: u64 = eligible.iter().map(|&(_, c)| c).sum();
    if cap_sum == 0 {
        // Degenerate: equal split, remainder to the first.
        let each = n / eligible.len() as u64;
        let mut out: Vec<(u32, u64)> = eligible.iter().map(|&(i, _)| (i, each)).collect();
        out[0].1 += n - each * eligible.len() as u64;
        return out;
    }
    let mut out: Vec<(u32, u64)> = Vec::with_capacity(eligible.len());
    let mut rema: Vec<(usize, u64)> = Vec::with_capacity(eligible.len());
    let mut assigned = 0u64;
    for (k, &(i, c)) in eligible.iter().enumerate() {
        let exact = n as u128 * c as u128;
        let base = (exact / cap_sum as u128) as u64;
        let rem = (exact % cap_sum as u128) as u64;
        out.push((i, base));
        rema.push((k, rem));
        assigned += base;
    }
    rema.sort_by_key(|&(k, rem)| (std::cmp::Reverse(rem), k));
    for &(k, _) in rema.iter().take((n - assigned) as usize) {
        out[k].1 += 1;
    }
    out
}

/// Appends a cohort keeping the backlog sorted by arrival tick (FIFO),
/// coalescing with an existing same-tick cohort.
fn push_cohort(backlog: &mut std::collections::VecDeque<(u32, u64)>, at: u32, n: u64) {
    if n == 0 {
        return;
    }
    // Common case: appending in arrival order.
    match backlog.back_mut() {
        Some(last) if last.0 == at => {
            last.1 += n;
            return;
        }
        Some(last) if last.0 < at => {
            backlog.push_back((at, n));
            return;
        }
        None => {
            backlog.push_back((at, n));
            return;
        }
        _ => {}
    }
    // Out-of-order insert (migrated cohorts older than the resident
    // queue): keep FIFO by arrival tick.
    let pos = backlog.iter().position(|&(a, _)| a > at).unwrap_or(backlog.len());
    if pos > 0 && backlog[pos - 1].0 == at {
        backlog[pos - 1].1 += n;
    } else {
        backlog.insert(pos, (at, n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: PlacementPolicy) -> FleetController {
        FleetController::new(FleetSpec::new(96, 7, policy)).expect("placement")
    }

    #[test]
    fn quiet_campaign_converges_exactly() {
        let mut fleet = small(PlacementPolicy::BestFit);
        let report = fleet.run();
        assert!(report.accounting.exact());
        assert_eq!(report.accounting.pending, 0, "drained");
        assert!(report.accounting.injected > 1_000_000, "a day of real load");
        assert_eq!(report.accounting.migrated, 0, "no faults, no moves");
        assert_eq!(report.kills, 0);
    }

    #[test]
    fn best_fit_p99_fits_inside_one_tick() {
        let mut fleet = small(PlacementPolicy::BestFit);
        let report = fleet.run();
        assert!(
            report.fleet_latency.p99() <= crate::TICK_PS,
            "p99 {} > tick {}",
            report.fleet_latency.p99(),
            crate::TICK_PS
        );
        assert_eq!(report.congested_ticks, 0, "no aged backlog at ≤75% util");
    }

    #[test]
    fn kill_mid_traffic_migrates_and_converges() {
        let mut fleet = small(PlacementPolicy::BestFit);
        let victim = fleet.assignments()[0].device;
        fleet.kill_device(victim, 150);
        let report = fleet.run();
        assert!(report.accounting.exact());
        assert_eq!(report.accounting.pending, 0);
        assert!(report.accounting.migrated > 0, "the victim's queue moved");
        assert_eq!(report.kills, 1);
        assert_eq!(report.first_fault_tick, Some(150));
    }

    #[test]
    fn rack_kill_drains_a_whole_failure_domain() {
        let mut fleet = small(PlacementPolicy::BestFit);
        fleet.kill_rack(0, 100);
        let report = fleet.run();
        assert!(report.accounting.exact());
        assert_eq!(report.accounting.pending, 0);
        assert_eq!(report.kills, crate::RACK_SIZE as u32);
        assert!(report.accounting.migrated > 0);
    }

    #[test]
    fn restore_brings_a_device_back() {
        let mut fleet = small(PlacementPolicy::BestFit);
        let victim = fleet.assignments()[0].device;
        fleet.kill_device(victim, 100);
        fleet.restore_device(victim, 120);
        let report = fleet.run();
        assert!(report.accounting.exact());
        assert_eq!(report.accounting.pending, 0);
        let d = &fleet.inventory.devices[victim as usize];
        assert_eq!(d.state, DeviceState::Live);
        assert!(d.executed > 0, "served again after restore");
    }

    #[test]
    fn rolling_upgrade_completes_and_keeps_the_books() {
        let mut fleet = small(PlacementPolicy::BestFit);
        fleet.schedule_upgrade(10, 2, 16);
        let report = fleet.run();
        assert!(report.accounting.exact());
        assert_eq!(report.accounting.pending, 0);
        let u = report.upgrade.expect("upgrade scheduled");
        assert_eq!(u.target_version, 2);
        assert_eq!(u.devices_upgraded, 96);
        assert!(u.completed_tick.is_some(), "finished within the campaign");
        assert!(u.waves >= 6, "96 devices / 16 per wave");
        assert!(fleet.inventory.devices.iter().all(|d| d.shell_version == 2));
    }

    #[test]
    fn render_is_stable_for_equal_specs() {
        let a = small(PlacementPolicy::BestFit).run().render();
        let b = small(PlacementPolicy::BestFit).run().render();
        assert_eq!(a, b);
        assert!(a.contains("exact=yes"));
    }

    #[test]
    fn split_by_capacity_conserves() {
        let eligible = vec![(0u32, 100u64), (1, 250), (2, 33)];
        for n in [0u64, 1, 7, 1000, 999_999] {
            let split = split_by_capacity(n, &eligible);
            assert_eq!(split.iter().map(|&(_, s)| s).sum::<u64>(), n, "n={n}");
        }
    }

    #[test]
    fn push_cohort_keeps_fifo_and_coalesces() {
        let mut q = std::collections::VecDeque::new();
        push_cohort(&mut q, 5, 10);
        push_cohort(&mut q, 7, 3);
        push_cohort(&mut q, 5, 2); // out of order: merges into tick 5
        push_cohort(&mut q, 6, 1);
        let v: Vec<_> = q.into_iter().collect();
        assert_eq!(v, vec![(5, 12), (6, 1), (7, 3)]);
    }

    #[test]
    fn spec_from_env_defaults() {
        let spec = FleetSpec::from_env();
        assert!(spec.devices > 0);
        assert_eq!(spec.ticks, crate::TICKS_PER_DAY);
    }
}
