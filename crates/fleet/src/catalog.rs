//! The fleet role catalog: production applications as placeable roles.
//!
//! Each [`RoleClass`] wraps a role the fleet must keep serving — the
//! five applications of `harmonia-apps` plus a stateless edge filter
//! that exercises the memory-less Device C — with the knobs the
//! placement scheduler needs: its demand share of user traffic, the
//! command fan-out per user request, a per-model service cost, and a
//! tenant weight that buys headroom.
//!
//! Per-model *fit* is not declared — it is computed by actually
//! tailoring the role's [`RoleSpec`] onto each catalog device, so the
//! same machinery that gates a real deployment gates fleet placement
//! (retrieval's HBM demand pins it to Device A; the DDR-backed network
//! roles skip the DRAM-less Device C).

use harmonia_apps::common::App;
use harmonia_apps::l4lb::Backend;
use harmonia_apps::sec_gateway::Action;
use harmonia_apps::{HostNetwork, Layer4Lb, RetrievalEngine, SecGateway, StorageOffload};
use harmonia_hw::device::{catalog as hw_catalog, DeviceId};
use harmonia_shell::{RoleSpec, TailoredShell, UnifiedShell};
use harmonia_sim::Picos;

/// A placeable role class: what the placement scheduler schedules.
#[derive(Clone, Debug)]
pub struct RoleClass {
    /// Role name (stable identifier in reports and metrics labels).
    pub name: &'static str,
    /// Shell demands, used both for fit checks and migration costing.
    pub spec: RoleSpec,
    /// Share of user requests routed to this role, in parts-per-million.
    /// The standard catalog's shares sum to exactly 1 000 000.
    pub share_ppm: u64,
    /// Commands one user request fans out to on this role.
    pub cmds_per_req: u64,
    /// Service cost in ps × speed-units: a device of speed `s` serves one
    /// command in `unit_cost / s` picoseconds (see
    /// [`crate::inventory::device_speed`]).
    pub unit_cost: u64,
    /// Tenant weight. Placement buys `weight`-scaled headroom: the target
    /// utilization for a role is [`RoleClass::target_util_ppm`].
    pub weight: u64,
}

impl RoleClass {
    /// Service time of one command on a device of the given speed.
    pub fn service_ps(&self, speed: u64) -> Picos {
        (self.unit_cost / speed).max(1)
    }

    /// Commands per tick a device of the given speed can serve.
    pub fn capacity_per_tick(&self, speed: u64) -> u64 {
        crate::TICK_PS / self.service_ps(speed)
    }

    /// Target utilization for placement, in parts-per-million: weight
    /// buys headroom (`800 000 − 50 000 × weight`, floored at 500 000),
    /// so a weight-4 tenant's replicas run at ≤ 60 % where a weight-1
    /// tenant's run at ≤ 75 %.
    pub fn target_util_ppm(&self) -> u64 {
        800_000u64.saturating_sub(50_000 * self.weight).max(500_000)
    }

    /// Whether this role tailors onto the given catalog device — the
    /// real deployment gate, reused as the placement fit check.
    pub fn fits(&self, model: DeviceId) -> bool {
        let device = hw_catalog::device(model);
        let unified = UnifiedShell::for_device(&device);
        TailoredShell::tailor(&unified, &self.spec).is_ok()
    }
}

/// The standard fleet role catalog, in fixed declaration order.
///
/// Shares sum to exactly 1 000 000 ppm, so per-tick user requests are
/// conserved when split across roles (the remainder of each integer
/// split goes to the first role).
pub fn standard_catalog() -> Vec<RoleClass> {
    vec![
        RoleClass {
            name: "l4lb",
            spec: Layer4Lb::new(vec![Backend { id: 0, weight: 1 }], 16).role_spec(),
            share_ppm: 250_000,
            cmds_per_req: 1,
            unit_cost: 6_000_000_000_000,
            weight: 2,
        },
        RoleClass {
            name: "edge-filter",
            spec: edge_filter_spec(),
            share_ppm: 250_000,
            cmds_per_req: 1,
            unit_cost: 5_000_000_000_000,
            weight: 1,
        },
        RoleClass {
            name: "sec-gateway",
            spec: SecGateway::new(Action::Deny).role_spec(),
            share_ppm: 200_000,
            cmds_per_req: 1,
            unit_cost: 7_000_000_000_000,
            weight: 1,
        },
        RoleClass {
            name: "host-network",
            spec: HostNetwork::new(16).role_spec(),
            share_ppm: 200_000,
            cmds_per_req: 1,
            unit_cost: 8_000_000_000_000,
            weight: 1,
        },
        RoleClass {
            name: "retrieval",
            spec: RetrievalEngine::synthetic(42, 1, 1).role_spec(),
            share_ppm: 50_000,
            cmds_per_req: 2,
            unit_cost: 24_000_000_000_000,
            weight: 4,
        },
        RoleClass {
            name: "storage-offload",
            spec: StorageOffload::new().role_spec(),
            share_ppm: 50_000,
            cmds_per_req: 2,
            unit_cost: 10_000_000_000_000,
            weight: 1,
        },
    ]
}

/// A stateless 100G packet-filter role with no external-memory demand —
/// the only catalog role the DRAM-less Device C can host, and the role
/// that keeps C's 200G cages earning.
fn edge_filter_spec() -> RoleSpec {
    RoleSpec::builder("edge-filter")
        .network_gbps(100)
        .network_ports(2)
        .queues(64)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_exactly_one_million_ppm() {
        let total: u64 = standard_catalog().iter().map(|r| r.share_ppm).sum();
        assert_eq!(total, 1_000_000);
    }

    #[test]
    fn fit_matrix_matches_the_catalog_peripherals() {
        let roles = standard_catalog();
        let by_name = |n: &str| roles.iter().find(|r| r.name == n).unwrap();
        // Retrieval demands HBM: Device A only.
        assert!(by_name("retrieval").fits(DeviceId::A));
        for m in [DeviceId::B, DeviceId::C, DeviceId::D] {
            assert!(!by_name("retrieval").fits(m), "retrieval fit {m:?}");
        }
        // DDR-backed network roles fit everything but the DRAM-less C.
        for n in ["l4lb", "sec-gateway", "host-network", "storage-offload"] {
            assert!(by_name(n).fits(DeviceId::A), "{n} on A");
            assert!(by_name(n).fits(DeviceId::B), "{n} on B");
            assert!(!by_name(n).fits(DeviceId::C), "{n} on C");
            assert!(by_name(n).fits(DeviceId::D), "{n} on D");
        }
        // The stateless edge filter fits all four models.
        for m in DeviceId::ALL {
            assert!(by_name("edge-filter").fits(m), "edge-filter on {m:?}");
        }
    }

    #[test]
    fn weight_buys_headroom() {
        let roles = standard_catalog();
        let retrieval = roles.iter().find(|r| r.name == "retrieval").unwrap();
        let edge = roles.iter().find(|r| r.name == "edge-filter").unwrap();
        assert_eq!(retrieval.target_util_ppm(), 600_000);
        assert_eq!(edge.target_util_ppm(), 750_000);
        assert!(retrieval.target_util_ppm() < edge.target_util_ppm());
    }

    #[test]
    fn service_and_capacity_are_consistent() {
        let r = &standard_catalog()[0];
        let speed = 228;
        let s = r.service_ps(speed);
        assert_eq!(r.capacity_per_tick(speed), crate::TICK_PS / s);
        // Faster devices serve strictly faster.
        assert!(r.service_ps(456) < s);
    }
}
