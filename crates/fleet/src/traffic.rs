//! Seeded diurnal traffic generation: millions of users, byte-identical
//! at any thread count.
//!
//! The generator models a day of user demand as a 24-point diurnal
//! curve (trough before dawn, evening peak) interpolated per 5-minute
//! tick, with ±1 % seeded jitter. Each tick's load is a *pure function*
//! of `(spec, tick)` — the schedule fans out through the ordered
//! `harmonia_sim::exec::par_sweep`, so `HARMONIA_THREADS=1` and `=4`
//! produce the same bytes, and the whole day is reproducible from the
//! seed alone.

use crate::catalog::RoleClass;
use harmonia_sim::exec::par_sweep;
use harmonia_sim::SplitMix64;

/// Hourly demand curve in per-mille of peak: trough of 300 ‰ around
/// 04:00, peak of 1000 ‰ at 21:00 (the classic consumer diurnal).
pub const DIURNAL_PER_MILLE: [u64; 24] = [
    550, 450, 380, 320, 300, 320, 380, 480, 580, 650, 700, 730, //
    750, 740, 720, 700, 720, 760, 820, 900, 970, 1000, 880, 700,
];

/// Peak per-user request rate: requests per user per tick at the
/// 1000 ‰ point of the diurnal curve.
pub const PEAK_REQS_PER_USER_PER_TICK: u64 = 3;

/// Jitter amplitude in parts-per-million (±1 %).
pub const JITTER_PPM: u64 = 10_000;

/// One tick of generated load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TickLoad {
    /// Tick index within the campaign.
    pub tick: u32,
    /// User requests this tick, before the per-role split.
    pub requests: u64,
    /// Commands per role (catalog order). Sums to the exact command
    /// fan-out of `requests` — nothing is lost to integer splitting.
    pub per_role: Vec<u64>,
}

/// The seeded diurnal traffic generator.
#[derive(Clone, Debug)]
pub struct DiurnalTraffic {
    /// Simulated user count.
    pub users: u64,
    /// Generator seed.
    pub seed: u64,
}

impl DiurnalTraffic {
    /// A generator for `users` users with the given seed.
    pub fn new(users: u64, seed: u64) -> DiurnalTraffic {
        DiurnalTraffic { users, seed }
    }

    /// Demand level at `tick` in per-mille of peak, linearly
    /// interpolated between the hourly curve points (ticks wrap
    /// modulo [`crate::TICKS_PER_DAY`]).
    pub fn level_per_mille(tick: u32) -> u64 {
        let tick = tick % crate::TICKS_PER_DAY;
        let ticks_per_hour = crate::TICKS_PER_DAY / 24; // 12
        let hour = (tick / ticks_per_hour) as usize;
        let frac = u64::from(tick % ticks_per_hour);
        let a = DIURNAL_PER_MILLE[hour];
        let b = DIURNAL_PER_MILLE[(hour + 1) % 24];
        // Linear interpolation in integer arithmetic.
        (a * (u64::from(ticks_per_hour) - frac) + b * frac) / u64::from(ticks_per_hour)
    }

    /// The load of one tick: a pure function of `(self, tick, roles)`.
    ///
    /// Requests = `users × peak_rate × level(tick) / 1000`, jittered by
    /// ±[`JITTER_PPM`] with a per-tick RNG seeded from
    /// `seed ^ tick`, then split across roles by `share_ppm` with the
    /// integer remainder credited to the first role so the split
    /// conserves the total command count exactly.
    pub fn tick_load(&self, tick: u32, roles: &[RoleClass]) -> TickLoad {
        let base = self.users * PEAK_REQS_PER_USER_PER_TICK * Self::level_per_mille(tick) / 1000;
        let mut rng = SplitMix64::new(self.seed ^ (u64::from(tick) << 20) ^ 0x5452_4146);
        let jitter = rng.next_below(2 * JITTER_PPM + 1); // 0 ..= 2%
        let requests = base * (1_000_000 - JITTER_PPM + jitter) / 1_000_000;
        // Split by share, remainder to the first role: the per-role
        // command totals must sum to the exact fan-out.
        let mut per_role: Vec<u64> = roles
            .iter()
            .map(|r| (requests * r.share_ppm / 1_000_000) * r.cmds_per_req)
            .collect();
        let split_reqs: u64 = roles
            .iter()
            .map(|r| requests * r.share_ppm / 1_000_000)
            .sum();
        if let (Some(first), Some(role0)) = (per_role.first_mut(), roles.first()) {
            *first += (requests - split_reqs) * role0.cmds_per_req;
        }
        TickLoad { tick, requests, per_role }
    }

    /// The full schedule for `ticks` ticks, generated through the
    /// ordered pool (byte-identical at any `HARMONIA_THREADS`).
    pub fn schedule(&self, ticks: u32, roles: &[RoleClass]) -> Vec<TickLoad> {
        par_sweep(0..ticks, |t| self.tick_load(t, roles))
    }

    /// Total commands per role over a schedule, catalog order.
    pub fn day_totals(schedule: &[TickLoad], roles: &[RoleClass]) -> Vec<u64> {
        let mut totals = vec![0u64; roles.len()];
        for load in schedule {
            for (t, &n) in totals.iter_mut().zip(&load.per_role) {
                *t += n;
            }
        }
        totals
    }

    /// Peak per-tick command demand per role over a schedule — what the
    /// placement scheduler must provision for.
    pub fn peak_per_role(schedule: &[TickLoad], roles: &[RoleClass]) -> Vec<u64> {
        let mut peaks = vec![0u64; roles.len()];
        for load in schedule {
            for (p, &n) in peaks.iter_mut().zip(&load.per_role) {
                *p = (*p).max(n);
            }
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;

    #[test]
    fn split_conserves_the_command_fanout() {
        let roles = standard_catalog();
        let gen = DiurnalTraffic::new(1_000_000, 9);
        for tick in [0u32, 17, 100, 287] {
            let load = gen.tick_load(tick, &roles);
            // Expected fan-out: each request goes to exactly one role
            // and fans out by that role's cmds_per_req; reconstruct by
            // re-deriving the per-role request split.
            let reqs: u64 = load.requests;
            let mut req_split: Vec<u64> =
                roles.iter().map(|r| reqs * r.share_ppm / 1_000_000).collect();
            req_split[0] += reqs - req_split.iter().sum::<u64>();
            let want: u64 = req_split
                .iter()
                .zip(&roles)
                .map(|(&q, r)| q * r.cmds_per_req)
                .sum();
            assert_eq!(load.per_role.iter().sum::<u64>(), want, "tick {tick}");
        }
    }

    #[test]
    fn curve_peaks_in_the_evening_and_troughs_before_dawn() {
        let peak = (0..crate::TICKS_PER_DAY)
            .max_by_key(|&t| DiurnalTraffic::level_per_mille(t))
            .unwrap();
        let trough = (0..crate::TICKS_PER_DAY)
            .min_by_key(|&t| DiurnalTraffic::level_per_mille(t))
            .unwrap();
        assert_eq!(peak / 12, 21, "peak hour");
        assert_eq!(trough / 12, 4, "trough hour");
        assert_eq!(DiurnalTraffic::level_per_mille(21 * 12), 1000);
        assert_eq!(DiurnalTraffic::level_per_mille(4 * 12), 300);
    }

    #[test]
    fn schedule_is_reproducible_from_the_seed() {
        let roles = standard_catalog();
        let a = DiurnalTraffic::new(500_000, 3).schedule(crate::TICKS_PER_DAY, &roles);
        let b = DiurnalTraffic::new(500_000, 3).schedule(crate::TICKS_PER_DAY, &roles);
        assert_eq!(a, b);
        let c = DiurnalTraffic::new(500_000, 4).schedule(crate::TICKS_PER_DAY, &roles);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn jitter_stays_within_one_percent() {
        let roles = standard_catalog();
        let gen = DiurnalTraffic::new(2_000_000, 11);
        for tick in 0..crate::TICKS_PER_DAY {
            let base = gen.users * PEAK_REQS_PER_USER_PER_TICK
                * DiurnalTraffic::level_per_mille(tick)
                / 1000;
            let got = gen.tick_load(tick, &roles).requests;
            let lo = base * (1_000_000 - JITTER_PPM) / 1_000_000;
            let hi = base * (1_000_000 + JITTER_PPM) / 1_000_000;
            assert!(got >= lo && got <= hi, "tick {tick}: {got} outside [{lo}, {hi}]");
        }
    }
}
