//! Cluster-scale control plane: one card to a simulated fleet of thousands.
//!
//! Everything below the host driver models *one* device; production
//! Harmonia runs tens of thousands of heterogeneous cards (§2.2,
//! Figure 3c). This crate connects the single-device planes into an
//! operational whole:
//!
//! * [`inventory`] — a deterministic inventory of thousands of devices
//!   drawn from the Table 2 catalog (Devices A–D), grouped into racks
//!   (the failure domains), each with a per-model service-rate model;
//! * [`catalog`] — the fleet role catalog: the production applications of
//!   `harmonia-apps` as placeable roles with tenant weights, demand
//!   shares and per-model fit computed by real shell tailoring;
//! * [`traffic`] — a seeded diurnal traffic generator modeling millions
//!   of users, byte-identical at any `HARMONIA_THREADS`;
//! * [`placement`] — the placement scheduler: capacity-aware best-fit
//!   bin-packing by resource fit and tenant weight, against a
//!   spec-blind random baseline ([`PlacementPolicy`]);
//! * [`control`] — the [`FleetController`] campaign loop: per-tick load
//!   dispatch, failure domains wired to the PR 4 fault plane
//!   (`FaultKind::LinkDown` per device), drain + reschedule with exact
//!   command accounting, rolling shell upgrades through the
//!   `migration.rs` cost model, and `harmonia_fleet_*` metrics.
//!
//! Determinism contract: a campaign is a pure function of its
//! [`FleetSpec`] and scheduled events. Nothing here consults
//! `HARMONIA_ENGINE`, and every parallel fan-out goes through the
//! ordered `harmonia_sim::exec` pool, so rendered campaign reports are
//! byte-identical across the `{cycle,event}×{1,4}-thread` matrix.
//!
//! ```
//! use harmonia_fleet::{FleetController, FleetSpec, PlacementPolicy};
//!
//! let spec = FleetSpec::new(256, 7, PlacementPolicy::BestFit);
//! let mut fleet = FleetController::new(spec).unwrap();
//! let victim = fleet.assignments()[0].device;
//! fleet.kill_device(victim, 100); // fail one serving card mid-traffic
//! let report = fleet.run();
//! assert!(report.accounting.exact(), "no lost or doubled commands");
//! assert!(report.accounting.migrated > 0, "the dead card's work moved");
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod control;
pub mod inventory;
pub mod placement;
pub mod traffic;

pub use catalog::{standard_catalog, RoleClass};
pub use control::{
    Accounting, CampaignReport, FleetController, FleetError, FleetSpec, UpgradeReport,
};
pub use inventory::{DeviceState, FleetDevice, Inventory};
pub use placement::{Assignment, PlacementError, PlacementPolicy};
pub use traffic::{DiurnalTraffic, TickLoad};

/// Environment knob for the simulated device count
/// ([`FleetSpec::from_env`]). Default [`DEFAULT_FLEET_DEVICES`].
pub const FLEET_DEVICES_ENV: &str = "HARMONIA_FLEET_DEVICES";

/// Default fleet size: a couple of thousand cards, the "tens of
/// thousands" story at a tractable simulation scale.
pub const DEFAULT_FLEET_DEVICES: usize = 2048;

/// Environment knob selecting the placement policy
/// (`bestfit`/`random`, see [`PlacementPolicy::from_env`]).
pub const FLEET_POLICY_ENV: &str = "HARMONIA_FLEET_POLICY";

/// Simulated length of one control-plane tick: 5 minutes.
pub const TICK_PS: harmonia_sim::Picos = 300 * harmonia_sim::PS_PER_SEC;

/// Ticks in one simulated day (24 h at 5-minute ticks).
pub const TICKS_PER_DAY: u32 = 288;

/// Devices per rack — the failure-domain granularity.
pub const RACK_SIZE: usize = 32;

/// Simulated users per fleet device (the default
/// [`FleetSpec`] derives `users = devices × 1000`, so the 2048-device
/// default fleet serves ~2 million users).
pub const USERS_PER_DEVICE: u64 = 1_000;
