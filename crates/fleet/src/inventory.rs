//! The simulated device inventory: thousands of cards, racks as
//! failure domains, per-model service rates.
//!
//! Model mix is exact-proportion (largest-remainder over the catalog
//! weights) and the *positions* are then seed-shuffled, so any fleet
//! size gets the same heterogeneity (30 % A, 30 % B, 20 % C, 20 % D —
//! roughly Figure 3c's coexisting generations) while rack composition
//! varies with the seed. Feasibility of placement therefore never
//! depends on sampling luck.

use harmonia_hw::device::{catalog as hw_catalog, DeviceId};
use harmonia_sim::{LogHistogram, Picos, SplitMix64};
use std::collections::VecDeque;

/// Model mix weights (A, B, C, D) out of [`MIX_TOTAL`].
pub const MODEL_MIX: [(DeviceId, usize); 4] = [
    (DeviceId::A, 3),
    (DeviceId::B, 3),
    (DeviceId::C, 2),
    (DeviceId::D, 2),
];

/// Sum of [`MODEL_MIX`] weights.
pub const MIX_TOTAL: usize = 10;

/// Speed of a catalog model in abstract speed-units: line rate plus
/// host-link bandwidth (`network_gbps + 4 × pcie_gen × pcie_lanes`).
/// A command of unit cost `c` takes `c / speed` picoseconds.
pub fn device_speed(model: DeviceId) -> u64 {
    let d = hw_catalog::device(model);
    let (gen, lanes) = d.pcie().unwrap_or((0, 0));
    u64::from(d.network_gbps()) + 4 * u64::from(gen) * u64::from(lanes)
}

/// Lifecycle state of one fleet device.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeviceState {
    /// Serving (or idling as a spare when unassigned).
    Live,
    /// Taken out by a fault-plane link-down; queue already drained away.
    Down,
    /// Receiving a role deployment; live again at `ready_tick`.
    Deploying {
        /// First tick the device serves on.
        ready_tick: u32,
    },
    /// In a rolling-upgrade wave; live again at `done_tick`.
    Upgrading {
        /// First tick the device serves on after the upgrade.
        done_tick: u32,
    },
}

/// One simulated card.
#[derive(Clone, Debug)]
pub struct FleetDevice {
    /// Position in the inventory (stable identifier).
    pub index: u32,
    /// Catalog model.
    pub model: DeviceId,
    /// Failure domain (`index / RACK_SIZE`).
    pub rack: u32,
    /// Shell version currently deployed.
    pub shell_version: u32,
    /// Lifecycle state.
    pub state: DeviceState,
    /// Assigned role (index into the role catalog), if any.
    pub role: Option<usize>,
    /// Queued command cohorts: `(arrival_tick, count)`, FIFO.
    pub backlog: VecDeque<(u32, u64)>,
    /// Commands executed so far.
    pub executed: u64,
    /// Per-device command-latency histogram.
    pub latency: LogHistogram,
    /// One-time stall charged before serving (redeploy/migration cost).
    pub stall_ps: Picos,
    /// Arrivals routed to this device for the current tick.
    pub incoming: u64,
}

impl FleetDevice {
    /// Total commands queued (all cohorts).
    pub fn queued(&self) -> u64 {
        self.backlog.iter().map(|&(_, n)| n).sum()
    }

    /// Whether this device can take traffic this tick.
    pub fn serving(&self) -> bool {
        self.state == DeviceState::Live && self.role.is_some()
    }
}

/// The fleet inventory: devices plus rack accounting.
#[derive(Clone, Debug)]
pub struct Inventory {
    /// All devices, in index order.
    pub devices: Vec<FleetDevice>,
    /// Number of racks.
    pub racks: u32,
}

impl Inventory {
    /// Builds an inventory of `n` devices with the exact-proportion
    /// model mix, positions shuffled by `seed`, racks of
    /// [`crate::RACK_SIZE`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample(n: usize, seed: u64) -> Inventory {
        assert!(n > 0, "a fleet needs at least one device");
        // Largest-remainder apportionment: exact counts per model.
        let mut counts: Vec<(DeviceId, usize, usize)> = MODEL_MIX
            .iter()
            .map(|&(m, w)| (m, n * w / MIX_TOTAL, (n * w) % MIX_TOTAL))
            .collect();
        let assigned: usize = counts.iter().map(|&(_, c, _)| c).sum();
        // Hand the leftover units to the largest remainders (ties by
        // catalog order).
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(counts[i].2), i));
        for &i in order.iter().take(n - assigned) {
            counts[i].1 += 1;
        }
        let mut models: Vec<DeviceId> = counts
            .iter()
            .flat_map(|&(m, c, _)| std::iter::repeat(m).take(c))
            .collect();
        // Seeded Fisher–Yates: rack composition varies with the seed,
        // model counts do not.
        let mut rng = SplitMix64::new(seed ^ 0x464c_4545_54_u64); // "FLEET"
        for i in (1..models.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            models.swap(i, j);
        }
        let devices: Vec<FleetDevice> = models
            .into_iter()
            .enumerate()
            .map(|(i, model)| FleetDevice {
                index: i as u32,
                model,
                rack: (i / crate::RACK_SIZE) as u32,
                shell_version: 1,
                state: DeviceState::Live,
                role: None,
                backlog: VecDeque::new(),
                executed: 0,
                latency: LogHistogram::new(),
                stall_ps: 0,
                incoming: 0,
            })
            .collect();
        let racks = devices.last().map(|d| d.rack + 1).unwrap_or(0);
        Inventory { devices, racks }
    }

    /// Device count per model, in catalog order.
    pub fn model_counts(&self) -> [(DeviceId, usize); 4] {
        let mut out = MODEL_MIX.map(|(m, _)| (m, 0usize));
        for d in &self.devices {
            for slot in out.iter_mut() {
                if slot.0 == d.model {
                    slot.1 += 1;
                }
            }
        }
        out
    }
}

/// Records the latency cohort `offset + p × scale` for queue positions
/// `p ∈ [lo, hi]` into `hist` in O(buckets): positions mapping into one
/// log bucket are recorded with one `record_n`.
pub fn record_position_range(
    hist: &mut LogHistogram,
    offset: Picos,
    scale: Picos,
    lo: u64,
    hi: u64,
) {
    debug_assert!(scale > 0, "scale must be positive");
    let mut p = lo;
    while p <= hi {
        let lat = offset + p * scale;
        // Largest position still in lat's bucket: latencies are
        // monotone in p, so binary-search-free arithmetic works.
        let upper = bucket_upper_of(lat);
        let p_max = if upper >= offset {
            ((upper - offset) / scale).min(hi)
        } else {
            p
        };
        let p_max = p_max.max(p);
        // Record the chunk's boundary values exactly: every position in
        // the chunk lands in the same bucket, so percentiles match the
        // per-command loop while `min`/`max` stay exact.
        hist.record(lat);
        if p_max > p {
            hist.record_n(offset + p_max * scale, p_max - p);
        }
        p = p_max + 1;
    }
}

/// Inclusive upper bound of the log2 bucket holding `v` (mirrors
/// `LogHistogram`'s bucketing: bucket of `v` covers `[2^(k-1), 2^k-1]`).
fn bucket_upper_of(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        let b = v.ilog2() + 1;
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_exact_at_any_size() {
        for n in [1usize, 7, 48, 100, 2048] {
            let inv = Inventory::sample(n, 1);
            let counts = inv.model_counts();
            let total: usize = counts.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, n);
            for (m, c) in counts {
                let w = MODEL_MIX.iter().find(|&&(mm, _)| mm == m).unwrap().1;
                let lo = n * w / MIX_TOTAL;
                assert!(
                    c == lo || c == lo + 1,
                    "{m:?}: {c} outside largest-remainder band [{lo}, {}] at n={n}",
                    lo + 1
                );
            }
        }
    }

    #[test]
    fn seed_shuffles_positions_not_counts() {
        let a = Inventory::sample(256, 1);
        let b = Inventory::sample(256, 2);
        assert_eq!(a.model_counts(), b.model_counts());
        assert!(
            a.devices.iter().zip(&b.devices).any(|(x, y)| x.model != y.model),
            "different seeds should shuffle differently"
        );
        let a2 = Inventory::sample(256, 1);
        assert!(a.devices.iter().zip(&a2.devices).all(|(x, y)| x.model == y.model));
    }

    #[test]
    fn racks_are_contiguous_index_ranges() {
        let inv = Inventory::sample(100, 3);
        assert_eq!(inv.racks, 4); // 100 devices / 32 per rack
        for d in &inv.devices {
            assert_eq!(d.rack, d.index / crate::RACK_SIZE as u32);
        }
    }

    #[test]
    fn speed_orders_the_catalog_sensibly() {
        let a = device_speed(DeviceId::A);
        let b = device_speed(DeviceId::B);
        let c = device_speed(DeviceId::C);
        let d = device_speed(DeviceId::D);
        assert_eq!(a, 328); // 2×100G + 4×4×8
        assert_eq!(b, 392); // 2×100G + 4×3×16
        assert_eq!(c, 656); // 2×200G + 4×4×16
        assert_eq!(d, 456); // 2×100G + 4×4×16
        assert!(c > d && d > b && b > a);
    }

    #[test]
    fn position_range_matches_per_command_records() {
        let mut bulk = LogHistogram::new();
        let mut looped = LogHistogram::new();
        let (offset, scale) = (1_000u64, 700u64);
        record_position_range(&mut bulk, offset, scale, 1, 500);
        for p in 1..=500u64 {
            looped.record(offset + p * scale);
        }
        assert_eq!(bulk.count(), looped.count());
        assert_eq!(bulk.p50(), looped.p50());
        assert_eq!(bulk.p99(), looped.p99());
        assert_eq!(bulk.min(), looped.min());
        assert_eq!(bulk.max(), looped.max());
    }

    #[test]
    fn position_range_handles_single_position_and_zero_offset() {
        let mut h = LogHistogram::new();
        record_position_range(&mut h, 0, 3, 7, 7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 21);
    }
}
