//! The placement scheduler: bin-packing roles onto the heterogeneous
//! inventory by resource fit and tenant weight.
//!
//! Two policies share one interface. **Best-fit** is the Harmonia
//! scheduler: it checks real shell-tailoring fit per model, claims the
//! fastest fitting devices first, and provisions until the claimed
//! capacity covers the role's peak demand at the tenant's
//! weight-scaled target utilization. **Random** is the ablation
//! baseline: spec-blind, it sizes replica counts as if every device
//! were the fastest fitting model and scatters them uniformly — on a
//! heterogeneous fleet that sustains >1 utilization on the slower
//! models through the diurnal peak, which is exactly the fleet-p99
//! blow-up `BENCH_fleet.json` quantifies.

use crate::catalog::RoleClass;
use crate::inventory::{device_speed, Inventory};
use harmonia_hw::device::{catalog as hw_catalog, DeviceId};
use harmonia_host::migration::migration_report;
use harmonia_sim::{Picos, SplitMix64};
use std::sync::OnceLock;

/// Placement policy selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Capacity-aware best-fit bin-packing (the Harmonia scheduler).
    BestFit,
    /// Spec-blind uniform scatter (the ablation baseline).
    Random,
}

impl PlacementPolicy {
    /// Stable lowercase name, used in reports and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::BestFit => "bestfit",
            PlacementPolicy::Random => "random",
        }
    }

    /// Reads [`crate::FLEET_POLICY_ENV`] (`bestfit`/`random`,
    /// case-insensitive); unset or unrecognized values fall back to
    /// best-fit.
    pub fn from_env() -> PlacementPolicy {
        match std::env::var(crate::FLEET_POLICY_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("random") => PlacementPolicy::Random,
            _ => PlacementPolicy::BestFit,
        }
    }
}

/// One role→device assignment decided by the scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Index into the role catalog.
    pub role: usize,
    /// Device index in the inventory.
    pub device: u32,
}

/// Placement failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// A role's peak demand cannot be covered by the devices it fits.
    InsufficientCapacity {
        /// The role that could not be placed.
        role: &'static str,
        /// Peak per-tick command demand that needed covering.
        demand: u64,
        /// Per-tick capacity of every fitting device combined.
        available: u64,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientCapacity { role, demand, available } => write!(
                f,
                "role {role}: peak demand {demand} cmds/tick exceeds fitting capacity {available}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Places every role onto the inventory, returning assignments in
/// deterministic `(role, device)` order.
///
/// `peaks[r]` is role `r`'s peak per-tick command demand (from
/// [`crate::DiurnalTraffic::peak_per_role`]). Both policies leave
/// unclaimed devices as spares for failure recovery.
pub fn place(
    policy: PlacementPolicy,
    inventory: &Inventory,
    roles: &[RoleClass],
    peaks: &[u64],
    seed: u64,
) -> Result<Vec<Assignment>, PlacementError> {
    match policy {
        PlacementPolicy::BestFit => place_best_fit(inventory, roles, peaks),
        PlacementPolicy::Random => place_random(inventory, roles, peaks, seed),
    }
}

/// Best-fit: hardest roles first (largest peak demand, ties by name),
/// fastest fitting devices first, claim until the claimed capacity at
/// the tenant's target utilization covers the peak.
fn place_best_fit(
    inventory: &Inventory,
    roles: &[RoleClass],
    peaks: &[u64],
) -> Result<Vec<Assignment>, PlacementError> {
    let mut order: Vec<usize> = (0..roles.len()).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(peaks[r]), roles[r].name));
    let mut claimed = vec![false; inventory.devices.len()];
    let mut out = Vec::new();
    for r in order {
        let role = &roles[r];
        // Fitting, unclaimed devices, fastest model first (stable by
        // index within a model).
        let mut candidates: Vec<u32> = inventory
            .devices
            .iter()
            .filter(|d| !claimed[d.index as usize] && role.fits(d.model))
            .map(|d| d.index)
            .collect();
        candidates.sort_by_key(|&i| {
            let m = inventory.devices[i as usize].model;
            (std::cmp::Reverse(device_speed(m)), i)
        });
        // Claim until capacity × target_util covers the peak.
        let need = peaks[r].saturating_mul(1_000_000);
        let mut covered = 0u64; // capacity × util, in ppm-commands
        let mut available = 0u64;
        for &i in &candidates {
            available += role.capacity_per_tick(device_speed(inventory.devices[i as usize].model));
        }
        for &i in &candidates {
            if covered >= need && !out.is_empty() {
                // Every role claims at least one device even at zero
                // demand, so the role stays routable.
                if out.iter().any(|a: &Assignment| a.role == r) {
                    break;
                }
            }
            let cap = role.capacity_per_tick(device_speed(inventory.devices[i as usize].model));
            claimed[i as usize] = true;
            out.push(Assignment { role: r, device: i });
            covered = covered.saturating_add(cap.saturating_mul(role.target_util_ppm()));
        }
        if covered < need {
            return Err(PlacementError::InsufficientCapacity {
                role: role.name,
                demand: peaks[r],
                available,
            });
        }
    }
    out.sort_by_key(|a| (a.role, a.device));
    Ok(out)
}

/// Random: spec-blind. Replica counts are sized as if every claimed
/// device served at the fleet's nominal (fastest-model) rate — the
/// scheduler is blind to per-model speeds — and devices are drawn
/// uniformly from the unclaimed pool, fit-checked only at the last
/// moment because an unfittable assignment would not even deploy.
fn place_random(
    inventory: &Inventory,
    roles: &[RoleClass],
    peaks: &[u64],
    seed: u64,
) -> Result<Vec<Assignment>, PlacementError> {
    let mut rng = SplitMix64::new(seed ^ 0x524e_444f_4d); // "RNDOM"
    let mut order: Vec<usize> = (0..roles.len()).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(peaks[r]), roles[r].name));
    let mut claimed = vec![false; inventory.devices.len()];
    let mut out = Vec::new();
    for r in order {
        let role = &roles[r];
        // Spec-blind sizing: the baseline assumes every card serves at
        // the nominal "catalog speed" — the fastest model in the fleet —
        // with no idea the device it lands on may be far slower.
        let nominal_speed = DeviceId::ALL.iter().map(|&m| device_speed(m)).max().unwrap_or(1);
        let optimistic_cap = role.capacity_per_tick(nominal_speed);
        let want =
            (peaks[r].saturating_mul(1_000_000)).div_ceil(optimistic_cap * role.target_util_ppm());
        let want = want.max(1) as usize;
        let mut fitting: Vec<u32> = inventory
            .devices
            .iter()
            .filter(|d| !claimed[d.index as usize] && role.fits(d.model))
            .map(|d| d.index)
            .collect();
        if fitting.len() < want {
            let available: u64 = fitting
                .iter()
                .map(|&i| role.capacity_per_tick(device_speed(inventory.devices[i as usize].model)))
                .sum();
            return Err(PlacementError::InsufficientCapacity {
                role: role.name,
                demand: peaks[r],
                available,
            });
        }
        for _ in 0..want {
            let k = rng.next_below(fitting.len() as u64) as usize;
            let i = fitting.swap_remove(k);
            claimed[i as usize] = true;
            out.push(Assignment { role: r, device: i });
        }
    }
    out.sort_by_key(|a| (a.role, a.device));
    Ok(out)
}

/// Migration/redeploy stall cost: a fixed deploy base plus a per-command
/// modification charge from the real `migration.rs` diff.
pub const DEPLOY_BASE_PS: Picos = 50_000_000_000; // 50 ms
/// Per-`cmd_modification` stall charge.
pub const CMD_MOD_PS: Picos = 10_000_000_000; // 10 ms

/// Precomputed migration-cost matrix over `(model, role) → (model, role)`
/// pairs, from the real tailoring + LCS diff in
/// `harmonia_host::migration`. Infeasible pairs (either side does not
/// tailor) are `None`.
pub struct MigrationMatrix {
    costs: Vec<Option<Picos>>,
    n_roles: usize,
}

impl MigrationMatrix {
    fn index(&self, from_model: DeviceId, from_role: usize, to_model: DeviceId, to_role: usize) -> usize {
        (((from_model as usize * self.n_roles + from_role) * 4) + to_model as usize) * self.n_roles
            + to_role
    }

    /// Stall cost of migrating a role between two placements, `None`
    /// when either end does not tailor.
    pub fn cost(
        &self,
        from_model: DeviceId,
        from_role: usize,
        to_model: DeviceId,
        to_role: usize,
    ) -> Option<Picos> {
        self.costs[self.index(from_model, from_role, to_model, to_role)]
    }
}

/// The process-global migration matrix for the standard catalog,
/// computed once (≈ 96 `migration_report` calls) on first use.
pub fn migration_matrix(roles: &[RoleClass]) -> &'static MigrationMatrix {
    static MATRIX: OnceLock<MigrationMatrix> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let n = roles.len();
        let mut costs = vec![None; 4 * n * 4 * n];
        for &fm in &DeviceId::ALL {
            let from_dev = hw_catalog::device(fm);
            for (fr, from_role) in roles.iter().enumerate() {
                for &tm in &DeviceId::ALL {
                    let to_dev = hw_catalog::device(tm);
                    for (tr, to_role) in roles.iter().enumerate() {
                        let idx = (((fm as usize * n + fr) * 4) + tm as usize) * n + tr;
                        costs[idx] =
                            migration_report(&from_dev, &from_role.spec, &to_dev, &to_role.spec)
                                .ok()
                                .map(|rep| {
                                    DEPLOY_BASE_PS + rep.cmd_modifications as Picos * CMD_MOD_PS
                                });
                    }
                }
            }
        }
        MigrationMatrix { costs, n_roles: n }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use crate::traffic::DiurnalTraffic;

    fn demo(n: usize) -> (Inventory, Vec<RoleClass>, Vec<u64>) {
        let inv = Inventory::sample(n, 5);
        let roles = standard_catalog();
        let gen = DiurnalTraffic::new(n as u64 * crate::USERS_PER_DEVICE, 5);
        let schedule = gen.schedule(crate::TICKS_PER_DAY, &roles);
        let peaks = DiurnalTraffic::peak_per_role(&schedule, &roles);
        (inv, roles, peaks)
    }

    #[test]
    fn best_fit_respects_fit_and_is_deterministic() {
        let (inv, roles, peaks) = demo(256);
        let a = place(PlacementPolicy::BestFit, &inv, &roles, &peaks, 1).unwrap();
        let b = place(PlacementPolicy::BestFit, &inv, &roles, &peaks, 99).unwrap();
        assert_eq!(a, b, "best-fit ignores the seed");
        for asg in &a {
            assert!(roles[asg.role].fits(inv.devices[asg.device as usize].model));
        }
        // No device claimed twice.
        let mut seen = std::collections::HashSet::new();
        assert!(a.iter().all(|asg| seen.insert(asg.device)));
    }

    #[test]
    fn best_fit_leaves_spares() {
        let (inv, roles, peaks) = demo(256);
        let a = place(PlacementPolicy::BestFit, &inv, &roles, &peaks, 1).unwrap();
        assert!(a.len() < inv.devices.len(), "placement should not claim the whole fleet");
    }

    #[test]
    fn random_is_seeded_and_fit_checked() {
        let (inv, roles, peaks) = demo(256);
        let a = place(PlacementPolicy::Random, &inv, &roles, &peaks, 7).unwrap();
        let b = place(PlacementPolicy::Random, &inv, &roles, &peaks, 7).unwrap();
        assert_eq!(a, b, "same seed, same scatter");
        for asg in &a {
            assert!(roles[asg.role].fits(inv.devices[asg.device as usize].model));
        }
        let c = place(PlacementPolicy::Random, &inv, &roles, &peaks, 8).unwrap();
        assert_ne!(a, c, "different seed, different scatter");
    }

    #[test]
    fn policy_env_parses() {
        assert_eq!(PlacementPolicy::BestFit.name(), "bestfit");
        assert_eq!(PlacementPolicy::Random.name(), "random");
    }

    #[test]
    fn tiny_fleet_reports_insufficient_capacity() {
        let inv = Inventory::sample(4, 1);
        let roles = standard_catalog();
        // A demand far beyond what four devices can serve.
        let peaks = vec![u64::MAX / 2_000_000; roles.len()];
        let err = place(PlacementPolicy::BestFit, &inv, &roles, &peaks, 1).unwrap_err();
        let PlacementError::InsufficientCapacity { demand, .. } = err;
        assert!(demand > 0);
    }

    #[test]
    fn migration_matrix_has_feasible_and_infeasible_pairs() {
        let roles = standard_catalog();
        let m = migration_matrix(&roles);
        let retrieval = roles.iter().position(|r| r.name == "retrieval").unwrap();
        let l4lb = roles.iter().position(|r| r.name == "l4lb").unwrap();
        // l4lb A→B is a real migration with a cost.
        let c = m.cost(DeviceId::A, l4lb, DeviceId::B, l4lb).unwrap();
        assert!(c >= DEPLOY_BASE_PS);
        // retrieval cannot land on C (no DRAM at all).
        assert!(m.cost(DeviceId::A, retrieval, DeviceId::C, retrieval).is_none());
    }
}
