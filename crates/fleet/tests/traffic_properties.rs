//! Property suite for the diurnal traffic generator: conservation of
//! injected load, seed reproducibility, and byte-identical schedules at
//! any `HARMONIA_THREADS`. Counterexample tapes are committed under
//! `tests/regressions/`.

use harmonia_fleet::catalog::standard_catalog;
use harmonia_fleet::traffic::{DiurnalTraffic, JITTER_PPM, PEAK_REQS_PER_USER_PER_TICK};
use harmonia_fleet::TICKS_PER_DAY;
use harmonia_sim::exec::THREADS_ENV;
use harmonia_testkit::prelude::*;
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

forall! {
    /// Conservation: the per-role command split always sums to the
    /// exact fan-out of the tick's requests — the integer split loses
    /// nothing — and the jittered request count stays inside the ±1 %
    /// band around the diurnal baseline.
    #[test]
    fn tick_load_conserves_the_fanout(
        users in 0u64..3_000_000,
        seed in 0u64..u64::MAX,
        tick in 0u32..TICKS_PER_DAY,
    ) {
        let roles = standard_catalog();
        let load = DiurnalTraffic::new(users, seed).tick_load(tick, &roles);
        // Reconstruct the per-role request split the generator used.
        let mut req_split: Vec<u64> = roles
            .iter()
            .map(|r| load.requests * r.share_ppm / 1_000_000)
            .collect();
        req_split[0] += load.requests - req_split.iter().sum::<u64>();
        let want: u64 = req_split
            .iter()
            .zip(&roles)
            .map(|(&q, r)| q * r.cmds_per_req)
            .sum();
        prop_assert_eq!(load.per_role.iter().sum::<u64>(), want);
        let base =
            users * PEAK_REQS_PER_USER_PER_TICK * DiurnalTraffic::level_per_mille(tick) / 1000;
        let lo = base * (1_000_000 - JITTER_PPM) / 1_000_000;
        let hi = base * (1_000_000 + JITTER_PPM) / 1_000_000;
        prop_assert!(
            load.requests >= lo && load.requests <= hi,
            "requests {} outside jitter band [{lo}, {hi}]",
            load.requests
        );
    }

    /// Seed reproducibility: the whole day is a pure function of
    /// `(users, seed)`, and each schedule entry equals the pure
    /// per-tick function — history never leaks between ticks.
    #[test]
    fn schedule_is_a_pure_function_of_the_seed(
        users in 1u64..2_000_000,
        seed in 0u64..u64::MAX,
    ) {
        let roles = standard_catalog();
        let gen = DiurnalTraffic::new(users, seed);
        let a = gen.schedule(TICKS_PER_DAY, &roles);
        let b = DiurnalTraffic::new(users, seed).schedule(TICKS_PER_DAY, &roles);
        prop_assert_eq!(&a, &b);
        for (t, load) in a.iter().enumerate() {
            prop_assert_eq!(load, &gen.tick_load(t as u32, &roles), "tick {}", t);
        }
    }

    /// The diurnal level is bounded by the curve's trough and peak and
    /// wraps cleanly at the day boundary.
    #[test]
    fn level_is_bounded_and_periodic(tick in 0u32..10 * TICKS_PER_DAY) {
        let level = DiurnalTraffic::level_per_mille(tick);
        prop_assert!((300..=1000).contains(&level), "level {level}");
        prop_assert_eq!(level, DiurnalTraffic::level_per_mille(tick % TICKS_PER_DAY));
    }
}

/// The ordered pool keeps the schedule byte-identical at any thread
/// count: `HARMONIA_THREADS=1` (the serial path) and `=4` must render
/// the exact same bytes.
#[test]
fn schedule_is_byte_identical_across_thread_counts() {
    let roles = standard_catalog();
    let render = |threads: &str| {
        with_env(&[(THREADS_ENV, Some(threads))], || {
            format!(
                "{:?}",
                DiurnalTraffic::new(750_000, 17).schedule(TICKS_PER_DAY, &roles)
            )
        })
    };
    let serial = render("1");
    let parallel = render("4");
    assert_eq!(serial, parallel);
    assert!(serial.len() > 10_000, "a real day of load was generated");
}
