//! Fleet campaign suite: kill-device and kill-rack convergence with
//! exact accounting, rolling upgrades, engine/thread byte-identity of
//! rendered reports, the fleet knobs, and the `harmonia_fleet_*`
//! metrics + SLO surface.

use harmonia_fleet::control::fleet_slos;
use harmonia_fleet::{
    FleetController, FleetSpec, PlacementPolicy, FLEET_DEVICES_ENV, FLEET_POLICY_ENV, TICK_PS,
};
use harmonia_sim::exec::THREADS_ENV;
use harmonia_sim::metrics::{evaluate_slos, MetricsRegistry};
use harmonia_sim::ENGINE_ENV;
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

fn fleet(devices: usize, policy: PlacementPolicy) -> FleetController {
    FleetController::new(FleetSpec::new(devices, 7, policy)).expect("placement feasible")
}

#[test]
fn kill_device_mid_traffic_converges_with_exact_accounting() {
    let mut f = fleet(192, PlacementPolicy::BestFit);
    let victim = f.assignments()[0].device;
    f.kill_device(victim, 150);
    let report = f.run();
    assert!(report.accounting.exact(), "books must balance");
    assert_eq!(report.accounting.pending, 0, "campaign must drain");
    assert!(report.accounting.migrated > 0, "victim's queue rescheduled");
    assert!(
        report.accounting.migrated < report.accounting.injected / 10,
        "a single kill should move a sliver of the day, not {} of {}",
        report.accounting.migrated,
        report.accounting.injected
    );
    assert_eq!(report.first_fault_tick, Some(150));
    assert!(
        report.rebalance_ticks <= 8,
        "rebalance after one kill should settle within a few ticks, took {}",
        report.rebalance_ticks
    );
}

#[test]
fn rack_kill_reschedules_a_whole_failure_domain() {
    let mut f = fleet(192, PlacementPolicy::BestFit);
    f.kill_rack(1, 120);
    let report = f.run();
    assert!(report.accounting.exact());
    assert_eq!(report.accounting.pending, 0);
    assert_eq!(report.kills, 32, "every card in the rack died");
    assert!(report.accounting.migrated > 0);
    // Work still completes: the day's full injected load executes.
    assert_eq!(report.accounting.executed, report.accounting.injected);
}

#[test]
fn rolling_upgrade_completes_under_load() {
    let mut f = fleet(128, PlacementPolicy::BestFit);
    f.schedule_upgrade(20, 3, 8);
    let report = f.run();
    assert!(report.accounting.exact());
    assert_eq!(report.accounting.pending, 0);
    let u = report.upgrade.expect("scheduled");
    assert_eq!(u.devices_upgraded, 128);
    assert!(u.waves >= 16, "128 devices in waves of 8");
    assert!(u.completed_tick.is_some());
}

#[test]
fn best_fit_beats_random_on_fleet_p99() {
    let best = fleet(128, PlacementPolicy::BestFit).run();
    let random = fleet(128, PlacementPolicy::Random).run();
    assert!(best.accounting.exact() && random.accounting.exact());
    assert!(
        best.fleet_latency.p99() <= TICK_PS,
        "best-fit p99 {} must fit inside one tick {}",
        best.fleet_latency.p99(),
        TICK_PS
    );
    assert!(
        random.fleet_latency.p99() >= 2 * best.fleet_latency.p99(),
        "spec-blind placement should blow the tail: random p99 {} vs best-fit {}",
        random.fleet_latency.p99(),
        best.fleet_latency.p99()
    );
}

#[test]
fn campaign_render_is_byte_identical_across_the_engine_thread_matrix() {
    let run_one = || {
        let mut f = fleet(96, PlacementPolicy::BestFit);
        let victim = f.assignments()[0].device;
        f.kill_device(victim, 150);
        f.schedule_upgrade(40, 2, 16);
        f.run().render()
    };
    let mut renders = Vec::new();
    for engine in ["cycle", "event"] {
        for threads in ["1", "4"] {
            let r = with_env(
                &[(ENGINE_ENV, Some(engine)), (THREADS_ENV, Some(threads))],
                run_one,
            );
            renders.push((engine, threads, r));
        }
    }
    let (_, _, reference) = &renders[0];
    for (engine, threads, r) in &renders[1..] {
        assert_eq!(
            r, reference,
            "render diverged at engine={engine} threads={threads}"
        );
    }
    assert!(reference.contains("exact=yes"));
}

#[test]
fn fleet_knobs_select_size_and_policy() {
    let spec = with_env(
        &[(FLEET_DEVICES_ENV, Some("64")), (FLEET_POLICY_ENV, Some("random"))],
        FleetSpec::from_env,
    );
    assert_eq!(spec.devices, 64);
    assert_eq!(spec.policy, PlacementPolicy::Random);
    assert_eq!(spec.users, 64 * harmonia_fleet::USERS_PER_DEVICE);
    let default_spec = with_env(
        &[(FLEET_DEVICES_ENV, None), (FLEET_POLICY_ENV, None)],
        FleetSpec::from_env,
    );
    assert_eq!(default_spec.devices, harmonia_fleet::DEFAULT_FLEET_DEVICES);
    assert_eq!(default_spec.policy, PlacementPolicy::BestFit);
    // Garbage values fall back rather than crash the control plane.
    let garbage = with_env(
        &[(FLEET_DEVICES_ENV, Some("not-a-number")), (FLEET_POLICY_ENV, Some("mystery"))],
        FleetSpec::from_env,
    );
    assert_eq!(garbage.devices, harmonia_fleet::DEFAULT_FLEET_DEVICES);
    assert_eq!(garbage.policy, PlacementPolicy::BestFit);
}

#[test]
fn campaign_publishes_fleet_metrics_and_meets_the_slos() {
    let mut f = fleet(128, PlacementPolicy::BestFit);
    let victim = f.assignments()[0].device;
    f.kill_device(victim, 100);
    let report = f.run();
    let registry = MetricsRegistry::enabled();
    report.publish_metrics(&registry);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("harmonia_fleet_cmds_injected"), report.accounting.injected);
    assert_eq!(snap.counter("harmonia_fleet_cmds_executed"), report.accounting.executed);
    assert_eq!(snap.gauge("harmonia_fleet_devices"), 128);
    assert_eq!(
        snap.histogram("harmonia_fleet_latency_ps").count(),
        report.fleet_latency.count()
    );
    let prom = snap.export_prometheus();
    assert!(prom.lines().any(|l| l.starts_with("harmonia_fleet_")), "{prom}");
    let slos = evaluate_slos(&snap, &fleet_slos());
    assert!(
        slos.results.iter().all(|r| r.pass),
        "best-fit with one kill must meet the fleet SLOs:\n{}",
        slos.render()
    );
}

#[test]
fn random_placement_blows_the_p99_slo() {
    let report = fleet(128, PlacementPolicy::Random).run();
    let registry = MetricsRegistry::enabled();
    report.publish_metrics(&registry);
    let slos = evaluate_slos(&registry.snapshot(), &fleet_slos());
    let p99 = slos
        .results
        .iter()
        .find(|r| r.name == "fleet-p99-within-tick")
        .expect("objective present");
    assert!(!p99.pass, "spec-blind placement must fail the tick-latency SLO");
}
