//! Property suites for the event engine's timing-wheel queue.
//!
//! The differential harness in `crates/bench` proves the *engines* agree;
//! these properties prove the queue underneath honours its total-order
//! contract — `(time, source, seq)`, matching `MultiClock`'s
//! registration-order tie-break — under arbitrary schedules, including
//! schedules that straddle the wheel window and spill into the overflow
//! calendar.

use harmonia_sim::{EventKey, EventQueue};
use harmonia_testkit::prelude::*;
use std::collections::BTreeSet;

/// Drains the queue, asserting each popped key agrees with `peek_key`.
fn drain<T>(q: &mut EventQueue<T>) -> Vec<(EventKey, T)> {
    let mut out = Vec::new();
    loop {
        let peeked = q.peek_key();
        match q.pop() {
            Some((key, payload)) => {
                assert_eq!(peeked, Some(key), "peek/pop disagree");
                out.push((key, payload));
            }
            None => {
                assert_eq!(peeked, None);
                return out;
            }
        }
    }
}

forall! {
    /// Pop-min ordering: whatever the schedule order, events come back
    /// sorted by the full `(at, source, seq)` key, none lost.
    #[test]
    fn event_queue_pops_in_key_order(
        events in collection::vec((0u64..2_000_000, 0u32..8), 0..200),
    ) {
        let mut q = EventQueue::new();
        for &(at, source) in &events {
            q.schedule(at, source, (at, source));
        }
        let popped = drain(&mut q);
        prop_assert_eq!(popped.len(), events.len());
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0, "out of order: {:?}", pair);
        }
        // Every popped payload matches its key (no cross-wiring).
        for (key, (at, source)) in &popped {
            prop_assert_eq!(key.at, *at);
            prop_assert_eq!(key.source, *source);
        }
    }

    /// Stable tie-break: under heavy time collisions the pop order equals
    /// a stable sort by `(at, source)` — insertion order (seq) breaks the
    /// remaining ties, exactly like `MultiClock`'s registration rule.
    #[test]
    fn event_queue_tie_break_is_stable(
        events in collection::vec((0u64..4, 0u32..3), 0..120),
    ) {
        let mut q = EventQueue::new();
        for (i, &(slot, source)) in events.iter().enumerate() {
            // Four distinct times × three sources: nearly everything ties.
            q.schedule(slot * 1_000, source, i);
        }
        let popped = drain(&mut q);
        let mut expected: Vec<(u64, u32, usize)> = events
            .iter()
            .enumerate()
            .map(|(i, &(slot, source))| (slot * 1_000, source, i))
            .collect();
        expected.sort_by_key(|&(at, source, _)| (at, source)); // stable
        let got: Vec<(u64, u32, usize)> = popped
            .iter()
            .map(|&(key, i)| (key.at, key.source, i))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Schedule-while-popping: interleaved schedules and pops agree with
    /// a sorted-set mirror at every step. New events are scheduled
    /// relative to the advancing `now`, so pops unlock later schedules.
    #[test]
    fn event_queue_schedule_while_popping(
        ops in collection::vec((any::<bool>(), 0u64..100_000, 0u32..4), 0..300),
    ) {
        let mut q = EventQueue::new();
        let mut mirror: BTreeSet<(u64, u32, u64)> = BTreeSet::new();
        let mut seq = 0u64;
        for &(push, delta, source) in &ops {
            if push || mirror.is_empty() {
                let at = q.now() + delta;
                let key = q.schedule(at, source, ());
                prop_assert_eq!((key.at, key.source), (at, source));
                mirror.insert((at, source, key.seq));
                seq += 1;
                let _ = seq;
            } else {
                let (key, ()) = q.pop().expect("mirror non-empty");
                let min = mirror.pop_first().expect("mirror non-empty");
                prop_assert_eq!((key.at, key.source, key.seq), min);
            }
            prop_assert_eq!(q.len(), mirror.len());
        }
        // Drain the rest against the mirror.
        while let Some((key, ())) = q.pop() {
            let min = mirror.pop_first().expect("queue had more than mirror");
            prop_assert_eq!((key.at, key.source, key.seq), min);
        }
        prop_assert!(mirror.is_empty(), "mirror had more than queue");
    }

    /// Wheel-overflow promotion: tiny wheel geometries force most events
    /// through the overflow calendar and back into the wheel as the
    /// cursor advances; ordering must survive the round trip.
    #[test]
    fn event_queue_wheel_overflow_promotion(
        slot_shift in 0u32..6,
        slots_log2 in 1u32..5,
        events in collection::vec(0u64..1_048_576, 1..150),
    ) {
        let mut q = EventQueue::with_geometry(slot_shift, 1usize << slots_log2);
        for (i, &at) in events.iter().enumerate() {
            q.schedule(at, (i % 5) as u32, i);
        }
        let popped = drain(&mut q);
        prop_assert_eq!(popped.len(), events.len());
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0, "out of order: {:?}", pair);
        }
        // All payloads accounted for.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..events.len()).collect::<Vec<_>>());
    }
}
