//! Fault/trace interaction across engines: skip-ahead must never jump
//! over a scheduled `FaultPlan` event or drop a `TraceCollector` span
//! boundary.
//!
//! The scenario is a link watchdog: frames cross a 100 MHz datapath once
//! per microsecond; every visited edge polls the link state and traces
//! the first edge that observes each transition; frames consult the
//! seeded ECC rate. The cycle engine visits every edge. The event engine
//! sleeps between frames while the link is healthy and polls edge-by-edge
//! while it is down — and it only stays byte-identical because
//! `pin_plan` forces a wake at every scheduled fault timestamp, so the
//! clock resumes in time to observe each transition on the *same edge*
//! the cycle engine does. The final test removes the pins and shows the
//! outputs diverge: the pins are load-bearing, not decoration.

use harmonia_sim::event::{EventClock, Wake};
use harmonia_sim::{
    ClockDomain, ClockEdge, FaultKind, FaultPlan, FaultRates, FaultReport, Freq, MultiClock,
    Trace, TraceCollector, TraceEventKind,
};

const WINDOW_PS: u64 = 20_000_000; // 20 µs
const PERIOD_PS: u64 = 10_000; // 100 MHz
const FRAME_EVERY_CYCLES: u64 = 100; // one frame per µs

fn plan() -> FaultPlan {
    FaultPlan::new()
        .at(3_456_789, FaultKind::LinkDown) // deliberately off any edge
        .at(7_654_321, FaultKind::LinkUp)
        .at(11_111_111, FaultKind::EccError)
        .with_rates(
            0x5eed_cafe,
            FaultRates {
                ecc: 0.10,
                ..FaultRates::default()
            },
        )
}

/// The per-edge watchdog body, shared verbatim by both engines.
struct Watchdog {
    injector: harmonia_sim::FaultInjector,
    trace: TraceCollector,
    link_was_up: bool,
    frames_sent: u64,
    frames_lost: u64,
    edges_visited: u64,
}

impl Watchdog {
    fn new(plan: FaultPlan) -> Self {
        Watchdog {
            injector: plan.injector(),
            trace: TraceCollector::enabled(),
            link_was_up: true,
            frames_sent: 0,
            frames_lost: 0,
            edges_visited: 0,
        }
    }

    /// Polls the link, traces transitions at the observing edge, and on
    /// frame edges sends one frame. Returns the link state.
    fn on_edge(&mut self, edge: ClockEdge) -> bool {
        self.edges_visited += 1;
        let up = self.injector.link_up(edge.at_ps);
        if up != self.link_was_up {
            let kind = if up {
                FaultKind::LinkUp
            } else {
                FaultKind::LinkDown
            };
            self.trace
                .instant(edge.at_ps, TraceEventKind::FaultInjected { kind });
            self.link_was_up = up;
        }
        if edge.cycle % FRAME_EVERY_CYCLES == 0 {
            self.frames_sent += 1;
            if up {
                self.trace.span(
                    edge.at_ps,
                    PERIOD_PS,
                    TraceEventKind::MacFrame {
                        bytes: 64,
                        lost: false,
                    },
                );
                if self.injector.ecc_error(edge.at_ps) {
                    self.trace.span(edge.at_ps, 2 * PERIOD_PS, TraceEventKind::EccScrub);
                }
            } else {
                self.frames_lost += 1;
                self.trace.span(
                    edge.at_ps,
                    0,
                    TraceEventKind::MacFrame {
                        bytes: 64,
                        lost: true,
                    },
                );
            }
        }
        up
    }

    fn finish(self) -> (Trace, FaultReport, u64, u64, u64) {
        (
            self.trace.take(),
            self.injector.report(),
            self.frames_sent,
            self.frames_lost,
            self.edges_visited,
        )
    }
}

fn run_cycle() -> (Trace, FaultReport, u64, u64, u64) {
    let mut dog = Watchdog::new(plan());
    let mut mc = MultiClock::new();
    mc.add(ClockDomain::new(Freq::mhz(100)));
    for edge in mc.edges_until(WINDOW_PS) {
        dog.on_edge(edge);
    }
    dog.finish()
}

fn run_event(with_pins: bool) -> (Trace, FaultReport, u64, u64, u64) {
    let scenario = plan();
    let mut dog = Watchdog::new(scenario.clone());
    let mut ec = EventClock::new();
    let clk = ec.add(ClockDomain::new(Freq::mhz(100)));
    if with_pins {
        ec.pin_plan(&scenario);
    }
    while let Some(wake) = ec.next_wake_before(WINDOW_PS) {
        match wake {
            Wake::Edge(edge) => {
                let up = dog.on_edge(edge);
                if up {
                    // Healthy and idle until the next frame: every skipped
                    // edge would only poll an unchanging link. Sleep; the
                    // fault pins below are what guarantee we still wake in
                    // time for the next transition's observing edge.
                    let next_frame =
                        (edge.cycle / FRAME_EVERY_CYCLES + 1) * FRAME_EVERY_CYCLES * PERIOD_PS;
                    ec.pause(clk);
                    ec.resume_at(clk, next_frame);
                }
                // Link down: poll every edge (degraded mode), exactly like
                // the cycle engine, so down-consult tallies match.
            }
            Wake::Pin(at) => {
                // A scheduled fault fired somewhere in a skipped region:
                // resume edge-stepping so the first edge at or after the
                // fault observes it — the same edge the cycle engine uses.
                ec.resume_at(clk, at);
            }
        }
    }
    dog.finish()
}

#[test]
fn engines_agree_event_by_event_with_pins() {
    let (ct, cr, cs, cl, c_edges) = run_cycle();
    let (et, er, es, el, e_edges) = run_event(true);

    // Fault campaign outcome: identical report, frame for frame.
    assert_eq!(cr, er, "fault reports diverged");
    assert_eq!((cs, cl), (es, el), "frame accounting diverged");

    // Trace: identical event-by-event (times, durations, kinds, order) —
    // no span boundary was dropped or displaced by skip-ahead.
    assert_eq!(ct.len(), et.len(), "trace lengths diverged");
    for (a, b) in ct.events().iter().zip(et.events()) {
        assert_eq!(a, b, "trace event diverged");
    }

    // Exports are byte-identical too.
    assert_eq!(ct.export_text(), et.export_text());
    assert_eq!(ct.export_perfetto(), et.export_perfetto());

    // And the event engine actually skipped: it visited the ~420 edges of
    // the down window plus one per frame, not all 2000.
    assert_eq!(c_edges, WINDOW_PS / PERIOD_PS);
    assert!(
        e_edges < c_edges / 3,
        "event engine visited {e_edges} of {c_edges} edges — no skip-ahead happened"
    );
}

#[test]
fn fault_pins_are_load_bearing() {
    // Without pinning the FaultPlan timestamps, the sleeping engine
    // overshoots the link-down instant and observes the transition on a
    // later edge: the trace timestamps and the down-consult tally both
    // drift. This is exactly the failure mode `pin_plan` exists to stop.
    let (ct, cr, ..) = run_cycle();
    let (et, er, ..) = run_event(false);
    assert_ne!(
        ct.export_text(),
        et.export_text(),
        "unpinned run unexpectedly matched — the pin test lost its teeth"
    );
    assert_ne!(cr, er, "unpinned fault report unexpectedly matched");
}

#[test]
fn scheduled_faults_all_fire_under_both_engines() {
    for (_, report, ..) in [run_cycle(), run_event(true)] {
        assert_eq!(report.link_downs, 1, "LinkDown must fire exactly once");
        assert!(
            report.link_down_hits > 0,
            "down window was never observed"
        );
        assert!(report.ecc_errors >= 1, "armed EccError never delivered");
    }
}
