//! Property-based tests for the simulation kernel invariants.

use harmonia_sim::async_fifo::{bin_to_gray, gray_to_bin};
use harmonia_sim::{AsyncFifo, ClockDomain, Freq, MultiClock, Pipeline, SyncFifo};
use harmonia_testkit::prelude::*;

forall! {
    /// Gray coding is a bijection on u64.
    #[test]
    fn gray_bijection(v in any::<u64>()) {
        prop_assert_eq!(gray_to_bin(bin_to_gray(v)), v);
    }

    /// Consecutive values have gray codes at Hamming distance 1 — the
    /// property that makes async-FIFO pointer synchronization safe.
    #[test]
    fn gray_hamming_distance_one(v in 0u64..u64::MAX) {
        let d = bin_to_gray(v) ^ bin_to_gray(v + 1);
        prop_assert_eq!(d.count_ones(), 1);
    }

    /// A sync FIFO delivers exactly the accepted items, in order.
    #[test]
    fn sync_fifo_order(cap in 1usize..32, ops in collection::vec(any::<bool>(), 0..200)) {
        let mut f = SyncFifo::new(cap);
        let mut next = 0u32;
        let mut accepted = Vec::new();
        let mut received = Vec::new();
        for push in ops {
            if push {
                if f.push(next).is_ok() {
                    accepted.push(next);
                }
                next += 1;
            } else if let Some(v) = f.pop() {
                received.push(v);
            }
        }
        received.extend(f.drain());
        prop_assert_eq!(received, accepted);
    }

    /// The async FIFO never loses, duplicates or reorders data across
    /// arbitrary frequency ratios and phases.
    #[test]
    fn async_fifo_integrity(
        wfreq in 50u64..500,
        rfreq in 50u64..500,
        phase in 0u64..10_000,
        cap_log2 in 1u32..7,
    ) {
        let cap = 1usize << cap_log2;
        let mut fifo = AsyncFifo::new(cap);
        let mut mc = MultiClock::new();
        let w = mc.add(ClockDomain::new(Freq::mhz(wfreq)));
        let _r = mc.add_with_phase(ClockDomain::new(Freq::mhz(rfreq)), phase);
        let mut next = 0u64;
        let mut received = Vec::new();
        for edge in mc.edges_until(2_000_000) { // 2 µs
            if edge.clock == w {
                fifo.on_write_edge();
                if fifo.can_push() {
                    fifo.try_push(next).unwrap();
                    next += 1;
                }
            } else {
                fifo.on_read_edge();
                if let Some(v) = fifo.try_pop() {
                    received.push(v);
                }
            }
        }
        // Drain what remains.
        for _ in 0..(2 * cap + 4) {
            fifo.on_read_edge();
            if let Some(v) = fifo.try_pop() {
                received.push(v);
            }
        }
        let expected: Vec<u64> = (0..next).collect();
        prop_assert_eq!(received, expected);
    }

    /// Occupancy never exceeds capacity regardless of clock ratio.
    #[test]
    fn async_fifo_never_overflows(
        wfreq in 100u64..1000,
        _rfreq in 10u64..200,
        cap_log2 in 1u32..6,
    ) {
        let cap = 1usize << cap_log2;
        let mut fifo = AsyncFifo::new(cap);
        let mut mc = MultiClock::new();
        let w = mc.add(ClockDomain::new(Freq::mhz(wfreq)));
        for edge in mc.edges_until(1_000_000) {
            if edge.clock == w {
                fifo.on_write_edge();
                let _ = fifo.try_push(edge.cycle);
            } else {
                fifo.on_read_edge();
                let _ = fifo.try_pop();
            }
            prop_assert!(fifo.len() <= cap);
        }
        // Writer-only configuration also must saturate at capacity.
        prop_assert!(fifo.max_occupancy() <= cap);
    }

    /// Pipelines preserve order and exact latency under random gaps.
    #[test]
    fn pipeline_latency_exact(lat in 0u64..16, gaps in collection::vec(1u64..5, 1..100)) {
        let mut p = Pipeline::new(lat);
        let mut cycle = 0u64;
        let mut pushed = Vec::new();
        for (i, g) in gaps.iter().enumerate() {
            cycle += g;
            p.push(cycle, (i as u64, cycle)).unwrap();
            pushed.push((i as u64, cycle));
        }
        let mut out = Vec::new();
        while let Some(v) = p.pop(cycle + lat) {
            out.push(v);
        }
        prop_assert_eq!(out, pushed);
    }

    /// A same-or-earlier-cycle push always fails, returning the offending
    /// item and both cycles — the data the host driver surfaces as
    /// `DriverError::ResponsePath` instead of panicking.
    #[test]
    fn pipeline_push_error_reports_both_cycles(
        lat in 0u64..16,
        first in 1u64..1_000_000,
        back in 0u64..1_000,
    ) {
        let mut p = Pipeline::new(lat);
        p.push(first, 7u32).unwrap();
        let offending = first.saturating_sub(back); // <= first, always rejected
        let err = p.push(offending, 9u32).unwrap_err();
        prop_assert_eq!(err.item, 9);
        prop_assert_eq!(err.cycle, offending);
        prop_assert_eq!(err.last_push_cycle, first);
        // The rejected push leaves the pipeline untouched.
        prop_assert_eq!(p.pop(first + lat), Some(7));
        prop_assert_eq!(p.pop(first + lat + 1), None);
    }
}

/// When write bandwidth equals read bandwidth (S×M = R×U in the paper's
/// terms), a sufficiently deep async FIFO sustains full rate: the writer is
/// never back-pressured after warm-up.
#[test]
fn cdc_lossless_bandwidth_when_rates_match() {
    // Writer: 100 MHz × 4 units/beat. Reader: 400 MHz × 1 unit/beat.
    let mut fifo: AsyncFifo<[u64; 4]> = AsyncFifo::new(16);
    let mut mc = MultiClock::new();
    let w = mc.add(ClockDomain::new(Freq::mhz(100)));
    let _r = mc.add(ClockDomain::new(Freq::mhz(400)));
    let mut wstalls = 0u64;
    let mut wattempts = 0u64;
    let mut next = 0u64;
    let mut reader_buf: Vec<u64> = Vec::new();
    let mut received = 0u64;
    for edge in mc.edges_until(100_000_000) {
        // 100 µs
        if edge.clock == w {
            fifo.on_write_edge();
            wattempts += 1;
            if fifo.can_push() {
                fifo.try_push([next, next + 1, next + 2, next + 3]).unwrap();
                next += 4;
            } else {
                wstalls += 1;
            }
        } else {
            fifo.on_read_edge();
            if reader_buf.is_empty() {
                if let Some(words) = fifo.try_pop() {
                    reader_buf.extend_from_slice(&words);
                }
            }
            if !reader_buf.is_empty() {
                let v = reader_buf.remove(0);
                assert_eq!(v, received);
                received += 1;
            }
        }
    }
    assert_eq!(wstalls, 0, "writer stalled {wstalls}/{wattempts} — CDC not lossless");
    assert!(received >= next - 8, "reader fell behind: {received} of {next}");
}
