//! Deterministic parameter-sweep primitives over the env-sized pool.
//!
//! These are the entry points the evaluation harness uses: every figure
//! is a sweep over independent parameter points (packet sizes, corpus
//! exponents, devices, shell variants), and [`par_sweep`] fans such a
//! grid out to workers while keeping the output indistinguishable from
//! the serial loop it replaced.

use super::pool::WorkerPool;
use super::scope::Job;

/// Sweeps a parameter grid: applies `f` to every point, returning
/// results in grid order regardless of worker count.
///
/// ```
/// use harmonia_sim::exec::par_sweep;
///
/// let rows = par_sweep([64u32, 128, 256], |pkt| format!("{pkt} B"));
/// assert_eq!(rows, vec!["64 B", "128 B", "256 B"]);
/// ```
pub fn par_sweep<T, R, F>(grid: impl IntoIterator<Item = T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    WorkerPool::from_env().map(grid, f)
}

/// Alias of [`par_sweep`] for item collections that aren't grids
/// (mirrors the `map` naming the call sites replaced).
pub fn par_map<T, R, F>(items: impl IntoIterator<Item = T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_sweep(items, f)
}

/// Runs heterogeneous boxed tasks (see [`super::job`]) concurrently,
/// returning results in submission order.
pub fn par_tasks<'a, R: Send + 'a>(tasks: Vec<Job<'a, R>>) -> Vec<R> {
    WorkerPool::from_env().run(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_keeps_grid_order() {
        let grid: Vec<(u32, u32)> = (0..6).flat_map(|a| (0..4).map(move |b| (a, b))).collect();
        let want: Vec<u32> = grid.iter().map(|&(a, b)| a * 10 + b).collect();
        assert_eq!(par_sweep(grid, |(a, b)| a * 10 + b), want);
    }

    #[test]
    fn map_matches_sweep() {
        let items = vec![3u8, 1, 2];
        assert_eq!(par_map(items.clone(), |x| x + 1), par_sweep(items, |x| x + 1));
    }

    #[test]
    fn tasks_reassemble_in_submission_order() {
        use super::super::scope::job;
        let out = par_tasks((0..10u32).map(|i| job(move || i)).collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
