//! First-party parallel execution: a scoped worker pool and deterministic
//! fan-out primitives built only on `std::thread` + channels.
//!
//! The workspace is hermetic (no external crates, so no `rayon`); this
//! module is the substitute the evaluation harness, the fleet model and
//! the testkit property runner share. The contract that makes it safe to
//! drop into deterministic code paths:
//!
//! * **Ordered reassembly** — [`par_map`]/[`par_sweep`]/[`par_tasks`]
//!   return results in *submission order*, so output is bit-identical to
//!   the serial run at any worker count.
//! * **Exact serial path** — a pool with one worker (or
//!   `HARMONIA_THREADS=1`) runs jobs inline on the calling thread, in
//!   order, with no channel or spawn in the loop. Tests assert
//!   serial/parallel equivalence against this path.
//! * **Deterministic panic propagation** — if several jobs panic, the
//!   panic of the lowest-index job is the one re-raised on the caller,
//!   matching what the serial run would have hit first.
//!
//! Worker count resolution: the `HARMONIA_THREADS` environment variable
//! (clamped to ≥ 1) overrides [`std::thread::available_parallelism`].

pub mod pool;
pub mod scope;
pub mod sweep;

pub use pool::WorkerPool;
pub use scope::{job, Job};
pub use sweep::{par_map, par_sweep, par_tasks};

/// Environment variable overriding the worker count (`1` = exact serial).
pub const THREADS_ENV: &str = "HARMONIA_THREADS";

/// Resolves the worker count: `HARMONIA_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism.
///
/// Re-read on every call (it is one `getenv` + parse), so tests can flip
/// the override between sweeps.
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => hardware_threads(),
        },
        Err(_) => hardware_threads(),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
        assert!(hardware_threads() >= 1);
    }
}
