//! The scoped worker pool: a worker count plus ordered fan-out methods.
//!
//! A [`WorkerPool`] is just a resolved thread count — workers are scoped
//! to each call, so the pool is `Copy`, costs nothing to hold, and never
//! leaks threads. Sizing comes from [`crate::exec::threads`] (the
//! `HARMONIA_THREADS` override, else available parallelism) or an
//! explicit count for tests that pin equivalence across widths.

use super::scope::{execute_ordered, Job};

/// A scoped worker pool with a fixed worker count.
///
/// ```
/// use harmonia_sim::exec::WorkerPool;
///
/// let pool = WorkerPool::with_threads(4);
/// let doubled = pool.map(0u64..8, |x| x * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10, 12, 14]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool sized from the environment (`HARMONIA_THREADS`, else the
    /// machine's available parallelism).
    pub fn from_env() -> Self {
        WorkerPool {
            threads: super::threads(),
        }
    }

    /// A pool with an explicit worker count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs jobs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Runs heterogeneous boxed jobs, returning results in submission
    /// order.
    pub fn run<'a, R: Send + 'a>(&self, jobs: Vec<Job<'a, R>>) -> Vec<R> {
        execute_ordered(self.threads, jobs)
    }

    /// Applies `f` to every item, returning results in item order.
    ///
    /// The serial pool iterates inline without boxing, which is the
    /// bit-exact path `HARMONIA_THREADS=1` selects.
    pub fn map<T, R, F>(&self, items: impl IntoIterator<Item = T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.is_serial() {
            return items.into_iter().map(f).collect();
        }
        let f = &f;
        let jobs: Vec<Job<R>> = items
            .into_iter()
            .map(|item| -> Job<R> { Box::new(move || f(item)) })
            .collect();
        execute_ordered(self.threads, jobs)
    }

    /// Parallel reduce: maps every item through `f`, then folds the
    /// results with `merge`.
    ///
    /// The fold runs on the caller in submission order; with a
    /// commutative + associative `merge` the outcome is independent of
    /// both worker count and item order, which is the contract the
    /// fleet-aggregation paths rely on.
    pub fn map_reduce<T, R, F, M>(&self, items: impl IntoIterator<Item = T>, f: F, merge: M) -> Option<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        M: Fn(R, R) -> R,
    {
        self.map(items, f).into_iter().reduce(merge)
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_clamp_to_one() {
        assert_eq!(WorkerPool::with_threads(0).threads(), 1);
        assert!(WorkerPool::with_threads(0).is_serial());
        assert!(!WorkerPool::with_threads(2).is_serial());
    }

    #[test]
    fn map_preserves_order_at_any_width() {
        let input: Vec<u32> = (0..100).collect();
        let want: Vec<u32> = input.iter().map(|x| x.wrapping_mul(7)).collect();
        for threads in [1, 2, 5, 13] {
            let got = WorkerPool::with_threads(threads).map(input.clone(), |x| x.wrapping_mul(7));
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn map_reduce_is_width_independent() {
        let serial = WorkerPool::with_threads(1)
            .map_reduce(1u64..=100, |x| x * x, |a, b| a + b)
            .unwrap();
        let parallel = WorkerPool::with_threads(8)
            .map_reduce(1u64..=100, |x| x * x, |a, b| a + b)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, 338_350);
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let none = WorkerPool::with_threads(4).map_reduce(std::iter::empty::<u8>(), |x| x, |a, _| a);
        assert_eq!(none, None);
    }

    #[test]
    fn run_orders_heterogeneous_jobs() {
        use super::super::scope::job;
        let pool = WorkerPool::with_threads(3);
        let out = pool.run(vec![
            job(|| "a".to_string()),
            job(|| "bb".to_string()),
            job(|| "ccc".to_string()),
        ]);
        assert_eq!(out, vec!["a", "bb", "ccc"]);
    }
}
