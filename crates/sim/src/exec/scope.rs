//! The scoped fan-out engine: jobs in, ordered results out.
//!
//! [`execute_ordered`] is the one place in the workspace that spawns
//! threads. Workers are scoped ([`std::thread::scope`]), so jobs may
//! borrow from the caller's stack; the job queue and the result path are
//! plain `mpsc` channels. Every job carries its submission index, and the
//! caller reassembles results by index, which is what makes the parallel
//! output bit-identical to the serial one.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};

/// A unit of work: boxed so heterogeneous closures can share one queue.
pub type Job<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// Boxes a closure as a [`Job`] (sugar for call sites building task lists).
pub fn job<'a, R, F: FnOnce() -> R + Send + 'a>(f: F) -> Job<'a, R> {
    Box::new(f)
}

/// Runs `jobs` on up to `workers` scoped threads and returns their
/// results in submission order.
///
/// With `workers <= 1` (or zero/one jobs) this is an inline serial loop
/// on the calling thread — the exact path `HARMONIA_THREADS=1` pins.
///
/// # Panics
///
/// If jobs panic, re-raises the payload of the lowest-index panicking
/// job — the one the serial run would have hit first.
pub fn execute_ordered<'a, R: Send + 'a>(workers: usize, jobs: Vec<Job<'a, R>>) -> Vec<R> {
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let workers = workers.min(n);

    // Pre-load the whole queue so worker `recv` never blocks: it either
    // takes a job or sees the disconnected sender and exits.
    let (job_tx, job_rx) = mpsc::channel::<(usize, Job<'a, R>)>();
    for pair in jobs.into_iter().enumerate() {
        job_tx.send(pair).expect("receiver alive until scope end");
    }
    drop(job_tx);
    let queue = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel();

    let mut slots: Vec<Option<ResultOf<R>>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let queue = &queue;
            let res_tx = res_tx.clone();
            s.spawn(move || loop {
                // Hold the lock only for the non-blocking dequeue.
                let msg = queue.lock().expect("queue lock never poisoned").recv();
                let Ok((idx, job)) = msg else { break };
                let out = catch_unwind(AssertUnwindSafe(job));
                if res_tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        for (idx, out) in res_rx {
            slots[idx] = Some(out);
        }
    });

    // Deterministic panic propagation: lowest submission index first.
    let mut results = Vec::with_capacity(n);
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot.unwrap_or_else(|| panic!("job {idx} produced no result")) {
            Ok(r) => results.push(r),
            Err(payload) => resume_unwind(payload),
        }
    }
    results
}

type ResultOf<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(workers: usize, n: usize) -> Vec<usize> {
        let jobs: Vec<Job<usize>> = (0..n).map(|i| job(move || i * i)).collect();
        execute_ordered(workers, jobs)
    }

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let want = squares(1, 37);
        for workers in [2, 3, 8, 64] {
            assert_eq!(squares(workers, 37), want, "{workers} workers");
        }
    }

    #[test]
    fn empty_and_single_job_sets() {
        assert_eq!(squares(4, 0), Vec::<usize>::new());
        assert_eq!(squares(4, 1), vec![0]);
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let base = vec![10u64, 20, 30, 40];
        let jobs: Vec<Job<u64>> = base
            .iter()
            .map(|v| -> Job<u64> { Box::new(move || v + 1) })
            .collect();
        assert_eq!(execute_ordered(3, jobs), vec![11, 21, 31, 41]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let jobs: Vec<Job<u32>> = vec![
            job(|| 1),
            job(|| panic!("second")),
            job(|| panic!("third")),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| execute_ordered(4, jobs)))
            .expect_err("must panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "second");
    }

    #[test]
    fn more_workers_than_jobs() {
        assert_eq!(squares(16, 3), vec![0, 1, 4]);
    }
}
