//! A tiny deterministic PRNG for simulation-internal jitter.
//!
//! This SplitMix64 is the workspace's single source of randomness: the
//! simulation kernel uses it directly for nondeterministic-looking (but
//! reproducible) arrival jitter, and `harmonia-testkit` builds its
//! distribution helpers (`DetRng`) and property-test case generation on
//! top of it, keeping the whole tree free of external RNG dependencies.

/// SplitMix64 pseudo-random generator.
///
/// ```
/// use harmonia_sim::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic per seed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Default for SplitMix64 {
    /// Seeds with a fixed constant — simulations must be reproducible.
    fn default() -> Self {
        SplitMix64::new(0x8A5C_D789_635D_2DFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut r = SplitMix64::new(1);
        let seq: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = SplitMix64::new(1);
        let seq2: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(seq, seq2);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            SplitMix64::new(1).next_u64(),
            SplitMix64::new(2).next_u64()
        );
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::default();
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::default();
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::default();
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(42);
        let mut below_half = 0;
        for _ in 0..10_000 {
            if r.next_f64() < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&below_half));
    }
}
