//! Throughput and latency statistics for simulation runs.

use crate::time::{Picos, PS_PER_SEC};
use std::fmt;

/// Accumulates transferred bytes/items over a time window and reports rates.
///
/// ```
/// use harmonia_sim::Throughput;
/// let mut t = Throughput::new();
/// t.record(1500, 1);
/// t.record(1500, 1);
/// t.close(1_000_000); // 1 µs window
/// assert!((t.gbps() - 24.0).abs() < 1e-9);
/// assert!((t.mops() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    items: u64,
    window_ps: Picos,
}

impl Throughput {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed transfer of `bytes` bytes / `items` items.
    pub fn record(&mut self, bytes: u64, items: u64) {
        self.bytes += bytes;
        self.items += items;
    }

    /// Sets the measurement window. Must be called before reading rates.
    pub fn close(&mut self, window_ps: Picos) {
        self.window_ps = window_ps;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total items recorded.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Measurement window in picoseconds.
    pub fn window_ps(&self) -> Picos {
        self.window_ps
    }

    /// Gigabits per second over the window.
    ///
    /// # Panics
    ///
    /// Panics if the window was never set ([`close`](Self::close)).
    pub fn gbps(&self) -> f64 {
        assert!(self.window_ps > 0, "throughput window not closed");
        (self.bytes as f64 * 8.0) / (self.window_ps as f64 / PS_PER_SEC as f64) / 1e9
    }

    /// Gigabytes per second over the window.
    pub fn gbytes_per_sec(&self) -> f64 {
        self.gbps() / 8.0
    }

    /// Million items (operations, packets, vectors, …) per second.
    pub fn mops(&self) -> f64 {
        assert!(self.window_ps > 0, "throughput window not closed");
        self.items as f64 / (self.window_ps as f64 / PS_PER_SEC as f64) / 1e6
    }

    /// Items per second.
    pub fn ops(&self) -> f64 {
        self.mops() * 1e6
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.window_ps == 0 {
            write!(f, "{} B / {} items (window open)", self.bytes, self.items)
        } else {
            write!(f, "{:.3} Gbps, {:.3} Mops", self.gbps(), self.mops())
        }
    }
}

/// Collects latency samples (picoseconds) and reports distribution summary
/// statistics.
///
/// ```
/// use harmonia_sim::LatencyStats;
/// let mut l = LatencyStats::new();
/// for v in [100, 200, 300] { l.record(v); }
/// assert_eq!(l.min(), Some(100));
/// assert_eq!(l.max(), Some(300));
/// assert!((l.mean_ns() - 0.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Picos>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in picoseconds.
    pub fn record(&mut self, latency_ps: Picos) {
        self.samples.push(latency_ps);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Minimum sample, if any.
    pub fn min(&self) -> Option<Picos> {
        self.samples.iter().copied().min()
    }

    /// Maximum sample, if any.
    pub fn max(&self) -> Option<Picos> {
        self.samples.iter().copied().max()
    }

    /// Mean latency in picoseconds (0 when empty).
    pub fn mean_ps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ps() / 1e3
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ps() / 1e6
    }

    /// The `p`-th percentile (0.0–100.0), by nearest-rank on sorted samples.
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<Picos> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        // Nearest-rank method: rank = ⌈p/100 · n⌉, clamped to [1, n].
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// Median latency.
    pub fn p50(&mut self) -> Option<Picos> {
        self.percentile(50.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&mut self) -> Option<Picos> {
        self.percentile(99.0)
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency mean={:.1} ns (n={})",
            self.mean_ns(),
            self.samples.len()
        )
    }
}

impl Extend<Picos> for LatencyStats {
    fn extend<I: IntoIterator<Item = Picos>>(&mut self, iter: I) {
        for s in iter {
            self.record(s);
        }
    }
}

impl FromIterator<Picos> for LatencyStats {
    fn from_iter<I: IntoIterator<Item = Picos>>(iter: I) -> Self {
        let mut l = LatencyStats::new();
        l.extend(iter);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_line_rate_example() {
        // 100 Gbps worth of 64 B packets over 1 µs, counting wire overhead
        // separately (caller's concern).
        let mut t = Throughput::new();
        let pkts = 148_809_523u64 / 1_000_000; // per µs at 100G line rate
        for _ in 0..pkts {
            t.record(64, 1);
        }
        t.close(1_000_000);
        assert!(t.gbps() > 75.0 && t.gbps() < 76.0);
    }

    #[test]
    #[should_panic(expected = "window not closed")]
    fn rate_requires_closed_window() {
        let t = Throughput::new();
        let _ = t.gbps();
    }

    #[test]
    fn ops_and_mops_consistent() {
        let mut t = Throughput::new();
        t.record(0, 5_000_000);
        t.close(PS_PER_SEC);
        assert!((t.mops() - 5.0).abs() < 1e-9);
        assert!((t.ops() - 5e6).abs() < 1e-3);
    }

    #[test]
    fn latency_percentiles() {
        let mut l: LatencyStats = (1..=100u64).map(|v| v * 10).collect();
        assert_eq!(l.p50(), Some(500));
        assert_eq!(l.p99(), Some(990));
        assert_eq!(l.percentile(0.0), Some(10));
        assert_eq!(l.percentile(100.0), Some(1000));
    }

    #[test]
    fn latency_empty_behaviour() {
        let mut l = LatencyStats::new();
        assert!(l.is_empty());
        assert_eq!(l.p50(), None);
        assert_eq!(l.mean_ps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        let mut l = LatencyStats::new();
        l.record(1);
        let _ = l.percentile(101.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Throughput::new().to_string().is_empty());
        assert!(!LatencyStats::new().to_string().is_empty());
    }
}
