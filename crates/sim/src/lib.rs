//! Cycle-level simulation kernel for the Harmonia reproduction.
//!
//! This crate provides the timing substrate every hardware model in the
//! workspace is built on: a picosecond-resolution timeline, clock domains,
//! synchronous FIFOs, gray-code asynchronous FIFOs (the clock-domain-crossing
//! primitive the paper's parameterized CDC is built from), fixed-latency
//! pipelines, beat-level streams, and throughput/latency statistics.
//!
//! The design goal is *shape fidelity*: models built on these primitives
//! reproduce protocol overheads, pipeline latency and backpressure behaviour
//! — the quantities the paper's evaluation compares — without simulating
//! individual gates.
//!
//! # Example
//!
//! ```
//! use harmonia_sim::{Freq, ClockDomain, SyncFifo};
//!
//! let clk = ClockDomain::new(Freq::mhz(322));
//! assert_eq!(clk.period_ps(), 3_105);
//!
//! let mut fifo = SyncFifo::new(16);
//! fifo.push(42u32).unwrap();
//! assert_eq!(fifo.pop(), Some(42));
//! ```

pub mod async_fifo;
pub mod edges;
pub mod event;
pub mod exec;
pub mod fault;
pub mod fifo;
pub mod histo;
pub mod metrics;
pub mod pipeline;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod time;
pub mod trace;

pub use async_fifo::AsyncFifo;
pub use edges::{ClockEdge, MultiClock};
pub use event::{Engine, EventClock, EventKey, EventQueue, Wake, WakeSource, ENGINE_ENV};
pub use exec::WorkerPool;
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRates, FaultReport};
pub use fifo::{BeatFate, FifoFullError, SyncFifo};
pub use histo::LogHistogram;
pub use metrics::{
    evaluate_slos, par_metered, FlightRecorder, MetricsRegistry, MetricsSample, MetricsScraper,
    MetricsSnapshot, Slo, SloObjective, SloReport, SloResult, METRICS_ENV, METRICS_PERIOD_ENV,
};
pub use pipeline::{Pipeline, PushError};
pub use rng::SplitMix64;
pub use stats::{LatencyStats, Throughput};
pub use stream::StreamBeat;
pub use time::{ClockDomain, Freq, Picos, PS_PER_SEC};
pub use trace::{par_traced, Trace, TraceCollector, TraceEvent, TraceEventKind, TRACE_ENV};
