//! Deterministic metrics plane: counters, gauges and latency histograms
//! on the simulated picosecond timeline.
//!
//! The trace plane ([`crate::trace`]) answers "what happened at
//! picosecond X"; this module answers the operator questions — how many
//! commands retried, how full the SQ rings ran, whether the p99 latency
//! SLO is burning. A [`MetricsRegistry`] is a cheap cloneable handle hot
//! paths bump typed metrics into; a frozen [`MetricsSnapshot`] exports to
//! the Prometheus text exposition format or a compact JSON document, a
//! [`MetricsScraper`] samples a registry on the *simulated* clock so
//! rates come from simulated time, a [`FlightRecorder`] keeps the last N
//! trace events for post-mortems, and [`evaluate_slos`] grades a snapshot
//! against declarative objectives.
//!
//! The plane inherits every contract of the trace plane:
//!
//! 1. **Disabled metrics are zero-cost.** [`MetricsRegistry::disabled`]
//!    holds no state; every hook collapses to one branch on an `Option`.
//!    The [`METRICS_ENV`]-off path is the pinned one (paper snapshot,
//!    trace exports and committed bench medians are bit-identical).
//! 2. **Metrics are observational.** Recording never changes simulated
//!    timing, fault draws or results; enabling [`METRICS_ENV`] alters
//!    only what can be exported afterwards.
//! 3. **Merged snapshots are thread-count independent.** Each fan-out
//!    lane owns a registry; [`MetricsSnapshot::merge`] folds counters by
//!    sum, gauges by max (high-water semantics) and histograms by
//!    [`LogHistogram::merge`] — all order-independent — and
//!    [`par_metered`] merges in lane order, the same discipline as
//!    [`crate::trace::par_traced`]. Exports are byte-identical at any
//!    `HARMONIA_THREADS` and under either `HARMONIA_ENGINE`.
//!
//! # Example: record → snapshot → export → grade
//!
//! ```
//! use harmonia_sim::metrics::{evaluate_slos, MetricsRegistry, Slo, SloObjective};
//!
//! let m = MetricsRegistry::enabled();
//! m.counter_add("demo_cmds_total", &[], 100);
//! m.counter_add("demo_retries_total", &[], 3);
//! m.observe("demo_latency_ps", &[], 1_500);
//!
//! let snap = m.snapshot();
//! assert!(snap.export_prometheus().contains("demo_cmds_total 100"));
//!
//! let report = evaluate_slos(&snap, &[Slo {
//!     name: "retry-ratio",
//!     objective: SloObjective::RatioMaxPpm {
//!         numerator: "demo_retries_total",
//!         denominator: "demo_cmds_total",
//!         max_ppm: 50_000,
//!     },
//! }]);
//! assert!(report.pass());
//! ```

use crate::histo::LogHistogram;
use crate::time::Picos;
use crate::trace::{TraceEvent, TraceEventKind};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Environment knob enabling the metrics plane in drivers and kernels
/// that consult [`MetricsRegistry::from_env`]. Any value other than
/// unset, empty or `0` enables collection — the same gate semantics as
/// [`crate::trace::TRACE_ENV`]. Defaults off: the no-metrics path is the
/// pinned one.
pub const METRICS_ENV: &str = "HARMONIA_METRICS";

/// Environment knob for the [`MetricsScraper`] sampling period in
/// simulated picoseconds. Defaults to [`DEFAULT_METRICS_PERIOD_PS`].
pub const METRICS_PERIOD_ENV: &str = "HARMONIA_METRICS_PERIOD_PS";

/// Default scrape period: 10 µs of simulated time.
pub const DEFAULT_METRICS_PERIOD_PS: Picos = 10_000_000;

/// Default [`FlightRecorder`] ring capacity (events retained per lane).
pub const DEFAULT_FLIGHT_DEPTH: usize = 64;

/// A metric's identity: a static name plus structured labels, rendered
/// `name{key="value",...}` in the Prometheus export. Ordering (name
/// first, then labels) drives the deterministic export order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Static metric name (`harmonia_<layer>_<what>[_total]`).
    pub name: &'static str,
    /// Label pairs in call-site order (call sites must use one fixed
    /// order per name, which keeps keys canonical).
    pub labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> MetricKey {
        MetricKey {
            name,
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        }
    }

    /// Renders `name` or `name{k="v",...}` (the Prometheus series name).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Label rendering without quotes (`name{k=v}`) — the JSON export's
    /// key format, so keys need no escaping.
    fn render_plain(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct RegistryBuf {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, LogHistogram>,
}

/// The cheap cloneable handle hot paths bump metrics into. Clones share
/// the underlying store, so one scenario's kernel, driver, DMA engine and
/// IRQ moderator all feed a single registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<RegistryBuf>>>,
}

impl MetricsRegistry {
    /// The no-op registry (what `Default` also gives): every hook is one
    /// branch, nothing is ever allocated or recorded.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// An enabled, empty registry.
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(RegistryBuf::default()))),
        }
    }

    /// Reads [`METRICS_ENV`]: enabled for any value other than unset,
    /// empty or `0`.
    ///
    /// ```
    /// use harmonia_sim::metrics::MetricsRegistry;
    /// // The default environment records nothing.
    /// if std::env::var_os("HARMONIA_METRICS").is_none() {
    ///     assert!(!MetricsRegistry::from_env().is_enabled());
    /// }
    /// ```
    pub fn from_env() -> MetricsRegistry {
        match std::env::var(METRICS_ENV) {
            Ok(v) if !v.trim().is_empty() && v.trim() != "0" => Self::enabled(),
            _ => Self::disabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to a counter (created at zero on first touch).
    pub fn counter_add(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("metrics registry poisoned");
        *buf.counters.entry(MetricKey::new(name, labels)).or_insert(0) += delta;
    }

    /// Increments a counter by one.
    pub fn counter_inc(&self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("metrics registry poisoned");
        buf.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Raises a gauge to `value` if it is below it (high-water tracking:
    /// ring occupancy, buffer depth).
    pub fn gauge_max(&self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("metrics registry poisoned");
        let g = buf.gauges.entry(MetricKey::new(name, labels)).or_insert(0);
        *g = (*g).max(value);
    }

    /// Records one sample into a [`LogHistogram`]-backed metric.
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], sample: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("metrics registry poisoned");
        buf.histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .record(sample);
    }

    /// Folds a pre-built [`LogHistogram`] into a histogram-backed metric
    /// in one lock acquisition. Aggregate planes (the fleet controller's
    /// per-device latency histograms) publish through this instead of
    /// replaying millions of `observe` calls.
    pub fn observe_histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        histogram: &LogHistogram,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("metrics registry poisoned");
        buf.histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .merge(histogram);
    }

    /// Clones the current state into a frozen [`MetricsSnapshot`]
    /// (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => {
                let buf = inner.lock().expect("metrics registry poisoned");
                MetricsSnapshot {
                    counters: buf.counters.clone(),
                    gauges: buf.gauges.clone(),
                    histograms: buf.histograms.clone(),
                }
            }
            None => MetricsSnapshot::default(),
        }
    }
}

/// A frozen, totally ordered view of a registry: what the exporters, the
/// scraper and the SLO evaluator consume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, LogHistogram>,
}

impl MetricsSnapshot {
    /// Merges per-lane snapshots into one fleet view: counters add,
    /// gauges take the maximum (high-water semantics survive the merge),
    /// histograms fold with [`LogHistogram::merge`]. Every fold is
    /// commutative and associative, so the result is independent of merge
    /// order — [`par_metered`] still merges in lane order, the same
    /// discipline as [`crate::trace::par_traced`].
    ///
    /// ```
    /// use harmonia_sim::metrics::{MetricsRegistry, MetricsSnapshot};
    /// let a = MetricsRegistry::enabled();
    /// let b = MetricsRegistry::enabled();
    /// a.counter_add("x_total", &[], 2);
    /// b.counter_add("x_total", &[], 3);
    /// let merged = MetricsSnapshot::merge([a.snapshot(), b.snapshot()]);
    /// assert_eq!(merged.counter("x_total"), 5);
    /// ```
    pub fn merge<I: IntoIterator<Item = MetricsSnapshot>>(snapshots: I) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for s in snapshots {
            for (k, v) in s.counters {
                *out.counters.entry(k).or_insert(0) += v;
            }
            for (k, v) in s.gauges {
                let g = out.gauges.entry(k).or_insert(0);
                *g = (*g).max(v);
            }
            for (k, h) in s.histograms {
                out.histograms.entry(k).or_default().merge(&h);
            }
        }
        out
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Sum of a counter across all of its label sets (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Maximum of a gauge across all of its label sets (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    /// A histogram metric merged across all of its label sets (empty
    /// when absent).
    pub fn histogram(&self, name: &str) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (_, h) in self.histograms.iter().filter(|(k, _)| k.name == name) {
            out.merge(h);
        }
        out
    }

    /// Exports the Prometheus text exposition format: one `# TYPE` line
    /// per metric name, series in `(name, labels)` order, histograms as
    /// summaries (`quantile="0.5"`/`"0.99"` plus `_sum`/`_count`).
    /// Integer values only — byte-deterministic by construction.
    pub fn export_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last: &str = "";
        for (k, v) in &self.counters {
            if k.name != last {
                out.push_str("# TYPE ");
                out.push_str(k.name);
                out.push_str(" counter\n");
                last = k.name;
            }
            out.push_str(&k.render());
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        last = "";
        for (k, v) in &self.gauges {
            if k.name != last {
                out.push_str("# TYPE ");
                out.push_str(k.name);
                out.push_str(" gauge\n");
                last = k.name;
            }
            out.push_str(&k.render());
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (k, h) in &self.histograms {
            out.push_str("# TYPE ");
            out.push_str(k.name);
            out.push_str(" summary\n");
            let mut quantile = |q: &str, v: u64| {
                out.push_str(k.name);
                out.push_str("{quantile=\"");
                out.push_str(q);
                out.push_str("\"} ");
                out.push_str(&v.to_string());
                out.push('\n');
            };
            quantile("0.5", h.p50());
            quantile("0.99", h.p99());
            out.push_str(k.name);
            out.push_str("_sum ");
            out.push_str(&h.sum().to_string());
            out.push('\n');
            out.push_str(k.name);
            out.push_str("_count ");
            out.push_str(&h.count().to_string());
            out.push('\n');
        }
        out
    }

    /// Exports a compact single-line JSON document. Series keys use the
    /// quote-free `name{k=v}` form, so no escaping is ever needed;
    /// values are integers only — byte-deterministic by construction.
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&k.render_plain());
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&k.render_plain());
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&k.render_plain());
            out.push_str("\":{\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.min().to_string());
            out.push_str(",\"mean\":");
            out.push_str(&h.mean().to_string());
            out.push_str(",\"p50\":");
            out.push_str(&h.p50().to_string());
            out.push_str(",\"p99\":");
            out.push_str(&h.p99().to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max().to_string());
            out.push('}');
        }
        out.push_str("}}\n");
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.export_prometheus())
    }
}

/// One time-series sample: a snapshot stamped on the simulated timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSample {
    /// Simulated time of the scrape boundary this sample belongs to.
    pub at_ps: Picos,
    /// The registry state when the boundary was crossed.
    pub snapshot: MetricsSnapshot,
}

/// Samples a registry every `period_ps` of *simulated* time into an
/// append-only series, so rates (cmds/sec, doorbells/sec) come from
/// simulated time, never the wall clock. Drive it with
/// [`MetricsScraper::tick`] from the loop that owns the simulation clock.
///
/// ```
/// use harmonia_sim::metrics::{MetricsRegistry, MetricsScraper};
///
/// let m = MetricsRegistry::enabled();
/// let mut scraper = MetricsScraper::new(1_000_000); // 1 µs period
/// for step in 1..=5u64 {
///     m.counter_add("cmds_total", &[], 200);
///     scraper.tick(&m, step * 1_000_000);
/// }
/// assert_eq!(scraper.samples().len(), 5);
/// // 1000 cmds over 4 µs of simulated time between first and last sample.
/// assert_eq!(scraper.rate_per_sec("cmds_total").round() as u64, 200_000_000);
/// ```
#[derive(Clone, Debug)]
pub struct MetricsScraper {
    period_ps: Picos,
    next_ps: Picos,
    samples: Vec<MetricsSample>,
}

impl MetricsScraper {
    /// Creates a scraper with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn new(period_ps: Picos) -> MetricsScraper {
        assert!(period_ps > 0, "scrape period must be positive");
        MetricsScraper {
            period_ps,
            next_ps: period_ps,
            samples: Vec::new(),
        }
    }

    /// Creates a scraper with the [`METRICS_PERIOD_ENV`]-controlled
    /// period, falling back to [`DEFAULT_METRICS_PERIOD_PS`] for unset
    /// or unparsable values.
    pub fn from_env() -> MetricsScraper {
        let period = std::env::var(METRICS_PERIOD_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<Picos>().ok())
            .filter(|&p| p > 0)
            .unwrap_or(DEFAULT_METRICS_PERIOD_PS);
        MetricsScraper::new(period)
    }

    /// The configured sampling period.
    pub fn period_ps(&self) -> Picos {
        self.period_ps
    }

    /// Advances the scraper to simulated time `now_ps`: if one or more
    /// period boundaries were crossed since the last tick, appends one
    /// sample stamped at the *latest* crossed boundary (intermediate
    /// boundaries would carry the identical snapshot — the simulation
    /// paused for them — so they are collapsed).
    pub fn tick(&mut self, registry: &MetricsRegistry, now_ps: Picos) {
        if now_ps < self.next_ps {
            return;
        }
        let boundary = now_ps - (now_ps % self.period_ps);
        self.samples.push(MetricsSample {
            at_ps: boundary,
            snapshot: registry.snapshot(),
        });
        self.next_ps = boundary + self.period_ps;
    }

    /// The series so far, in strictly increasing `at_ps` order.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// Rate of a counter in events per second of *simulated* time,
    /// computed between the first and last sample (0.0 with fewer than
    /// two samples or no elapsed time).
    pub fn rate_per_sec(&self, counter: &str) -> f64 {
        let (Some(first), Some(last)) = (self.samples.first(), self.samples.last()) else {
            return 0.0;
        };
        if last.at_ps <= first.at_ps {
            return 0.0;
        }
        let delta = last.snapshot.counter(counter) - first.snapshot.counter(counter);
        delta as f64 / ((last.at_ps - first.at_ps) as f64 * 1e-12)
    }
}

#[derive(Debug)]
struct FlightBuf {
    lane: u32,
    seq: u64,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
}

/// A bounded ring of the last N trace events — the post-mortem buffer
/// drivers dump when a command exhausts its retry budget
/// (`DriverError::GaveUp`) and the control tool dumps on demand. Unlike
/// the unbounded [`crate::trace::TraceCollector`], memory stays constant
/// no matter how long the run: old events fall off the front.
///
/// ```
/// use harmonia_sim::metrics::FlightRecorder;
/// use harmonia_sim::trace::TraceEventKind;
///
/// let fr = FlightRecorder::with_capacity(2);
/// fr.record(100, 0, TraceEventKind::EccScrub);
/// fr.record(200, 0, TraceEventKind::EccScrub);
/// fr.record(300, 0, TraceEventKind::EccScrub);
/// let dump = fr.dump();
/// assert!(!dump.contains(&format!("[{:>17} ps]", 100)), "oldest evicted");
/// assert!(dump.contains(&format!("[{:>17} ps]", 300)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<FlightBuf>>>,
}

impl FlightRecorder {
    /// The no-op recorder: one branch per hook, nothing retained.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// An enabled recorder on lane 0 with [`DEFAULT_FLIGHT_DEPTH`]
    /// capacity.
    pub fn enabled() -> FlightRecorder {
        Self::with_capacity(DEFAULT_FLIGHT_DEPTH)
    }

    /// An enabled recorder with an explicit ring capacity (minimum 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        Self::with_lane_capacity(0, capacity)
    }

    /// An enabled recorder with a stable lane id (use the scenario index
    /// when fanning out) and explicit capacity.
    pub fn with_lane_capacity(lane: u32, capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(FlightBuf {
                lane,
                seq: 0,
                capacity,
                ring: VecDeque::with_capacity(capacity),
            }))),
        }
    }

    /// Reads [`METRICS_ENV`]: the flight recorder rides the metrics
    /// plane's gate (enabled with default capacity for any value other
    /// than unset, empty or `0`).
    pub fn from_env() -> FlightRecorder {
        match std::env::var(METRICS_ENV) {
            Ok(v) if !v.trim().is_empty() && v.trim() != "0" => Self::enabled(),
            _ => Self::disabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (span when `dur > 0`, instant otherwise),
    /// evicting the oldest once the ring is full.
    pub fn record(&self, at: Picos, dur: Picos, kind: TraceEventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("flight recorder poisoned");
        if buf.ring.len() == buf.capacity {
            buf.ring.pop_front();
        }
        let seq = buf.seq;
        buf.seq += 1;
        let lane = buf.lane;
        buf.ring.push_back(TraceEvent {
            at,
            dur,
            lane,
            seq,
            kind,
        });
    }

    /// Events currently retained (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().expect("flight recorder poisoned").ring.len(),
            None => 0,
        }
    }

    /// Whether nothing is retained (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the retained events as a readable post-mortem, oldest
    /// first, in the text-timeline format of
    /// [`crate::trace::Trace::export_text`].
    pub fn dump(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::from("(flight recorder disabled — set HARMONIA_METRICS=1)\n");
        };
        let buf = inner.lock().expect("flight recorder poisoned");
        let mut out = format!(
            "flight recorder: last {} event(s) of lane {} (capacity {}):\n",
            buf.ring.len(),
            buf.lane,
            buf.capacity
        );
        for ev in &buf.ring {
            out.push_str(&format!(
                "[{:>17} ps] lane {:<3} +{:<9} {}\n",
                ev.at, ev.lane, ev.dur, ev.kind
            ));
        }
        out
    }
}

/// A declarative service-level objective over a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum SloObjective {
    /// `percentile(histogram) <= max_ps`: a latency objective read off a
    /// [`LogHistogram`]-backed metric (e.g. `cmd_latency_p99 <= T ps`).
    PercentileMaxPs {
        /// Histogram metric name.
        histogram: &'static str,
        /// Percentile in `(0, 100]`, e.g. `99.0`.
        percentile: f64,
        /// Inclusive bound in picoseconds.
        max_ps: u64,
    },
    /// `numerator / denominator <= max_ppm / 1e6`: a ratio objective over
    /// two counters (e.g. `replays / cmds <= r`), evaluated in integer
    /// parts-per-million so reports stay byte-deterministic.
    RatioMaxPpm {
        /// Counter whose rate is bounded.
        numerator: &'static str,
        /// Counter it is normalized by (an empty denominator passes
        /// only when the numerator is also zero).
        denominator: &'static str,
        /// Inclusive bound in parts per million.
        max_ppm: u64,
    },
}

/// One named objective.
#[derive(Clone, Debug, PartialEq)]
pub struct Slo {
    /// Objective name (the report line's key).
    pub name: &'static str,
    /// What must hold.
    pub objective: SloObjective,
}

/// The graded outcome of one [`Slo`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloResult {
    /// Objective name.
    pub name: &'static str,
    /// Whether the objective held.
    pub pass: bool,
    /// Measured value (ps or ppm, per the objective).
    pub actual: u64,
    /// The bound (same unit as `actual`).
    pub limit: u64,
    /// Error-budget burn in percent: `actual * 100 / limit` (how much of
    /// the allowance the measurement consumed; >100 means blown).
    pub budget_burn_pct: u64,
    /// Human-readable `what = actual unit <=|> limit unit` fragment.
    detail: String,
}

/// Pass/fail report over a set of objectives. `render()` is pinned by
/// tests — integer math end to end keeps it byte-deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SloReport {
    /// Per-objective outcomes, in evaluation order.
    pub results: Vec<SloResult>,
}

impl SloReport {
    /// Whether every objective held.
    pub fn pass(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }

    /// Renders one line per objective plus a verdict footer:
    ///
    /// ```text
    /// PASS cmd-latency-p99: p99(harmonia_cmd_latency_ps) = 1023 ps <= 200000 ps (budget burn 0%)
    /// FAIL replay-ratio: harmonia_kernel_replays_total / harmonia_cmd_issued_total = 500000 ppm > 1000 ppm (budget burn 50000%)
    /// slo: 1/2 objectives met
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(if r.pass { "PASS " } else { "FAIL " });
            out.push_str(r.name);
            out.push_str(": ");
            out.push_str(&r.detail);
            out.push_str(&format!(" (budget burn {}%)\n", r.budget_burn_pct));
        }
        let met = self.results.iter().filter(|r| r.pass).count();
        out.push_str(&format!("slo: {}/{} objectives met\n", met, self.results.len()));
        out
    }
}

impl fmt::Display for SloReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Grades a snapshot against a set of objectives.
pub fn evaluate_slos(snapshot: &MetricsSnapshot, slos: &[Slo]) -> SloReport {
    let results = slos
        .iter()
        .map(|slo| {
            let (actual, limit, detail) = match slo.objective {
                SloObjective::PercentileMaxPs {
                    histogram,
                    percentile,
                    max_ps,
                } => {
                    let actual = snapshot.histogram(histogram).percentile(percentile);
                    let cmp = if actual <= max_ps { "<=" } else { ">" };
                    (
                        actual,
                        max_ps,
                        format!("p{percentile}({histogram}) = {actual} ps {cmp} {max_ps} ps"),
                    )
                }
                SloObjective::RatioMaxPpm {
                    numerator,
                    denominator,
                    max_ppm,
                } => {
                    let num = snapshot.counter(numerator);
                    let den = snapshot.counter(denominator);
                    let actual = if den == 0 {
                        // No traffic: a zero numerator is a clean pass, a
                        // nonzero one an unconditional failure.
                        if num == 0 {
                            0
                        } else {
                            u64::MAX
                        }
                    } else {
                        ((num as u128 * 1_000_000) / den as u128) as u64
                    };
                    let cmp = if actual <= max_ppm { "<=" } else { ">" };
                    (
                        actual,
                        max_ppm,
                        format!("{numerator} / {denominator} = {actual} ppm {cmp} {max_ppm} ppm"),
                    )
                }
            };
            let budget_burn_pct = if limit == 0 {
                if actual == 0 {
                    0
                } else {
                    u64::MAX
                }
            } else {
                actual.saturating_mul(100) / limit
            };
            SloResult {
                name: slo.name,
                pass: actual <= limit,
                actual,
                limit,
                budget_burn_pct,
                detail,
            }
        })
        .collect();
    SloReport { results }
}

/// Runs `f` over `items` on the worker pool, giving each item its own
/// lane-indexed [`MetricsRegistry`], and merges the per-lane snapshots in
/// lane order — the same discipline as [`crate::trace::par_traced`], so
/// both exports are byte-identical at any `HARMONIA_THREADS` setting.
///
/// ```
/// use harmonia_sim::metrics::par_metered;
///
/// let (sums, snap) = par_metered(vec![10u64, 20, 30], |&v, m| {
///     m.counter_add("work_total", &[], v);
///     v * 2
/// });
/// assert_eq!(sums, vec![20, 40, 60]);
/// assert_eq!(snap.counter("work_total"), 60);
/// ```
pub fn par_metered<T, R, F>(items: Vec<T>, f: F) -> (Vec<R>, MetricsSnapshot)
where
    T: Send,
    R: Send,
    F: Fn(&T, &MetricsRegistry) -> R + Sync,
{
    let results = crate::exec::par_map(items, |item| {
        let m = MetricsRegistry::enabled();
        let r = f(&item, &m);
        (r, m.snapshot())
    });
    let mut out = Vec::with_capacity(results.len());
    let mut snapshots = Vec::with_capacity(results.len());
    for (r, s) in results {
        out.push(r);
        snapshots.push(s);
    }
    (out, MetricsSnapshot::merge(snapshots))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let m = MetricsRegistry::disabled();
        assert!(!m.is_enabled());
        m.counter_inc("x_total", &[]);
        m.gauge_set("g", &[], 7);
        m.observe("h_ps", &[], 100);
        let snap = m.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.export_prometheus(), "");
        assert_eq!(snap.export_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n");
    }

    #[test]
    fn clones_share_one_store() {
        let m = MetricsRegistry::enabled();
        let other = m.clone();
        m.counter_inc("x_total", &[]);
        other.counter_inc("x_total", &[]);
        assert_eq!(m.snapshot().counter("x_total"), 2);
    }

    #[test]
    fn labels_split_series_and_counter_sums_across_them() {
        let m = MetricsRegistry::enabled();
        m.counter_add("cmds_total", &[("rbb", "1")], 3);
        m.counter_add("cmds_total", &[("rbb", "2")], 4);
        let snap = m.snapshot();
        assert_eq!(snap.counter("cmds_total"), 7);
        let prom = snap.export_prometheus();
        assert!(prom.contains("cmds_total{rbb=\"1\"} 3"));
        assert!(prom.contains("cmds_total{rbb=\"2\"} 4"));
        // One TYPE header covers both series.
        assert_eq!(prom.matches("# TYPE cmds_total counter").count(), 1);
    }

    #[test]
    fn observe_histogram_merges_like_individual_observes() {
        let mut pre = LogHistogram::new();
        pre.record_n(1_000, 5);
        pre.record(64_000);
        let bulk = MetricsRegistry::enabled();
        bulk.observe("lat_ps", &[], 10); // pre-existing content survives
        bulk.observe_histogram("lat_ps", &[], &pre);
        let looped = MetricsRegistry::enabled();
        looped.observe("lat_ps", &[], 10);
        for _ in 0..5 {
            looped.observe("lat_ps", &[], 1_000);
        }
        looped.observe("lat_ps", &[], 64_000);
        assert_eq!(bulk.snapshot(), looped.snapshot());
        // Disabled registries stay inert.
        let off = MetricsRegistry::disabled();
        off.observe_histogram("lat_ps", &[], &pre);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let m = MetricsRegistry::enabled();
        m.gauge_max("occupancy", &[], 5);
        m.gauge_max("occupancy", &[], 3);
        m.gauge_max("occupancy", &[], 9);
        assert_eq!(m.snapshot().gauge("occupancy"), 9);
    }

    #[test]
    fn prometheus_export_shape() {
        let m = MetricsRegistry::enabled();
        m.counter_add("a_total", &[], 1);
        m.gauge_set("b", &[], 2);
        m.observe("c_ps", &[], 1000);
        m.observe("c_ps", &[], 3000);
        let prom = m.snapshot().export_prometheus();
        assert!(prom.contains("# TYPE a_total counter\na_total 1\n"));
        assert!(prom.contains("# TYPE b gauge\nb 2\n"));
        assert!(prom.contains("# TYPE c_ps summary\n"));
        assert!(prom.contains("c_ps{quantile=\"0.5\"} "));
        assert!(prom.contains("c_ps{quantile=\"0.99\"} "));
        assert!(prom.contains("c_ps_sum 4000\n"));
        assert!(prom.contains("c_ps_count 2\n"));
    }

    #[test]
    fn json_export_is_well_formed_and_deterministic() {
        let m = MetricsRegistry::enabled();
        m.counter_add("a_total", &[("k", "v")], 1);
        m.gauge_set("b", &[], 2);
        m.observe("c_ps", &[], 512);
        let snap = m.snapshot();
        let json = snap.export_json();
        assert_eq!(json, snap.export_json());
        assert!(json.contains("\"a_total{k=v}\":1"));
        assert!(json.contains("\"b\":2"));
        assert!(json.contains("\"c_ps\":{\"count\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_folds_histograms() {
        let a = MetricsRegistry::enabled();
        let b = MetricsRegistry::enabled();
        a.counter_add("c_total", &[], 2);
        b.counter_add("c_total", &[], 5);
        a.gauge_max("hw", &[], 10);
        b.gauge_max("hw", &[], 4);
        a.observe("lat_ps", &[], 100);
        b.observe("lat_ps", &[], 200);
        let ab = MetricsSnapshot::merge([a.snapshot(), b.snapshot()]);
        let ba = MetricsSnapshot::merge([b.snapshot(), a.snapshot()]);
        assert_eq!(ab, ba, "merge is order-independent");
        assert_eq!(ab.counter("c_total"), 7);
        assert_eq!(ab.gauge("hw"), 10);
        assert_eq!(ab.histogram("lat_ps").count(), 2);
    }

    #[test]
    fn scraper_samples_on_simulated_boundaries() {
        let m = MetricsRegistry::enabled();
        let mut s = MetricsScraper::new(1_000);
        s.tick(&m, 500); // before the first boundary: nothing
        assert!(s.samples().is_empty());
        m.counter_add("c_total", &[], 1);
        s.tick(&m, 1_200);
        m.counter_add("c_total", &[], 9);
        s.tick(&m, 1_900); // same window: nothing
        s.tick(&m, 4_400); // crossed 2000/3000/4000: one collapsed sample
        let at: Vec<Picos> = s.samples().iter().map(|x| x.at_ps).collect();
        assert_eq!(at, vec![1_000, 4_000]);
        assert_eq!(s.samples()[0].snapshot.counter("c_total"), 1);
        assert_eq!(s.samples()[1].snapshot.counter("c_total"), 10);
        // 9 events over 3 ns of simulated time = 3e9/sec.
        assert_eq!(s.rate_per_sec("c_total").round() as u64, 3_000_000_000);
    }

    #[test]
    fn scraper_rate_is_zero_without_two_samples() {
        let m = MetricsRegistry::enabled();
        let mut s = MetricsScraper::new(1_000);
        assert_eq!(s.rate_per_sec("c_total"), 0.0);
        s.tick(&m, 1_000);
        assert_eq!(s.rate_per_sec("c_total"), 0.0);
    }

    #[test]
    fn flight_recorder_bounds_memory_and_dumps_readably() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..10u64 {
            fr.record(i * 100, 0, TraceEventKind::EccScrub);
        }
        assert_eq!(fr.len(), 3);
        let dump = fr.dump();
        assert!(dump.starts_with("flight recorder: last 3 event(s)"));
        assert!(dump.contains("ecc-scrub"));
        assert!(dump.contains(&format!("[{:>17} ps]", 900)), "{dump}");
        assert!(!dump.contains(&format!("[{:>17} ps]", 0)), "oldest evicted");
    }

    #[test]
    fn disabled_flight_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        fr.record(1, 0, TraceEventKind::EccScrub);
        assert!(fr.is_empty());
        assert!(fr.dump().contains("disabled"));
    }

    #[test]
    fn slo_report_pass_and_fail_render_is_pinned() {
        let m = MetricsRegistry::enabled();
        m.counter_add("harmonia_cmd_issued_total", &[], 1_000);
        m.counter_add("harmonia_kernel_replays_total", &[], 500);
        for _ in 0..99 {
            m.observe("harmonia_cmd_latency_ps", &[], 1_000);
        }
        m.observe("harmonia_cmd_latency_ps", &[], 100_000);
        let report = evaluate_slos(
            &m.snapshot(),
            &[
                Slo {
                    name: "cmd-latency-p99",
                    objective: SloObjective::PercentileMaxPs {
                        histogram: "harmonia_cmd_latency_ps",
                        percentile: 99.0,
                        max_ps: 200_000,
                    },
                },
                Slo {
                    name: "replay-ratio",
                    objective: SloObjective::RatioMaxPpm {
                        numerator: "harmonia_kernel_replays_total",
                        denominator: "harmonia_cmd_issued_total",
                        max_ppm: 1_000,
                    },
                },
            ],
        );
        assert!(!report.pass());
        // p99 over 100 samples ranks into the 1000-ps bucket (upper 1023).
        assert_eq!(
            report.render(),
            "PASS cmd-latency-p99: p99(harmonia_cmd_latency_ps) = 1023 ps <= 200000 ps (budget burn 0%)\n\
             FAIL replay-ratio: harmonia_kernel_replays_total / harmonia_cmd_issued_total = 500000 ppm > 1000 ppm (budget burn 50000%)\n\
             slo: 1/2 objectives met\n"
        );
    }

    #[test]
    fn slo_zero_denominator_passes_only_when_numerator_is_zero() {
        let quiet = MetricsRegistry::enabled().snapshot();
        let slo = [Slo {
            name: "r",
            objective: SloObjective::RatioMaxPpm {
                numerator: "n_total",
                denominator: "d_total",
                max_ppm: 10,
            },
        }];
        assert!(evaluate_slos(&quiet, &slo).pass());
        let noisy = MetricsRegistry::enabled();
        noisy.counter_inc("n_total", &[]);
        assert!(!evaluate_slos(&noisy.snapshot(), &slo).pass());
    }

    #[test]
    fn par_metered_is_thread_count_independent() {
        let run = || {
            let (_, snap) = par_metered((0..16u64).collect(), |&i, m| {
                m.counter_add("c_total", &[], i);
                m.gauge_max("hw", &[], i);
                m.observe("lat_ps", &[], i * 10 + 1);
            });
            (snap.export_prometheus(), snap.export_json())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.0.contains("c_total 120"));
        assert!(a.0.contains("hw 15"));
    }
}
