//! Fixed-latency, fully pipelined processing stages.
//!
//! The paper's interface wrapper uses "fully pipelined sequential
//! translation logic" that "operates without generating bubbles in the
//! processing and consumes a few fixed clock cycles" (§3.2). [`Pipeline`]
//! models exactly that contract: one item may enter per cycle, every item
//! emerges exactly `latency` cycles later, and throughput is never reduced.

use std::collections::VecDeque;
use std::fmt;

/// A rejected [`Pipeline::push`]: the item comes back with the cycle
/// context needed to diagnose the collision without a debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T> {
    /// The item the pipeline refused.
    pub item: T,
    /// The cycle the rejected push targeted.
    pub cycle: u64,
    /// The cycle of the most recent accepted push (pushes must be
    /// strictly later than this).
    pub last_push_cycle: u64,
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_item(self) -> T {
        self.item
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline rejected push at cycle {} (last accepted push at cycle {}; \
             a pipeline accepts at most one beat per cycle, strictly in time order)",
            self.cycle, self.last_push_cycle
        )
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// A fully pipelined stage with fixed latency in cycles.
///
/// ```
/// use harmonia_sim::Pipeline;
/// let mut p = Pipeline::new(3);
/// p.push(0, "beat").unwrap();
/// assert_eq!(p.pop(2), None);
/// assert_eq!(p.pop(3), Some("beat"));
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    latency: u64,
    in_flight: VecDeque<(u64, T)>,
    last_push_cycle: Option<u64>,
    total: u64,
}

impl<T> Pipeline<T> {
    /// Creates a pipeline with the given latency in cycles.
    ///
    /// Zero latency is permitted and models a combinational pass-through.
    pub fn new(latency: u64) -> Self {
        Pipeline {
            latency,
            in_flight: VecDeque::new(),
            last_push_cycle: None,
            total: 0,
        }
    }

    /// The fixed latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accepts one item at clock cycle `cycle`.
    ///
    /// # Errors
    ///
    /// Returns a [`PushError`] carrying the item back — plus the
    /// offending and last-accepted cycles — if another item was already
    /// accepted at the same cycle (a pipeline accepts at most one beat
    /// per cycle) or if `cycle` is in the past relative to the previous
    /// push.
    pub fn push(&mut self, cycle: u64, item: T) -> Result<(), PushError<T>> {
        if let Some(last) = self.last_push_cycle {
            if cycle <= last {
                return Err(PushError {
                    item,
                    cycle,
                    last_push_cycle: last,
                });
            }
        }
        self.last_push_cycle = Some(cycle);
        self.in_flight.push_back((cycle + self.latency, item));
        self.total += 1;
        Ok(())
    }

    /// Retrieves the item that completes at or before `cycle`, if any.
    ///
    /// Items exit in push order; call repeatedly to drain everything due.
    pub fn pop(&mut self, cycle: u64) -> Option<T> {
        match self.in_flight.front() {
            Some(&(due, _)) if due <= cycle => self.in_flight.pop_front().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number of items currently traversing the pipeline.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Total items ever accepted.
    pub fn total_accepted(&self) -> u64 {
        self.total
    }

    /// Whether the pipeline holds no items.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The cycle at which the oldest in-flight item becomes available,
    /// or `None` if the pipeline is empty.
    ///
    /// This is the event engine's wake probe: a driver holding an empty
    /// pipeline (or one whose next exit lies beyond a window) may skip
    /// the window's edges without changing what any `pop` observes.
    #[inline]
    pub fn next_exit_cycle(&self) -> Option<u64> {
        self.in_flight.front().map(|&(due, _)| due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_latency_observed() {
        let mut p = Pipeline::new(5);
        p.push(10, 'a').unwrap();
        assert_eq!(p.pop(14), None);
        assert_eq!(p.pop(15), Some('a'));
    }

    #[test]
    fn zero_latency_pass_through() {
        let mut p = Pipeline::new(0);
        p.push(3, 1u8).unwrap();
        assert_eq!(p.pop(3), Some(1));
    }

    #[test]
    fn one_item_per_cycle() {
        let mut p = Pipeline::new(2);
        p.push(1, 'x').unwrap();
        let same_cycle = p.push(1, 'y').unwrap_err();
        assert_eq!(same_cycle.item, 'y');
        assert_eq!(same_cycle.cycle, 1);
        assert_eq!(same_cycle.last_push_cycle, 1);
        let past = p.push(0, 'z').unwrap_err();
        assert_eq!(past.into_item(), 'z');
        assert_eq!(past.cycle, 0);
        assert_eq!(past.last_push_cycle, 1);
        p.push(2, 'y').unwrap();
    }

    #[test]
    fn push_error_display_names_both_cycles() {
        let mut p = Pipeline::new(1);
        p.push(7, ()).unwrap();
        let err = p.push(3, ()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cycle 3") && msg.contains("cycle 7"), "{msg}");
    }

    #[test]
    fn full_rate_no_bubbles() {
        // Push every cycle for 100 cycles; every item must exit exactly
        // `latency` cycles later, i.e. throughput equals input rate.
        let lat = 4;
        let mut p = Pipeline::new(lat);
        let mut out = Vec::new();
        for c in 0..100u64 {
            p.push(c, c).unwrap();
            if let Some(v) = p.pop(c) {
                out.push((c, v));
            }
        }
        for c in 100..100 + lat {
            if let Some(v) = p.pop(c) {
                out.push((c, v));
            }
        }
        assert_eq!(out.len(), 100);
        for (exit_cycle, item) in out {
            assert_eq!(exit_cycle, item + lat);
        }
    }

    #[test]
    fn in_order_exit() {
        let mut p = Pipeline::new(3);
        p.push(0, 1).unwrap();
        p.push(1, 2).unwrap();
        p.push(5, 3).unwrap();
        assert_eq!(p.pop(10), Some(1));
        assert_eq!(p.pop(10), Some(2));
        assert_eq!(p.pop(10), Some(3));
        assert_eq!(p.pop(10), None);
    }

    #[test]
    fn next_exit_cycle_tracks_oldest_item() {
        let mut p = Pipeline::new(3);
        assert_eq!(p.next_exit_cycle(), None);
        p.push(10, 'a').unwrap();
        p.push(11, 'b').unwrap();
        assert_eq!(p.next_exit_cycle(), Some(13));
        assert_eq!(p.pop(13), Some('a'));
        assert_eq!(p.next_exit_cycle(), Some(14));
        p.pop(14);
        assert_eq!(p.next_exit_cycle(), None);
    }

    #[test]
    fn accounting() {
        let mut p = Pipeline::new(1);
        p.push(0, ()).unwrap();
        p.push(1, ()).unwrap();
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.total_accepted(), 2);
        p.pop(2);
        p.pop(2);
        assert!(p.is_empty());
    }
}
