//! Gray-code asynchronous FIFO — the clock-domain-crossing primitive.
//!
//! The paper's parameterized clock-domain crossing (§3.3.1, Figure 6)
//! synchronizes an RBB at `S` MHz / `M` bits with user logic at `R` MHz /
//! `U` bits using "the widely used asynchronous FIFO" with binary↔gray
//! pointer conversion. This module models that structure faithfully:
//!
//! * free-running write/read pointers, exchanged between domains in gray
//!   code through two-flop synchronizers (one value may only be observed
//!   two destination-domain edges after it was produced);
//! * `full` computed in the write domain against the *synchronized* read
//!   pointer, `empty` computed in the read domain against the
//!   *synchronized* write pointer — both conservative, never unsafe;
//! * at most one push per write edge and one pop per read edge.
//!
//! The lossless-bandwidth condition `S × M = R × U` from the paper is
//! exercised by the property tests in this crate and by the CDC benches.

use crate::fifo::FifoFullError;

/// Converts a binary value to its gray code.
///
/// ```
/// use harmonia_sim::async_fifo::{bin_to_gray, gray_to_bin};
/// assert_eq!(bin_to_gray(0b1000), 0b1100);
/// assert_eq!(gray_to_bin(bin_to_gray(12345)), 12345);
/// ```
pub fn bin_to_gray(b: u64) -> u64 {
    b ^ (b >> 1)
}

/// Converts a gray-coded value back to binary.
pub fn gray_to_bin(mut g: u64) -> u64 {
    let mut shift = 32;
    while shift > 0 {
        g ^= g >> shift;
        shift /= 2;
    }
    g
}

/// A dual-clock FIFO with gray-code pointer synchronization.
///
/// The caller drives the two clock domains explicitly: call
/// [`on_write_edge`](AsyncFifo::on_write_edge) at every write-clock rising
/// edge and [`on_read_edge`](AsyncFifo::on_read_edge) at every read-clock
/// rising edge (in global time order — use
/// [`MultiClock`](crate::MultiClock) to interleave them), then push/pop
/// within that edge.
///
/// ```
/// use harmonia_sim::AsyncFifo;
/// let mut f = AsyncFifo::new(8);
/// f.on_write_edge();
/// f.try_push(1u8).unwrap();
/// // The write pointer needs two read-domain edges to become visible.
/// f.on_read_edge();
/// assert_eq!(f.try_pop(), None);
/// f.on_read_edge();
/// assert_eq!(f.try_pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct AsyncFifo<T> {
    storage: Vec<Option<T>>,
    capacity: usize,
    wptr: u64,
    rptr: u64,
    /// Two-flop synchronizer carrying the gray write pointer into the read
    /// domain. `[0]` is the metastability stage, `[1]` the stable stage.
    wptr_gray_sync: [u64; 2],
    /// Two-flop synchronizer carrying the gray read pointer into the write
    /// domain.
    rptr_gray_sync: [u64; 2],
    pushed_this_edge: bool,
    popped_this_edge: bool,
    total_pushes: u64,
    total_pops: u64,
    max_occupancy: usize,
}

impl<T> AsyncFifo<T> {
    /// Creates an async FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two (gray-code pointer
    /// comparison requires power-of-two depth) or is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0 && capacity.is_power_of_two(),
            "async fifo capacity must be a non-zero power of two, got {capacity}"
        );
        AsyncFifo {
            storage: (0..capacity).map(|_| None).collect(),
            capacity,
            wptr: 0,
            rptr: 0,
            wptr_gray_sync: [0; 2],
            rptr_gray_sync: [0; 2],
            pushed_this_edge: false,
            popped_this_edge: false,
            total_pushes: 0,
            total_pops: 0,
            max_occupancy: 0,
        }
    }

    /// Advances the write-domain state by one clock edge: the read pointer's
    /// gray code moves one stage deeper into the write-side synchronizer.
    pub fn on_write_edge(&mut self) {
        self.rptr_gray_sync[1] = self.rptr_gray_sync[0];
        self.rptr_gray_sync[0] = bin_to_gray(self.rptr);
        self.pushed_this_edge = false;
    }

    /// Advances the read-domain state by one clock edge.
    pub fn on_read_edge(&mut self) {
        self.wptr_gray_sync[1] = self.wptr_gray_sync[0];
        self.wptr_gray_sync[0] = bin_to_gray(self.wptr);
        self.popped_this_edge = false;
    }

    /// The write side's (conservative) view of occupancy.
    fn write_side_level(&self) -> u64 {
        self.wptr - gray_to_bin(self.rptr_gray_sync[1])
    }

    /// Whether a push would succeed at the current write edge.
    pub fn can_push(&self) -> bool {
        !self.pushed_this_edge && self.write_side_level() < self.capacity as u64
    }

    /// Whether a pop would succeed at the current read edge.
    pub fn can_pop(&self) -> bool {
        !self.popped_this_edge && self.rptr < gray_to_bin(self.wptr_gray_sync[1])
    }

    /// Pushes one item in the current write-clock cycle.
    ///
    /// # Errors
    ///
    /// Returns the item back if the FIFO appears full from the write domain
    /// or an item was already pushed this edge (one beat per cycle).
    pub fn try_push(&mut self, item: T) -> Result<(), FifoFullError<T>> {
        if !self.can_push() {
            return Err(FifoFullError(item));
        }
        let slot = (self.wptr % self.capacity as u64) as usize;
        debug_assert!(self.storage[slot].is_none(), "overwriting live slot");
        self.storage[slot] = Some(item);
        self.wptr += 1;
        self.pushed_this_edge = true;
        self.total_pushes += 1;
        let occ = (self.wptr - self.rptr) as usize;
        self.max_occupancy = self.max_occupancy.max(occ);
        Ok(())
    }

    /// Pops one item in the current read-clock cycle, if visible.
    pub fn try_pop(&mut self) -> Option<T> {
        if !self.can_pop() {
            return None;
        }
        let slot = (self.rptr % self.capacity as u64) as usize;
        let item = self.storage[slot].take();
        debug_assert!(item.is_some(), "popping empty slot");
        self.rptr += 1;
        self.popped_this_edge = true;
        self.total_pops += 1;
        item
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True occupancy (omniscient; not visible to either domain).
    pub fn len(&self) -> usize {
        (self.wptr - self.rptr) as usize
    }

    /// Whether the FIFO holds no items (omniscient view).
    pub fn is_empty(&self) -> bool {
        self.wptr == self.rptr
    }

    /// Total accepted pushes.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Total successful pops.
    pub fn total_pops(&self) -> u64 {
        self.total_pops
    }

    /// High-water mark of true occupancy.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Whether the FIFO is fully settled: empty *and* both pointer
    /// synchronizers have caught up with their source pointers.
    ///
    /// This is the event engine's quiescence probe (determinism rule 1 in
    /// `event`'s module docs): when a FIFO is settled and no pushes will
    /// arrive during a window, every edge in that window only re-latches
    /// unchanged gray pointers — skipping those edges is observationally
    /// inert. An empty FIFO is *not* sufficient on its own: a stale
    /// synchronizer stage still needs edges to propagate, and skipping
    /// them would delay visibility relative to the cycle engine.
    #[inline]
    pub fn is_settled(&self) -> bool {
        let wg = bin_to_gray(self.wptr);
        let rg = bin_to_gray(self.rptr);
        self.wptr == self.rptr
            && self.wptr_gray_sync == [wg, wg]
            && self.rptr_gray_sync == [rg, rg]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_round_trip() {
        for v in [0u64, 1, 2, 3, 7, 8, 255, 256, u32::MAX as u64, 1 << 40] {
            assert_eq!(gray_to_bin(bin_to_gray(v)), v);
        }
    }

    #[test]
    fn gray_adjacent_values_differ_in_one_bit() {
        for v in 0u64..1024 {
            let diff = bin_to_gray(v) ^ bin_to_gray(v + 1);
            assert_eq!(diff.count_ones(), 1, "gray codes of {v} and {} differ in >1 bit", v + 1);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_rejected() {
        let _: AsyncFifo<u8> = AsyncFifo::new(6);
    }

    #[test]
    fn synchronizer_delays_visibility_by_two_edges() {
        let mut f = AsyncFifo::new(4);
        f.on_write_edge();
        f.try_push(5u8).unwrap();
        f.on_read_edge();
        assert!(!f.can_pop(), "visible after one edge");
        f.on_read_edge();
        assert_eq!(f.try_pop(), Some(5));
    }

    #[test]
    fn one_push_per_edge_enforced() {
        let mut f = AsyncFifo::new(8);
        f.on_write_edge();
        f.try_push(1).unwrap();
        assert!(f.try_push(2).is_err());
        f.on_write_edge();
        f.try_push(2).unwrap();
    }

    #[test]
    fn full_detection_is_conservative_but_eventually_clears() {
        let mut f = AsyncFifo::new(2);
        f.on_write_edge();
        f.try_push(1).unwrap();
        f.on_write_edge();
        f.try_push(2).unwrap();
        f.on_write_edge();
        assert!(!f.can_push(), "full fifo must reject");
        // Drain from the read side.
        f.on_read_edge();
        f.on_read_edge();
        assert_eq!(f.try_pop(), Some(1));
        // Write side needs two write edges to observe the new read pointer.
        f.on_write_edge();
        f.on_write_edge();
        assert!(f.can_push());
    }

    #[test]
    fn settled_requires_caught_up_synchronizers() {
        let mut f = AsyncFifo::new(4);
        assert!(f.is_settled(), "fresh fifo is settled");
        f.on_write_edge();
        f.try_push(9u8).unwrap();
        assert!(!f.is_settled(), "occupied fifo is not settled");
        // Drain it: two read edges for visibility, then pop.
        f.on_read_edge();
        f.on_read_edge();
        assert_eq!(f.try_pop(), Some(9));
        // Empty, but the write side has not yet observed the new read
        // pointer — still not settled.
        assert!(f.is_empty());
        assert!(!f.is_settled(), "stale rptr synchronizer blocks settling");
        f.on_write_edge();
        assert!(!f.is_settled(), "one write edge is not enough");
        f.on_write_edge();
        // The read side also advanced wptr into its synchronizer above,
        // so after both sides latch twice everything matches.
        assert!(f.is_settled());
    }

    #[test]
    fn data_integrity_across_many_items() {
        let mut f = AsyncFifo::new(8);
        let mut received = Vec::new();
        let mut next = 0u32;
        // Interleave: 1 write edge then 1 read edge, 1000 rounds.
        for _ in 0..1000 {
            f.on_write_edge();
            if f.can_push() {
                f.try_push(next).unwrap();
                next += 1;
            }
            f.on_read_edge();
            if let Some(v) = f.try_pop() {
                received.push(v);
            }
        }
        // Drain remaining.
        for _ in 0..32 {
            f.on_read_edge();
            if let Some(v) = f.try_pop() {
                received.push(v);
            }
        }
        assert_eq!(received, (0..next).collect::<Vec<_>>());
    }
}
