//! Bounded synchronous FIFO with occupancy statistics.
//!
//! This is the single-clock buffering primitive used throughout the hardware
//! models: vendor-IP output buffers, the interface wrapper's sideband FIFO,
//! command queues in the unified control kernel, and the per-queue buffers
//! of the Host RBB.

use crate::fault::FaultInjector;
use crate::time::Picos;
use crate::trace::{TraceCollector, TraceEventKind};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned by [`SyncFifo::push`] when the FIFO is full.
///
/// The rejected item is handed back so the producer can retry (hardware
/// backpressure: the producer holds the beat until `ready` asserts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoFullError<T>(pub T);

impl<T> fmt::Display for FifoFullError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: fmt::Debug> Error for FifoFullError<T> {}

/// What became of a beat offered via [`SyncFifo::push_with_faults`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BeatFate {
    /// The beat was stored normally.
    Stored,
    /// An injected ECC hit discarded the beat (counted as rejected).
    Discarded,
}

/// A bounded FIFO within a single clock domain.
///
/// ```
/// use harmonia_sim::SyncFifo;
/// let mut f = SyncFifo::new(2);
/// f.push(1).unwrap();
/// f.push(2).unwrap();
/// assert!(f.push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.max_occupancy(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SyncFifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
    max_occupancy: usize,
    total_pushes: u64,
    total_pops: u64,
    rejected: u64,
}

impl<T> SyncFifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        SyncFifo {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            max_occupancy: 0,
            total_pushes: 0,
            total_pops: 0,
            rejected: 0,
        }
    }

    /// Attempts to enqueue an item.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] containing the item when the FIFO is full.
    pub fn push(&mut self, item: T) -> Result<(), FifoFullError<T>> {
        if self.buf.len() == self.capacity {
            self.rejected += 1;
            return Err(FifoFullError(item));
        }
        self.buf.push_back(item);
        self.total_pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.buf.len());
        Ok(())
    }

    /// Enqueues an item through the fault plane: an [`FaultInjector`]
    /// ECC hit on the FIFO memory discards the beat (tallied in
    /// [`SyncFifo::rejected`]) instead of storing a corrupt word. With
    /// the no-op injector this is exactly [`SyncFifo::push`].
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] containing the item when the FIFO is
    /// full (backpressure precedes the memory, so full wins over ECC).
    pub fn push_with_faults(
        &mut self,
        item: T,
        faults: &FaultInjector,
        now: Picos,
    ) -> Result<BeatFate, FifoFullError<T>> {
        if self.buf.len() == self.capacity {
            self.rejected += 1;
            return Err(FifoFullError(item));
        }
        if faults.ecc_error(now) {
            self.rejected += 1;
            return Ok(BeatFate::Discarded);
        }
        self.push(item).map(|()| BeatFate::Stored)
    }

    /// [`SyncFifo::push`] that records a [`TraceEventKind::FifoStall`]
    /// instant when the FIFO rejects the beat — so backpressure shows up
    /// on the observability timeline. With a disabled collector this is
    /// exactly `push`.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] containing the item when the FIFO is full.
    pub fn push_traced(
        &mut self,
        item: T,
        trace: &TraceCollector,
        now: Picos,
    ) -> Result<(), FifoFullError<T>> {
        let result = self.push(item);
        if result.is_err() {
            trace.instant(
                now,
                TraceEventKind::FifoStall {
                    occupancy: self.buf.len() as u32,
                },
            );
        }
        result
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.buf.pop_front();
        if item.is_some() {
            self.total_pops += 1;
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Current number of buffered items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the FIFO currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of occupancy since construction (the paper's Network
    /// RBB monitors queue usage; this is that statistic).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total accepted pushes.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Total successful pops.
    pub fn total_pops(&self) -> u64 {
        self.total_pops
    }

    /// Number of pushes rejected due to a full FIFO (drop/backpressure count).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Removes all items and returns them, preserving order.
    pub fn drain(&mut self) -> Vec<T> {
        self.total_pops += self.buf.len() as u64;
        self.buf.drain(..).collect()
    }
}

impl<T> Extend<T> for SyncFifo<T> {
    /// Pushes items until the FIFO fills; excess items are counted as
    /// rejected and dropped.
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            let _ = self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = SyncFifo::new(8);
        for i in 0..8 {
            f.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_fifo_rejects_and_returns_item() {
        let mut f = SyncFifo::new(1);
        f.push("a").unwrap();
        let err = f.push("b").unwrap_err();
        assert_eq!(err.0, "b");
        assert_eq!(f.rejected(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: SyncFifo<u8> = SyncFifo::new(0);
    }

    #[test]
    fn statistics_track_traffic() {
        let mut f = SyncFifo::new(4);
        for i in 0..3 {
            f.push(i).unwrap();
        }
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.total_pushes(), 4);
        assert_eq!(f.total_pops(), 1);
        assert_eq!(f.max_occupancy(), 3);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = SyncFifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut f = SyncFifo::new(4);
        f.extend([1, 2, 3]);
        assert_eq!(f.drain(), vec![1, 2, 3]);
        assert!(f.is_empty());
        assert_eq!(f.total_pops(), 3);
    }

    #[test]
    fn faulty_push_matches_plain_push_with_no_plan() {
        use crate::fault::FaultPlan;
        let inj = FaultPlan::none().injector();
        let mut f = SyncFifo::new(2);
        assert_eq!(f.push_with_faults(1, &inj, 0), Ok(BeatFate::Stored));
        assert_eq!(f.push_with_faults(2, &inj, 10), Ok(BeatFate::Stored));
        assert_eq!(f.push_with_faults(3, &inj, 20), Err(FifoFullError(3)));
        assert_eq!(f.drain(), vec![1, 2]);
    }

    #[test]
    fn ecc_hit_discards_the_beat() {
        use crate::fault::{FaultKind, FaultPlan};
        let inj = FaultPlan::new().at(5, FaultKind::EccError).injector();
        let mut f = SyncFifo::new(4);
        assert_eq!(f.push_with_faults(1, &inj, 0), Ok(BeatFate::Stored));
        assert_eq!(f.push_with_faults(2, &inj, 5), Ok(BeatFate::Discarded));
        assert_eq!(f.push_with_faults(3, &inj, 6), Ok(BeatFate::Stored));
        assert_eq!(f.rejected(), 1);
        assert_eq!(f.drain(), vec![1, 3]);
    }

    #[test]
    fn traced_push_emits_stall_only_on_rejection() {
        use crate::trace::{TraceCollector, TraceEventKind};
        let tc = TraceCollector::enabled();
        let mut f = SyncFifo::new(1);
        f.push_traced(1, &tc, 100).unwrap();
        assert!(tc.is_empty(), "accepted beats emit nothing");
        assert!(f.push_traced(2, &tc, 200).is_err());
        let trace = tc.take();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].at, 200);
        assert_eq!(
            trace.events()[0].kind,
            TraceEventKind::FifoStall { occupancy: 1 }
        );
    }

    #[test]
    fn extend_counts_overflow_as_rejected() {
        let mut f = SyncFifo::new(2);
        f.extend(0..5);
        assert_eq!(f.len(), 2);
        assert_eq!(f.rejected(), 3);
    }
}
