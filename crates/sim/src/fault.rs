//! Deterministic fault injection for the simulation substrate.
//!
//! Real cloud deployments are not sunny-day systems: links flap, PCIe
//! credits stall, DRAM words take ECC hits, command packets get dropped or
//! corrupted in flight, and completion interrupts go missing. A
//! [`FaultPlan`] is a *deterministic* schedule of such faults — typed
//! events at absolute [`Picos`] plus [`SplitMix64`]-seeded per-consult
//! rates — and a [`FaultInjector`] is the cheap cloneable handle the
//! hardware models (`DmaEngine`, MAC/DDR/HBM IPs, `SyncFifo`) consult on
//! each beat.
//!
//! Two contracts every consumer can rely on:
//!
//! 1. **`FaultPlan::none()` is a zero-cost no-op.** The injector holds no
//!    state, no RNG is ever advanced, and every query collapses to one
//!    branch on an `Option` — so all fault-free results are bit-identical
//!    to a build without the fault plane.
//! 2. **Same plan, same consult sequence → same faults.** All draws come
//!    from one seeded [`SplitMix64`] behind the handle; a scenario that
//!    consults in a fixed order reproduces exactly, at any host thread
//!    count (each scenario owns its own injector).

use crate::rng::SplitMix64;
use crate::time::Picos;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The fault taxonomy. Scheduled kinds arm state the next matching
/// consult observes; `LinkDown`/`LinkUp` toggle a persistent link state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The network/PCIe link goes down and stays down until `LinkUp`.
    LinkDown,
    /// The link comes back up.
    LinkUp,
    /// The PCIe credit return stalls for `beats` link beats: the next
    /// transfer pays that many extra beat times.
    PcieCreditStall {
        /// Stalled link beats to charge.
        beats: u64,
    },
    /// One memory access takes an ECC hit (corrected, but the word is
    /// re-read after a scrub penalty — or the beat is discarded).
    EccError,
    /// One command packet is dropped in flight (no response ever comes).
    CmdDrop,
    /// One command packet has a bit flipped in flight (the kernel's
    /// checksum catches it and NACKs).
    CmdCorrupt,
    /// One completion interrupt is lost (the command executed, the
    /// response never reaches the driver).
    IrqLost,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LinkDown => f.write_str("link-down"),
            FaultKind::LinkUp => f.write_str("link-up"),
            FaultKind::PcieCreditStall { beats } => write!(f, "pcie-credit-stall({beats})"),
            FaultKind::EccError => f.write_str("ecc-error"),
            FaultKind::CmdDrop => f.write_str("cmd-drop"),
            FaultKind::CmdCorrupt => f.write_str("cmd-corrupt"),
            FaultKind::IrqLost => f.write_str("irq-lost"),
        }
    }
}

/// One scheduled fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute simulation time the fault fires.
    pub at: Picos,
    /// What happens.
    pub kind: FaultKind,
}

/// Per-consult fault probabilities, drawn from the plan's seeded RNG.
/// All default to zero (purely scheduled plans draw nothing).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a command consult drops the packet.
    pub cmd_drop: f64,
    /// Probability a command consult corrupts the packet.
    pub cmd_corrupt: f64,
    /// Probability a completion consult loses the interrupt.
    pub irq_lost: f64,
    /// Probability a memory-beat consult takes an ECC hit.
    pub ecc: f64,
}

impl FaultRates {
    fn is_zero(&self) -> bool {
        self.cmd_drop == 0.0 && self.cmd_corrupt == 0.0 && self.irq_lost == 0.0 && self.ecc == 0.0
    }
}

/// A deterministic schedule of faults. Build with the `at`/`with_rates`
/// combinators, then hand [`FaultPlan::injector`] to the models.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    rates: FaultRates,
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: injects nothing, costs nothing, changes nothing.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            events: Vec::new(),
            rates: FaultRates {
                cmd_drop: 0.0,
                cmd_corrupt: 0.0,
                irq_lost: 0.0,
                ecc: 0.0,
            },
            seed: 0,
        }
    }

    /// An empty plan to build on.
    pub fn new() -> FaultPlan {
        FaultPlan::none()
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn at(mut self, at: Picos, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Adds seeded per-consult fault rates.
    pub fn with_rates(mut self, seed: u64, rates: FaultRates) -> FaultPlan {
        self.seed = seed;
        self.rates = rates;
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_none(&self) -> bool {
        self.events.is_empty() && self.rates.is_zero()
    }

    /// Scheduled events, in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Builds the consultable handle. Empty plans yield the no-op
    /// injector regardless of seed.
    pub fn injector(self) -> FaultInjector {
        if self.is_none() {
            return FaultInjector::none();
        }
        let mut events = self.events;
        // Stable by time: equal-time events fire in insertion order.
        events.sort_by_key(|e| e.at);
        FaultInjector {
            inner: Some(Arc::new(Mutex::new(FaultState {
                schedule: events,
                next: 0,
                link_up: true,
                stall_beats: 0,
                armed_ecc: 0,
                armed_drop: 0,
                armed_corrupt: 0,
                armed_irq: 0,
                rng: SplitMix64::new(self.seed),
                rates: self.rates,
                injected: FaultReport::default(),
            }))),
        }
    }
}

#[derive(Debug)]
struct FaultState {
    schedule: Vec<FaultEvent>,
    next: usize,
    link_up: bool,
    stall_beats: u64,
    armed_ecc: u64,
    armed_drop: u64,
    armed_corrupt: u64,
    armed_irq: u64,
    rng: SplitMix64,
    rates: FaultRates,
    injected: FaultReport,
}

impl FaultState {
    /// Fires every scheduled event due at or before `now`.
    fn advance(&mut self, now: Picos) {
        while let Some(ev) = self.schedule.get(self.next) {
            if ev.at > now {
                break;
            }
            match ev.kind {
                FaultKind::LinkDown => {
                    self.link_up = false;
                    self.injected.link_downs += 1;
                }
                FaultKind::LinkUp => self.link_up = true,
                FaultKind::PcieCreditStall { beats } => self.stall_beats += beats,
                FaultKind::EccError => self.armed_ecc += 1,
                FaultKind::CmdDrop => self.armed_drop += 1,
                FaultKind::CmdCorrupt => self.armed_corrupt += 1,
                FaultKind::IrqLost => self.armed_irq += 1,
            }
            self.next += 1;
        }
    }

    fn consume(armed: &mut u64, rng: &mut SplitMix64, rate: f64) -> bool {
        if *armed > 0 {
            *armed -= 1;
            return true;
        }
        rate > 0.0 && rng.chance(rate)
    }
}

/// Tally of faults actually delivered to consults. `Display` gives the
/// one-line summary fault-scenario tests print and compare.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Link-down transitions fired.
    pub link_downs: u64,
    /// Consults answered while the link was down.
    pub link_down_hits: u64,
    /// Stalled credit beats charged.
    pub stall_beats: u64,
    /// ECC hits delivered.
    pub ecc_errors: u64,
    /// Commands dropped.
    pub cmd_drops: u64,
    /// Commands corrupted.
    pub cmd_corrupts: u64,
    /// Interrupts lost.
    pub irqs_lost: u64,
}

impl FaultReport {
    /// Total faults delivered.
    pub fn total(&self) -> u64 {
        self.link_down_hits
            + self.stall_beats
            + self.ecc_errors
            + self.cmd_drops
            + self.cmd_corrupts
            + self.irqs_lost
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults[link-downs={} link-hits={} stall-beats={} ecc={} drops={} corrupts={} irq-lost={}]",
            self.link_downs,
            self.link_down_hits,
            self.stall_beats,
            self.ecc_errors,
            self.cmd_drops,
            self.cmd_corrupts,
            self.irqs_lost
        )
    }
}

/// The handle models consult. Cloning shares the underlying plan state,
/// so one scenario's DMA engine, IPs and FIFOs all draw from the same
/// schedule and RNG stream.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Mutex<FaultState>>>,
}

impl FaultInjector {
    /// The no-op injector (what `Default` also gives).
    pub fn none() -> FaultInjector {
        FaultInjector { inner: None }
    }

    /// Whether this injector can ever fire (false for [`FaultPlan::none`]).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Link state at `now`. Consults while down are tallied.
    pub fn link_up(&self, now: Picos) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        let mut s = inner.lock().expect("fault state poisoned");
        s.advance(now);
        if !s.link_up {
            s.injected.link_down_hits += 1;
        }
        s.link_up
    }

    /// Takes (and clears) any pending credit-stall beats due at `now`.
    pub fn take_stall_beats(&self, now: Picos) -> u64 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let mut s = inner.lock().expect("fault state poisoned");
        s.advance(now);
        let beats = std::mem::take(&mut s.stall_beats);
        s.injected.stall_beats += beats;
        beats
    }

    /// Whether the memory beat consulted at `now` takes an ECC hit.
    pub fn ecc_error(&self, now: Picos) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let mut s = inner.lock().expect("fault state poisoned");
        s.advance(now);
        let rate = s.rates.ecc;
        let FaultState {
            armed_ecc, rng, ..
        } = &mut *s;
        let hit = FaultState::consume(armed_ecc, rng, rate);
        if hit {
            s.injected.ecc_errors += 1;
        }
        hit
    }

    /// Whether the command consulted at `now` is dropped in flight.
    pub fn drop_command(&self, now: Picos) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let mut s = inner.lock().expect("fault state poisoned");
        s.advance(now);
        let rate = s.rates.cmd_drop;
        let FaultState {
            armed_drop, rng, ..
        } = &mut *s;
        let hit = FaultState::consume(armed_drop, rng, rate);
        if hit {
            s.injected.cmd_drops += 1;
        }
        hit
    }

    /// Possibly corrupts the in-flight command bytes at `now`, flipping
    /// one deterministically chosen bit. Returns whether it fired.
    pub fn corrupt_command(&self, now: Picos, bytes: &mut [u8]) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if bytes.is_empty() {
            return false;
        }
        let mut s = inner.lock().expect("fault state poisoned");
        s.advance(now);
        let rate = s.rates.cmd_corrupt;
        let FaultState {
            armed_corrupt, rng, ..
        } = &mut *s;
        if !FaultState::consume(armed_corrupt, rng, rate) {
            return false;
        }
        let bit = s.rng.next_below(bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        s.injected.cmd_corrupts += 1;
        true
    }

    /// Whether the completion interrupt consulted at `now` is lost.
    pub fn irq_lost(&self, now: Picos) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let mut s = inner.lock().expect("fault state poisoned");
        s.advance(now);
        let rate = s.rates.irq_lost;
        let FaultState {
            armed_irq, rng, ..
        } = &mut *s;
        let hit = FaultState::consume(armed_irq, rng, rate);
        if hit {
            s.injected.irqs_lost += 1;
        }
        hit
    }

    /// Faults delivered so far.
    pub fn report(&self) -> FaultReport {
        match &self.inner {
            Some(inner) => inner.lock().expect("fault state poisoned").injected,
            None => FaultReport::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let inj = FaultPlan::none().injector();
        assert!(!inj.is_active());
        assert!(inj.link_up(0));
        assert_eq!(inj.take_stall_beats(1_000_000), 0);
        assert!(!inj.ecc_error(2_000_000));
        assert!(!inj.drop_command(3_000_000));
        assert!(!inj.irq_lost(4_000_000));
        let mut bytes = vec![0xAA; 16];
        assert!(!inj.corrupt_command(5_000_000, &mut bytes));
        assert_eq!(bytes, vec![0xAA; 16]);
        assert_eq!(inj.report(), FaultReport::default());
    }

    #[test]
    fn empty_builder_collapses_to_none() {
        let plan = FaultPlan::new().with_rates(99, FaultRates::default());
        assert!(plan.is_none());
        assert!(!plan.injector().is_active());
    }

    #[test]
    fn link_flap_schedule() {
        let inj = FaultPlan::new()
            .at(100, FaultKind::LinkDown)
            .at(300, FaultKind::LinkUp)
            .injector();
        assert!(inj.link_up(0));
        assert!(!inj.link_up(100));
        assert!(!inj.link_up(299));
        assert!(inj.link_up(300));
        let r = inj.report();
        assert_eq!(r.link_downs, 1);
        assert_eq!(r.link_down_hits, 2);
    }

    #[test]
    fn credit_stall_is_consumed_once() {
        let inj = FaultPlan::new()
            .at(50, FaultKind::PcieCreditStall { beats: 7 })
            .injector();
        assert_eq!(inj.take_stall_beats(49), 0);
        assert_eq!(inj.take_stall_beats(50), 7);
        assert_eq!(inj.take_stall_beats(51), 0, "stall must not repeat");
        assert_eq!(inj.report().stall_beats, 7);
    }

    #[test]
    fn scheduled_one_shots_arm_single_consults() {
        let inj = FaultPlan::new()
            .at(10, FaultKind::CmdDrop)
            .at(10, FaultKind::EccError)
            .at(10, FaultKind::IrqLost)
            .injector();
        assert!(inj.drop_command(10));
        assert!(!inj.drop_command(11));
        assert!(inj.ecc_error(12));
        assert!(!inj.ecc_error(13));
        assert!(inj.irq_lost(14));
        assert!(!inj.irq_lost(15));
        let r = inj.report();
        assert_eq!((r.cmd_drops, r.ecc_errors, r.irqs_lost), (1, 1, 1));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let inj = FaultPlan::new().at(0, FaultKind::CmdCorrupt).injector();
        let clean = vec![0u8; 32];
        let mut dirty = clean.clone();
        assert!(inj.corrupt_command(0, &mut dirty));
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(inj.report().cmd_corrupts, 1);
    }

    #[test]
    fn seeded_rates_reproduce_exactly() {
        let run = || {
            let inj = FaultPlan::new()
                .with_rates(
                    0xFA017,
                    FaultRates {
                        cmd_drop: 0.3,
                        cmd_corrupt: 0.2,
                        irq_lost: 0.1,
                        ecc: 0.25,
                    },
                )
                .injector();
            for t in 0..200u64 {
                inj.drop_command(t);
                inj.ecc_error(t);
                inj.irq_lost(t);
                let mut b = vec![0xFFu8; 8];
                inj.corrupt_command(t, &mut b);
            }
            inj.report()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.total() > 0, "rates this high must fire: {a}");
    }

    #[test]
    fn clones_share_state() {
        let inj = FaultPlan::new().at(5, FaultKind::CmdDrop).injector();
        let other = inj.clone();
        assert!(other.drop_command(5));
        assert!(!inj.drop_command(6), "clone consumed the armed drop");
        assert_eq!(inj.report().cmd_drops, 1);
    }

    #[test]
    fn events_fire_in_time_order_regardless_of_insertion() {
        let inj = FaultPlan::new()
            .at(200, FaultKind::LinkUp)
            .at(100, FaultKind::LinkDown)
            .injector();
        assert!(!inj.link_up(150));
        assert!(inj.link_up(250));
    }

    #[test]
    fn report_display_lists_all_counters() {
        let s = FaultReport {
            link_downs: 1,
            link_down_hits: 2,
            stall_beats: 3,
            ecc_errors: 4,
            cmd_drops: 5,
            cmd_corrupts: 6,
            irqs_lost: 7,
        }
        .to_string();
        for needle in ["link-downs=1", "stall-beats=3", "ecc=4", "drops=5", "irq-lost=7"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}
