//! Deterministic interleaving of rising edges from multiple clock domains.
//!
//! Dual-clock models (the parameterized CDC, wrapper datapaths spanning the
//! vendor-IP clock and the user clock) need their per-domain `on_*_edge`
//! callbacks invoked in global time order. [`MultiClock`] merges any number
//! of clock domains into a single ordered edge stream.

use crate::time::{ClockDomain, Picos};

/// One rising edge of one registered clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClockEdge {
    /// Index of the clock (registration order in [`MultiClock`]).
    pub clock: usize,
    /// The edge's cycle number within its own domain (0-based).
    pub cycle: u64,
    /// Global simulation time of the edge.
    pub at_ps: Picos,
}

#[derive(Debug, Clone)]
struct EdgeState {
    period_ps: Picos,
    next_ps: Picos,
    cycle: u64,
}

/// Merges rising edges of several clock domains in time order.
///
/// Ties are broken by registration order, which makes simulations fully
/// deterministic. Edge 0 of every clock occurs at time 0 plus the clock's
/// phase offset.
///
/// ```
/// use harmonia_sim::{ClockDomain, Freq, MultiClock};
/// let mut mc = MultiClock::new();
/// let fast = mc.add(ClockDomain::new(Freq::mhz(200))); // 5 ns
/// let slow = mc.add(ClockDomain::new(Freq::mhz(100))); // 10 ns
/// let edges: Vec<_> = mc.edges_until(10_000).collect();
/// // t=0: both; t=5000: fast; t=10000: excluded (half-open window)
/// assert_eq!(edges.len(), 3);
/// assert_eq!(edges[0].clock, fast);
/// assert_eq!(edges[1].clock, slow);
/// assert_eq!(edges[2].at_ps, 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiClock {
    clocks: Vec<EdgeState>,
}

impl MultiClock {
    /// Creates an empty clock set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a clock starting at time 0; returns its index.
    pub fn add(&mut self, domain: ClockDomain) -> usize {
        self.add_with_phase(domain, 0)
    }

    /// Registers a clock whose first edge occurs at `phase_ps`.
    ///
    /// A non-zero phase models the arbitrary alignment between truly
    /// asynchronous clocks.
    pub fn add_with_phase(&mut self, domain: ClockDomain, phase_ps: Picos) -> usize {
        self.clocks.push(EdgeState {
            period_ps: domain.period_ps(),
            next_ps: phase_ps,
            cycle: 0,
        });
        self.clocks.len() - 1
    }

    /// Number of registered clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether no clocks are registered.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Returns the next edge at or after the current position, advancing the
    /// corresponding clock. Returns `None` when no clocks are registered.
    pub fn next_edge(&mut self) -> Option<ClockEdge> {
        let idx = self
            .clocks
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (c.next_ps, *i))
            .map(|(i, _)| i)?;
        let state = &mut self.clocks[idx];
        let edge = ClockEdge {
            clock: idx,
            cycle: state.cycle,
            at_ps: state.next_ps,
        };
        state.cycle += 1;
        state.next_ps += state.period_ps;
        Some(edge)
    }

    /// Iterates edges in the **half-open** window `[current, until_ps)`.
    ///
    /// An edge falling *exactly* at `until_ps` is excluded and remains
    /// pending: a subsequent call picks it up as its first edge, so
    /// consecutive windows `[0, w)`, `[w, 2w)`, … visit every edge exactly
    /// once with no duplicates at the seams.
    ///
    /// ```
    /// use harmonia_sim::{ClockDomain, Freq, MultiClock};
    /// let mut mc = MultiClock::new();
    /// mc.add(ClockDomain::new(Freq::mhz(100))); // edges at 0, 10_000, 20_000, …
    /// // The edge at exactly until_ps = 10_000 is NOT included…
    /// let first: Vec<_> = mc.edges_until(10_000).map(|e| e.at_ps).collect();
    /// assert_eq!(first, vec![0]);
    /// // …it opens the next window instead.
    /// let second: Vec<_> = mc.edges_until(20_000).map(|e| e.at_ps).collect();
    /// assert_eq!(second, vec![10_000]);
    /// ```
    pub fn edges_until(&mut self, until_ps: Picos) -> EdgesUntil<'_> {
        EdgesUntil { mc: self, until_ps }
    }
}

/// Iterator returned by [`MultiClock::edges_until`].
#[derive(Debug)]
pub struct EdgesUntil<'a> {
    mc: &'a mut MultiClock,
    until_ps: Picos,
}

impl Iterator for EdgesUntil<'_> {
    type Item = ClockEdge;

    fn next(&mut self) -> Option<ClockEdge> {
        let min_next = self.mc.clocks.iter().map(|c| c.next_ps).min()?;
        if min_next >= self.until_ps {
            return None;
        }
        self.mc.next_edge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Freq;

    #[test]
    fn edges_come_in_time_order() {
        let mut mc = MultiClock::new();
        mc.add(ClockDomain::new(Freq::mhz(322)));
        mc.add(ClockDomain::new(Freq::mhz(250)));
        mc.add(ClockDomain::new(Freq::mhz(100)));
        let mut last = 0;
        for e in mc.edges_until(1_000_000) {
            assert!(e.at_ps >= last);
            last = e.at_ps;
        }
    }

    #[test]
    fn tie_break_by_registration_order() {
        let mut mc = MultiClock::new();
        let a = mc.add(ClockDomain::new(Freq::mhz(100)));
        let b = mc.add(ClockDomain::new(Freq::mhz(100)));
        let edges: Vec<_> = mc.edges_until(10_001).collect();
        assert_eq!(edges[0].clock, a);
        assert_eq!(edges[1].clock, b);
        assert_eq!(edges[2].clock, a);
        assert_eq!(edges[3].clock, b);
    }

    #[test]
    fn edge_counts_match_frequency_ratio() {
        let mut mc = MultiClock::new();
        let fast = mc.add(ClockDomain::new(Freq::mhz(400)));
        let slow = mc.add(ClockDomain::new(Freq::mhz(100)));
        let mut counts = [0u64; 2];
        for e in mc.edges_until(1_000_000_000) {
            counts[e.clock] += 1;
        }
        assert_eq!(counts[fast], 4 * counts[slow]);
    }

    #[test]
    fn phase_offset_shifts_first_edge() {
        let mut mc = MultiClock::new();
        mc.add_with_phase(ClockDomain::new(Freq::mhz(100)), 3_000);
        let e = mc.next_edge().unwrap();
        assert_eq!(e.at_ps, 3_000);
        assert_eq!(e.cycle, 0);
        let e = mc.next_edge().unwrap();
        assert_eq!(e.at_ps, 13_000);
    }

    #[test]
    fn edge_at_window_boundary_is_excluded_then_opens_next_window() {
        let mut mc = MultiClock::new();
        mc.add(ClockDomain::new(Freq::mhz(100))); // period 10_000 ps
        // Half-open window: the edge at exactly 20_000 must not appear.
        let first: Vec<_> = mc.edges_until(20_000).map(|e| e.at_ps).collect();
        assert_eq!(first, vec![0, 10_000]);
        // The boundary edge is still pending and leads the next window,
        // so stitched windows neither drop nor duplicate it.
        let second: Vec<_> = mc.edges_until(40_000).map(|e| e.at_ps).collect();
        assert_eq!(second, vec![20_000, 30_000]);
    }

    #[test]
    fn empty_multiclock_yields_nothing() {
        let mut mc = MultiClock::new();
        assert!(mc.next_edge().is_none());
        assert_eq!(mc.edges_until(1_000).count(), 0);
    }

    #[test]
    fn cycle_numbers_are_per_clock() {
        let mut mc = MultiClock::new();
        mc.add(ClockDomain::new(Freq::mhz(200)));
        mc.add(ClockDomain::new(Freq::mhz(100)));
        let mut cycles = [Vec::new(), Vec::new()];
        for e in mc.edges_until(30_000) {
            cycles[e.clock].push(e.cycle);
        }
        assert_eq!(cycles[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(cycles[1], vec![0, 1, 2]);
    }
}
