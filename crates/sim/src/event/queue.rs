//! Timing-wheel event queue with a calendar overflow level.
//!
//! The queue holds typed events at absolute [`Picos`] timestamps and pops
//! them in total order by `(time, source, seq)`:
//!
//! * `time` — the scheduled picosecond;
//! * `source` — the scheduling component's registration index, so ties
//!   between components resolve by registration order, exactly matching
//!   [`MultiClock`](crate::MultiClock)'s rule;
//! * `seq` — a monotonically increasing schedule counter, so ties within
//!   one source resolve in schedule order.
//!
//! Near events (within `slot_ps × slots` of the cursor) live in a
//! power-of-two timing wheel: one bucket per `slot_ps` of timeline,
//! indexed by `(time / slot_ps) % slots`. Far events live in an overflow
//! binary heap and are *promoted* into the wheel as the cursor's window
//! reaches them. When the wheel drains completely the cursor jumps
//! straight to the earliest overflow event — the queue-level form of the
//! engine's skip-ahead.

use crate::time::Picos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order of a scheduled event: `(at, source, seq)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Absolute simulation time.
    pub at: Picos,
    /// Registration index of the scheduling source (ties break low-first).
    pub source: u32,
    /// Monotonic schedule counter (ties within a source break oldest-first).
    pub seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    key: EventKey,
    payload: T,
}

/// Heap entries compare by key only; the payload never participates.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A timing wheel over the picosecond timeline with calendar overflow.
///
/// ```
/// use harmonia_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2_000, 0, "late");
/// q.schedule(1_000, 1, "early");
/// q.schedule(1_000, 0, "tie: lower source first");
/// assert_eq!(q.pop().unwrap().1, "tie: lower source first");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// One bucket per `slot_ps` of timeline; bucket `i` holds events with
    /// `(at / slot_ps) % slots == i` inside the cursor's window.
    slots: Vec<Vec<Entry<T>>>,
    /// log2 of the bucket granularity in picoseconds.
    slot_shift: u32,
    /// Slot-aligned time the cursor has reached; every queued event is at
    /// or after this.
    cursor_ps: Picos,
    /// Events at or beyond `cursor_ps + window` at schedule time.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Entries currently in the wheel (not the overflow).
    wheel_len: usize,
    /// Time of the last popped event; scheduling earlier than this panics.
    now: Picos,
    next_seq: u64,
}

/// Default bucket granularity: 4096 ps covers one to two periods of every
/// clock the framework models (2560–10000 ps).
const DEFAULT_SLOT_SHIFT: u32 = 12;
/// Default wheel size: 256 buckets ≈ 1.05 µs of timeline before overflow.
const DEFAULT_SLOTS: usize = 256;

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates a queue with the default geometry (4096 ps × 256 slots).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SLOT_SHIFT, DEFAULT_SLOTS)
    }

    /// Creates a queue with `2^slot_shift` ps buckets and `slots` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two (bucket indexing is a mask)
    /// or `slot_shift` would overflow the timeline.
    pub fn with_geometry(slot_shift: u32, slots: usize) -> Self {
        assert!(
            slots.is_power_of_two(),
            "wheel slot count must be a power of two, got {slots}"
        );
        assert!(slot_shift < 32, "slot granularity 2^{slot_shift} ps too coarse");
        EventQueue {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            slot_shift,
            cursor_ps: 0,
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            now: 0,
            next_seq: 0,
        }
    }

    fn slot_ps(&self) -> Picos {
        1u64 << self.slot_shift
    }

    /// Width of the wheel window in picoseconds.
    fn window_ps(&self) -> Picos {
        (self.slots.len() as Picos) << self.slot_shift
    }

    fn slot_of(&self, at: Picos) -> usize {
        ((at >> self.slot_shift) as usize) & (self.slots.len() - 1)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Time of the last popped event.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Schedules `payload` at absolute time `at` for registration index
    /// `source`, returning the event's total-order key.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped event — the
    /// simulated past is immutable.
    pub fn schedule(&mut self, at: Picos, source: u32, payload: T) -> EventKey {
        assert!(
            at >= self.now,
            "cannot schedule at {at} ps: the queue already popped {} ps",
            self.now
        );
        let key = EventKey {
            at,
            source,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let entry = Entry { key, payload };
        if at < self.cursor_ps + self.window_ps() {
            let slot = self.slot_of(at);
            self.slots[slot].push(entry);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
        key
    }

    /// Moves every overflow event that now falls inside the cursor's
    /// window into its wheel bucket.
    fn promote(&mut self) {
        let horizon = self.cursor_ps + self.window_ps();
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.key.at >= horizon {
                break;
            }
            let Reverse(entry) = self.overflow.pop().expect("peeked entry present");
            let slot = self.slot_of(entry.key.at);
            self.slots[slot].push(entry);
            self.wheel_len += 1;
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_at(&self) -> Option<Picos> {
        self.peek_key().map(|k| k.at)
    }

    /// Total-order key of the next event without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        let mut best: Option<EventKey> = self.overflow.peek().map(|Reverse(e)| e.key);
        if self.wheel_len > 0 {
            let mut cursor = self.cursor_ps;
            for _ in 0..self.slots.len() {
                let bucket = &self.slots[self.slot_of(cursor)];
                if let Some(min) = bucket.iter().map(|e| e.key).min() {
                    best = Some(match best {
                        Some(b) if b < min => b,
                        _ => min,
                    });
                    break;
                }
                cursor += self.slot_ps();
            }
        }
        best
    }

    /// Removes and returns the next event in `(time, source, seq)` order.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        if self.len() == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // The wheel is dry: jump the cursor straight to the earliest
            // overflow event (skip-ahead) and promote its whole window.
            let head = self.overflow.peek().expect("len() > 0").0.key.at;
            self.cursor_ps = head & !(self.slot_ps() - 1);
        }
        self.promote();
        loop {
            let slot = self.slot_of(self.cursor_ps);
            if let Some((idx, _)) = self.slots[slot]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.key)
            {
                let entry = self.slots[slot].swap_remove(idx);
                self.wheel_len -= 1;
                self.now = entry.key.at;
                return Some((entry.key, entry.payload));
            }
            self.cursor_ps += self.slot_ps();
            // Crossing a bucket boundary may pull new overflow events into
            // range; the loop terminates because wheel_len > 0 guarantees
            // a hit within one rotation.
            self.promote();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (i, at) in [9_000u64, 1_000, 5_000, 3_000, 7_000].iter().enumerate() {
            q.schedule(*at, i as u32, *at);
        }
        let mut out = Vec::new();
        while let Some((key, v)) = q.pop() {
            assert_eq!(key.at, v);
            out.push(v);
        }
        assert_eq!(out, vec![1_000, 3_000, 5_000, 7_000, 9_000]);
    }

    #[test]
    fn ties_break_by_source_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(100, 2, "src2-first");
        q.schedule(100, 0, "src0");
        q.schedule(100, 2, "src2-second");
        q.schedule(100, 1, "src1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["src0", "src1", "src2-first", "src2-second"]);
    }

    #[test]
    fn overflow_events_promote_in_order() {
        // 16 ps buckets × 4 slots = 64 ps window: everything beyond 64 ps
        // starts in the overflow heap.
        let mut q = EventQueue::with_geometry(4, 4);
        q.schedule(1_000_000, 0, "far");
        q.schedule(10, 0, "near");
        q.schedule(500_000, 0, "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_while_popping_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 0, 10u64);
        q.schedule(30, 0, 30);
        let (k, v) = q.pop().unwrap();
        assert_eq!(v, 10);
        // Schedule at the popped time and between pending events.
        q.schedule(k.at, 0, 10_000);
        q.schedule(20, 0, 20);
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(rest, vec![10_000, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, 0, ());
        q.pop();
        q.schedule(99, 0, ());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_at().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::with_geometry(4, 4);
        for at in [77u64, 12, 1_000_000, 500] {
            q.schedule(at, 3, at);
        }
        while !q.is_empty() {
            let peeked = q.peek_key().unwrap();
            let (popped, _) = q.pop().unwrap();
            assert_eq!(peeked, popped);
        }
    }

    #[test]
    fn dry_wheel_jumps_cursor_to_overflow() {
        let mut q = EventQueue::with_geometry(4, 4);
        q.schedule(1u64 << 40, 0, "very far");
        // One pop must not walk 2^36 empty buckets.
        let (key, v) = q.pop().unwrap();
        assert_eq!((key.at, v), (1u64 << 40, "very far"));
        assert_eq!(q.now(), 1u64 << 40);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_slots_rejected() {
        let _: EventQueue<()> = EventQueue::with_geometry(4, 12);
    }
}
