//! Event-driven clock-edge generation with component sleep and pins.
//!
//! [`EventClock`] produces the *same* `(time, registration-order)` edge
//! stream as [`MultiClock`](crate::MultiClock) — the differential tests
//! pin that equivalence — but components drive it event-style instead of
//! being polled on every edge:
//!
//! * a clock whose component is provably quiescent can be
//!   [`pause`](EventClock::pause)d: its edges stop being generated at all
//!   and simulated time skips across them;
//! * [`resume_at`](EventClock::resume_at) re-enters the edge stream at
//!   the first true edge at or after a target time, with the cycle number
//!   the skipped edges would have reached — so pipelines and FIFO beats
//!   keep exact cycle accounting;
//! * [`pin`](EventClock::pin) forces a [`Wake::Pin`] visit at an absolute
//!   time even if every clock is paused. Pinning every
//!   [`FaultPlan`] timestamp
//!   ([`pin_plan`](EventClock::pin_plan)) is what guarantees skip-ahead
//!   never jumps over a scheduled fault or a trace span boundary.
//!
//! Periodic sources live in a rotor array (one comparison per active
//! clock per wake, the same cost [`MultiClock`](crate::MultiClock) pays);
//! aperiodic pins live in the timing-wheel
//! [`EventQueue`]. The skip-ahead win comes
//! from paused clocks leaving the rotor entirely.

use super::queue::EventQueue;
use crate::edges::ClockEdge;
use crate::fault::FaultPlan;
use crate::time::{ClockDomain, Picos};

/// One wake-up delivered by [`EventClock::next_wake`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Wake {
    /// A rising clock edge, identical to what `MultiClock` would emit.
    Edge(ClockEdge),
    /// A pinned visit: no clock edge occurs, but the engine must give
    /// components a chance to observe this instant (fault timestamps,
    /// trace boundaries).
    Pin(Picos),
}

impl Wake {
    /// The wake's absolute time.
    pub fn at_ps(&self) -> Picos {
        match self {
            Wake::Edge(e) => e.at_ps,
            Wake::Pin(at) => *at,
        }
    }
}

#[derive(Debug, Clone)]
struct ClockSource {
    period_ps: Picos,
    phase_ps: Picos,
    next_ps: Picos,
    cycle: u64,
    paused: bool,
    /// Time of the last edge actually delivered, the rewind floor for
    /// [`EventClock::resume_at`].
    last_emitted_ps: Option<Picos>,
}

/// Registration index used for pins: orders after every clock at a tie,
/// so a pinned visit at time `t` follows all real edges at `t`.
const PIN_SOURCE: u32 = u32::MAX;

/// Event-driven replacement for [`MultiClock`](crate::MultiClock).
///
/// ```
/// use harmonia_sim::event::{EventClock, Wake};
/// use harmonia_sim::{ClockDomain, Freq};
///
/// let mut ec = EventClock::new();
/// let fast = ec.add(ClockDomain::new(Freq::mhz(200))); // 5 ns
/// let slow = ec.add(ClockDomain::new(Freq::mhz(100))); // 10 ns
/// // Identical stream to MultiClock: t=0 fast, t=0 slow, t=5000 fast…
/// let w = ec.next_wake().unwrap();
/// assert_eq!(w, Wake::Edge(harmonia_sim::ClockEdge { clock: fast, cycle: 0, at_ps: 0 }));
/// let w = ec.next_wake().unwrap();
/// assert_eq!(w.at_ps(), 0);
/// // Pausing the slow clock removes its edges from the stream entirely.
/// ec.pause(slow);
/// let w = ec.next_wake().unwrap();
/// assert_eq!(w, Wake::Edge(harmonia_sim::ClockEdge { clock: fast, cycle: 1, at_ps: 5_000 }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventClock {
    clocks: Vec<ClockSource>,
    pins: EventQueue<()>,
    /// Cached `pins.peek_at()`, kept in sync on every pin insert/pop so
    /// the hot wake loop never touches the wheel when no pin is due.
    pin_next: Option<Picos>,
    now: Picos,
}

impl EventClock {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a clock starting at time 0; returns its index.
    pub fn add(&mut self, domain: ClockDomain) -> usize {
        self.add_with_phase(domain, 0)
    }

    /// Registers a clock whose first edge occurs at `phase_ps`.
    pub fn add_with_phase(&mut self, domain: ClockDomain, phase_ps: Picos) -> usize {
        self.clocks.push(ClockSource {
            period_ps: domain.period_ps(),
            phase_ps,
            next_ps: phase_ps,
            cycle: 0,
            paused: false,
            last_emitted_ps: None,
        });
        self.clocks.len() - 1
    }

    /// Number of registered clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether no clocks are registered.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Time of the most recent wake.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Stops generating edges for clock `idx`.
    ///
    /// Only pause a clock whose component is *provably quiescent*: every
    /// edge that would have fired must be observationally inert (see the
    /// determinism rules in DESIGN.md). The engine cannot check that —
    /// the differential tests do.
    #[inline]
    pub fn pause(&mut self, idx: usize) {
        self.clocks[idx].paused = true;
    }

    /// Whether clock `idx` is currently paused.
    #[inline]
    pub fn is_paused(&self, idx: usize) -> bool {
        self.clocks[idx].paused
    }

    /// Schedules clock `idx`'s next edge at its first true edge at or
    /// after `at_ps` (clamped to `now`), restoring the cycle number the
    /// skipped edges would have reached.
    ///
    /// This both *advances* a paused clock past a dead region and
    /// *rewinds* a sleep scheduled too far out (a fault pin landing
    /// inside the sleep window needs the clock back sooner). Edges that
    /// were already emitted are never re-emitted: the recomputed edge is
    /// clamped strictly after the last one this clock delivered.
    #[inline]
    pub fn resume_at(&mut self, idx: usize, at_ps: Picos) {
        let target = at_ps.max(self.now);
        let c = &mut self.clocks[idx];
        c.paused = false;
        // Fast path for short sleeps (the common skip-ahead shape: a
        // component dozes a few periods between arrivals): step the
        // pending edge forward instead of paying two divisions.
        if target > c.next_ps && target - c.next_ps <= 16 * c.period_ps {
            while c.next_ps < target {
                c.next_ps += c.period_ps;
                c.cycle += 1;
            }
            return;
        }
        // First true edge at or after the target…
        let mut cycle = if target <= c.phase_ps {
            0
        } else {
            (target - c.phase_ps).div_ceil(c.period_ps)
        };
        // …but never one already emitted.
        if let Some(last) = c.last_emitted_ps {
            cycle = cycle.max((last - c.phase_ps) / c.period_ps + 1);
        }
        c.cycle = cycle;
        c.next_ps = c.phase_ps + cycle * c.period_ps;
    }

    /// Pins a [`Wake::Pin`] visit at absolute time `at_ps` (if it is not
    /// already in the past).
    pub fn pin(&mut self, at_ps: Picos) {
        if at_ps >= self.now {
            self.pins.schedule(at_ps, PIN_SOURCE, ());
            if self.pin_next.map_or(true, |p| at_ps < p) {
                self.pin_next = Some(at_ps);
            }
        }
    }

    /// Pins every scheduled timestamp of `plan`, so skip-ahead can never
    /// jump over a fault event.
    pub fn pin_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            self.pin(ev.at);
        }
    }

    /// Returns the next wake in global `(time, registration order)`
    /// order, advancing the engine. `None` when every clock is paused
    /// (or none are registered) and no pins remain.
    #[inline]
    pub fn next_wake(&mut self) -> Option<Wake> {
        self.next_wake_bounded(None)
    }

    /// [`next_wake`](EventClock::next_wake) bounded by a half-open window:
    /// wakes at or after `until_ps` are left in place and `None` is
    /// returned, mirroring `MultiClock::edges_until`.
    #[inline]
    pub fn next_wake_before(&mut self, until_ps: Picos) -> Option<Wake> {
        self.next_wake_bounded(Some(until_ps))
    }

    /// Single-pass core for both entry points: one rotor scan, one pin
    /// peek, and the bound check happens on the winner *before* anything
    /// advances — so a wake at or past the bound stays pending. This is
    /// the engine's hot loop; keeping it one scan is what lets the event
    /// engine beat the cycle engine even before any skip-ahead.
    #[inline]
    fn next_wake_bounded(&mut self, until_ps: Option<Picos>) -> Option<Wake> {
        let mut best: Option<(Picos, usize)> = None;
        for (i, c) in self.clocks.iter().enumerate() {
            if c.paused {
                continue;
            }
            match best {
                Some((t, _)) if t <= c.next_ps => {}
                _ => best = Some((c.next_ps, i)),
            }
        }
        match (best, self.pin_next) {
            // Edges win ties against pins: PIN_SOURCE orders last.
            (Some((t, idx)), pin) if pin.map_or(true, |p| t <= p) => {
                if until_ps.is_some_and(|b| t >= b) {
                    return None;
                }
                let c = &mut self.clocks[idx];
                let edge = ClockEdge {
                    clock: idx,
                    cycle: c.cycle,
                    at_ps: c.next_ps,
                };
                c.last_emitted_ps = Some(c.next_ps);
                c.cycle += 1;
                c.next_ps += c.period_ps;
                self.now = t;
                Some(Wake::Edge(edge))
            }
            (_, Some(p)) => {
                if until_ps.is_some_and(|b| p >= b) {
                    return None;
                }
                self.pins.pop();
                self.pin_next = self.pins.peek_at();
                self.now = p;
                Some(Wake::Pin(p))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::MultiClock;
    use crate::fault::FaultKind;
    use crate::time::Freq;

    fn drain_edges(ec: &mut EventClock, until: Picos) -> Vec<ClockEdge> {
        let mut out = Vec::new();
        while let Some(w) = ec.next_wake_before(until) {
            if let Wake::Edge(e) = w {
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn matches_multiclock_stream_exactly() {
        let domains = [Freq::mhz(322), Freq::mhz(250), Freq::khz(390_625)];
        let mut mc = MultiClock::new();
        let mut ec = EventClock::new();
        for d in domains {
            mc.add(ClockDomain::new(d));
            ec.add(ClockDomain::new(d));
        }
        let reference: Vec<ClockEdge> = mc.edges_until(1_000_000).collect();
        assert_eq!(drain_edges(&mut ec, 1_000_000), reference);
    }

    #[test]
    fn phase_offsets_match_multiclock() {
        let mut mc = MultiClock::new();
        let mut ec = EventClock::new();
        for (mhz, phase) in [(100u64, 3_000u64), (100, 0), (417, 1)] {
            mc.add_with_phase(ClockDomain::new(Freq::mhz(mhz)), phase);
            ec.add_with_phase(ClockDomain::new(Freq::mhz(mhz)), phase);
        }
        let reference: Vec<ClockEdge> = mc.edges_until(200_000).collect();
        assert_eq!(drain_edges(&mut ec, 200_000), reference);
    }

    #[test]
    fn pause_skips_edges_and_resume_restores_cycle_numbers() {
        let mut ec = EventClock::new();
        let clk = ec.add(ClockDomain::new(Freq::mhz(100))); // 10 ns
        assert_eq!(ec.next_wake().unwrap().at_ps(), 0);
        ec.pause(clk);
        assert!(ec.next_wake().is_none(), "paused clock generates nothing");
        // Resume at 95 ns: the next true edge is cycle 10 at 100 ns.
        ec.resume_at(clk, 95_000);
        match ec.next_wake().unwrap() {
            Wake::Edge(e) => {
                assert_eq!(e.at_ps, 100_000);
                assert_eq!(e.cycle, 10);
            }
            w => panic!("expected an edge, got {w:?}"),
        }
    }

    #[test]
    fn resume_on_exact_edge_lands_on_it() {
        let mut ec = EventClock::new();
        let clk = ec.add(ClockDomain::new(Freq::mhz(100)));
        ec.next_wake();
        ec.pause(clk);
        ec.resume_at(clk, 50_000); // exactly cycle 5
        match ec.next_wake().unwrap() {
            Wake::Edge(e) => assert_eq!((e.at_ps, e.cycle), (50_000, 5)),
            w => panic!("expected an edge, got {w:?}"),
        }
    }

    #[test]
    fn resume_rewinds_an_oversized_sleep_without_double_emission() {
        let mut ec = EventClock::new();
        let clk = ec.add(ClockDomain::new(Freq::mhz(100)));
        ec.next_wake(); // edge 0 at t=0
        // Sleep until 4 µs, then discover (via a pin) that something
        // happens at 3.456789 µs: the next edge must come back to 3.46 µs.
        ec.pause(clk);
        ec.resume_at(clk, 4_000_000);
        ec.resume_at(clk, 3_456_789);
        match ec.next_wake().unwrap() {
            Wake::Edge(e) => assert_eq!((e.at_ps, e.cycle), (3_460_000, 346)),
            w => panic!("expected an edge, got {w:?}"),
        }
        // Rewinding to before the already-emitted edge must not replay it.
        ec.resume_at(clk, 0);
        match ec.next_wake().unwrap() {
            Wake::Edge(e) => assert_eq!((e.at_ps, e.cycle), (3_470_000, 347)),
            w => panic!("expected an edge, got {w:?}"),
        }
    }

    #[test]
    fn resume_never_rewinds_a_pending_edge() {
        let mut ec = EventClock::new();
        let clk = ec.add(ClockDomain::new(Freq::mhz(100)));
        ec.next_wake(); // edge 0 at t=0; next pending is 10_000
        ec.resume_at(clk, 0); // must not reschedule behind the pending edge
        match ec.next_wake().unwrap() {
            Wake::Edge(e) => assert_eq!((e.at_ps, e.cycle), (10_000, 1)),
            w => panic!("expected an edge, got {w:?}"),
        }
    }

    #[test]
    fn pins_fire_even_with_all_clocks_paused() {
        let mut ec = EventClock::new();
        let clk = ec.add(ClockDomain::new(Freq::mhz(100)));
        ec.pause(clk);
        ec.pin(12_345);
        ec.pin(500);
        assert_eq!(ec.next_wake(), Some(Wake::Pin(500)));
        assert_eq!(ec.next_wake(), Some(Wake::Pin(12_345)));
        assert_eq!(ec.next_wake(), None);
    }

    #[test]
    fn edge_beats_pin_at_the_same_time() {
        let mut ec = EventClock::new();
        ec.add(ClockDomain::new(Freq::mhz(100)));
        ec.pin(10_000);
        ec.next_wake(); // edge 0
        match ec.next_wake().unwrap() {
            Wake::Edge(e) => assert_eq!(e.at_ps, 10_000),
            w => panic!("edge must precede the pin, got {w:?}"),
        }
        assert_eq!(ec.next_wake(), Some(Wake::Pin(10_000)));
    }

    #[test]
    fn pin_plan_pins_every_fault_timestamp() {
        let plan = FaultPlan::new()
            .at(400, FaultKind::LinkDown)
            .at(100, FaultKind::EccError)
            .at(400, FaultKind::LinkUp);
        let mut ec = EventClock::new();
        ec.pin_plan(&plan);
        let pins: Vec<Picos> = std::iter::from_fn(|| ec.next_wake())
            .map(|w| w.at_ps())
            .collect();
        assert_eq!(pins, vec![100, 400, 400]);
    }

    #[test]
    fn window_boundary_is_half_open() {
        let mut ec = EventClock::new();
        ec.add(ClockDomain::new(Freq::mhz(100)));
        let edges = drain_edges(&mut ec, 10_000);
        assert_eq!(edges.len(), 1, "edge exactly at until_ps is excluded");
        assert_eq!(edges[0].at_ps, 0);
    }

    #[test]
    fn empty_engine_yields_nothing() {
        let mut ec = EventClock::new();
        assert!(ec.next_wake().is_none());
        assert!(ec.next_wake_before(1_000).is_none());
    }
}
