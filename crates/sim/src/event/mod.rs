//! Discrete-event simulation engine.
//!
//! The cycle-stepped engine ([`MultiClock`](crate::MultiClock)) walks
//! every clock edge in a window and polls every component on every edge,
//! even when nothing can happen. This module is the event-driven
//! alternative from ROADMAP item 1:
//!
//! * [`EventQueue`] — a hierarchical timing wheel over the [`Picos`]
//!   timeline with a calendar-heap overflow, popping events in the
//!   deterministic total order `(time, source, seq)` where `source` is a
//!   registration index (the same tie-break rule `MultiClock` uses) and
//!   `seq` a monotonic schedule counter;
//! * [`EventClock`] — the edge generator built on it: components that
//!   are provably quiescent pause their clock instead of being polled,
//!   and simulated time skips across the dead region;
//! * [`Wake`] — what the engine delivers: a real
//!   [`ClockEdge`](crate::ClockEdge)
//!   (`Wake::Edge`) or a pinned visit (`Wake::Pin`) that forces the
//!   engine to land on a [`FaultPlan`](crate::fault::FaultPlan)
//!   timestamp or trace boundary inside a skipped region;
//! * [`Engine`] — the `HARMONIA_ENGINE={cycle,event}` selection knob.
//!   Both engines ship side by side and are pinned byte-identical by the
//!   differential suites (`engine_equivalence.rs`,
//!   `engine_fault_trace.rs`).
//!
//! # Determinism contract
//!
//! The event engine must be *observationally indistinguishable* from the
//! cycle engine: identical paper tables, identical trace exports,
//! identical fault reports, at any `HARMONIA_THREADS`. A component model
//! may only skip (pause its clock across) a region when every skipped
//! edge is provably inert — see DESIGN.md for the full rules. In short:
//!
//! 1. no FIFO pointer or synchronizer flop may change across the region
//!    (for an [`AsyncFifo`](crate::AsyncFifo), `is_settled()` plus "no
//!    pushes arrive during the window");
//! 2. no pipeline stage may hold an in-flight item
//!    ([`Pipeline::next_exit_cycle`](crate::Pipeline::next_exit_cycle)
//!    must be `None` or beyond the region);
//! 3. no observable counter, histogram, or trace event may be produced
//!    by the skipped edges;
//! 4. every `FaultPlan` timestamp inside the region must be pinned
//!    ([`EventClock::pin_plan`]) so fault consults happen at the same
//!    simulated time as the cycle engine would perform them.

use crate::time::Picos;

pub mod clock;
pub mod queue;

pub use clock::{EventClock, Wake};
pub use queue::{EventKey, EventQueue};

/// Environment variable selecting the simulation engine.
///
/// * unset or `"cycle"` — the cycle-stepped `MultiClock` loops (default);
/// * `"event"` — the event-driven `EventClock` paths with skip-ahead.
///
/// Any other value panics: a silently misread knob would invalidate a
/// differential run.
pub const ENGINE_ENV: &str = "HARMONIA_ENGINE";

/// Which simulation engine drives edge loops.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Poll every component on every clock edge (`MultiClock`).
    #[default]
    Cycle,
    /// Components schedule wakes; quiescent regions are skipped
    /// (`EventClock`).
    Event,
}

impl Engine {
    /// Reads [`ENGINE_ENV`], defaulting to [`Engine::Cycle`].
    ///
    /// Re-read on every call (like `HARMONIA_THREADS`) so tests can flip
    /// the knob between runs in one process.
    pub fn from_env() -> Self {
        match std::env::var(ENGINE_ENV) {
            Err(_) => Engine::Cycle,
            Ok(v) => match v.trim() {
                "" | "cycle" => Engine::Cycle,
                "event" => Engine::Event,
                other => panic!("{ENGINE_ENV} must be \"cycle\" or \"event\", got {other:?}"),
            },
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Cycle => "cycle",
            Engine::Event => "event",
        })
    }
}

/// A component that can report when it next needs service.
///
/// IP models implement this so an event-driven driver can sleep until
/// the earliest wake instead of polling. `None` means "idle until new
/// external input arrives" — the driver may skip the component entirely
/// until it hands it more work.
pub trait WakeSource {
    /// Earliest future time (>= `now`) at which the component's state
    /// can change on its own, or `None` if it is quiescent.
    fn next_wake(&self, now: Picos) -> Option<Picos>;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Engine::from_env is env-dependent; the env-flipping tests live in
    // the bench crate's differential suite where an env lock serializes
    // them. Here we only check the pure parts.

    #[test]
    fn engine_default_is_cycle() {
        assert_eq!(Engine::default(), Engine::Cycle);
    }

    #[test]
    fn engine_display_matches_knob_values() {
        assert_eq!(Engine::Cycle.to_string(), "cycle");
        assert_eq!(Engine::Event.to_string(), "event");
    }
}
