//! Beat-level representation of streaming data.
//!
//! The unified stream interface of the paper (§3.2) "specifies the start and
//! end of the data stream" and carries sideband signals (masks, empty flags)
//! alongside the data. A [`StreamBeat`] is one clock cycle's worth of a
//! stream at some data width; packets are sequences of beats delimited by
//! `sop`/`eop`.

/// One beat of a data stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StreamBeat {
    /// Number of valid bytes in this beat (≤ interface width / 8).
    pub valid_bytes: u16,
    /// Start-of-packet marker.
    pub sop: bool,
    /// End-of-packet marker.
    pub eop: bool,
    /// Opaque sideband/metadata (masks, empty flags, user bits).
    pub sideband: u64,
}

impl StreamBeat {
    /// A full-width beat in the middle of a packet.
    pub fn body(valid_bytes: u16) -> Self {
        StreamBeat {
            valid_bytes,
            sop: false,
            eop: false,
            sideband: 0,
        }
    }

    /// Builder-style start-of-packet marker.
    pub fn with_sop(mut self) -> Self {
        self.sop = true;
        self
    }

    /// Builder-style end-of-packet marker.
    pub fn with_eop(mut self) -> Self {
        self.eop = true;
        self
    }

    /// Builder-style sideband assignment.
    pub fn with_sideband(mut self, sideband: u64) -> Self {
        self.sideband = sideband;
        self
    }
}

/// Splits a packet of `packet_bytes` into beats for an interface
/// `width_bits` wide, marking `sop`/`eop`.
///
/// ```
/// use harmonia_sim::stream::packet_to_beats;
/// let beats = packet_to_beats(100, 512); // 64-byte beats
/// assert_eq!(beats.len(), 2);
/// assert!(beats[0].sop && !beats[0].eop);
/// assert!(beats[1].eop);
/// assert_eq!(beats[1].valid_bytes, 36);
/// ```
///
/// # Panics
///
/// Panics if `packet_bytes` is zero or `width_bits` is not a multiple of 8.
pub fn packet_to_beats(packet_bytes: u32, width_bits: u32) -> Vec<StreamBeat> {
    assert!(packet_bytes > 0, "empty packets are not representable");
    assert!(
        width_bits >= 8 && width_bits.is_multiple_of(8),
        "interface width must be a whole number of bytes"
    );
    let bpb = width_bits / 8;
    let n = packet_bytes.div_ceil(bpb);
    (0..n)
        .map(|i| {
            let remaining = packet_bytes - i * bpb;
            let mut beat = StreamBeat::body(remaining.min(bpb) as u16);
            if i == 0 {
                beat = beat.with_sop();
            }
            if i == n - 1 {
                beat = beat.with_eop();
            }
            beat
        })
        .collect()
}

/// Number of beats a packet occupies on an interface of `width_bits`.
pub fn beats_for_packet(packet_bytes: u32, width_bits: u32) -> u64 {
    assert!(width_bits >= 8 && width_bits.is_multiple_of(8));
    u64::from(packet_bytes.div_ceil(width_bits / 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_beat_packet_has_both_markers() {
        let beats = packet_to_beats(64, 512);
        assert_eq!(beats.len(), 1);
        assert!(beats[0].sop && beats[0].eop);
        assert_eq!(beats[0].valid_bytes, 64);
    }

    #[test]
    fn exact_multiple_fills_all_beats() {
        let beats = packet_to_beats(128, 512);
        assert_eq!(beats.len(), 2);
        assert!(beats.iter().all(|b| b.valid_bytes == 64));
    }

    #[test]
    fn narrow_interface_many_beats() {
        let beats = packet_to_beats(1500, 128); // 16-byte beats
        assert_eq!(beats.len(), 94);
        assert_eq!(beats.last().unwrap().valid_bytes, 1500 - 93 * 16);
        assert_eq!(
            beats.iter().map(|b| u32::from(b.valid_bytes)).sum::<u32>(),
            1500
        );
    }

    #[test]
    fn beats_for_packet_matches_expansion() {
        for (size, width) in [(64u32, 512u32), (65, 512), (1500, 128), (9000, 2048)] {
            assert_eq!(
                beats_for_packet(size, width),
                packet_to_beats(size, width).len() as u64
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty packets")]
    fn zero_length_packet_rejected() {
        let _ = packet_to_beats(0, 512);
    }

    #[test]
    fn builder_helpers() {
        let b = StreamBeat::body(8).with_sop().with_sideband(0xFF);
        assert!(b.sop && !b.eop);
        assert_eq!(b.sideband, 0xFF);
    }
}
