//! Deterministic picosecond event tracing for the simulation substrate.
//!
//! The fault plane (PR 4) made failure *behaviour* reproducible; this
//! module makes failure (and fast-path) *timing* observable. A
//! [`TraceCollector`] is a cheap cloneable handle the hot paths consult —
//! the unified control kernel, the command driver, the DMA engine, the
//! MAC/DRAM models — recording typed [`TraceEvent`]s at absolute
//! [`Picos`] timestamps. A frozen [`Trace`] exports to the Chrome/Perfetto
//! `trace.json` format ([`Trace::export_perfetto`]) or a plain-text
//! timeline ([`Trace::export_text`]).
//!
//! Three contracts every consumer can rely on:
//!
//! 1. **Disabled tracing is zero-cost.** [`TraceCollector::disabled`]
//!    holds no state and every hook collapses to one branch on an
//!    `Option` — identical to the [`crate::fault::FaultPlan::none`]
//!    contract, and pinned the same way (the `paper_snapshot` test runs
//!    with tracing off and must stay byte-identical).
//! 2. **Tracing is observational.** Recording events never changes
//!    simulated timing, fault draws or results; enabling
//!    [`TRACE_ENV`] alters *only* what can be exported afterwards.
//! 3. **Merged traces are thread-count independent.** Each scenario owns
//!    a collector with a stable `lane`; [`Trace::merge`] orders events by
//!    `(Picos, lane, seq)`, so [`par_traced`] emits byte-identical
//!    exports at `HARMONIA_THREADS=1` and `=N`.
//!
//! # Example: capture → export → assert ordering
//!
//! ```
//! use harmonia_sim::trace::{TraceCollector, TraceEventKind, Trace};
//!
//! let tc = TraceCollector::enabled();
//! tc.instant(2_000, TraceEventKind::EccScrub);
//! tc.span(0, 1_500, TraceEventKind::MacFrame { bytes: 64, lost: false });
//! let trace = tc.take();
//!
//! // Events come back ordered by time, regardless of record order.
//! let times: Vec<u64> = trace.events().iter().map(|e| e.at).collect();
//! assert_eq!(times, vec![0, 2_000]);
//!
//! // Both exporters are deterministic.
//! let json = trace.export_perfetto();
//! assert!(json.starts_with("{\"displayTimeUnit\""));
//! assert!(json.contains("\"mac-frame\""));
//! let text = trace.export_text();
//! assert!(text.lines().count() == 2);
//! ```

use crate::fault::FaultKind;
use crate::time::Picos;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Environment knob enabling tracing in binaries and drivers that consult
/// [`TraceCollector::from_env`]. Any value other than unset, empty or `0`
/// enables collection. Defaults off: the no-trace path is the pinned one.
pub const TRACE_ENV: &str = "HARMONIA_TRACE";

/// The typed event taxonomy — one variant per hot-path phenomenon worth
/// seeing on a timeline.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// The driver transmitted (or retransmitted) a command.
    CmdIssue {
        /// Command code.
        code: u16,
        /// Target RBB id.
        rbb_id: u8,
        /// Target instance.
        instance_id: u8,
    },
    /// The DMA control queue carried (or lost) a command packet.
    CmdDelivery {
        /// Packet size on the wire.
        bytes: u32,
        /// Whether the packet was lost in flight.
        lost: bool,
    },
    /// The kernel rejected undecodable bytes with a NACK.
    CmdNack {
        /// The decode-error code carried in the NACK payload.
        error_code: u32,
    },
    /// An attempt burned its response deadline.
    CmdTimeout {
        /// Command code.
        code: u16,
    },
    /// The driver scheduled a retransmission after backoff.
    CmdRetry {
        /// Command code.
        code: u16,
        /// 1-based retry number.
        attempt: u32,
    },
    /// A command converged with a response (span: issue → ack).
    CmdAck {
        /// Command code.
        code: u16,
        /// Transmissions performed.
        attempts: u32,
    },
    /// The retry budget ran out.
    CmdGiveUp {
        /// Command code.
        code: u16,
        /// Transmissions performed.
        attempts: u32,
    },
    /// The unified control kernel executed a command (span).
    KernelExec {
        /// Command code.
        code: u16,
        /// Register operations performed on software's behalf.
        reg_ops: u64,
    },
    /// An idempotent retry was served from the replay cache.
    KernelReplay {
        /// Command code.
        code: u16,
    },
    /// A FIFO rejected a beat (backpressure to the producer).
    FifoStall {
        /// Occupancy at the moment of rejection.
        occupancy: u32,
    },
    /// A DRAM access missed the open row (precharge + activate charged).
    DramRowConflict {
        /// Bank that took the conflict.
        bank: u32,
    },
    /// A corrected ECC hit paid the scrub-and-replay penalty (span).
    EccScrub,
    /// A MAC frame crossed the datapath (span), or was lost on the wire.
    MacFrame {
        /// Frame size.
        bytes: u32,
        /// Whether the link dropped the frame.
        lost: bool,
    },
    /// The fault plane delivered a fault to a consult.
    FaultInjected {
        /// What fired.
        kind: FaultKind,
    },
    /// The host took a module out of service.
    ModuleDegraded {
        /// RBB id.
        rbb_id: u8,
        /// Instance id.
        instance_id: u8,
    },
    /// The batched driver rang the submission doorbell (span: one DMA
    /// burst carrying the whole descriptor chunk).
    BatchSubmit {
        /// Descriptors in the burst.
        entries: u32,
        /// Total wire bytes of the burst.
        bytes: u32,
    },
    /// The kernel drained a doorbell's descriptors through the
    /// decode/idempotency/replay machinery (span: total execution time).
    BatchDrain {
        /// Descriptors drained from the submission ring.
        entries: u32,
    },
    /// The host observed a batch's completion records; interrupts were
    /// coalesced per batch instead of per command.
    BatchComplete {
        /// Completion records observed.
        entries: u32,
        /// Coalesced interrupts this batch cost the host.
        interrupts: u32,
    },
    /// The tenant scheduler preempted one tenant and activated another
    /// through the PR plane (span: context save + bitstream restore).
    TenantSwitch {
        /// The PR slot being time-shared.
        slot: u32,
        /// Outgoing tenant index (`u32::MAX` when the slot was empty).
        from: u32,
        /// Incoming tenant index.
        to: u32,
    },
    /// A tenant burned its per-slice command budget with work still
    /// queued, forcing preemption at the next scheduling point.
    QuotaExhausted {
        /// Tenant index the budget belonged to.
        tenant: u32,
        /// Commands the slice granted.
        granted: u64,
    },
}

impl TraceEventKind {
    /// Stable short name (Perfetto `name`, text-timeline column).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::CmdIssue { .. } => "cmd-issue",
            TraceEventKind::CmdDelivery { .. } => "cmd-delivery",
            TraceEventKind::CmdNack { .. } => "cmd-nack",
            TraceEventKind::CmdTimeout { .. } => "cmd-timeout",
            TraceEventKind::CmdRetry { .. } => "cmd-retry",
            TraceEventKind::CmdAck { .. } => "cmd-ack",
            TraceEventKind::CmdGiveUp { .. } => "cmd-give-up",
            TraceEventKind::KernelExec { .. } => "kernel-exec",
            TraceEventKind::KernelReplay { .. } => "kernel-replay",
            TraceEventKind::FifoStall { .. } => "fifo-stall",
            TraceEventKind::DramRowConflict { .. } => "dram-row-conflict",
            TraceEventKind::EccScrub => "ecc-scrub",
            TraceEventKind::MacFrame { .. } => "mac-frame",
            TraceEventKind::FaultInjected { .. } => "fault-injected",
            TraceEventKind::ModuleDegraded { .. } => "module-degraded",
            TraceEventKind::BatchSubmit { .. } => "batch-submit",
            TraceEventKind::BatchDrain { .. } => "batch-drain",
            TraceEventKind::BatchComplete { .. } => "batch-complete",
            TraceEventKind::TenantSwitch { .. } => "tenant-switch",
            TraceEventKind::QuotaExhausted { .. } => "quota-exhausted",
        }
    }

    /// Stable category (Perfetto `cat`): which layer emitted the event.
    pub fn category(&self) -> &'static str {
        match self {
            TraceEventKind::CmdIssue { .. }
            | TraceEventKind::CmdDelivery { .. }
            | TraceEventKind::CmdNack { .. }
            | TraceEventKind::CmdTimeout { .. }
            | TraceEventKind::CmdRetry { .. }
            | TraceEventKind::CmdAck { .. }
            | TraceEventKind::CmdGiveUp { .. } => "cmd",
            TraceEventKind::KernelExec { .. } | TraceEventKind::KernelReplay { .. } => "kernel",
            TraceEventKind::FifoStall { .. }
            | TraceEventKind::DramRowConflict { .. }
            | TraceEventKind::EccScrub => "mem",
            TraceEventKind::MacFrame { .. } => "net",
            TraceEventKind::FaultInjected { .. } | TraceEventKind::ModuleDegraded { .. } => {
                "fault"
            }
            TraceEventKind::BatchSubmit { .. } | TraceEventKind::BatchComplete { .. } => "cmd",
            TraceEventKind::BatchDrain { .. } => "kernel",
            TraceEventKind::TenantSwitch { .. } | TraceEventKind::QuotaExhausted { .. } => {
                "tenant"
            }
        }
    }

    /// The event's arguments as deterministic `(key, value)` pairs, in a
    /// fixed order (drives both exporters).
    pub fn args(&self) -> Vec<(&'static str, String)> {
        match *self {
            TraceEventKind::CmdIssue {
                code,
                rbb_id,
                instance_id,
            } => vec![
                ("code", format!("{code:#06x}")),
                ("rbb", rbb_id.to_string()),
                ("inst", instance_id.to_string()),
            ],
            TraceEventKind::CmdDelivery { bytes, lost } => vec![
                ("bytes", bytes.to_string()),
                ("lost", lost.to_string()),
            ],
            TraceEventKind::CmdNack { error_code } => {
                vec![("error_code", error_code.to_string())]
            }
            TraceEventKind::CmdTimeout { code } => vec![("code", format!("{code:#06x}"))],
            TraceEventKind::CmdRetry { code, attempt } => vec![
                ("code", format!("{code:#06x}")),
                ("attempt", attempt.to_string()),
            ],
            TraceEventKind::CmdAck { code, attempts } => vec![
                ("code", format!("{code:#06x}")),
                ("attempts", attempts.to_string()),
            ],
            TraceEventKind::CmdGiveUp { code, attempts } => vec![
                ("code", format!("{code:#06x}")),
                ("attempts", attempts.to_string()),
            ],
            TraceEventKind::KernelExec { code, reg_ops } => vec![
                ("code", format!("{code:#06x}")),
                ("reg_ops", reg_ops.to_string()),
            ],
            TraceEventKind::KernelReplay { code } => vec![("code", format!("{code:#06x}"))],
            TraceEventKind::FifoStall { occupancy } => {
                vec![("occupancy", occupancy.to_string())]
            }
            TraceEventKind::DramRowConflict { bank } => vec![("bank", bank.to_string())],
            TraceEventKind::EccScrub => Vec::new(),
            TraceEventKind::MacFrame { bytes, lost } => vec![
                ("bytes", bytes.to_string()),
                ("lost", lost.to_string()),
            ],
            TraceEventKind::FaultInjected { kind } => vec![("kind", kind.to_string())],
            TraceEventKind::ModuleDegraded {
                rbb_id,
                instance_id,
            } => vec![
                ("rbb", rbb_id.to_string()),
                ("inst", instance_id.to_string()),
            ],
            TraceEventKind::BatchSubmit { entries, bytes } => vec![
                ("entries", entries.to_string()),
                ("bytes", bytes.to_string()),
            ],
            TraceEventKind::BatchDrain { entries } => {
                vec![("entries", entries.to_string())]
            }
            TraceEventKind::BatchComplete {
                entries,
                interrupts,
            } => vec![
                ("entries", entries.to_string()),
                ("interrupts", interrupts.to_string()),
            ],
            TraceEventKind::TenantSwitch { slot, from, to } => vec![
                ("slot", slot.to_string()),
                ("from", from.to_string()),
                ("to", to.to_string()),
            ],
            TraceEventKind::QuotaExhausted { tenant, granted } => vec![
                ("tenant", tenant.to_string()),
                ("granted", granted.to_string()),
            ],
        }
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())?;
        for (k, v) in self.args() {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// One recorded event: an instant (`dur == 0`) or a span.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Absolute simulation time the event starts.
    pub at: Picos,
    /// Span duration; `0` for instants.
    pub dur: Picos,
    /// Emitting lane (scenario/worker index in fan-outs; `0` otherwise).
    pub lane: u32,
    /// Per-lane record sequence number — the stable tie-break that makes
    /// merged ordering total.
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

#[derive(Debug, Default)]
struct TraceBuf {
    lane: u32,
    seq: u64,
    events: Vec<TraceEvent>,
}

/// The cheap cloneable handle hot paths record into. Clones share the
/// underlying buffer, so one scenario's kernel, driver and DMA engine all
/// append to the same lane.
#[derive(Clone, Debug, Default)]
pub struct TraceCollector {
    inner: Option<Arc<Mutex<TraceBuf>>>,
}

impl TraceCollector {
    /// The no-op collector (what `Default` also gives): every hook is one
    /// branch, nothing is ever allocated or recorded.
    pub fn disabled() -> TraceCollector {
        TraceCollector { inner: None }
    }

    /// An enabled collector on lane 0.
    pub fn enabled() -> TraceCollector {
        Self::with_lane(0)
    }

    /// An enabled collector with a stable lane id (use the scenario/job
    /// index when fanning out, so merges are thread-count independent).
    pub fn with_lane(lane: u32) -> TraceCollector {
        TraceCollector {
            inner: Some(Arc::new(Mutex::new(TraceBuf {
                lane,
                seq: 0,
                events: Vec::new(),
            }))),
        }
    }

    /// Reads [`TRACE_ENV`]: enabled for any value other than unset, empty
    /// or `0`.
    ///
    /// ```
    /// use harmonia_sim::trace::TraceCollector;
    /// // The default environment traces nothing.
    /// if std::env::var_os("HARMONIA_TRACE").is_none() {
    ///     assert!(!TraceCollector::from_env().is_enabled());
    /// }
    /// ```
    pub fn from_env() -> TraceCollector {
        match std::env::var(TRACE_ENV) {
            Ok(v) if !v.trim().is_empty() && v.trim() != "0" => Self::enabled(),
            _ => Self::disabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an instant event at `at`.
    pub fn instant(&self, at: Picos, kind: TraceEventKind) {
        self.span(at, 0, kind);
    }

    /// Records a span starting at `at` lasting `dur` picoseconds.
    pub fn span(&self, at: Picos, dur: Picos, kind: TraceEventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("trace buffer poisoned");
        let seq = buf.seq;
        buf.seq += 1;
        let lane = buf.lane;
        buf.events.push(TraceEvent {
            at,
            dur,
            lane,
            seq,
            kind,
        });
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().expect("trace buffer poisoned").events.len(),
            None => 0,
        }
    }

    /// Whether nothing was recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the recorded events into a frozen, time-ordered [`Trace`].
    /// The collector stays usable (and keeps its lane and sequence
    /// counter) afterwards.
    pub fn take(&self) -> Trace {
        let events = match &self.inner {
            Some(inner) => std::mem::take(
                &mut inner.lock().expect("trace buffer poisoned").events,
            ),
            None => Vec::new(),
        };
        Trace::from_events(events)
    }

    /// Clones the recorded events into a frozen [`Trace`] without
    /// draining them.
    pub fn snapshot(&self) -> Trace {
        let events = match &self.inner {
            Some(inner) => inner.lock().expect("trace buffer poisoned").events.clone(),
            None => Vec::new(),
        };
        Trace::from_events(events)
    }
}

/// A frozen, totally ordered set of trace events.
///
/// Ordering is `(at, lane, seq)` — time first, then the stable tie-break —
/// which is what makes the exporters byte-deterministic across thread
/// counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    fn from_events(mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by(|a, b| {
            (a.at, a.lane, a.seq).cmp(&(b.at, b.lane, b.seq))
        });
        Trace { events }
    }

    /// Merges traces from many lanes into one totally ordered trace.
    ///
    /// ```
    /// use harmonia_sim::trace::{Trace, TraceCollector, TraceEventKind};
    ///
    /// let a = TraceCollector::with_lane(0);
    /// let b = TraceCollector::with_lane(1);
    /// a.instant(500, TraceEventKind::EccScrub);
    /// b.instant(100, TraceEventKind::EccScrub);
    /// let merged = Trace::merge([a.take(), b.take()]);
    /// let order: Vec<(u64, u32)> = merged.events().iter().map(|e| (e.at, e.lane)).collect();
    /// assert_eq!(order, vec![(100, 1), (500, 0)]);
    /// ```
    pub fn merge<I: IntoIterator<Item = Trace>>(traces: I) -> Trace {
        let mut events = Vec::new();
        for t in traces {
            events.extend(t.events);
        }
        Trace::from_events(events)
    }

    /// The events, in `(at, lane, seq)` order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Exports the Chrome/Perfetto `trace.json` format (load in
    /// `ui.perfetto.dev` or `chrome://tracing`). Spans become complete
    /// (`"X"`) events, instants thread-scoped (`"i"`) events; `ts`/`dur`
    /// are microseconds with the full picosecond precision kept in six
    /// fixed decimal places, so output is byte-deterministic.
    pub fn export_perfetto(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            out.push_str(ev.kind.name());
            out.push_str("\",\"cat\":\"");
            out.push_str(ev.kind.category());
            if ev.dur > 0 {
                out.push_str("\",\"ph\":\"X\",\"ts\":");
                out.push_str(&fmt_us(ev.at));
                out.push_str(",\"dur\":");
                out.push_str(&fmt_us(ev.dur));
            } else {
                out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                out.push_str(&fmt_us(ev.at));
            }
            out.push_str(",\"pid\":0,\"tid\":");
            out.push_str(&ev.lane.to_string());
            out.push_str(",\"args\":{");
            for (j, (k, v)) in ev.kind.args().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(k);
                out.push_str("\":\"");
                out.push_str(v);
                out.push('"');
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Exports a plain-text timeline, one event per line:
    ///
    /// ```text
    /// [          1234567 ps] lane 0  +240000  kernel-exec code=0x0002 reg_ops=34
    /// ```
    pub fn export_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!(
                "[{:>17} ps] lane {:<3} +{:<9} {}\n",
                ev.at, ev.lane, ev.dur, ev.kind
            ));
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.export_text())
    }
}

/// Formats picoseconds as microseconds with six fixed decimals (exact:
/// 1 ps = 1e-6 µs), via integer math only.
fn fmt_us(ps: Picos) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Runs `f` over `items` on the worker pool, giving each item its own
/// lane-indexed [`TraceCollector`], and merges the per-item traces
/// deterministically. The merged trace (and hence both exports) is
/// byte-identical at any `HARMONIA_THREADS` setting.
///
/// ```
/// use harmonia_sim::trace::{par_traced, TraceEventKind};
///
/// let (sums, trace) = par_traced(vec![10u64, 20, 30], |&ms, tc| {
///     tc.instant(ms, TraceEventKind::EccScrub);
///     ms * 2
/// });
/// assert_eq!(sums, vec![20, 40, 60]);
/// assert_eq!(trace.len(), 3);
/// let lanes: Vec<u32> = trace.events().iter().map(|e| e.lane).collect();
/// assert_eq!(lanes, vec![0, 1, 2]); // ordered by time, which tracks lane here
/// ```
pub fn par_traced<T, R, F>(items: Vec<T>, f: F) -> (Vec<R>, Trace)
where
    T: Send,
    R: Send,
    F: Fn(&T, &TraceCollector) -> R + Sync,
{
    let indexed: Vec<(u32, T)> = items
        .into_iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t))
        .collect();
    let results = crate::exec::par_map(indexed, |(lane, item)| {
        let tc = TraceCollector::with_lane(lane);
        let r = f(&item, &tc);
        (r, tc.take())
    });
    let mut out = Vec::with_capacity(results.len());
    let mut traces = Vec::with_capacity(results.len());
    for (r, t) in results {
        out.push(r);
        traces.push(t);
    }
    (out, Trace::merge(traces))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let tc = TraceCollector::disabled();
        assert!(!tc.is_enabled());
        tc.instant(100, TraceEventKind::EccScrub);
        tc.span(0, 50, TraceEventKind::KernelExec { code: 2, reg_ops: 4 });
        assert!(tc.is_empty());
        assert!(tc.take().is_empty());
        assert_eq!(tc.take().export_perfetto(), Trace::default().export_perfetto());
    }

    #[test]
    fn clones_share_one_lane_buffer() {
        let tc = TraceCollector::with_lane(7);
        let other = tc.clone();
        tc.instant(10, TraceEventKind::EccScrub);
        other.instant(20, TraceEventKind::EccScrub);
        let trace = tc.take();
        assert_eq!(trace.len(), 2);
        assert!(trace.events().iter().all(|e| e.lane == 7));
        assert_eq!(trace.events()[0].seq, 0);
        assert_eq!(trace.events()[1].seq, 1);
        assert!(other.is_empty(), "take drains the shared buffer");
    }

    #[test]
    fn events_sort_by_time_then_lane_then_seq() {
        let a = TraceCollector::with_lane(1);
        let b = TraceCollector::with_lane(0);
        a.instant(100, TraceEventKind::EccScrub);
        a.instant(100, TraceEventKind::DramRowConflict { bank: 3 });
        b.instant(100, TraceEventKind::EccScrub);
        b.instant(50, TraceEventKind::EccScrub);
        let m = Trace::merge([a.take(), b.take()]);
        let key: Vec<(Picos, u32, u64)> =
            m.events().iter().map(|e| (e.at, e.lane, e.seq)).collect();
        assert_eq!(key, vec![(50, 0, 1), (100, 0, 0), (100, 1, 0), (100, 1, 1)]);
    }

    #[test]
    fn perfetto_export_is_valid_shape_and_deterministic() {
        let tc = TraceCollector::enabled();
        tc.span(
            1_234_567,
            240_000,
            TraceEventKind::KernelExec { code: 2, reg_ops: 34 },
        );
        tc.instant(2_000_000, TraceEventKind::CmdNack { error_code: 3 });
        let t = tc.take();
        let json = t.export_perfetto();
        assert_eq!(json, t.export_perfetto());
        assert!(json.contains("\"ts\":1.234567"));
        assert!(json.contains("\"dur\":0.240000"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"error_code\":\"3\""));
        assert!(json.ends_with("]}\n"));
        // Braces balance (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn text_export_lists_args() {
        let tc = TraceCollector::enabled();
        tc.instant(
            5,
            TraceEventKind::CmdIssue {
                code: 0x0002,
                rbb_id: 1,
                instance_id: 0,
            },
        );
        let s = tc.take().export_text();
        assert!(s.contains("cmd-issue"));
        assert!(s.contains("code=0x0002"));
        assert!(s.contains("rbb=1"));
    }

    #[test]
    fn snapshot_keeps_events() {
        let tc = TraceCollector::enabled();
        tc.instant(1, TraceEventKind::EccScrub);
        assert_eq!(tc.snapshot().len(), 1);
        assert_eq!(tc.len(), 1, "snapshot must not drain");
        assert_eq!(tc.take().len(), 1);
        assert_eq!(tc.len(), 0);
    }

    #[test]
    fn par_traced_is_thread_count_independent() {
        let run = || {
            let (_, trace) = par_traced((0..16u64).collect(), |&i, tc| {
                // Deliberately colliding timestamps across lanes.
                tc.instant(i % 4, TraceEventKind::DramRowConflict { bank: i as u32 });
                tc.span(i % 4, 10, TraceEventKind::EccScrub);
            });
            trace.export_perfetto()
        };
        // The pool size is env-driven; the export must not depend on it.
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("dram-row-conflict"));
    }

    #[test]
    fn fmt_us_is_exact() {
        assert_eq!(fmt_us(0), "0.000000");
        assert_eq!(fmt_us(1), "0.000001");
        assert_eq!(fmt_us(1_000_000), "1.000000");
        assert_eq!(fmt_us(1_234_567), "1.234567");
    }

    #[test]
    fn every_kind_renders() {
        let kinds = [
            TraceEventKind::CmdIssue { code: 1, rbb_id: 0, instance_id: 0 },
            TraceEventKind::CmdDelivery { bytes: 64, lost: true },
            TraceEventKind::CmdNack { error_code: 2 },
            TraceEventKind::CmdTimeout { code: 1 },
            TraceEventKind::CmdRetry { code: 1, attempt: 1 },
            TraceEventKind::CmdAck { code: 1, attempts: 2 },
            TraceEventKind::CmdGiveUp { code: 1, attempts: 5 },
            TraceEventKind::KernelExec { code: 1, reg_ops: 3 },
            TraceEventKind::KernelReplay { code: 1 },
            TraceEventKind::FifoStall { occupancy: 64 },
            TraceEventKind::DramRowConflict { bank: 2 },
            TraceEventKind::EccScrub,
            TraceEventKind::MacFrame { bytes: 1500, lost: false },
            TraceEventKind::FaultInjected { kind: FaultKind::LinkDown },
            TraceEventKind::ModuleDegraded { rbb_id: 1, instance_id: 0 },
            TraceEventKind::BatchSubmit { entries: 16, bytes: 256 },
            TraceEventKind::BatchDrain { entries: 16 },
            TraceEventKind::BatchComplete { entries: 16, interrupts: 1 },
        ];
        for k in kinds {
            assert!(!k.name().is_empty());
            assert!(!k.category().is_empty());
            let shown = k.to_string();
            assert!(shown.starts_with(k.name()), "{shown}");
        }
    }
}
