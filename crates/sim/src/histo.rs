//! Log-bucketed latency histograms: bounded-memory percentile tracking
//! for the observability plane.
//!
//! [`crate::stats::LatencyStats`] keeps every sample — exact percentiles,
//! unbounded memory. [`LogHistogram`] is its streaming complement: 65
//! power-of-two buckets, O(1) record, mergeable across workers, with
//! nearest-rank p50/p99/max read off bucket upper bounds. Bucket `b`
//! covers `[2^(b-1), 2^b - 1]` (bucket 0 is exactly `{0}`), so relative
//! error is bounded by 2× — plenty for "where did the tail go" questions,
//! while `max` stays exact.
//!
//! ```
//! use harmonia_sim::histo::LogHistogram;
//!
//! let mut h = LogHistogram::new();
//! for v in [100u64, 200, 300, 400, 50_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert_eq!(h.max(), 50_000);          // exact
//! assert!(h.p50() >= 200 && h.p50() < 512); // bucketed upper bound
//! assert!(h.p99() >= 50_000);
//! ```

use std::fmt;

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-size log2-bucketed histogram of `u64` samples (latencies in
/// picoseconds, sizes in bytes — any non-negative magnitude).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (v.ilog2() + 1) as usize
        }
    }

    /// Upper bound of bucket `b` (inclusive).
    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample. O(1), no allocation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` samples of value `v` in O(1) — the bulk entry point
    /// for aggregate models (the fleet control plane records whole
    /// per-tick command cohorts this way instead of looping).
    ///
    /// ```
    /// use harmonia_sim::histo::LogHistogram;
    /// let mut a = LogHistogram::new();
    /// let mut b = LogHistogram::new();
    /// a.record_n(500, 1_000);
    /// for _ in 0..1_000 { b.record(500); }
    /// assert_eq!(a, b);
    /// ```
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one (workers merge into a fleet
    /// view). Merge order does not affect any reported statistic.
    ///
    /// ```
    /// use harmonia_sim::histo::LogHistogram;
    /// let mut a = LogHistogram::new();
    /// let mut b = LogHistogram::new();
    /// a.record(10);
    /// b.record(1_000);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.max(), 1_000);
    /// ```
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all samples (`u128`: 2^64 samples of `u64::MAX`
    /// cannot overflow it). The Prometheus summary `_sum` line.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Nearest-rank percentile (`0 < p <= 100`), reported as the upper
    /// bound of the bucket holding that rank — except the last occupied
    /// bucket, where the exact `max` is returned. Same nearest-rank
    /// convention as [`crate::stats::LatencyStats`].
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Ranks landing in the top occupied bucket report the
                // exact max rather than a (possibly 2×) upper bound.
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Multi-line ASCII rendering of the occupied buckets, with `#` bars
    /// scaled to the fullest bucket — the `trace` binary and the
    /// `trace_capture` example print this.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return String::from("(empty histogram)\n");
        }
        let widest = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let lo = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let hi = self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut out = String::new();
        for b in lo..=hi {
            let n = self.buckets[b];
            let bar = (n * 40 / widest) as usize;
            out.push_str(&format!(
                "{:>20} | {:<40} {}\n",
                format!("<= {}", Self::bucket_upper(b)),
                "#".repeat(bar.max(usize::from(n > 0))),
                n
            ));
        }
        out
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histo[n={} min={} mean={} p50={} p99={} max={}]",
            self.count(),
            self.min(),
            self.mean(),
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert!(h.render().contains("empty"));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_upper(0), 0);
        assert_eq!(LogHistogram::bucket_upper(1), 1);
        assert_eq!(LogHistogram::bucket_upper(2), 3);
        assert_eq!(LogHistogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(777);
        assert_eq!(h.p50(), 777, "top occupied bucket reports exact max");
        assert_eq!(h.p99(), 777);
        assert_eq!(h.min(), 777);
        assert_eq!(h.mean(), 777);
    }

    #[test]
    fn percentiles_track_distribution_shape() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, upper bound 127
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 127);
        assert_eq!(h.percentile(99.0), 127);
        assert_eq!(h.percentile(100.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [5u64, 10, 20] {
            a.record(v);
        }
        for v in [40u64, 80, 160_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.min(), 5);
        assert_eq!(ab.max(), 160_000);
    }

    #[test]
    fn record_n_matches_looped_records() {
        let mut bulk = LogHistogram::new();
        let mut looped = LogHistogram::new();
        for (v, n) in [(0u64, 3u64), (100, 7), (65_536, 2)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                looped.record(v);
            }
        }
        assert_eq!(bulk, looped);
        assert_eq!(bulk.count(), 12);
        // Zero-count is a no-op even for a fresh value.
        let before = bulk.clone();
        bulk.record_n(u64::MAX, 0);
        assert_eq!(bulk, before);
    }

    #[test]
    fn empty_percentiles_are_zero_at_every_rank() {
        let h = LogHistogram::new();
        for p in [0.001, 1.0, 50.0, 99.0, 99.99, 100.0] {
            assert_eq!(h.percentile(p), 0);
        }
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(123_456);
        for p in [0.001, 1.0, 50.0, 99.0, 99.99, 100.0] {
            assert_eq!(h.percentile(p), 123_456);
        }
        assert_eq!(h.sum(), 123_456);
        assert_eq!(h.max(), 123_456);
    }

    #[test]
    fn merge_is_associative() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in [0u64, 7, 13] {
            a.record(v);
        }
        for v in [1_000u64, 2_000] {
            b.record(v);
        }
        for v in [5u64, 900_000, u64::MAX] {
            c.record(v);
        }
        // merge(a, merge(b, c))
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // merge(merge(a, b), c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        assert_eq!(a_bc, ab_c);
        assert_eq!(a_bc.count(), 8);
        assert_eq!(a_bc.sum(), a.sum() + b.sum() + c.sum());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, before);
        let mut empty = LogHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn zero_samples_live_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 1);
    }

    #[test]
    fn render_shows_occupied_buckets_only() {
        let mut h = LogHistogram::new();
        h.record(100);
        h.record(100_000);
        let r = h.render();
        assert_eq!(r.lines().count(), LogHistogram::bucket_of(100_000) - LogHistogram::bucket_of(100) + 1);
        assert!(r.contains('#'));
    }

    #[test]
    fn display_one_liner() {
        let mut h = LogHistogram::new();
        h.record(1_000);
        let s = h.to_string();
        assert!(s.starts_with("histo[n=1"), "{s}");
        assert!(s.contains("max=1000"), "{s}");
    }
}
