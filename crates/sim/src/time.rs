//! Simulation time, frequencies and clock domains.
//!
//! All simulation time is expressed in integer picoseconds ([`Picos`]),
//! which keeps arithmetic exact for every clock frequency the framework
//! models (25G MAC at 390.625 MHz, PCIe user clocks, DDR controllers, …).

use std::fmt;

/// Simulation time in picoseconds.
pub type Picos = u64;

/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// A clock frequency, stored in hertz for exactness.
///
/// ```
/// use harmonia_sim::Freq;
/// let f = Freq::mhz(250);
/// assert_eq!(f.hz(), 250_000_000);
/// assert_eq!(f.period_ps(), 4_000);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Freq(u64);

impl Freq {
    /// The frequency in hertz.
    pub fn hz(self) -> u64 {
        self.0
    }

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero: a zero-frequency clock never ticks and any
    /// component on it would silently deadlock the simulation.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be non-zero");
        Freq(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from kilohertz (used for fractional-MHz clocks
    /// such as the 390.625 MHz 25G MAC core clock).
    pub fn khz(khz: u64) -> Self {
        Self::from_hz(khz * 1_000)
    }

    /// Creates a frequency from gigahertz.
    pub fn ghz(ghz: u64) -> Self {
        Self::from_hz(ghz * 1_000_000_000)
    }

    /// The clock period in picoseconds, rounded down.
    pub fn period_ps(self) -> Picos {
        PS_PER_SEC / self.0
    }

    /// Frequency in MHz as a float, for reporting.
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{:.3} MHz", self.as_mhz())
        }
    }
}

/// A clock domain: a frequency plus conversion helpers between cycle counts
/// and wall-clock picoseconds.
///
/// ```
/// use harmonia_sim::{ClockDomain, Freq};
/// let clk = ClockDomain::new(Freq::mhz(100));
/// assert_eq!(clk.ps_at_cycle(5), 50_000);
/// assert_eq!(clk.cycle_at(50_000), 5);
/// assert_eq!(clk.cycles_in(1_000_000), 100);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    freq: Freq,
}

impl ClockDomain {
    /// Creates a clock domain at the given frequency.
    pub fn new(freq: Freq) -> Self {
        ClockDomain { freq }
    }

    /// The domain's frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The clock period in picoseconds.
    pub fn period_ps(&self) -> Picos {
        self.freq.period_ps()
    }

    /// Time of the `n`-th rising edge (edge 0 is at time 0).
    pub fn ps_at_cycle(&self, cycle: u64) -> Picos {
        cycle * self.period_ps()
    }

    /// Number of complete cycles elapsed at time `ps`.
    pub fn cycle_at(&self, ps: Picos) -> u64 {
        ps / self.period_ps()
    }

    /// Number of rising edges within a window of `window_ps` picoseconds.
    pub fn cycles_in(&self, window_ps: Picos) -> u64 {
        window_ps / self.period_ps()
    }

    /// Converts a number of cycles in this domain to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        (cycles * self.period_ps()) as f64 / 1_000.0
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clock@{}", self.freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_constructors_agree() {
        assert_eq!(Freq::mhz(100), Freq::khz(100_000));
        assert_eq!(Freq::ghz(1), Freq::mhz(1_000));
        assert_eq!(Freq::from_hz(322_265_625).period_ps(), 3_103);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_rejected() {
        let _ = Freq::from_hz(0);
    }

    #[test]
    fn period_of_common_clocks() {
        assert_eq!(Freq::mhz(250).period_ps(), 4_000);
        assert_eq!(Freq::mhz(322).period_ps(), 3_105);
        assert_eq!(Freq::khz(390_625).period_ps(), 2_560);
    }

    #[test]
    fn cycle_time_round_trip() {
        let clk = ClockDomain::new(Freq::mhz(322));
        for c in [0u64, 1, 7, 1000, 123_456] {
            assert_eq!(clk.cycle_at(clk.ps_at_cycle(c)), c);
        }
    }

    #[test]
    fn cycles_in_window() {
        let clk = ClockDomain::new(Freq::mhz(100)); // 10 ns period
        assert_eq!(clk.cycles_in(95_000), 9);
        assert_eq!(clk.cycles_in(100_000), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Freq::mhz(250).to_string(), "250 MHz");
        assert_eq!(Freq::khz(390_625).to_string(), "390.625 MHz");
        assert_eq!(
            ClockDomain::new(Freq::mhz(100)).to_string(),
            "clock@100 MHz"
        );
    }

    #[test]
    fn cycles_to_ns() {
        let clk = ClockDomain::new(Freq::mhz(250));
        assert!((clk.cycles_to_ns(3) - 12.0).abs() < 1e-9);
    }
}
