//! Property-based tests for the application role logic.

use harmonia_apps::host_network::{checksum_valid, internet_checksum};
use harmonia_apps::storage::StorageOffload;
use harmonia_apps::l4lb::{Backend, Layer4Lb};
use harmonia_apps::retrieval::RetrievalEngine;
use harmonia_apps::sec_gateway::{AclRule, Action, SecGateway};
use harmonia_shell::rbb::network::PacketMeta;
use harmonia_testkit::prelude::*;

fn arb_pkt() -> impl Strategy<Value = PacketMeta> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()).prop_map(
        |(src_ip, dst_ip, src_port, dst_port)| PacketMeta {
            dst_mac: 1,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: 6,
            bytes: 128,
        },
    )
}

fn arb_rule() -> impl Strategy<Value = AclRule> {
    (
        any::<u32>(),
        0u8..=32,
        any::<u32>(),
        0u8..=32,
        option::of(any::<u16>()),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(|(sa, sl, da, dl, port, priority, allow)| AclRule {
            src: (sa, sl),
            dst: (da, dl),
            dst_port: port,
            proto: None,
            priority,
            action: if allow { Action::Allow } else { Action::Deny },
        })
}

forall! {
    /// The gateway's verdict equals the lowest-priority matching rule's
    /// action (reference implementation), or the default.
    #[test]
    fn acl_first_match_semantics(
        rules in collection::vec(arb_rule(), 0..40),
        pkt in arb_pkt(),
    ) {
        let mut gw = SecGateway::new(Action::Allow);
        for r in &rules {
            gw.install_rule(*r).unwrap();
        }
        // Reference: stable sort by priority, first match wins. The
        // gateway's insertion order is the tie-break for equal priorities,
        // matching a stable sort of the original list.
        let mut sorted: Vec<&AclRule> = rules.iter().collect();
        sorted.sort_by_key(|r| r.priority);
        let expect = sorted
            .iter()
            .find(|r| r.matches(&pkt))
            .map_or(Action::Allow, |r| r.action);
        prop_assert_eq!(gw.classify(&pkt), expect);
    }

    /// LB: flows are sticky, and removing an uninvolved backend never
    /// remaps an established flow.
    #[test]
    fn lb_stickiness_under_churn(
        ports in collection::vec(any::<u16>(), 1..200),
        remove in 0u16..8,
    ) {
        let mut lb = Layer4Lb::new(
            (0..8).map(|id| Backend { id, weight: 1 }).collect(),
            100_000,
        );
        let pkt = |p: u16| PacketMeta {
            dst_mac: 0,
            src_ip: 1,
            dst_ip: 2,
            src_port: p,
            dst_port: 80,
            proto: 6,
            bytes: 64,
        };
        let mut first: Vec<(u16, u16)> = Vec::new();
        for &p in &ports {
            if let Some(b) = lb.dispatch(&pkt(p)) {
                first.push((p, b));
            }
        }
        lb.remove_backend(remove);
        for (p, b) in first {
            if b != remove {
                prop_assert_eq!(lb.dispatch(&pkt(p)), Some(b), "flow remapped");
            } else {
                // Flows of the removed backend must land somewhere else.
                let nb = lb.dispatch(&pkt(p)).unwrap();
                prop_assert_ne!(nb, remove);
            }
        }
    }

    /// RFC 1071: appending the checksum always validates; flipping any
    /// single bit always invalidates.
    #[test]
    fn checksum_validates_and_detects(
        mut data in collection::vec(any::<u8>(), 1..256),
        bit in any::<usize>(),
    ) {
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let csum = internet_checksum(&data);
        let mut framed = data.clone();
        framed.extend_from_slice(&csum.to_be_bytes());
        prop_assert!(checksum_valid(&framed));
        let bit = bit % (framed.len() * 8);
        framed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!checksum_valid(&framed), "single-bit flip validated");
    }

    /// The LZ codec round-trips arbitrary byte strings exactly.
    #[test]
    fn lz_codec_round_trip(data in collection::vec(any::<u8>(), 0..4096)) {
        let mut eng = StorageOffload::new();
        let packed = eng.compress(&data);
        let unpacked = eng.decompress(&packed).expect("own output decodes");
        prop_assert_eq!(unpacked, data);
    }

    /// Low-entropy inputs never expand beyond framing overhead, and highly
    /// repetitive ones always shrink.
    #[test]
    fn lz_codec_expansion_bounded(byte in any::<u8>(), n in 64usize..4096) {
        let data = vec![byte; n];
        let mut eng = StorageOffload::new();
        let packed = eng.compress(&data);
        prop_assert!(packed.len() < 32, "constant run of {n} took {} bytes", packed.len());
    }

    /// Top-K equals the exhaustive reference for arbitrary K and corpus.
    #[test]
    fn topk_matches_reference(seed in any::<u64>(), items in 1u64..400, k in 1usize..64) {
        let e = RetrievalEngine::synthetic(seed, items, 8);
        let q: Vec<f32> = (0..8).map(|i| (i as f32 - 3.5) / 4.0).collect();
        let got = e.top_k(&q, k);
        let mut scores: Vec<f32> = (0..items).map(|i| e.score(&q, i)).collect();
        scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let want = &scores[..k.min(items as usize)];
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            prop_assert!((g.score - w).abs() < 1e-5, "score mismatch {} vs {}", g.score, w);
        }
    }
}
