//! Storage offload: near-storage compression (SmartSSD scenario).
//!
//! §2.2 motivates heterogeneous FPGAs with storage applications that
//! "incorporate I/O operators like compression, which involve attaching
//! FPGAs directly to SSDs as SmartSSD". This module implements the operator
//! itself — an LZ77-class byte compressor with a hash-chain match finder,
//! the structure FPGA LZ4 engines pipeline — plus its decompressor and a
//! throughput model over the Memory RBB.
//!
//! Wire format (token stream, all lengths little-endian):
//!
//! ```text
//! 0x00 len16 data…        literal run of `len16` bytes
//! 0x01 dist16 len16       match: copy `len16` bytes from `dist16` back
//! ```

use crate::common::App;
use harmonia_shell::{MemoryDemand, RoleSpec};
use harmonia_sim::Freq;
use std::error::Error;
use std::fmt;

/// Minimum match length worth encoding (token overhead is 5 bytes).
const MIN_MATCH: usize = 6;
/// Match-window size (hardware history buffer).
const WINDOW: usize = 64 * 1024;
/// Hash table size for the match finder (power of two).
const HASH_SLOTS: usize = 1 << 14;

/// Decompression failures (corrupt or truncated streams).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended inside a token.
    Truncated,
    /// Unknown token tag.
    BadToken {
        /// The offending tag byte.
        tag: u8,
    },
    /// A match referenced data before the start of the output.
    BadDistance {
        /// The offending distance.
        distance: u16,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("compressed stream truncated"),
            CodecError::BadToken { tag } => write!(f, "unknown token tag {tag:#04x}"),
            CodecError::BadDistance { distance } => {
                write!(f, "match distance {distance} before stream start")
            }
        }
    }
}

impl Error for CodecError {}

/// Compression statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Input bytes consumed.
    pub bytes_in: u64,
    /// Output bytes produced.
    pub bytes_out: u64,
    /// Matches emitted.
    pub matches: u64,
    /// Literal runs emitted.
    pub literal_runs: u64,
}

impl CodecStats {
    /// Compression ratio (output ÷ input); 1.0 for empty input.
    pub fn ratio(&self) -> f64 {
        if self.bytes_in == 0 {
            1.0
        } else {
            self.bytes_out as f64 / self.bytes_in as f64
        }
    }
}

/// The near-storage compression engine.
#[derive(Clone, Debug, Default)]
pub struct StorageOffload {
    stats: CodecStats,
}

impl StorageOffload {
    /// Creates an engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CodecStats {
        self.stats
    }

    fn hash(window: &[u8]) -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
        (v.wrapping_mul(2654435761) >> 18) as usize % HASH_SLOTS
    }

    /// Compresses `input`, returning the token stream.
    pub fn compress(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        let mut head: Vec<Option<usize>> = vec![None; HASH_SLOTS];
        let mut literal_start = 0usize;
        let mut i = 0usize;

        let flush_literals =
            |out: &mut Vec<u8>, stats: &mut CodecStats, from: usize, to: usize, data: &[u8]| {
                let mut start = from;
                while start < to {
                    let len = (to - start).min(u16::MAX as usize);
                    out.push(0x00);
                    out.extend_from_slice(&(len as u16).to_le_bytes());
                    out.extend_from_slice(&data[start..start + len]);
                    stats.literal_runs += 1;
                    start += len;
                }
            };

        while i + 4 <= input.len() {
            let slot = Self::hash(&input[i..]);
            let candidate = head[slot];
            head[slot] = Some(i);
            let m = candidate.and_then(|c| {
                if i - c > WINDOW {
                    return None;
                }
                // Extend the match as far as it goes (capped at u16).
                let mut len = 0usize;
                while i + len < input.len()
                    && input[c + len] == input[i + len]
                    && len < u16::MAX as usize
                {
                    len += 1;
                }
                (len >= MIN_MATCH).then_some((i - c, len))
            });
            if let Some((dist, len)) = m {
                flush_literals(&mut out, &mut self.stats, literal_start, i, input);
                out.push(0x01);
                out.extend_from_slice(&(dist as u16).to_le_bytes());
                out.extend_from_slice(&(len as u16).to_le_bytes());
                self.stats.matches += 1;
                // Index positions inside the match so later data can refer
                // back into it (sparse stride keeps it cheap, as hardware
                // match finders do).
                let end = i + len;
                while i < end && i + 4 <= input.len() {
                    head[Self::hash(&input[i..])] = Some(i);
                    i += 3;
                }
                i = end;
                literal_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(&mut out, &mut self.stats, literal_start, input.len(), input);
        self.stats.bytes_in += input.len() as u64;
        self.stats.bytes_out += out.len() as u64;
        out
    }

    /// Decompresses a token stream.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or corrupt input.
    pub fn decompress(&self, mut data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(data.len() * 2);
        while !data.is_empty() {
            let tag = data[0];
            match tag {
                0x00 => {
                    if data.len() < 3 {
                        return Err(CodecError::Truncated);
                    }
                    let len = usize::from(u16::from_le_bytes([data[1], data[2]]));
                    if data.len() < 3 + len {
                        return Err(CodecError::Truncated);
                    }
                    out.extend_from_slice(&data[3..3 + len]);
                    data = &data[3 + len..];
                }
                0x01 => {
                    if data.len() < 5 {
                        return Err(CodecError::Truncated);
                    }
                    let dist = u16::from_le_bytes([data[1], data[2]]);
                    let len = usize::from(u16::from_le_bytes([data[3], data[4]]));
                    let d = usize::from(dist);
                    if d == 0 || d > out.len() {
                        return Err(CodecError::BadDistance { distance: dist });
                    }
                    // Overlapping copies are legal (run-length behaviour).
                    let start = out.len() - d;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                    data = &data[5..];
                }
                tag => return Err(CodecError::BadToken { tag }),
            }
        }
        Ok(out)
    }

    /// Offload throughput in GB/s: the engine processes one byte per cycle
    /// per lane (the classic FPGA LZ pipeline), bounded by the SSD link.
    pub fn throughput_gbs(&self, lanes: u32, clock: Freq, ssd_link_gbs: f64) -> f64 {
        let engine = f64::from(lanes) * clock.hz() as f64 / 1e9;
        engine.min(ssd_link_gbs)
    }
}

impl App for StorageOffload {
    fn name(&self) -> &'static str {
        "Storage Offload"
    }

    fn role_spec(&self) -> RoleSpec {
        RoleSpec::builder("storage-offload")
            .network_gbps(25) // replication traffic
            .network_ports(1)
            .memory(MemoryDemand::Ddr { channels: 1 }) // history buffers
            .queues(64)
            .build()
    }

    fn role_loc(&self) -> u64 {
        7_200
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::SplitMix64;

    fn round_trip(data: &[u8]) -> (Vec<u8>, CodecStats) {
        let mut eng = StorageOffload::new();
        let packed = eng.compress(data);
        let unpacked = eng.decompress(&packed).expect("own output decodes");
        assert_eq!(unpacked, data, "round trip broke");
        (packed, eng.stats())
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let (packed, _) = round_trip(b"");
        assert!(packed.is_empty());
        round_trip(b"a");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = b"hello world, hello world, hello world, hello world!".repeat(64);
        let (packed, stats) = round_trip(&data);
        assert!(
            packed.len() * 10 < data.len(),
            "{} -> {} bytes",
            data.len(),
            packed.len()
        );
        assert!(stats.matches >= 1); // one giant match can cover the repetition
        assert!(stats.ratio() < 0.1);
    }

    #[test]
    fn random_data_stays_roughly_incompressible() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<u8> = (0..32_768).map(|_| rng.next_u64() as u8).collect();
        let (packed, stats) = round_trip(&data);
        // Random bytes gain at most the token framing overhead.
        assert!(packed.len() >= data.len());
        assert!(packed.len() < data.len() + data.len() / 1000 + 16);
        assert!(stats.ratio() >= 1.0);
    }

    #[test]
    fn text_like_data_compresses_meaningfully() {
        let text = include_str!("storage.rs").as_bytes();
        let (packed, _) = round_trip(text);
        assert!(
            packed.len() * 10 < text.len() * 9,
            "source text {} -> {}",
            text.len(),
            packed.len()
        );
    }

    #[test]
    fn run_length_overlap_copies() {
        // 'aaaa…' forces distance-1 overlapping matches.
        let data = vec![b'a'; 10_000];
        let (packed, _) = round_trip(&data);
        assert!(packed.len() < 64, "RLE case took {} bytes", packed.len());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let eng = StorageOffload::new();
        assert_eq!(eng.decompress(&[0x02, 0, 0]), Err(CodecError::BadToken { tag: 2 }));
        assert_eq!(eng.decompress(&[0x00, 5, 0, 1]), Err(CodecError::Truncated));
        assert_eq!(eng.decompress(&[0x01, 4, 0]), Err(CodecError::Truncated));
        assert_eq!(
            eng.decompress(&[0x01, 9, 0, 3, 0]),
            Err(CodecError::BadDistance { distance: 9 })
        );
    }

    #[test]
    fn long_inputs_cross_token_limits() {
        // A literal run longer than u16::MAX must split.
        let mut rng = SplitMix64::new(9);
        let data: Vec<u8> = (0..70_000).map(|_| rng.next_u64() as u8).collect();
        let (_, stats) = round_trip(&data);
        assert!(stats.literal_runs >= 2);
    }

    #[test]
    fn throughput_bounded_by_ssd_link() {
        let eng = StorageOffload::new();
        // 8 lanes @ 300 MHz = 2.4 GB/s engine, 3.2 GB/s NVMe link.
        assert!((eng.throughput_gbs(8, Freq::mhz(300), 3.2) - 2.4).abs() < 1e-9);
        // 16 lanes: engine 4.8 GB/s, link-bound at 3.2.
        assert!((eng.throughput_gbs(16, Freq::mhz(300), 3.2) - 3.2).abs() < 1e-9);
    }
}
