//! Host Network: network-function offloading (checksum, OVS-style flow
//! cache).
//!
//! The FPGA sits bump-in-the-wire in front of the host NIC path and
//! offloads per-packet work: RFC 1071 checksum computation/validation and
//! an exact-match flow cache applying forwarding actions (§5.1).

use crate::common::{App, BitwPath};
use harmonia_hw::ip::MacIp;
use harmonia_hw::Vendor;
use harmonia_shell::rbb::network::{FlowKey, PacketMeta};
use harmonia_shell::{MemoryDemand, RoleSpec};
use harmonia_sim::Freq;
use std::collections::HashMap;

/// Computes the RFC 1071 internet checksum over a byte slice.
///
/// ```
/// use harmonia_apps::host_network::internet_checksum;
/// // Classic RFC 1071 example data.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data), !0xddf2u16);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies a checksummed buffer (sum over data including the checksum
/// folds to zero).
pub fn checksum_valid(data_with_checksum: &[u8]) -> bool {
    internet_checksum(data_with_checksum) == 0
}

/// Forwarding actions the flow cache can apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlowAction {
    /// Forward to a host queue.
    ToQueue(u16),
    /// Rewrite the VLAN then forward to a queue.
    SetVlan(u16, u16),
    /// Drop the packet.
    Drop,
}

/// A wildcard mask over the 5-tuple — one OVS "megaflow" tuple class.
///
/// Prefix lengths apply to the IP fields; the boolean flags select whether
/// ports/protocol participate in the match at all.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowMask {
    /// Source-IP prefix length (0–32).
    pub src_bits: u8,
    /// Destination-IP prefix length (0–32).
    pub dst_bits: u8,
    /// Match the source port exactly.
    pub src_port: bool,
    /// Match the destination port exactly.
    pub dst_port: bool,
    /// Match the protocol exactly.
    pub proto: bool,
}

impl FlowMask {
    /// The exact-match (microflow) mask.
    pub fn exact() -> Self {
        FlowMask {
            src_bits: 32,
            dst_bits: 32,
            src_port: true,
            dst_port: true,
            proto: true,
        }
    }

    fn mask_ip(ip: u32, bits: u8) -> u32 {
        if bits == 0 {
            0
        } else {
            ip & (u32::MAX << (32 - u32::from(bits.min(32))))
        }
    }

    /// Applies the mask to a flow key, zeroing wildcarded fields.
    pub fn apply(&self, key: &FlowKey) -> FlowKey {
        FlowKey {
            src_ip: Self::mask_ip(key.src_ip, self.src_bits),
            dst_ip: Self::mask_ip(key.dst_ip, self.dst_bits),
            src_port: if self.src_port { key.src_port } else { 0 },
            dst_port: if self.dst_port { key.dst_port } else { 0 },
            proto: if self.proto { key.proto } else { 0 },
        }
    }
}

/// An OVS-style megaflow cache: tuple-space search over wildcard masks.
///
/// Each distinct mask is one tuple class holding a hash table of masked
/// keys. Lookup probes the classes in priority order (insertion order of
/// masks) and returns the first hit — a software model of the TCAM-assisted
/// classifier the offload engine implements.
#[derive(Clone, Debug, Default)]
pub struct MegaflowCache {
    /// `(mask, entries)` in priority order.
    tuples: Vec<(FlowMask, HashMap<FlowKey, FlowAction>)>,
    entries: usize,
    capacity: usize,
    lookups: u64,
    probes: u64,
}

impl MegaflowCache {
    /// Creates a cache bounded to `capacity` total entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "megaflow cache needs capacity");
        MegaflowCache {
            capacity,
            ..Default::default()
        }
    }

    /// Total installed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct tuple classes (masks).
    pub fn tuple_classes(&self) -> usize {
        self.tuples.len()
    }

    /// Mean tuple-class probes per lookup (the TSS cost metric).
    pub fn probes_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }

    /// Installs a megaflow: `key` is masked by `mask` before storage.
    ///
    /// # Errors
    ///
    /// Returns the key back when the cache is full (unless the masked key
    /// already exists, in which case the action is updated).
    pub fn install(
        &mut self,
        mask: FlowMask,
        key: FlowKey,
        action: FlowAction,
    ) -> Result<(), FlowKey> {
        let masked = mask.apply(&key);
        let table = match self.tuples.iter_mut().find(|(m, _)| *m == mask) {
            Some((_, t)) => t,
            None => {
                self.tuples.push((mask, HashMap::new()));
                &mut self.tuples.last_mut().expect("just pushed").1
            }
        };
        match table.entry(masked) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.insert(action);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if self.entries >= self.capacity {
                    return Err(key);
                }
                v.insert(action);
                self.entries += 1;
            }
        }
        Ok(())
    }

    /// Looks a packet up across the tuple classes; first hit wins.
    pub fn lookup(&mut self, pkt: &PacketMeta) -> Option<FlowAction> {
        self.lookups += 1;
        let key = pkt.flow_key();
        for (mask, table) in &self.tuples {
            self.probes += 1;
            if let Some(&action) = table.get(&mask.apply(&key)) {
                return Some(action);
            }
        }
        None
    }
}

/// Flow-cache statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OffloadStats {
    /// Cache hits (fast path).
    pub cache_hits: u64,
    /// Cache misses punted to the host slow path.
    pub cache_misses: u64,
    /// Checksums computed.
    pub checksums: u64,
}

/// The host-network offload engine.
#[derive(Clone, Debug)]
pub struct HostNetwork {
    flow_cache: MegaflowCache,
    stats: OffloadStats,
}

impl HostNetwork {
    /// Creates an engine with the given flow-cache capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        HostNetwork {
            flow_cache: MegaflowCache::new(capacity),
            stats: OffloadStats::default(),
        }
    }

    /// Installs (or updates) an exact-match (microflow) entry, as the host
    /// slow path does after processing a miss.
    ///
    /// # Errors
    ///
    /// Returns the key when the cache is full.
    pub fn install(&mut self, key: FlowKey, action: FlowAction) -> Result<(), FlowKey> {
        self.flow_cache.install(FlowMask::exact(), key, action)
    }

    /// Installs a wildcarded megaflow covering a whole traffic class.
    ///
    /// # Errors
    ///
    /// Returns the key when the cache is full.
    pub fn install_megaflow(
        &mut self,
        mask: FlowMask,
        key: FlowKey,
        action: FlowAction,
    ) -> Result<(), FlowKey> {
        self.flow_cache.install(mask, key, action)
    }

    /// Looks a packet up on the fast path; `None` = slow-path punt.
    pub fn fast_path(&mut self, pkt: &PacketMeta) -> Option<FlowAction> {
        match self.flow_cache.lookup(pkt) {
            Some(action) => {
                self.stats.cache_hits += 1;
                Some(action)
            }
            None => {
                self.stats.cache_misses += 1;
                None
            }
        }
    }

    /// Offloads a checksum computation for a payload.
    pub fn offload_checksum(&mut self, payload: &[u8]) -> u16 {
        self.stats.checksums += 1;
        internet_checksum(payload)
    }

    /// Cache occupancy.
    pub fn cached_flows(&self) -> usize {
        self.flow_cache.len()
    }

    /// The underlying megaflow cache (inspection).
    pub fn cache(&self) -> &MegaflowCache {
        &self.flow_cache
    }

    /// Statistics.
    pub fn stats(&self) -> OffloadStats {
        self.stats
    }

    /// The offload BITW datapath (parse + cache + checksum ≈ 26 cycles).
    pub fn datapath(&self) -> BitwPath {
        BitwPath::new(MacIp::new(Vendor::Intel, 100), 26, Freq::mhz(322))
    }
}

impl App for HostNetwork {
    fn name(&self) -> &'static str {
        "Host Network"
    }

    fn role_spec(&self) -> RoleSpec {
        RoleSpec::builder("host-network")
            .network_gbps(100)
            .network_ports(2)
            .memory(MemoryDemand::Ddr { channels: 1 }) // megaflow spill
            .queues(256)
            .multicast()
            .user_domain(Freq::mhz(322), 512)
            .build()
    }

    fn role_loc(&self) -> u64 {
        // Figure 3a: the shell is 66 % of the Host Network project — this
        // is the largest role of the five.
        18_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(port: u16) -> PacketMeta {
        PacketMeta {
            dst_mac: 2,
            src_ip: 10,
            dst_ip: 20,
            src_port: port,
            dst_port: 443,
            proto: 6,
            bytes: 512,
        }
    }

    #[test]
    fn checksum_known_vectors() {
        // All zeros → 0xFFFF.
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
        // Odd length pads with zero.
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn checksum_round_trip_validates() {
        let payload = b"harmonia offload engine test payload";
        let csum = internet_checksum(payload);
        let mut framed = payload.to_vec();
        // RFC 1071: inserting the checksum makes the total fold to zero.
        if framed.len() % 2 == 1 {
            framed.push(0);
        }
        framed.extend_from_slice(&csum.to_be_bytes());
        assert!(checksum_valid(&framed));
        // Corruption is detected.
        framed[3] ^= 0x10;
        assert!(!checksum_valid(&framed));
    }

    #[test]
    fn fast_path_hits_after_install() {
        let mut hn = HostNetwork::new(1024);
        assert_eq!(hn.fast_path(&pkt(1)), None); // miss → slow path
        hn.install(pkt(1).flow_key(), FlowAction::ToQueue(5))
            .unwrap();
        assert_eq!(hn.fast_path(&pkt(1)), Some(FlowAction::ToQueue(5)));
        let s = hn.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn cache_capacity_enforced_with_update_allowed() {
        let mut hn = HostNetwork::new(2);
        hn.install(pkt(1).flow_key(), FlowAction::Drop).unwrap();
        hn.install(pkt(2).flow_key(), FlowAction::Drop).unwrap();
        assert!(hn.install(pkt(3).flow_key(), FlowAction::Drop).is_err());
        // Updating an existing key is always fine.
        hn.install(pkt(2).flow_key(), FlowAction::ToQueue(1))
            .unwrap();
        assert_eq!(hn.cached_flows(), 2);
    }

    #[test]
    fn actions_differentiate() {
        let mut hn = HostNetwork::new(16);
        hn.install(pkt(1).flow_key(), FlowAction::SetVlan(100, 3))
            .unwrap();
        hn.install(pkt(2).flow_key(), FlowAction::Drop).unwrap();
        assert_eq!(hn.fast_path(&pkt(1)), Some(FlowAction::SetVlan(100, 3)));
        assert_eq!(hn.fast_path(&pkt(2)), Some(FlowAction::Drop));
    }

    #[test]
    fn checksum_offload_counts() {
        let mut hn = HostNetwork::new(4);
        hn.offload_checksum(&[1, 2, 3, 4]);
        hn.offload_checksum(&[5, 6]);
        assert_eq!(hn.stats().checksums, 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = HostNetwork::new(0);
    }

    #[test]
    fn megaflow_wildcards_cover_whole_subnets() {
        let mut mf = MegaflowCache::new(64);
        // One /16 megaflow instead of thousands of microflows.
        let mask = FlowMask {
            src_bits: 16,
            dst_bits: 0,
            src_port: false,
            dst_port: true,
            proto: true,
        };
        let template = pkt(443).flow_key();
        let template = harmonia_shell::rbb::network::FlowKey {
            src_ip: 0x0A14_0000, // 10.20.0.0
            dst_port: 443,
            ..template
        };
        mf.install(mask, template, FlowAction::ToQueue(9)).unwrap();
        // Any source in 10.20/16 to port 443 hits the single entry.
        for host in [0x0A14_0001u32, 0x0A14_FFFE, 0x0A14_1234] {
            let mut p = pkt(9999);
            p.src_ip = host;
            p.dst_port = 443;
            assert_eq!(mf.lookup(&p), Some(FlowAction::ToQueue(9)), "{host:#x}");
        }
        // Outside the subnet or another port: miss.
        let mut outside = pkt(9999);
        outside.src_ip = 0x0A15_0001;
        outside.dst_port = 443;
        assert_eq!(mf.lookup(&outside), None);
        let mut wrong_port = pkt(9999);
        wrong_port.src_ip = 0x0A14_0001;
        wrong_port.dst_port = 80;
        assert_eq!(mf.lookup(&wrong_port), None);
        assert_eq!(mf.len(), 1);
    }

    #[test]
    fn megaflow_first_mask_wins_on_overlap() {
        let mut mf = MegaflowCache::new(8);
        let exact_key = pkt(7).flow_key();
        mf.install(FlowMask::exact(), exact_key, FlowAction::Drop)
            .unwrap();
        let broad = FlowMask {
            src_bits: 0,
            dst_bits: 0,
            src_port: false,
            dst_port: false,
            proto: true,
        };
        mf.install(broad, exact_key, FlowAction::ToQueue(1)).unwrap();
        // Exact class was installed first → wins for the exact packet.
        assert_eq!(mf.lookup(&pkt(7)), Some(FlowAction::Drop));
        // Other packets fall to the broad class.
        assert_eq!(mf.lookup(&pkt(8)), Some(FlowAction::ToQueue(1)));
        assert_eq!(mf.tuple_classes(), 2);
    }

    #[test]
    fn megaflow_capacity_and_update_semantics() {
        let mut mf = MegaflowCache::new(2);
        mf.install(FlowMask::exact(), pkt(1).flow_key(), FlowAction::Drop)
            .unwrap();
        mf.install(FlowMask::exact(), pkt(2).flow_key(), FlowAction::Drop)
            .unwrap();
        assert!(mf
            .install(FlowMask::exact(), pkt(3).flow_key(), FlowAction::Drop)
            .is_err());
        // Updating an existing megaflow is not a new entry.
        mf.install(FlowMask::exact(), pkt(1).flow_key(), FlowAction::ToQueue(4))
            .unwrap();
        assert_eq!(mf.lookup(&pkt(1)), Some(FlowAction::ToQueue(4)));
        assert_eq!(mf.len(), 2);
    }

    #[test]
    fn megaflow_probe_cost_tracks_tuple_classes() {
        let mut mf = MegaflowCache::new(128);
        for bits in [8u8, 16, 24, 32] {
            let mask = FlowMask {
                src_bits: bits,
                dst_bits: 0,
                src_port: false,
                dst_port: false,
                proto: false,
            };
            let mut k = pkt(1).flow_key();
            k.src_ip = 0x0B00_0000;
            mf.install(mask, k, FlowAction::Drop).unwrap();
        }
        // A missing packet probes every class.
        let mut p = pkt(1);
        p.src_ip = 0xC0A8_0001;
        assert_eq!(mf.lookup(&p), None);
        assert_eq!(mf.probes_per_lookup(), 4.0);
    }

    #[test]
    fn datapath_line_rate() {
        let p = HostNetwork::new(16).datapath().perf(1024);
        assert!(p.throughput > 95.0);
    }
}
