//! The five production FPGA applications of Table 2.
//!
//! | Application | Architecture | Function |
//! |---|---|---|
//! | [`sec_gateway`] | bump-in-the-wire | DCI access control |
//! | [`l4lb`] | bump-in-the-wire | stateful layer-4 load balancing |
//! | [`host_network`] | bump-in-the-wire | network offloading (checksum, OVS) |
//! | [`retrieval`] | look-aside | embedding retrieval (top-K) |
//! | [`board_test`] | diverse | custom board testing |
//! | [`storage`] | SmartSSD | near-storage LZ compression (§2.2 scenario) |
//!
//! Each application provides its role logic (actually executed in tests and
//! benches), its [`RoleSpec`](harmonia_shell::RoleSpec) for shell
//! tailoring, its role-side development workload (Figure 3a), and
//! performance models for the with/without-Harmonia comparison
//! (Figure 17).

pub mod board_test;
pub mod common;
pub mod host_network;
pub mod l4lb;
pub mod retrieval;
pub mod sec_gateway;
pub mod storage;

pub use board_test::{BoardTest, TestReport};
pub use common::{App, AppPerf, BitwPath};
pub use host_network::HostNetwork;
pub use l4lb::Layer4Lb;
pub use retrieval::RetrievalEngine;
pub use sec_gateway::SecGateway;
pub use storage::StorageOffload;

/// The five evaluated applications' names, in the paper's reporting order.
pub const APP_NAMES: [&str; 5] = [
    "Sec-Gateway",
    "Layer-4 LB",
    "Retrieval",
    "Board Test",
    "Host Network",
];
