//! Sec-Gateway: data-center-interconnect access control.
//!
//! Deployed bump-in-the-wire at the cloud network boundary to "prevent
//! cross-network malicious traffic"; the FPGA "filters out specific traffic
//! based on the deployed policies" (§5.1). The role logic is a
//! priority-ordered ACL over 5-tuple prefixes.

use crate::common::{App, BitwPath};
use harmonia_hw::ip::MacIp;
use harmonia_shell::rbb::network::PacketMeta;
use harmonia_shell::{MemoryDemand, RoleSpec};
use harmonia_sim::Freq;
use harmonia_hw::Vendor;

/// Rule verdicts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Let the packet through.
    Allow,
    /// Drop the packet.
    Deny,
}

/// One access-control rule: prefix matches on addresses plus optional
/// exact matches on port/protocol. Lower `priority` wins.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AclRule {
    /// Source prefix: (address, prefix length 0–32).
    pub src: (u32, u8),
    /// Destination prefix.
    pub dst: (u32, u8),
    /// Optional destination-port exact match.
    pub dst_port: Option<u16>,
    /// Optional protocol exact match.
    pub proto: Option<u8>,
    /// Priority (lower matches first).
    pub priority: u16,
    /// Verdict on match.
    pub action: Action,
}

impl AclRule {
    fn prefix_match(value: u32, (addr, len): (u32, u8)) -> bool {
        if len == 0 {
            return true;
        }
        let shift = 32 - u32::from(len.min(32));
        (value >> shift) == (addr >> shift)
    }

    /// Whether the rule matches a packet.
    pub fn matches(&self, pkt: &PacketMeta) -> bool {
        Self::prefix_match(pkt.src_ip, self.src)
            && Self::prefix_match(pkt.dst_ip, self.dst)
            && self.dst_port.is_none_or(|p| p == pkt.dst_port)
            && self.proto.is_none_or(|p| p == pkt.proto)
    }
}

/// Per-gateway counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Packets allowed through.
    pub allowed: u64,
    /// Packets denied by policy.
    pub denied: u64,
    /// Bytes allowed through.
    pub allowed_bytes: u64,
}

/// The security-gateway application.
#[derive(Clone, Debug)]
pub struct SecGateway {
    rules: Vec<AclRule>,
    default_action: Action,
    stats: GatewayStats,
}

impl SecGateway {
    /// Policy-table capacity (TCAM-backed in hardware).
    pub const RULE_CAPACITY: usize = 4096;

    /// Creates a gateway with a default verdict for unmatched traffic.
    pub fn new(default_action: Action) -> Self {
        SecGateway {
            rules: Vec::new(),
            default_action,
            stats: GatewayStats::default(),
        }
    }

    /// Installs a rule, keeping priority order.
    ///
    /// # Errors
    ///
    /// Returns the rule back when the table is full.
    pub fn install_rule(&mut self, rule: AclRule) -> Result<(), AclRule> {
        if self.rules.len() >= Self::RULE_CAPACITY {
            return Err(rule);
        }
        let pos = self
            .rules
            .partition_point(|r| r.priority <= rule.priority);
        self.rules.insert(pos, rule);
        Ok(())
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Classifies one packet (first matching rule wins).
    pub fn classify(&self, pkt: &PacketMeta) -> Action {
        self.rules
            .iter()
            .find(|r| r.matches(pkt))
            .map_or(self.default_action, |r| r.action)
    }

    /// Processes one packet, updating counters.
    pub fn process(&mut self, pkt: &PacketMeta) -> Action {
        let action = self.classify(pkt);
        match action {
            Action::Allow => {
                self.stats.allowed += 1;
                self.stats.allowed_bytes += u64::from(pkt.bytes);
            }
            Action::Deny => self.stats.denied += 1,
        }
        action
    }

    /// Current counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// The gateway's BITW datapath on a 100G port (ACL lookup pipelines in
    /// ~24 cycles).
    pub fn datapath(&self) -> BitwPath {
        BitwPath::new(MacIp::new(Vendor::Xilinx, 100), 24, Freq::mhz(322))
    }
}

impl App for SecGateway {
    fn name(&self) -> &'static str {
        "Sec-Gateway"
    }

    fn role_spec(&self) -> RoleSpec {
        RoleSpec::builder("sec-gateway")
            .network_gbps(100)
            .network_ports(2)
            .memory(MemoryDemand::Ddr { channels: 1 }) // policy tables
            .queues(64)
            .user_domain(Freq::mhz(322), 512)
            .build()
    }

    fn role_loc(&self) -> u64 {
        // Figure 3a: the shell is 87 % of the Sec-Gateway project.
        5_600
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src_ip: u32, dst_port: u16) -> PacketMeta {
        PacketMeta {
            dst_mac: 1,
            src_ip,
            dst_ip: 0x0A00_0001,
            src_port: 9999,
            dst_port,
            proto: 6,
            bytes: 256,
        }
    }

    fn deny_subnet_rule() -> AclRule {
        AclRule {
            src: (0xC0A8_0000, 16), // 192.168.0.0/16
            dst: (0, 0),
            dst_port: None,
            proto: None,
            priority: 10,
            action: Action::Deny,
        }
    }

    #[test]
    fn default_action_applies_without_rules() {
        let mut gw = SecGateway::new(Action::Allow);
        assert_eq!(gw.process(&pkt(1, 80)), Action::Allow);
        let mut strict = SecGateway::new(Action::Deny);
        assert_eq!(strict.process(&pkt(1, 80)), Action::Deny);
    }

    #[test]
    fn prefix_rules_match_subnets() {
        let mut gw = SecGateway::new(Action::Allow);
        gw.install_rule(deny_subnet_rule()).unwrap();
        assert_eq!(gw.classify(&pkt(0xC0A8_1234, 80)), Action::Deny);
        assert_eq!(gw.classify(&pkt(0xC0A9_0000, 80)), Action::Allow);
    }

    #[test]
    fn priority_order_wins() {
        let mut gw = SecGateway::new(Action::Deny);
        gw.install_rule(deny_subnet_rule()).unwrap();
        // Higher-priority (lower number) exception allows one port.
        gw.install_rule(AclRule {
            src: (0xC0A8_0000, 16),
            dst: (0, 0),
            dst_port: Some(443),
            proto: Some(6),
            priority: 1,
            action: Action::Allow,
        })
        .unwrap();
        assert_eq!(gw.classify(&pkt(0xC0A8_0001, 443)), Action::Allow);
        assert_eq!(gw.classify(&pkt(0xC0A8_0001, 80)), Action::Deny);
    }

    #[test]
    fn counters_track_verdicts() {
        let mut gw = SecGateway::new(Action::Allow);
        gw.install_rule(deny_subnet_rule()).unwrap();
        gw.process(&pkt(0xC0A8_0001, 80));
        gw.process(&pkt(1, 80));
        gw.process(&pkt(2, 80));
        let s = gw.stats();
        assert_eq!(s.denied, 1);
        assert_eq!(s.allowed, 2);
        assert_eq!(s.allowed_bytes, 512);
    }

    #[test]
    fn table_capacity_enforced() {
        let mut gw = SecGateway::new(Action::Allow);
        for i in 0..SecGateway::RULE_CAPACITY {
            gw.install_rule(AclRule {
                src: (i as u32, 32),
                dst: (0, 0),
                dst_port: None,
                proto: None,
                priority: 100,
                action: Action::Deny,
            })
            .unwrap();
        }
        assert!(gw.install_rule(deny_subnet_rule()).is_err());
    }

    #[test]
    fn zero_length_prefix_matches_everything() {
        let r = AclRule {
            src: (0xFFFF_FFFF, 0),
            dst: (0, 0),
            dst_port: None,
            proto: None,
            priority: 1,
            action: Action::Deny,
        };
        assert!(r.matches(&pkt(0, 80)));
        assert!(r.matches(&pkt(u32::MAX, 80)));
    }

    #[test]
    fn full_line_rate_datapath() {
        let gw = SecGateway::new(Action::Allow);
        let p = gw.datapath().perf(512);
        assert!(p.throughput > 90.0);
        assert!(p.latency_us() < 10.0);
    }

    #[test]
    fn role_spec_demands_two_ports() {
        let gw = SecGateway::new(Action::Allow);
        assert_eq!(gw.role_spec().network_ports(), 2);
        assert!(gw.role_workload().handcraft_loc() > 0);
    }
}
