//! Layer-4 LB: stateful layer-4 load balancing (Tiara-style).
//!
//! The FPGA works as a SmartNIC distributing incoming flows to real
//! servers (§5.1): new flows pick a backend from a consistent-hash ring;
//! established flows stick to their backend through a connection table, so
//! backend membership changes never break existing connections.

use crate::common::{App, BitwPath};
use harmonia_hw::ip::MacIp;
use harmonia_hw::Vendor;
use harmonia_shell::rbb::network::{FlowKey, PacketMeta};
use harmonia_shell::{MemoryDemand, RoleSpec};
use harmonia_sim::{Freq, Picos};
use std::collections::HashMap;

/// A real-server backend.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Backend {
    /// Backend identifier (also its ring key).
    pub id: u16,
    /// Relative capacity weight.
    pub weight: u16,
}

/// Load-balancer statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LbStats {
    /// Packets on established connections.
    pub established_hits: u64,
    /// New connections admitted.
    pub new_connections: u64,
    /// Packets dropped because the connection table was full.
    pub table_full_drops: u64,
    /// Connections evicted by the idle-timeout sweeper.
    pub aged_out: u64,
}

/// The stateful layer-4 load balancer.
#[derive(Clone, Debug)]
pub struct Layer4Lb {
    ring: Vec<u16>,
    backends: Vec<Backend>,
    connections: HashMap<FlowKey, ConnEntry>,
    capacity: usize,
    idle_timeout_ps: Picos,
    now_ps: Picos,
    stats: LbStats,
}

#[derive(Copy, Clone, Debug)]
struct ConnEntry {
    backend: u16,
    last_seen_ps: Picos,
}

impl Layer4Lb {
    /// Ring slots per unit of backend weight.
    const SLOTS_PER_WEIGHT: usize = 16;

    /// Creates a balancer with the given connection-table capacity.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty or `capacity` is zero.
    pub fn new(backends: Vec<Backend>, capacity: usize) -> Self {
        assert!(!backends.is_empty(), "need at least one backend");
        assert!(capacity > 0, "connection table must have capacity");
        let mut lb = Layer4Lb {
            ring: Vec::new(),
            backends,
            connections: HashMap::new(),
            capacity,
            idle_timeout_ps: 60_000_000_000_000, // 60 s default
            now_ps: 0,
            stats: LbStats::default(),
        };
        lb.rebuild_ring();
        lb
    }

    fn rebuild_ring(&mut self) {
        // Weighted rendezvous-style ring: slots interleaved deterministically
        // by hashing (backend, slot).
        let mut slots: Vec<(u64, u16)> = Vec::new();
        for b in &self.backends {
            for s in 0..usize::from(b.weight) * Self::SLOTS_PER_WEIGHT {
                let mut h = (u64::from(b.id) << 32) | s as u64;
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 33;
                slots.push((h, b.id));
            }
        }
        slots.sort_unstable();
        self.ring = slots.into_iter().map(|(_, id)| id).collect();
    }

    /// Current backends.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Adds a backend and rebuilds the ring (existing connections keep
    /// their backend via the connection table).
    pub fn add_backend(&mut self, backend: Backend) {
        self.backends.retain(|b| b.id != backend.id);
        self.backends.push(backend);
        self.rebuild_ring();
    }

    /// Removes a backend. Established connections to it are flushed (the
    /// servers are gone); other connections are untouched.
    pub fn remove_backend(&mut self, id: u16) {
        self.backends.retain(|b| b.id != id);
        assert!(!self.backends.is_empty(), "removed the last backend");
        self.connections.retain(|_, e| e.backend != id);
        self.rebuild_ring();
    }

    /// Sets the idle timeout for connection aging.
    ///
    /// # Panics
    ///
    /// Panics if `timeout_ps` is zero.
    pub fn set_idle_timeout_ps(&mut self, timeout_ps: Picos) {
        assert!(timeout_ps > 0, "idle timeout must be positive");
        self.idle_timeout_ps = timeout_ps;
    }

    /// Advances the LB's clock (packet timestamps come from the shell's
    /// monotonic time counter).
    pub fn advance_time(&mut self, delta_ps: Picos) {
        self.now_ps += delta_ps;
    }

    /// Evicts connections idle longer than the timeout; returns how many
    /// were aged out. Production runs this as a background sweeper so the
    /// table does not fill with dead flows.
    pub fn sweep_idle(&mut self) -> usize {
        let deadline = self.now_ps.saturating_sub(self.idle_timeout_ps);
        let before = self.connections.len();
        self.connections
            .retain(|_, e| e.last_seen_ps >= deadline || e.last_seen_ps == 0 && deadline == 0);
        let evicted = before - self.connections.len();
        self.stats.aged_out += evicted as u64;
        evicted
    }

    /// Picks the backend for a packet, creating connection state for new
    /// flows. Returns `None` when the table is full and the flow is new.
    pub fn dispatch(&mut self, pkt: &PacketMeta) -> Option<u16> {
        let key = pkt.flow_key();
        let now = self.now_ps;
        if let Some(entry) = self.connections.get_mut(&key) {
            entry.last_seen_ps = now;
            self.stats.established_hits += 1;
            return Some(entry.backend);
        }
        if self.connections.len() >= self.capacity {
            self.stats.table_full_drops += 1;
            return None;
        }
        let slot = (key.hash() % self.ring.len() as u64) as usize;
        let backend = self.ring[slot];
        self.connections.insert(
            key,
            ConnEntry {
                backend,
                last_seen_ps: now,
            },
        );
        self.stats.new_connections += 1;
        Some(backend)
    }

    /// Ends a connection, freeing its table entry.
    pub fn close(&mut self, key: &FlowKey) -> bool {
        self.connections.remove(key).is_some()
    }

    /// Live connection count.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Statistics.
    pub fn stats(&self) -> LbStats {
        self.stats
    }

    /// The LB's BITW datapath (hash + table lookup ≈ 18 cycles).
    pub fn datapath(&self) -> BitwPath {
        BitwPath::new(MacIp::new(Vendor::Xilinx, 100), 18, Freq::mhz(322))
    }
}

impl App for Layer4Lb {
    fn name(&self) -> &'static str {
        "Layer-4 LB"
    }

    fn role_spec(&self) -> RoleSpec {
        RoleSpec::builder("layer4-lb")
            .network_gbps(100)
            .network_ports(2)
            .memory(MemoryDemand::Ddr { channels: 1 }) // connection table spill
            .queues(128)
            .user_domain(Freq::mhz(322), 512)
            .build()
    }

    fn role_loc(&self) -> u64 {
        // Figure 3a: the shell is 79 % of the Layer-4 LB project.
        9_500
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src_port: u16) -> PacketMeta {
        PacketMeta {
            dst_mac: 1,
            src_ip: 0x0A00_0001,
            dst_ip: 0x0A00_00FE,
            src_port,
            dst_port: 80,
            proto: 6,
            bytes: 128,
        }
    }

    fn lb() -> Layer4Lb {
        Layer4Lb::new(
            (0..8).map(|id| Backend { id, weight: 1 }).collect(),
            10_000,
        )
    }

    #[test]
    fn connections_are_sticky() {
        let mut lb = lb();
        let first = lb.dispatch(&pkt(1000)).unwrap();
        for _ in 0..100 {
            assert_eq!(lb.dispatch(&pkt(1000)), Some(first));
        }
        assert_eq!(lb.stats().new_connections, 1);
        assert_eq!(lb.stats().established_hits, 100);
    }

    #[test]
    fn flows_spread_across_backends() {
        let mut lb = lb();
        let mut counts = [0u32; 8];
        for port in 0..4_000 {
            let b = lb.dispatch(&pkt(port)).unwrap();
            counts[usize::from(b)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (250..=750).contains(c),
                "backend {i} got {c} of 4000 flows"
            );
        }
    }

    #[test]
    fn weights_bias_distribution() {
        let mut lb = Layer4Lb::new(
            vec![
                Backend { id: 0, weight: 3 },
                Backend { id: 1, weight: 1 },
            ],
            100_000,
        );
        let mut heavy = 0u32;
        for port in 0..8_000 {
            if lb.dispatch(&pkt(port)) == Some(0) {
                heavy += 1;
            }
        }
        let share = f64::from(heavy) / 8_000.0;
        assert!((0.68..0.82).contains(&share), "weighted share {share:.2}");
    }

    #[test]
    fn established_connections_survive_membership_changes() {
        let mut lb = lb();
        let backend = lb.dispatch(&pkt(42)).unwrap();
        lb.add_backend(Backend { id: 99, weight: 4 });
        if backend != 3 {
            lb.remove_backend(3);
        } else {
            lb.remove_backend(4);
        }
        assert_eq!(lb.dispatch(&pkt(42)), Some(backend), "stateful pinning broke");
    }

    #[test]
    fn removing_a_backend_flushes_only_its_connections() {
        let mut lb = lb();
        let mut victims = 0;
        for port in 0..1_000 {
            if lb.dispatch(&pkt(port)) == Some(2) {
                victims += 1;
            }
        }
        let before = lb.connection_count();
        lb.remove_backend(2);
        assert_eq!(lb.connection_count(), before - victims);
    }

    #[test]
    fn table_capacity_drops_new_flows_only() {
        let mut lb = Layer4Lb::new(vec![Backend { id: 0, weight: 1 }], 10);
        for port in 0..10 {
            lb.dispatch(&pkt(port)).unwrap();
        }
        assert_eq!(lb.dispatch(&pkt(99)), None);
        assert_eq!(lb.stats().table_full_drops, 1);
        // Established flows still flow.
        assert_eq!(lb.dispatch(&pkt(5)), Some(0));
        // Closing frees a slot.
        assert!(lb.close(&pkt(5).flow_key()));
        assert!(lb.dispatch(&pkt(99)).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backend_set_rejected() {
        let _ = Layer4Lb::new(Vec::new(), 10);
    }

    #[test]
    fn idle_connections_age_out_active_ones_survive() {
        let mut lb = lb();
        lb.set_idle_timeout_ps(1_000_000); // 1 µs for the test
        let idle = lb.dispatch(&pkt(1)).unwrap();
        lb.advance_time(600_000);
        let active = lb.dispatch(&pkt(2)).unwrap(); // refreshed at t=0.6 µs
        lb.advance_time(600_000); // now 1.2 µs: pkt(1) idle 1.2, pkt(2) idle 0.6
        assert_eq!(lb.sweep_idle(), 1);
        assert_eq!(lb.stats().aged_out, 1);
        // The active flow kept its backend; the idle one re-establishes.
        assert_eq!(lb.dispatch(&pkt(2)), Some(active));
        assert_eq!(lb.stats().established_hits, 1);
        let _ = idle;
        lb.dispatch(&pkt(1)).unwrap(); // re-admitted as a *new* connection
        assert_eq!(lb.connection_count(), 2);
        assert_eq!(lb.stats().new_connections, 3);
    }

    #[test]
    fn sweeping_frees_capacity_for_new_flows() {
        let mut lb = Layer4Lb::new(vec![Backend { id: 0, weight: 1 }], 4);
        lb.set_idle_timeout_ps(1_000);
        for port in 0..4 {
            lb.dispatch(&pkt(port)).unwrap();
        }
        assert_eq!(lb.dispatch(&pkt(99)), None); // full
        lb.advance_time(10_000);
        assert_eq!(lb.sweep_idle(), 4);
        assert!(lb.dispatch(&pkt(99)).is_some());
    }

    #[test]
    #[should_panic(expected = "idle timeout")]
    fn zero_timeout_rejected() {
        let mut lb = lb();
        lb.set_idle_timeout_ps(0);
    }

    #[test]
    fn datapath_line_rate() {
        let p = lb().datapath().perf(256);
        assert!(p.throughput > 80.0);
    }
}
