//! Retrieval: embedding-based candidate retrieval (FAERY-style).
//!
//! "Chooses relevant candidates from a large corpus for recommendation
//! systems; FPGAs accelerate the similarity calculation and top-K
//! selection" (§5.1). Look-aside architecture: queries arrive over PCIe,
//! the corpus streams from HBM, scores are dot products and a streaming
//! top-K heap keeps the winners.

use crate::common::{App, AppPerf};
use harmonia_hw::ip::HbmIp;
use harmonia_shell::{MemoryDemand, RoleSpec};
use harmonia_sim::{Freq, SplitMix64};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored candidate.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Corpus index.
    pub index: u64,
    /// Similarity score (dot product).
    pub score: f32,
}

// Min-heap ordering by score (we evict the smallest of the current top-K).
impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.index.cmp(&self.index))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The retrieval engine.
#[derive(Clone, Debug)]
pub struct RetrievalEngine {
    dim: usize,
    corpus: Vec<f32>,
    items: u64,
}

impl RetrievalEngine {
    /// Embedding dimension used in production (64 × f32 = 256 B/item).
    pub const DEFAULT_DIM: usize = 64;

    /// Builds a synthetic corpus of `items` embeddings of `dim` floats,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `items` or `dim` is zero.
    pub fn synthetic(seed: u64, items: u64, dim: usize) -> Self {
        assert!(items > 0 && dim > 0, "degenerate corpus");
        let mut rng = SplitMix64::new(seed);
        let corpus = (0..items as usize * dim)
            .map(|_| (rng.next_f64() as f32) * 2.0 - 1.0)
            .collect();
        RetrievalEngine {
            dim,
            corpus,
            items,
        }
    }

    /// Corpus size in items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Dot-product score of `query` against item `index`.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension mismatches or the index is out of
    /// range.
    pub fn score(&self, query: &[f32], index: u64) -> f32 {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert!(index < self.items, "index out of range");
        let base = index as usize * self.dim;
        self.corpus[base..base + self.dim]
            .iter()
            .zip(query)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Streaming top-K: one pass over the corpus with a size-K min-heap,
    /// exactly the hardware structure. Results are sorted by descending
    /// score.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<Candidate> {
        assert!(k > 0, "top-0 is meaningless");
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        for index in 0..self.items {
            let c = Candidate {
                index,
                score: self.score(query, index),
            };
            if heap.len() < k {
                heap.push(c);
            } else if let Some(worst) = heap.peek() {
                if c.score > worst.score {
                    heap.pop();
                    heap.push(c);
                }
            }
        }
        let mut out = heap.into_vec();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal));
        out
    }

    /// Capacity-model constructor: tracks corpus geometry for performance
    /// modelling without materializing embeddings (used for the Figure 17d
    /// sweep up to 10⁹ items, where a real corpus would not fit in host
    /// memory either — production shards it across accelerators).
    ///
    /// # Panics
    ///
    /// Panics if `items` or `dim` is zero. Scoring methods panic if called
    /// on a capacity model.
    pub fn capacity_only(items: u64, dim: usize) -> Self {
        assert!(items > 0 && dim > 0, "degenerate corpus");
        RetrievalEngine {
            dim,
            corpus: Vec::new(),
            items,
        }
    }

    /// Items one FPGA shard holds; larger corpora scale out horizontally.
    pub const SHARD_ITEMS: u64 = 1_000_000;

    /// Per-query performance with corpus sharding: each FPGA scans at most
    /// [`SHARD_ITEMS`](Self::SHARD_ITEMS); beyond that QPS and latency
    /// plateau (the fleet grows instead).
    pub fn sharded_perf(&self, parallel_lanes: u32, clock: Freq, with_harmonia: bool) -> AppPerf {
        let shard = RetrievalEngine::capacity_only(self.items.min(Self::SHARD_ITEMS), self.dim);
        shard.perf(parallel_lanes, clock, with_harmonia)
    }

    /// Queries per second on the FPGA: the corpus streams from HBM once per
    /// query (bandwidth-bound) unless the scoring pipeline is the limit.
    pub fn qps(&self, parallel_lanes: u32, clock: Freq) -> f64 {
        let corpus_bytes = self.items as f64 * self.dim as f64 * 4.0;
        let hbm = HbmIp::new(harmonia_hw::Vendor::Xilinx);
        let mem_qps = hbm.aggregate_peak_gbs() * 1e9 / corpus_bytes;
        // Scoring: `parallel_lanes` MACs per cycle across the corpus.
        let macs = self.items as f64 * self.dim as f64;
        let compute_qps = f64::from(parallel_lanes) * clock.hz() as f64 / macs;
        mem_qps.min(compute_qps)
    }

    /// One Figure 17d sweep point: QPS plus per-query latency.
    pub fn perf(&self, parallel_lanes: u32, clock: Freq, with_harmonia: bool) -> AppPerf {
        let qps = self.qps(parallel_lanes, clock);
        let scan_ps = (1e12 / qps) as u64;
        // PCIe query/response hop plus the scan; Harmonia adds wrapper
        // nanoseconds.
        let base = 800_000 + scan_ps;
        let latency_ps = if with_harmonia { base + 25_000 } else { base };
        AppPerf {
            throughput: qps,
            latency_ps,
        }
    }
}

impl App for RetrievalEngine {
    fn name(&self) -> &'static str {
        "Retrieval"
    }

    fn role_spec(&self) -> RoleSpec {
        RoleSpec::builder("retrieval")
            .network_gbps(100)
            .network_ports(1) // service port for corpus updates
            .memory(MemoryDemand::Hbm)
            .queues(256)
            .user_domain(Freq::mhz(450), 256)
            .build()
    }

    fn role_loc(&self) -> u64 {
        // Figure 3a: the shell is 79 % of the Retrieval project.
        9_800
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> RetrievalEngine {
        RetrievalEngine::synthetic(42, 2_000, 16)
    }

    fn query(dim: usize) -> Vec<f32> {
        (0..dim).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn top_k_matches_exhaustive_sort() {
        let e = engine();
        let q = query(16);
        let got = e.top_k(&q, 10);
        let mut all: Vec<Candidate> = (0..e.items())
            .map(|i| Candidate {
                index: i,
                score: e.score(&q, i),
            })
            .collect();
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let want: Vec<u64> = all[..10].iter().map(|c| c.index).collect();
        let got_idx: Vec<u64> = got.iter().map(|c| c.index).collect();
        assert_eq!(got_idx, want);
    }

    #[test]
    fn top_k_scores_descending() {
        let e = engine();
        let got = e.top_k(&query(16), 25);
        assert_eq!(got.len(), 25);
        for w in got.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let e = RetrievalEngine::synthetic(1, 5, 4);
        assert_eq!(e.top_k(&query(4), 100).len(), 5);
    }

    #[test]
    fn score_is_dot_product() {
        let e = RetrievalEngine::synthetic(7, 3, 2);
        let q = [2.0f32, -1.0];
        let manual = e.corpus[2] * 2.0 - e.corpus[3];
        assert!((e.score(&q, 1) - manual).abs() < 1e-6);
    }

    #[test]
    fn qps_drops_with_corpus_size() {
        let small = RetrievalEngine::synthetic(1, 1_000, 64);
        let big = RetrievalEngine::synthetic(1, 100_000, 64);
        let clk = Freq::mhz(450);
        assert!(small.qps(512, clk) > big.qps(512, clk));
    }

    #[test]
    fn qps_is_memory_bound_for_large_corpora() {
        // 10^7 × 256 B = 2.56 GB per scan; HBM at 460 GB/s → ~180 QPS, no
        // matter how many lanes.
        let e = RetrievalEngine {
            dim: 64,
            corpus: Vec::new(),
            items: 10_000_000,
        };
        let q1 = e.qps(512, Freq::mhz(450));
        let q2 = e.qps(4096, Freq::mhz(450));
        assert!((q1 - q2).abs() / q1 < 1e-9, "lanes should not matter");
        assert!((150.0..220.0).contains(&q1), "qps {q1:.0}");
    }

    #[test]
    fn harmonia_latency_delta_negligible() {
        let e = engine();
        let with = e.perf(512, Freq::mhz(450), true);
        let without = e.perf(512, Freq::mhz(450), false);
        assert_eq!(with.throughput, without.throughput);
        let delta = (with.latency_ps - without.latency_ps) as f64;
        assert!(delta / without.latency_ps as f64 <= 0.03);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_shape_checked() {
        let e = engine();
        let _ = e.score(&[1.0; 8], 0);
    }

    #[test]
    #[should_panic(expected = "top-0")]
    fn zero_k_rejected() {
        let e = engine();
        let _ = e.top_k(&query(16), 0);
    }
}
