//! Board Test: infrastructure validation of custom FPGA boards.
//!
//! The infrastructure application of Table 2: before a custom board enters
//! an application cluster it runs pattern tests against every peripheral —
//! memory marching patterns, network loopback, DMA echo — and reports
//! pass/fail plus the measured bandwidths (§5.1).

use crate::common::App;
use harmonia_hw::device::FpgaDevice;
use harmonia_hw::ip::dram::MemOp;
use harmonia_hw::ip::MacIp;
use harmonia_shell::rbb::MemoryRbb;
use harmonia_shell::{MemoryDemand, RoleSpec};
use harmonia_sim::SplitMix64;
use std::fmt;

/// Outcome of one test stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageResult {
    /// Stage name.
    pub name: String,
    /// Whether the stage passed.
    pub passed: bool,
    /// Measured figure of merit (GB/s for memory, Gbps for network, …).
    pub measured: f64,
}

/// The full board-test report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TestReport {
    stages: Vec<StageResult>,
}

impl TestReport {
    /// Whether every stage passed.
    pub fn all_passed(&self) -> bool {
        !self.stages.is_empty() && self.stages.iter().all(|s| s.passed)
    }

    /// The individual stage results.
    pub fn stages(&self) -> &[StageResult] {
        &self.stages
    }

    fn push(&mut self, name: impl Into<String>, passed: bool, measured: f64) {
        self.stages.push(StageResult {
            name: name.into(),
            passed,
            measured,
        });
    }
}

impl fmt::Display for TestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stages {
            writeln!(
                f,
                "{:<24} {}  ({:.2})",
                s.name,
                if s.passed { "PASS" } else { "FAIL" },
                s.measured
            )?;
        }
        Ok(())
    }
}

/// A simple byte-addressable memory image used by the marching tests.
#[derive(Debug)]
struct MemImage {
    words: Vec<u64>,
}

impl MemImage {
    fn new(words: usize) -> Self {
        MemImage {
            words: vec![0; words],
        }
    }

    fn write(&mut self, i: usize, v: u64) {
        self.words[i] = v;
    }

    fn read(&self, i: usize) -> u64 {
        self.words[i]
    }
}

/// The board-test application.
#[derive(Debug)]
pub struct BoardTest {
    seed: u64,
    /// Words covered by each marching pattern.
    test_words: usize,
    /// Injected fault for self-checking (testing the tester).
    inject_memory_fault: bool,
}

impl BoardTest {
    /// Creates a board tester.
    pub fn new(seed: u64) -> Self {
        BoardTest {
            seed,
            test_words: 4096,
            inject_memory_fault: false,
        }
    }

    /// Injects a stuck-at fault into the memory test (verifies the tester
    /// actually detects failures).
    pub fn with_injected_memory_fault(mut self) -> Self {
        self.inject_memory_fault = true;
        self
    }

    /// Marching-ones/zeros plus random-pattern memory test.
    pub fn memory_pattern_test(&self) -> StageResult {
        let mut img = MemImage::new(self.test_words);
        let mut ok = true;
        // Walking ones.
        for bit in 0..64 {
            let v = 1u64 << bit;
            for i in 0..self.test_words {
                img.write(i, v);
            }
            for i in 0..self.test_words {
                let mut got = img.read(i);
                if self.inject_memory_fault && bit == 17 && i == 1234 {
                    got |= 1 << 3; // stuck-at-1
                }
                if got != v {
                    ok = false;
                }
            }
        }
        // Random pattern with readback.
        let mut rng = SplitMix64::new(self.seed);
        let pattern: Vec<u64> = (0..self.test_words).map(|_| rng.next_u64()).collect();
        for (i, &v) in pattern.iter().enumerate() {
            img.write(i, v);
        }
        for (i, &v) in pattern.iter().enumerate() {
            if img.read(i) != v {
                ok = false;
            }
        }
        StageResult {
            name: "memory-pattern".into(),
            passed: ok,
            measured: (self.test_words * 8) as f64 / 1e3, // KB covered
        }
    }

    /// Memory bandwidth stage against the Memory RBB model.
    pub fn memory_bandwidth_test(&self, mem: &mut MemoryRbb, min_gbs: f64) -> StageResult {
        // Measure the external memory itself, not the hot cache.
        mem.set_cache(false);
        let ops = (0..100_000u64).map(|i| MemOp::read(i * 64, 64));
        let r = mem.run_trace(ops);
        let bw = r.bandwidth_gbs();
        StageResult {
            name: "memory-bandwidth".into(),
            passed: bw >= min_gbs,
            measured: bw,
        }
    }

    /// Network loopback: frames out and back, count + integrity by size
    /// sweep; measured value is the worst-case goodput.
    pub fn network_loopback_test(&self, mac: &MacIp) -> StageResult {
        let mut min_goodput = f64::INFINITY;
        let mut ok = true;
        for &size in &[64u32, 256, 1024, 1500] {
            let tpt = mac.throughput_gbps(size);
            min_goodput = min_goodput.min(tpt);
            // Loopback latency must be bounded for the board to pass.
            if mac.loopback_latency_ps(size) > 10_000_000 {
                ok = false;
            }
        }
        StageResult {
            name: format!("network-loopback-{}g", mac.speed_gbps()),
            passed: ok && min_goodput > 0.7 * f64::from(mac.speed_gbps()),
            measured: min_goodput,
        }
    }

    /// DMA echo: write a pattern through the engine model and check the
    /// throughput plateau.
    pub fn dma_echo_test(&self, dma: &harmonia_hw::ip::PcieDmaIp) -> StageResult {
        let bw = dma.throughput_gbs(16384);
        StageResult {
            name: format!("dma-echo-gen{}x{}", dma.gen(), dma.lanes()),
            passed: bw > 0.7 * dma.raw_gbs(),
            measured: bw,
        }
    }

    /// Runs the full suite appropriate to a device's peripherals.
    pub fn run(&self, device: &FpgaDevice) -> TestReport {
        let mut report = TestReport::default();
        let mem_stage = self.memory_pattern_test();
        report.push(mem_stage.name.clone(), mem_stage.passed, mem_stage.measured);

        let die = device.die_vendor();
        if device.has_ddr() {
            let mut mem = MemoryRbb::ddr(die, 4, 1);
            let s = self.memory_bandwidth_test(&mut mem, 12.0);
            report.push(s.name.clone(), s.passed, s.measured);
        }
        if device.has_hbm() {
            let mut mem = MemoryRbb::hbm(die);
            let s = self.memory_bandwidth_test(&mut mem, 200.0);
            report.push("hbm-bandwidth", s.passed, s.measured);
        }
        for p in device.peripherals() {
            if let harmonia_hw::Peripheral::Qsfp { gbps } | harmonia_hw::Peripheral::Dsfp { gbps } =
                *p
            {
                let mac = MacIp::new(die, gbps.min(400));
                let s = self.network_loopback_test(&mac);
                report.push(s.name.clone(), s.passed, s.measured);
            }
        }
        if let Some((gen, lanes)) = device.pcie() {
            let dma = harmonia_hw::ip::PcieDmaIp::new(die, gen, lanes);
            let s = self.dma_echo_test(&dma);
            report.push(s.name.clone(), s.passed, s.measured);
        }
        report
    }
}

impl App for BoardTest {
    fn name(&self) -> &'static str {
        "Board Test"
    }

    fn role_spec(&self) -> RoleSpec {
        RoleSpec::builder("board-test")
            .network_gbps(100)
            .network_ports(2)
            .memory(MemoryDemand::Ddr { channels: 1 })
            .queues(16)
            .build()
    }

    fn role_loc(&self) -> u64 {
        // Figure 3a: the shell is 72 % of the Board Test project.
        14_500
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::device::catalog;
    use harmonia_hw::Vendor;

    #[test]
    fn healthy_board_passes_everything() {
        let report = BoardTest::new(1).run(&catalog::device_a());
        assert!(report.all_passed(), "\n{report}");
        // A: pattern + ddr-bw + hbm-bw + 2 cages + dma = 6 stages.
        assert_eq!(report.stages().len(), 6);
    }

    #[test]
    fn injected_fault_is_detected() {
        let tester = BoardTest::new(1).with_injected_memory_fault();
        let stage = tester.memory_pattern_test();
        assert!(!stage.passed, "stuck-at fault went undetected");
        let report = tester.run(&catalog::device_d());
        assert!(!report.all_passed());
    }

    #[test]
    fn stages_follow_peripherals() {
        let report_c = BoardTest::new(2).run(&catalog::device_c());
        // C: pattern + 2 cages + dma (no DRAM).
        assert_eq!(report_c.stages().len(), 4);
        assert!(!report_c
            .stages()
            .iter()
            .any(|s| s.name.contains("memory-bandwidth")));
    }

    #[test]
    fn loopback_measures_goodput() {
        let tester = BoardTest::new(3);
        let s = tester.network_loopback_test(&MacIp::new(Vendor::Intel, 100));
        assert!(s.passed);
        // Worst case is 64 B frames: 100 × 64/84.
        assert!((s.measured - 76.19).abs() < 0.5);
    }

    #[test]
    fn empty_report_is_not_a_pass() {
        assert!(!TestReport::default().all_passed());
    }

    #[test]
    fn report_display_lists_stages() {
        let report = BoardTest::new(1).run(&catalog::device_d());
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("dma-echo"));
    }
}
