//! Shared application plumbing: the `App` trait, performance results and
//! the bump-in-the-wire datapath model.

use harmonia_hw::ip::MacIp;
use harmonia_metrics::workload::{ModuleWorkload, Origin};
use harmonia_shell::rbb::network::PacketMeta;
use harmonia_shell::RoleSpec;
use harmonia_sim::{Freq, Picos};
use harmonia_workloads::WorkloadPacket;

/// A throughput/latency measurement point.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AppPerf {
    /// Throughput in Gbps (BITW apps) or operations/sec (look-aside apps).
    pub throughput: f64,
    /// End-to-end latency in picoseconds.
    pub latency_ps: Picos,
}

impl AppPerf {
    /// Latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_ps as f64 / 1e6
    }
}

/// Common surface of the five applications.
pub trait App {
    /// The application's display name.
    fn name(&self) -> &'static str;

    /// The role's shell demands, used for tailoring.
    fn role_spec(&self) -> RoleSpec;

    /// The role-side development workload (handcraft application logic).
    fn role_workload(&self) -> ModuleWorkload {
        let mut w = ModuleWorkload::new(format!("{}-role", self.name()));
        w.add("application-logic", self.role_loc(), Origin::Handcraft);
        w
    }

    /// Role logic size in LoC (drives the Figure 3a shell/role split).
    fn role_loc(&self) -> u64;
}

/// The bump-in-the-wire datapath: wire → MAC → role pipeline → MAC → wire,
/// optionally passing through Harmonia's interface wrappers and CDC.
#[derive(Clone, Debug)]
pub struct BitwPath {
    mac: MacIp,
    /// Role pipeline depth in cycles at the role clock.
    role_pipeline_cycles: u64,
    role_clock: Freq,
    /// Deployment-path latency outside the FPGA (cabling, ToR switch and
    /// the peer's stack) — the context that makes the wrapper's
    /// nanoseconds "negligible relative to the application end-to-end
    /// microsecond-level delay" (§5.2).
    external_path_ps: Picos,
    /// Whether Harmonia's wrapper + CDC stages are in the path.
    with_harmonia: bool,
}

impl BitwPath {
    /// Wrapper + CDC stages Harmonia inserts on each direction.
    const HARMONIA_STAGES_CYCLES: u64 = 7; // 4 wrapper + 3 CDC

    /// Creates a path through the given MAC with a role pipeline.
    pub fn new(mac: MacIp, role_pipeline_cycles: u64, role_clock: Freq) -> Self {
        BitwPath {
            mac,
            role_pipeline_cycles,
            role_clock,
            external_path_ps: 5_000_000,
            with_harmonia: true,
        }
    }

    /// Overrides the external path latency.
    pub fn with_external_path_ps(mut self, ps: Picos) -> Self {
        self.external_path_ps = ps;
        self
    }

    /// Disables the Harmonia stages (the "w/o Harmonia" baseline of
    /// Figure 17: a hand-built shell with direct vendor interfaces).
    pub fn without_harmonia(mut self) -> Self {
        self.with_harmonia = false;
        self
    }

    /// Whether Harmonia stages are present.
    pub fn with_harmonia(&self) -> bool {
        self.with_harmonia
    }

    /// Throughput for a frame size: the MAC's line-rate goodput. Identical
    /// with and without Harmonia — the wrapper/CDC pipeline is bubble-free.
    pub fn throughput_gbps(&self, frame_bytes: u32) -> f64 {
        self.mac.throughput_gbps(frame_bytes)
    }

    /// End-to-end latency for one frame.
    pub fn latency_ps(&self, frame_bytes: u32) -> Picos {
        let mac = self.mac.loopback_latency_ps(frame_bytes);
        let role =
            self.role_pipeline_cycles * self.role_clock.period_ps();
        let harmonia = if self.with_harmonia {
            // In + out of the role region.
            2 * Self::HARMONIA_STAGES_CYCLES * self.role_clock.period_ps()
        } else {
            0
        };
        self.external_path_ps + mac + role + harmonia
    }

    /// Measures one sweep point.
    pub fn perf(&self, frame_bytes: u32) -> AppPerf {
        AppPerf {
            throughput: self.throughput_gbps(frame_bytes),
            latency_ps: self.latency_ps(frame_bytes),
        }
    }
}

/// Converts a generated workload packet into the RBB's header view.
pub fn to_packet_meta(p: &WorkloadPacket) -> PacketMeta {
    PacketMeta {
        dst_mac: p.dst_mac,
        src_ip: p.src_ip,
        dst_ip: p.dst_ip,
        src_port: p.src_port,
        dst_port: p.dst_port,
        proto: p.proto,
        bytes: p.bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_hw::Vendor;

    fn path() -> BitwPath {
        BitwPath::new(MacIp::new(Vendor::Xilinx, 100), 20, Freq::mhz(322))
    }

    #[test]
    fn harmonia_does_not_change_throughput() {
        let with = path();
        let without = path().without_harmonia();
        for size in [64, 256, 1024] {
            assert_eq!(with.throughput_gbps(size), without.throughput_gbps(size));
        }
    }

    #[test]
    fn harmonia_latency_increase_below_one_percent() {
        let with = path();
        let without = path().without_harmonia();
        for size in [64, 128, 256, 512, 1024] {
            let lw = with.latency_ps(size) as f64;
            let lo = without.latency_ps(size) as f64;
            let inc = (lw - lo) / lo;
            assert!(inc > 0.0, "harmonia adds some latency");
            assert!(inc < 0.01, "size {size}: +{:.2}% breaks the <1% claim", 100.0 * inc);
        }
    }

    #[test]
    fn latency_monotone_in_frame_size() {
        let p = path();
        assert!(p.latency_ps(1024) > p.latency_ps(64));
    }

    #[test]
    fn packet_meta_conversion_preserves_fields() {
        let wp = WorkloadPacket {
            dst_mac: 5,
            src_ip: 6,
            dst_ip: 7,
            src_port: 8,
            dst_port: 9,
            proto: 17,
            bytes: 99,
        };
        let m = to_packet_meta(&wp);
        assert_eq!(m.dst_mac, 5);
        assert_eq!(m.proto, 17);
        assert_eq!(m.bytes, 99);
    }
}
