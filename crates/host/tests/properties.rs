//! Property-based tests for the host layer: interrupt moderation bounds
//! and DMA control-queue isolation.

use harmonia_host::dma::DmaEngine;
use harmonia_host::irq::{IrqModeration, IrqModerator};
use harmonia_hw::ip::PcieDmaIp;
use harmonia_hw::Vendor;
use harmonia_testkit::prelude::*;

fn arb_policy() -> impl Strategy<Value = IrqModeration> {
    (0u64..100_000_000, 1u32..256).prop_map(|(max_wait_ps, batch_threshold)| IrqModeration {
        max_wait_ps,
        batch_threshold,
    })
}

fn arb_dma() -> impl Strategy<Value = PcieDmaIp> {
    (
        prop_oneof![Just(Vendor::Xilinx), Just(Vendor::Intel), Just(Vendor::InHouse)],
        3u8..=5,
        prop_oneof![Just(8u8), Just(16u8)],
    )
        .prop_map(|(vendor, gen, lanes)| PcieDmaIp::new(vendor, gen, lanes))
}

forall! {
    /// Moderation invariants for any policy and uniform stream: every
    /// event is counted, at most one interrupt per event, no batch grows
    /// past the threshold, and no event waits past the coalescing timer.
    #[test]
    fn irq_moderation_bounds(
        policy in arb_policy(),
        gap_ps in 0u64..10_000_000,
        count in 1u64..2_000,
    ) {
        let r = IrqModerator::run_uniform(policy, gap_ps, count);
        prop_assert_eq!(r.events, count);
        prop_assert!(r.interrupts >= 1, "flushed stream must interrupt");
        prop_assert!(r.interrupts <= r.events);
        prop_assert!(
            r.coalescing() <= f64::from(policy.batch_threshold),
            "coalescing {} exceeds batch threshold {}",
            r.coalescing(), policy.batch_threshold
        );
        prop_assert!(
            r.max_delay_ps <= policy.max_wait_ps,
            "event waited {} ps past the {} ps timer",
            r.max_delay_ps, policy.max_wait_ps
        );
        prop_assert!(r.mean_delay_ps <= r.max_delay_ps as f64);
    }

    /// The no-moderation policy degenerates to one interrupt per event
    /// with zero delay, for any stream.
    #[test]
    fn irq_immediate_policy_is_transparent(gap_ps in 0u64..10_000_000, count in 1u64..2_000) {
        let r = IrqModerator::run_uniform(IrqModeration::immediate(), gap_ps, count);
        prop_assert_eq!(r.interrupts, count);
        prop_assert_eq!(r.max_delay_ps, 0);
        prop_assert_eq!(r.mean_delay_ps, 0.0);
    }

    /// Raising the batch threshold (same timer) never raises the
    /// interrupt count — the Figure-style moderation trade-off direction.
    #[test]
    fn irq_batching_monotone_in_threshold(
        max_wait_ps in 1u64..100_000_000,
        small in 1u32..64,
        extra in 1u32..192,
        gap_ps in 1u64..1_000_000,
        count in 1u64..2_000,
    ) {
        let weak = IrqModerator::run_uniform(
            IrqModeration { max_wait_ps, batch_threshold: small }, gap_ps, count);
        let strong = IrqModerator::run_uniform(
            IrqModeration { max_wait_ps, batch_threshold: small + extra }, gap_ps, count);
        prop_assert!(strong.interrupts <= weak.interrupts,
            "threshold {} raised interrupts over threshold {}", small + extra, small);
    }

    /// Backlog bookkeeping is a saturating fold of the enqueue/drain
    /// history, whatever the interleaving.
    #[test]
    fn dma_backlog_matches_history(
        dma in arb_dma(),
        ops in collection::vec((any::<bool>(), 0u64..1_000_000), 0..40),
    ) {
        let mut engine = DmaEngine::new(dma);
        let mut expected: u64 = 0;
        for &(enqueue, bytes) in &ops {
            if enqueue {
                engine.enqueue_data(bytes);
                expected += bytes;
            } else {
                engine.drain_data(bytes);
                expected = expected.saturating_sub(bytes);
            }
            prop_assert_eq!(engine.data_backlog(), expected);
        }
    }

    /// §3.3.3 isolation: with the separate control queue, command latency
    /// is a pure function of the command size — data backlog never leaks
    /// into it. Without isolation, latency only grows with backlog.
    #[test]
    fn dma_ctrl_isolation_decouples_backlog(
        dma in arb_dma(),
        cmd_bytes in 1u32..4_096,
        backlogs in collection::vec(1u64..50_000_000, 1..10),
    ) {
        let mut isolated = DmaEngine::new(dma.clone());
        let quiet = isolated.command_latency_ps(cmd_bytes);
        let mut shared = DmaEngine::new(dma);
        shared.set_ctrl_isolated(false);
        let mut last_shared = shared.command_latency_ps(cmd_bytes);
        prop_assert_eq!(last_shared, quiet, "empty shared queue must match isolated");
        for &bytes in &backlogs {
            isolated.enqueue_data(bytes);
            shared.enqueue_data(bytes);
            prop_assert_eq!(isolated.command_latency_ps(cmd_bytes), quiet,
                "isolated latency shifted under backlog");
            let busy = shared.command_latency_ps(cmd_bytes);
            prop_assert!(busy >= last_shared,
                "shared-queue latency dropped as backlog grew");
            last_shared = busy;
        }
        prop_assert_eq!(
            isolated.commands_sent(),
            1 + backlogs.len() as u64,
            "command counter out of step"
        );
    }

    /// The link model underneath commands and data is sane for every
    /// supported configuration: positive latency, throughput below the
    /// raw link rate, and both monotone in request size.
    #[test]
    fn dma_link_model_bounds(dma in arb_dma(), small in 64u32..2_048, grow in 1u32..30_000) {
        let engine = DmaEngine::new(dma);
        let large = small + grow;
        prop_assert!(engine.data_latency_ps(small) > 0);
        prop_assert!(engine.data_latency_ps(large) >= engine.data_latency_ps(small));
        let (t_small, t_large) = (
            engine.data_throughput_gbs(small),
            engine.data_throughput_gbs(large),
        );
        prop_assert!(t_small > 0.0);
        prop_assert!(t_large >= t_small, "throughput fell with larger requests");
        prop_assert!(t_large <= engine.link().raw_gbs(), "throughput beats the raw link");
    }
}
