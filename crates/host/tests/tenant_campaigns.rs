//! Fault campaigns and fairness contracts for the multi-tenant host
//! driver.
//!
//! 1. **Weighted shares** — over an all-backlogged window, WFQ grants
//!    every tenant its `w_i/Σw` share of slices within one slice of
//!    exact; round-robin splits the same window evenly.
//! 2. **No starvation** — under either policy, a flooding aggressor
//!    cannot keep a small victim from draining: the victim completes
//!    everything and the aggressor's excess trips kernel quota
//!    enforcement instead of monopolizing the control path.
//! 3. **Campaign convergence** — under the eight-seed fault campaigns
//!    (link flap + credit stall + 5% background drop/corrupt/irq-lost)
//!    every tenant's work converges to completed with exact accounting,
//!    and each seed's full observable state is reproducible run-to-run.
//! 4. **Matrix byte-identity** — the rendered driver state is identical
//!    across `{cycle,event} × HARMONIA_THREADS {1,4}`: nothing in the
//!    tenancy stack may consult the engine or thread knobs.
//! 5. **Env plumbing** — `HARMONIA_TENANT_POLICY` /
//!    `HARMONIA_TENANT_SLICE_PS` select the scheduler configuration
//!    through `TenantScheduler::from_env`.

use harmonia_cmd::{CommandCode, UnifiedControlKernel};
use harmonia_host::batch::CmdSpec;
use harmonia_host::{DmaEngine, TenantHostDriver};
use harmonia_hw::device::catalog;
use harmonia_hw::ip::PcieDmaIp;
use harmonia_hw::resource::ResourceUsage;
use harmonia_hw::Vendor;
use harmonia_shell::pr::{MultiTenantRegion, TenantRole};
use harmonia_shell::sched::{
    TenantPolicy, TenantScheduler, DEFAULT_TENANT_SLICE_PS, TENANT_POLICY_ENV, TENANT_SLICE_ENV,
};
use harmonia_shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
use harmonia_sim::exec::THREADS_ENV;
use harmonia_sim::{FaultKind, FaultPlan, FaultRates, ENGINE_ENV};
use std::sync::Mutex;

/// Env mutations are process-global; serialize against cargo's parallel
/// test runner (this file's own lock — other test binaries run in other
/// processes).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    let priors: Vec<_> = pairs
        .iter()
        .map(|(k, _)| (*k, std::env::var(k).ok()))
        .collect();
    let set = |key: &str, value: Option<&str>| match value {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    };
    for (k, v) in pairs {
        set(k, *v);
    }
    let out = f();
    for (k, v) in priors {
        set(k, v.as_deref());
    }
    out
}

fn shell_parts() -> (TailoredShell, DmaEngine, UnifiedControlKernel) {
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("tenant-campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().unwrap();
    let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
    (shell, engine, kernel)
}

fn scheduler(policy: TenantPolicy, weights: &[u64], shell: &TailoredShell) -> TenantScheduler {
    let region =
        MultiTenantRegion::partition(shell, catalog::device_a().capacity(), 1, 1024);
    let mut sched = TenantScheduler::new(region, 0, policy, DEFAULT_TENANT_SLICE_PS).unwrap();
    let logic = ResourceUsage::new(50_000, 80_000, 100, 20, 100);
    for (i, &w) in weights.iter().enumerate() {
        sched
            .register(TenantRole::new(format!("t{i}"), logic, 8), w)
            .unwrap();
    }
    sched
}

fn driver(policy: TenantPolicy, weights: &[u64]) -> TenantHostDriver {
    let (shell, engine, kernel) = shell_parts();
    TenantHostDriver::new(scheduler(policy, weights, &shell), engine, kernel)
}

fn health_reads(n: usize) -> Vec<CmdSpec> {
    (0..n)
        .map(|_| (0u8, 0u8, CommandCode::HealthRead, Vec::new()))
        .collect()
}

/// The engine-equivalence campaign plan scaled to tenant slices: a link
/// flap across the first fifteen 2 ms slices, a credit stall after it,
/// and 5% background drop/corrupt/irq-lost rates from `seed`.
fn campaign_plan(seed: u64) -> FaultPlan {
    FaultPlan::new()
        .at(0, FaultKind::LinkDown)
        .at(30_000_000_000, FaultKind::LinkUp)
        .at(50_000_000_000, FaultKind::PcieCreditStall { beats: 1_000 })
        .with_rates(
            seed,
            FaultRates {
                cmd_drop: 0.05,
                cmd_corrupt: 0.05,
                irq_lost: 0.05,
                ecc: 0.0,
            },
        )
}

/// Everything observable about a finished run, as one comparable string.
fn render(tag: &str, d: &TenantHostDriver, tenants: usize) -> String {
    let stats: Vec<String> = (0..tenants)
        .map(|t| format!("t{t}={:?} p99={}", d.stats(t), d.latency(t).p99()))
        .collect();
    format!(
        "{tag} clock={} slices={} quota={} switches={} reconfig_ps={} [{}]",
        d.clock_ps(),
        d.slices_run(),
        d.quota_hits(),
        d.scheduler().switches(),
        d.scheduler().region().total_reconfig_ps(),
        stats.join(" ")
    )
}

#[test]
fn wfq_shares_track_weights_within_one_slice_while_backlogged() {
    let weights = [4u64, 2, 1];
    let total: u64 = weights.iter().sum();
    let rounds = 6 * total;
    let mut d = driver(TenantPolicy::WeightedFair, &weights);
    // Deep backlogs so nobody drains inside the measured window: tenant
    // 0 can receive at most 24 slices x 256 budgeted commands.
    for t in 0..weights.len() {
        d.enqueue(t, health_reads(10_000));
    }
    assert_eq!(d.run(rounds), rounds);
    for (i, &w) in weights.iter().enumerate() {
        let got = d.stats(i).slices as i128;
        let diff = got * total as i128 - (rounds * w) as i128;
        assert!(
            diff.abs() <= total as i128,
            "tenant {i} (w={w}) got {got}/{rounds} slices, diff {diff}"
        );
    }
}

#[test]
fn round_robin_splits_the_same_window_evenly() {
    let weights = [4u64, 2, 1]; // RR must ignore these.
    let rounds = 42;
    let mut d = driver(TenantPolicy::RoundRobin, &weights);
    for t in 0..weights.len() {
        d.enqueue(t, health_reads(10_000));
    }
    assert_eq!(d.run(rounds), rounds);
    for i in 0..weights.len() {
        assert_eq!(d.stats(i).slices, rounds / 3, "RR must be weight-blind");
    }
}

#[test]
fn no_starvation_under_either_policy() {
    for policy in [TenantPolicy::RoundRobin, TenantPolicy::WeightedFair] {
        let mut d = driver(policy, &[4, 1]);
        d.enqueue(0, health_reads(50)); // victim
        d.enqueue(1, health_reads(5000)); // aggressor
        d.run(u64::MAX);
        assert!(d.idle(), "{policy:?}: all work must drain");
        assert_eq!(d.stats(0).completed, 50, "{policy:?}: victim starved");
        assert_eq!(d.stats(1).completed, 5000);
        assert!(d.stats(0).slices >= 1);
        assert!(
            d.quota_hits() > 0,
            "{policy:?}: the aggressor must trip quota enforcement, not \
             monopolize the kernel"
        );
    }
}

#[test]
fn eight_seed_campaigns_converge_with_exact_accounting() {
    for policy in [TenantPolicy::RoundRobin, TenantPolicy::WeightedFair] {
        let mut any_background_fault = false;
        for seed in 0..8u64 {
            let run = || {
                let mut d = driver(policy, &[4, 2, 1]);
                d.set_fault_injector(campaign_plan(seed).injector());
                for t in 0..3 {
                    d.enqueue(t, health_reads(60));
                }
                d.run(u64::MAX);
                assert!(d.idle(), "{policy:?} seed {seed}: work must converge");
                for t in 0..3 {
                    let s = d.stats(t);
                    assert_eq!(
                        s.completed, 60,
                        "{policy:?} seed {seed}: tenant {t} lost commands"
                    );
                    assert_eq!(s.errors, 0, "{policy:?} seed {seed}: phantom errors");
                }
                // The t=0 link-down burns the first slice; every seed
                // must record that as a retried timeout.
                let recoveries: u64 =
                    (0..3).map(|t| d.stats(t).nacks + d.stats(t).timeouts).sum();
                assert!(recoveries > 0, "{policy:?} seed {seed}: no faults fired");
                assert!(
                    d.clock_ps() >= 30_000_000_000,
                    "{policy:?} seed {seed}: converged before the link returned"
                );
                (render(&format!("seed={seed}"), &d, 3), recoveries)
            };
            let (first, recoveries) = run();
            let (second, _) = run();
            assert_eq!(first, second, "{policy:?} seed {seed}: not reproducible");
            // Link-down alone accounts for 3 front-of-ring retries; more
            // means the seeded background rates actually fired.
            if recoveries > 3 {
                any_background_fault = true;
            }
        }
        assert!(
            any_background_fault,
            "{policy:?}: eight seeds of 5% rates never fired a background fault"
        );
    }
}

#[test]
fn rendered_state_is_byte_identical_across_engine_thread_matrix() {
    for policy in [TenantPolicy::RoundRobin, TenantPolicy::WeightedFair] {
        let run = || {
            let mut d = driver(policy, &[4, 2, 1]);
            d.set_fault_injector(campaign_plan(3).injector());
            for t in 0..3 {
                d.enqueue(t, health_reads(80));
            }
            d.run(u64::MAX);
            render(policy.name(), &d, 3)
        };
        let baseline = with_env(
            &[(ENGINE_ENV, Some("cycle")), (THREADS_ENV, Some("1"))],
            run,
        );
        for (engine, threads) in [("cycle", "4"), ("event", "1"), ("event", "4")] {
            let got = with_env(
                &[(ENGINE_ENV, Some(engine)), (THREADS_ENV, Some(threads))],
                run,
            );
            assert_eq!(
                got, baseline,
                "{policy:?} diverged at engine={engine} threads={threads}"
            );
        }
    }
}

#[test]
fn env_knobs_select_policy_and_slice_length() {
    let (shell, _engine, _kernel) = shell_parts();
    let build = || {
        let region =
            MultiTenantRegion::partition(&shell, catalog::device_a().capacity(), 1, 1024);
        TenantScheduler::from_env(region, 0).unwrap()
    };
    let wfq = with_env(
        &[
            (TENANT_POLICY_ENV, Some("wfq")),
            (TENANT_SLICE_ENV, Some("123456789")),
        ],
        build,
    );
    assert_eq!(wfq.policy(), TenantPolicy::WeightedFair);
    assert_eq!(wfq.slice_ps(), 123_456_789);
    let defaulted = with_env(
        &[(TENANT_POLICY_ENV, None), (TENANT_SLICE_ENV, None)],
        build,
    );
    assert_eq!(defaulted.policy(), TenantPolicy::RoundRobin);
    assert_eq!(defaulted.slice_ps(), DEFAULT_TENANT_SLICE_PS);
}
