//! Fault-scenario campaigns over the resilient command driver.
//!
//! Three contracts, exercised under randomized fault plans:
//!
//! 1. **Convergence** — any finite fault plan drives every issued command
//!    to *acked* or *reported-failed*; no panics, no lost accounting;
//! 2. **Ordering** — retries never reorder responses within one `SrcId`;
//! 3. **Transparency** — `FaultPlan::none()` produces `DriverReport`s
//!    byte-identical to the legacy (pre-fault-plane) path, with identical
//!    latency accounting.

use harmonia_cmd::{CommandCode, UnifiedControlKernel};
use harmonia_host::{CommandDriver, DmaEngine, DriverError};
use harmonia_hw::device::catalog;
use harmonia_hw::ip::PcieDmaIp;
use harmonia_hw::Vendor;
use harmonia_shell::rbb::RbbKind;
use harmonia_shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
use harmonia_sim::{FaultKind, FaultPlan, FaultRates};
use harmonia_testkit::prelude::*;

fn driver() -> (CommandDriver, TailoredShell) {
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().unwrap();
    let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
    (CommandDriver::new(engine, kernel), shell)
}

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::LinkDown),
        Just(FaultKind::LinkUp),
        (1u64..2_000).prop_map(|beats| FaultKind::PcieCreditStall { beats }),
        Just(FaultKind::EccError),
        Just(FaultKind::CmdDrop),
        Just(FaultKind::CmdCorrupt),
        Just(FaultKind::IrqLost),
    ]
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        collection::vec((0u64..2_000_000_000, arb_fault_kind()), 0..12),
        any::<u64>(),
        (0u32..4, 0u32..4, 0u32..4),
    )
        .prop_map(|(events, seed, (drop_pct, corrupt_pct, irq_pct))| {
            let mut plan = FaultPlan::new();
            for (at, kind) in events {
                plan = plan.at(at, kind);
            }
            plan.with_rates(
                seed,
                FaultRates {
                    cmd_drop: f64::from(drop_pct) / 100.0,
                    cmd_corrupt: f64::from(corrupt_pct) / 100.0,
                    irq_lost: f64::from(irq_pct) / 100.0,
                    ecc: 0.0,
                },
            )
        })
}

forall! {
    /// (1) + (2): every campaign converges with exact accounting, and the
    /// ack log (idempotency tags in completion order) stays strictly
    /// increasing — retries never reorder responses within a `SrcId`.
    #[test]
    fn finite_fault_campaigns_converge(
        plan in arb_plan(),
        cmds in collection::vec(0u8..4, 1..24),
    ) {
        let (mut drv, _shell) = driver();
        drv.set_fault_injector(plan.injector());
        let (mut oks, mut gave_ups) = (0u64, 0u64);
        for c in cmds {
            let res = match c {
                0 => drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new()),
                1 => drv.cmd_resilient(RbbKind::Network, 0, CommandCode::StatsRead, Vec::new()),
                2 => drv.cmd_resilient(RbbKind::Network, 0, CommandCode::ModuleStatusRead, Vec::new()),
                _ => drv.cmd_resilient(RbbKind::Host, 0, CommandCode::ModuleInit, Vec::new()),
            };
            match res {
                Ok(_) => oks += 1,
                Err(DriverError::GaveUp { .. }) => gave_ups += 1,
                Err(other) => prop_assert!(false, "non-converging error: {other}"),
            }
        }
        let r = drv.report();
        prop_assert!(r.converged(), "{r}");
        prop_assert_eq!(r.issued, oks + gave_ups);
        prop_assert_eq!(r.acked, oks);
        prop_assert_eq!(r.gave_up, gave_ups);
        prop_assert_eq!(r.acked, drv.acked_log().len() as u64);
        prop_assert!(
            drv.acked_log().windows(2).all(|w| w[0] < w[1]),
            "retries reordered responses: {:?}",
            drv.acked_log()
        );
    }

    /// (3): with the no-op plan the resilient path is indistinguishable
    /// from the legacy driver — same responses, byte-identical report,
    /// identical latency accounting.
    #[test]
    fn no_fault_plan_matches_legacy_byte_for_byte(
        cmds in collection::vec(0u8..3, 1..16),
    ) {
        let (mut legacy, _s1) = driver();
        let (mut resilient, _s2) = driver();
        resilient.set_fault_injector(FaultPlan::none().injector());
        for c in cmds {
            let (rbb, code) = match c {
                0 => (0u8, CommandCode::HealthRead),
                1 => (RbbKind::Network.id(), CommandCode::StatsRead),
                _ => (RbbKind::Host.id(), CommandCode::ModuleStatusRead),
            };
            let a = legacy.cmd_raw(rbb, 0, code, Vec::new()).unwrap();
            let b = resilient.cmd_raw_resilient(rbb, 0, code, Vec::new()).unwrap();
            prop_assert_eq!(a.data, b.data);
        }
        prop_assert_eq!(legacy.report(), resilient.report());
        prop_assert_eq!(
            format!("{}", legacy.report()).into_bytes(),
            format!("{}", resilient.report()).into_bytes()
        );
        prop_assert_eq!(legacy.total_latency_ps(), resilient.total_latency_ps());
        prop_assert_eq!(legacy.issued(), resilient.issued());
    }
}

/// The acceptance scenario: a seeded campaign mixing four scheduled fault
/// types with background fault rates completes the full bring-up +
/// monitoring workflow with zero panics and a non-empty report.
#[test]
fn seeded_multi_fault_campaign_completes() {
    let (mut drv, mut shell) = driver();
    let plan = FaultPlan::new()
        .at(0, FaultKind::LinkDown)
        .at(40_000_000, FaultKind::LinkUp)
        .at(60_000_000, FaultKind::PcieCreditStall { beats: 2_000 })
        .at(80_000_000, FaultKind::CmdCorrupt)
        .at(100_000_000, FaultKind::IrqLost)
        .with_rates(
            0x00C0_FFEE,
            FaultRates {
                cmd_drop: 0.05,
                cmd_corrupt: 0.05,
                irq_lost: 0.05,
                ecc: 0.0,
            },
        );
    let inj = plan.injector();
    drv.set_fault_injector(inj.clone());
    drv.init_shell_resilient(&mut shell).unwrap();
    for _ in 0..40 {
        match drv.cmd_raw_resilient(0, 0, CommandCode::HealthRead, Vec::new()) {
            Ok(_) | Err(DriverError::GaveUp { .. }) => {}
            Err(e) => panic!("campaign must converge, got {e}"),
        }
    }
    let _ = drv.read_all_stats_resilient(&shell).unwrap();
    let r = drv.report().clone();
    assert!(r.converged(), "{r}");
    assert!(r.issued >= 44, "{r}");
    assert!(
        r.retries + r.timeouts + r.nacks > 0,
        "the campaign injected nothing observable: {r}"
    );
    assert!(inj.report().total() > 0, "{}", inj.report());
}
