//! Campaigns over the batched SQ/CQ submission path.
//!
//! Three contracts:
//!
//! 1. **Legacy pinning** — `batch = 1` is byte-identical to the legacy
//!    `cmd_raw_resilient` path under the same eight-seed fault campaigns
//!    the engine-equivalence suite runs: same report rendering, same ack
//!    log, same clocks, same response payloads.
//! 2. **Convergence** — batched submission under seeded background fault
//!    rates drives every entry to acked or reported-failed with exact
//!    accounting, replaying only the lost entries.
//! 3. **Amortization** — with no faults, a batched submit acks everything
//!    with the same payloads as the serial path while finishing on an
//!    earlier simulated clock, and coalesces completion interrupts.

use harmonia_cmd::{CommandCode, UnifiedControlKernel};
use harmonia_host::{BatchedCommandDriver, CommandDriver, DmaEngine, DriverError};
use harmonia_hw::device::catalog;
use harmonia_hw::ip::PcieDmaIp;
use harmonia_hw::Vendor;
use harmonia_shell::{MemoryDemand, RoleSpec, TailoredShell, UnifiedShell};
use harmonia_sim::{FaultKind, FaultPlan, FaultRates};

fn parts() -> (DmaEngine, UnifiedControlKernel, TailoredShell) {
    let dev = catalog::device_a();
    let unified = UnifiedShell::for_device(&dev);
    let role = RoleSpec::builder("batch-campaign")
        .network_gbps(100)
        .network_ports(1)
        .memory(MemoryDemand::Ddr { channels: 1 })
        .build();
    let shell = TailoredShell::tailor(&unified, &role).unwrap();
    let mut kernel = UnifiedControlKernel::new(64);
    kernel.attach_shell(shell.rbbs().iter().map(|r| r.as_ref()));
    let (gen, lanes) = dev.pcie().unwrap();
    let engine = DmaEngine::new(PcieDmaIp::new(Vendor::Xilinx, gen, lanes));
    (engine, kernel, shell)
}

/// The engine-equivalence campaign plan: a link flap, a credit stall,
/// and 5% background drop/corrupt/irq-lost rates from `seed`.
fn campaign_plan(seed: u64) -> FaultPlan {
    FaultPlan::new()
        .at(0, FaultKind::LinkDown)
        .at(30_000_000, FaultKind::LinkUp)
        .at(50_000_000, FaultKind::PcieCreditStall { beats: 1_000 })
        .with_rates(
            seed,
            FaultRates {
                cmd_drop: 0.05,
                cmd_corrupt: 0.05,
                irq_lost: 0.05,
                ecc: 0.0,
            },
        )
}

/// The command mix both sides of the differential run: device health
/// polls plus per-module stats reads.
fn mix() -> Vec<(u8, u8, CommandCode, Vec<u32>)> {
    let mut cmds = Vec::new();
    for _ in 0..8 {
        cmds.push((0, 0, CommandCode::HealthRead, Vec::new()));
    }
    for rbb in 1..=3u8 {
        cmds.push((rbb, 0, CommandCode::StatsRead, Vec::new()));
        cmds.push((rbb, 0, CommandCode::ModuleStatusRead, Vec::new()));
    }
    cmds
}

fn render(tag: &str, seed: u64, results: &[Result<Vec<u32>, String>], drv: &CommandDriver) -> String {
    format!(
        "{tag} seed={seed} {} acked={:?} clock={} lat={} results={:?}",
        drv.report(),
        drv.acked_log(),
        drv.clock_ps(),
        drv.total_latency_ps(),
        results,
    )
}

fn squash(r: Result<harmonia_cmd::CommandPacket, DriverError>) -> Result<Vec<u32>, String> {
    r.map(|p| p.data).map_err(|e| e.to_string())
}

/// (1) Batch = 1 pins the legacy path byte-for-byte under the eight-seed
/// fault campaigns: identical fault-RNG consumption, identical retries,
/// identical accounting and payloads.
#[test]
fn batch_one_matches_legacy_under_eight_seed_campaigns() {
    for seed in 0..8u64 {
        let (engine, kernel, _shell) = parts();
        let mut legacy = CommandDriver::new(engine, kernel);
        legacy.set_fault_injector(campaign_plan(seed).injector());
        let legacy_results: Vec<_> = mix()
            .into_iter()
            .map(|(rbb, inst, code, args)| squash(legacy.cmd_raw_resilient(rbb, inst, code, args)))
            .collect();

        let (engine, kernel, _shell) = parts();
        let mut batched = BatchedCommandDriver::with_depth(engine, kernel, 1, 64);
        batched.set_fault_injector(campaign_plan(seed).injector());
        let batched_results: Vec<_> = batched
            .submit(mix())
            .into_iter()
            .map(squash)
            .collect();

        let want = render("campaign", seed, &legacy_results, &legacy);
        let got = render("campaign", seed, &batched_results, batched.inner());
        assert_eq!(want, got, "seed {seed}: batch=1 diverged from legacy");
        assert!(legacy.report().converged(), "seed {seed}: {}", legacy.report());
    }
    // The campaigns exercised the fault plane, not a degenerate no-op:
    // at least one seed must have retried.
    let (engine, kernel, _shell) = parts();
    let mut probe = CommandDriver::new(engine, kernel);
    probe.set_fault_injector(campaign_plan(0).injector());
    for (rbb, inst, code, args) in mix() {
        let _ = probe.cmd_raw_resilient(rbb, inst, code, args);
    }
    assert!(probe.report().retries > 0, "campaign observed no fault");
}

/// (2) Batched submission converges under the seeded campaigns: every
/// entry lands acked or reported-failed, the accounting is exact, and
/// only lost entries were replayed (acked ≤ issued, no double-acks).
#[test]
fn batched_campaigns_converge_under_seeded_rates() {
    for seed in 0..8u64 {
        let (engine, kernel, _shell) = parts();
        let mut drv = BatchedCommandDriver::with_depth(engine, kernel, 4, 16);
        drv.set_fault_injector(campaign_plan(seed).injector());
        let results = drv.submit(mix());
        let (mut oks, mut gave_ups) = (0u64, 0u64);
        for r in &results {
            match r {
                Ok(_) => oks += 1,
                Err(DriverError::GaveUp { .. }) => gave_ups += 1,
                Err(other) => panic!("seed {seed}: non-converging error: {other}"),
            }
        }
        let report = drv.report().clone();
        assert!(report.converged(), "seed {seed}: {report}");
        assert_eq!(report.issued, oks + gave_ups, "seed {seed}");
        assert_eq!(report.acked, oks, "seed {seed}");
        assert_eq!(report.gave_up, gave_ups, "seed {seed}");
        // Each ack is one distinct idempotency tag: replay recovered lost
        // entries without double-applying any.
        let mut tags = drv.acked_log().to_vec();
        let before = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), before, "seed {seed}: duplicate ack tags");
        assert_eq!(tags.len() as u64, oks, "seed {seed}");
    }
}

/// (3) Fault-free differential: the batched path returns the same
/// payloads as the serial path, acks everything, finishes on an earlier
/// simulated clock, and raises one coalesced interrupt per full batch.
#[test]
fn no_fault_batched_submit_matches_serial_payloads_on_a_faster_clock() {
    let (engine, kernel, _shell) = parts();
    let mut serial = CommandDriver::new(engine, kernel);
    let serial_results: Vec<_> = mix()
        .into_iter()
        .map(|(rbb, inst, code, args)| {
            squash(serial.cmd_raw_resilient(rbb, inst, code, args))
        })
        .collect();

    let (engine, kernel, _shell) = parts();
    let mut batched = BatchedCommandDriver::with_depth(engine, kernel, 7, 16);
    let batched_results: Vec<_> = batched.submit(mix()).into_iter().map(squash).collect();

    assert_eq!(serial_results, batched_results, "payloads must match");
    assert!(batched_results.iter().all(|r| r.is_ok()));
    assert_eq!(batched.report().acked, mix().len() as u64);
    assert!(
        batched.clock_ps() < serial.clock_ps(),
        "batched clock {} must beat serial {}",
        batched.clock_ps(),
        serial.clock_ps()
    );
    let irq = batched.irq_report();
    assert_eq!(irq.events, mix().len() as u64);
    assert_eq!(irq.interrupts, 2, "14 completions in 7-batches coalesce twice");
    assert_eq!(irq.coalescing(), 7.0);
}
